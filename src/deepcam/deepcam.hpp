// Umbrella header: the whole DeepCAM public surface in one include.
//
//   #include "deepcam/deepcam.hpp"
//
//   deepcam::Spec spec = deepcam::SpecBuilder("demo")
//                            .workload("lenet5", 7)
//                            .hash_bits(256)
//                            .build();
//   deepcam::Outcome outcome = deepcam::Runner().run(spec);
//   std::puts(deepcam::outcome_text(outcome).c_str());
//
// The facade layer (api/) is the intended entry point — one declarative
// Spec in, one typed Outcome out, with JSON spec files (api/spec_io) and
// the `deepcam` CLI speaking the same format. The subsystem headers below
// are included for callers that drop beneath the facade (direct engine,
// comparison, or serving access); everything the facade does is expressible
// against them, bitwise-identically.
#pragma once

// Facade: declarative specs, the runner, outcome serialization.
#include "api/report_io.hpp"
#include "api/runner.hpp"
#include "api/spec.hpp"
#include "api/spec_io.hpp"

// Shared infrastructure.
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

// Core execution: accelerator, batched engine, VHL tuner, serializers.
#include "core/accelerator.hpp"
#include "core/engine.hpp"
#include "core/hash_tuner.hpp"
#include "core/report_io.hpp"

// Workloads: the paper topologies plus the layer zoo for inline models.
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

// Planning: analytical cost model, plan search, keyed plan cache.
#include "plan/cost_model.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "plan/report_io.hpp"

// Cross-platform comparison.
#include "sim/backends.hpp"
#include "sim/comparison.hpp"
#include "sim/estimator_check.hpp"
#include "sim/registry.hpp"
#include "sim/report_io.hpp"

// Online serving.
#include "serve/loadgen.hpp"
#include "serve/report_io.hpp"
#include "serve/server.hpp"
