// Runtime CPU dispatch for the codelet layer.
//
// The kernel table is resolved exactly once (thread-safe function-local
// static): pick the highest ISA that is both compiled in and reported by
// CPUID, unless DEEPCAM_FORCE_ISA pins one. Forcing an ISA the host cannot
// execute — or one whose translation unit was not built with the required
// compiler flags — throws deepcam::Error immediately rather than SIGILL-ing
// later in an inner loop.
#include "codelet/codelet.hpp"

#include <cstdlib>
#include <string>

#include "codelet/kernels.hpp"
#include "common/error.hpp"

namespace deepcam::codelet {

namespace {

// __builtin_cpu_supports takes only literal feature names, so each probe is
// its own function rather than a parameterized helper.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
bool cpu_has_avx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
}
bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("popcnt");
}
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512() { return false; }
#endif

struct Dispatch {
  Isa isa;
  const Kernels* table;
};

Dispatch resolve() {
  const char* forced = std::getenv("DEEPCAM_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    const std::string want(forced);
    if (want != "native") {
      Isa isa;
      if (want == "scalar") {
        isa = Isa::kScalar;
      } else if (want == "avx2") {
        isa = Isa::kAvx2;
      } else if (want == "avx512") {
        isa = Isa::kAvx512;
      } else {
        throw Error("DEEPCAM_FORCE_ISA=\"" + want +
                    "\" — expected scalar, avx2, avx512 or native");
      }
      DEEPCAM_CHECK_MSG(kernels_for(isa) != nullptr,
                        "DEEPCAM_FORCE_ISA=" + want +
                            " codelets were not compiled into this binary");
      DEEPCAM_CHECK_MSG(isa_supported(isa),
                        "DEEPCAM_FORCE_ISA=" + want +
                            " is not executable on this CPU");
      return {isa, kernels_for(isa)};
    }
  }
  const Isa best = best_supported_isa();
  return {best, kernels_for(best)};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const Kernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &detail::scalar_kernels();
    case Isa::kAvx2:
      return detail::avx2_kernels();
    case Isa::kAvx512:
      return detail::avx512_kernels();
  }
  return nullptr;
}

bool isa_supported(Isa isa) {
  if (kernels_for(isa) == nullptr) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return cpu_has_avx2();
    case Isa::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

Isa best_supported_isa() {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

Isa active_isa() { return dispatch().isa; }

const Kernels& kernels() { return *dispatch().table; }

}  // namespace deepcam::codelet
