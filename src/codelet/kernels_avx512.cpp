// AVX-512 codelets. This TU is compiled with -mavx512f -mavx512bw -mavx512vl
// -mpopcnt -ffp-contract=off when the toolchain supports it
// (DEEPCAM_CODELET_AVX512 is then defined); otherwise it compiles to a
// nullptr table and dispatch skips the ISA. Runtime dispatch additionally
// requires the CPU to report avx512f+avx512bw+avx512vl — the kernels use
// 512-bit vpshufb/vpsadbw (BW) and fall through 256-bit tiers (VL), not
// vpopcntq, so they run on Skylake-SP-class parts without AVX512VPOPCNTDQ.
//
// Bitwise equivalence follows the same argument as the AVX2 TU: integer
// Hamming math, unfused 16-wide vmulps+vaddps with ascending-i accumulation
// and the xi == 0.0f skip in the GEMM (-ffp-contract=off pins it), and
// _CMP_GE_OQ sign compares matching scalar `>= 0.0f`.
#include "codelet/kernels.hpp"

#if defined(DEEPCAM_CODELET_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace deepcam::codelet::detail {

namespace {

/// Per-byte popcount of a 512-bit vector (vpshufb nibble lookup, AVX512BW).
/// The LUT is spelled with _mm512_set_epi8 rather than
/// _mm512_broadcast_i32x4: GCC 12's unmasked broadcast intrinsic expands
/// through the masked builtin with an undefined passthrough operand and
/// trips a -Wmaybe-uninitialized false positive in the system header.
inline __m512i popcount_bytes512(__m512i v) {
  const __m512i lut = _mm512_set_epi8(
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0, 4, 3, 3, 2, 3, 2, 2, 1,
      3, 2, 2, 1, 2, 1, 1, 0, 4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0);
  const __m512i nib = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, nib);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), nib);
  return _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                         _mm512_shuffle_epi8(lut, hi));
}

/// 256-bit tier for 4-word chunks (the k=256 hot case), same as the AVX2 TU.
inline __m256i popcount_bytes256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::uint64_t hsum_epi64_256(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Lane sum via a spill: _mm512_reduce_add_epi64 expands through
/// _mm512_extracti64x4_epi64 whose undefined passthrough operand trips the
/// same GCC 12 -Wmaybe-uninitialized header false positive as the broadcast
/// (see popcount_bytes512); this runs once per hamming call, off the hot
/// inner loop.
inline std::uint64_t hsum_epi64_512(__m512i v) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(reinterpret_cast<void*>(lanes), v);
  std::uint64_t s = 0;
  for (std::uint64_t l : lanes) s += l;
  return s;
}

std::size_t hamming_prefix_avx512(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t k) {
  const std::size_t full_words = k >> 6;
  std::size_t i = 0;
  std::size_t d = 0;
  if (full_words >= 8) {
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= full_words; i += 8) {
      const __m512i x = _mm512_xor_si512(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)),
          _mm512_loadu_si512(reinterpret_cast<const void*>(b + i)));
      acc = _mm512_add_epi64(
          acc, _mm512_sad_epu8(popcount_bytes512(x), _mm512_setzero_si512()));
    }
    d = static_cast<std::size_t>(hsum_epi64_512(acc));
  }
  if (i + 4 <= full_words) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    d += static_cast<std::size_t>(hsum_epi64_256(
        _mm256_sad_epu8(popcount_bytes256(x), _mm256_setzero_si256())));
    i += 4;
  }
  for (; i < full_words; ++i)
    d += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  const std::size_t rem = k & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    d += static_cast<std::size_t>(
        std::popcount((a[full_words] ^ b[full_words]) & mask));
  }
  return d;
}

void hamming_many_avx512(const std::uint64_t* query, const std::uint64_t* rows,
                         std::size_t row_stride_words, std::size_t row_count,
                         std::size_t k, std::uint16_t* out_hd) {
  const std::uint64_t* row = rows;
  for (std::size_t r = 0; r < row_count; ++r, row += row_stride_words)
    out_hd[r] =
        static_cast<std::uint16_t>(hamming_prefix_avx512(query, row, k));
}

constexpr std::size_t kPatchBlock = 8;
constexpr std::size_t kColBlock = 64;

/// Multi-patch path: the scalar kernel's 8-patch × 64-column L1 tile with
/// the inner column loop vectorized 16-wide — each cached C row slice is
/// shared by up to kPatchBlock patches (see the AVX2 TU for the traffic
/// argument).
void project_cols_blocked_avx512(const float* xs, const float* c,
                                 std::size_t count, std::size_t input_dim,
                                 std::size_t c_stride, std::size_t ncols,
                                 float* out) {
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    for (std::size_t j0 = 0; j0 < ncols; j0 += kColBlock) {
      const std::size_t jb = std::min(kColBlock, ncols - j0);
      alignas(64) float acc[kPatchBlock][kColBlock];
      std::memset(acc, 0, sizeof(acc));
      if (jb == kColBlock) {
        for (std::size_t i = 0; i < input_dim; ++i) {
          const float* __restrict__ crow = c + i * c_stride + j0;
          const __m512 c0 = _mm512_loadu_ps(crow);
          const __m512 c1 = _mm512_loadu_ps(crow + 16);
          const __m512 c2 = _mm512_loadu_ps(crow + 32);
          const __m512 c3 = _mm512_loadu_ps(crow + 48);
          for (std::size_t p = 0; p < pb; ++p) {
            const float xi = xs[(p0 + p) * input_dim + i];
            if (xi == 0.0f) continue;
            const __m512 xv = _mm512_set1_ps(xi);
            float* __restrict__ a = acc[p];
            _mm512_store_ps(
                a, _mm512_add_ps(_mm512_load_ps(a), _mm512_mul_ps(xv, c0)));
            _mm512_store_ps(a + 16, _mm512_add_ps(_mm512_load_ps(a + 16),
                                                  _mm512_mul_ps(xv, c1)));
            _mm512_store_ps(a + 32, _mm512_add_ps(_mm512_load_ps(a + 32),
                                                  _mm512_mul_ps(xv, c2)));
            _mm512_store_ps(a + 48, _mm512_add_ps(_mm512_load_ps(a + 48),
                                                  _mm512_mul_ps(xv, c3)));
          }
        }
      } else {
        // Column tail: scalar tile with the identical operation order.
        for (std::size_t i = 0; i < input_dim; ++i) {
          const float* __restrict__ crow = c + i * c_stride + j0;
          for (std::size_t p = 0; p < pb; ++p) {
            const float xi = xs[(p0 + p) * input_dim + i];
            if (xi == 0.0f) continue;
            float* __restrict__ a = acc[p];
            for (std::size_t j = 0; j < jb; ++j) a[j] += xi * crow[j];
          }
        }
      }
      for (std::size_t p = 0; p < pb; ++p)
        std::memcpy(out + (p0 + p) * ncols + j0, acc[p], jb * sizeof(float));
    }
  }
}

void project_cols_avx512(const float* xs, const float* c, std::size_t count,
                         std::size_t input_dim, std::size_t c_stride,
                         std::size_t ncols, float* out) {
  if (count != 1) {
    project_cols_blocked_avx512(xs, c, count, input_dim, c_stride, ncols,
                                out);
    return;
  }
  {
    const float* __restrict__ xrow = xs;
    float* __restrict__ orow = out;
    std::size_t j0 = 0;
    // Single-vector path: 64-column register tile (4 zmm accumulators) —
    // no accumulator memory traffic, best when C is read once anyway.
    for (; j0 + 64 <= ncols; j0 += 64) {
      __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
      for (std::size_t i = 0; i < input_dim; ++i) {
        const float xi = xrow[i];
        if (xi == 0.0f) continue;
        const __m512 xv = _mm512_set1_ps(xi);
        const float* __restrict__ crow = c + i * c_stride + j0;
        a0 = _mm512_add_ps(a0, _mm512_mul_ps(xv, _mm512_loadu_ps(crow)));
        a1 = _mm512_add_ps(a1, _mm512_mul_ps(xv, _mm512_loadu_ps(crow + 16)));
        a2 = _mm512_add_ps(a2, _mm512_mul_ps(xv, _mm512_loadu_ps(crow + 32)));
        a3 = _mm512_add_ps(a3, _mm512_mul_ps(xv, _mm512_loadu_ps(crow + 48)));
      }
      _mm512_storeu_ps(orow + j0, a0);
      _mm512_storeu_ps(orow + j0 + 16, a1);
      _mm512_storeu_ps(orow + j0 + 32, a2);
      _mm512_storeu_ps(orow + j0 + 48, a3);
    }
    // Column tail (< 64): scalar loop with the identical operation order.
    if (j0 < ncols) {
      const std::size_t jb = ncols - j0;
      float acc[64];
      std::memset(acc, 0, jb * sizeof(float));
      for (std::size_t i = 0; i < input_dim; ++i) {
        const float xi = xrow[i];
        if (xi == 0.0f) continue;
        const float* __restrict__ crow = c + i * c_stride + j0;
        for (std::size_t j = 0; j < jb; ++j) acc[j] += xi * crow[j];
      }
      std::memcpy(orow + j0, acc, jb * sizeof(float));
    }
  }
}

void pack_signs_avx512(const float* proj, std::size_t nbits,
                       std::uint64_t* words) {
  const __m512 zero = _mm512_setzero_ps();
  const std::size_t full_words = nbits >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    const float* p = proj + w * 64;
    std::uint64_t bits = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      const __mmask16 m =
          _mm512_cmp_ps_mask(_mm512_loadu_ps(p + t * 16), zero, _CMP_GE_OQ);
      bits |= static_cast<std::uint64_t>(m) << (t * 16);
    }
    words[w] = bits;
  }
  const std::size_t rem = nbits & 63;
  if (rem != 0) {
    const float* p = proj + full_words * 64;
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < rem; ++j)
      bits |= static_cast<std::uint64_t>(p[j] >= 0.0f) << j;
    words[full_words] = bits;
  }
}

}  // namespace

const Kernels* avx512_kernels() {
  static const Kernels k = {hamming_prefix_avx512, hamming_many_avx512,
                            project_cols_avx512, pack_signs_avx512};
  return &k;
}

}  // namespace deepcam::codelet::detail

#else  // !DEEPCAM_CODELET_AVX512

namespace deepcam::codelet::detail {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace deepcam::codelet::detail

#endif
