// Scalar reference codelets: the semantics every SIMD variant must match
// bit for bit. These are the bodies that lived in common/bitvec.hpp,
// cam/dynamic_cam.cpp and hash/random_projection.cpp before the codelet
// layer — moved, not changed, so pre-codelet goldens stay byte-identical.
//
// This TU is compiled with -ffp-contract=off (see CMakeLists.txt): the
// projection GEMM's multiply-then-add per output element is the pinned
// rounding sequence, on every build type and ISA.
#include <algorithm>
#include <bit>
#include <cstring>

#include "codelet/kernels.hpp"

namespace deepcam::codelet::detail {

namespace {

std::size_t hamming_prefix_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t k) {
  std::size_t d = 0;
  const std::size_t full_words = k >> 6;
  for (std::size_t i = 0; i < full_words; ++i)
    d += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  const std::size_t rem = k & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    d += static_cast<std::size_t>(
        std::popcount((a[full_words] ^ b[full_words]) & mask));
  }
  return d;
}

void hamming_many_scalar(const std::uint64_t* query, const std::uint64_t* rows,
                         std::size_t row_stride_words, std::size_t row_count,
                         std::size_t k, std::uint16_t* out_hd) {
  const std::uint64_t* row = rows;
  for (std::size_t r = 0; r < row_count; ++r, row += row_stride_words)
    out_hd[r] = static_cast<std::uint16_t>(hamming_prefix_scalar(query, row, k));
}

// Tile sizes of the blocked projection kernel. Up to kPatchBlock vectors
// share each cached slice of a C row (an 8× cut in traffic over the n×1024
// matrix, the kernel's only large operand); accumulation runs in a local
// 8×64-float tile (2 KiB, hot in L1 and free of aliasing with the operands)
// that is spilled to the output once per tile instead of re-loading/storing
// output rows every input element.
constexpr std::size_t kPatchBlock = 8;
constexpr std::size_t kColBlock = 64;

void project_cols_scalar(const float* xs, const float* c, std::size_t count,
                         std::size_t input_dim, std::size_t c_stride,
                         std::size_t ncols, float* out) {
  // For any fixed output (p, j) the adds run over i in ascending order with
  // the same zero-skip as the original scalar GEMV, so every entry point
  // built on this kernel is bitwise identical to the per-vector path.
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    for (std::size_t j0 = 0; j0 < ncols; j0 += kColBlock) {
      const std::size_t jb = std::min(kColBlock, ncols - j0);
      float acc[kPatchBlock][kColBlock];
      std::memset(acc, 0, sizeof(acc));
      for (std::size_t i = 0; i < input_dim; ++i) {
        const float* __restrict__ crow = &c[i * c_stride + j0];
        for (std::size_t p = 0; p < pb; ++p) {
          const float xi = xs[(p0 + p) * input_dim + i];
          if (xi == 0.0f) continue;
          float* __restrict__ a = acc[p];
          for (std::size_t j = 0; j < jb; ++j) a[j] += xi * crow[j];
        }
      }
      for (std::size_t p = 0; p < pb; ++p)
        std::memcpy(out + (p0 + p) * ncols + j0, acc[p], jb * sizeof(float));
    }
  }
}

/// Packs `nbits` sign bits (proj[j] >= 0, so +0/-0 both hash to 1 and NaN to
/// 0) into words, 64 bits per word write.
void pack_signs_scalar(const float* proj, std::size_t nbits,
                       std::uint64_t* words) {
  const std::size_t nwords = (nbits + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(nbits, lo + 64);
    std::uint64_t bits = 0;
    for (std::size_t j = lo; j < hi; ++j)
      bits |= static_cast<std::uint64_t>(proj[j] >= 0.0f) << (j - lo);
    words[w] = bits;
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels k = {hamming_prefix_scalar, hamming_many_scalar,
                            project_cols_scalar, pack_signs_scalar};
  return k;
}

}  // namespace deepcam::codelet::detail
