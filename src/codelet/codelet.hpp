// SIMD codelet layer: per-ISA variants of the three hot kernels behind
// one-time runtime CPU dispatch.
//
// The engine's inner loops spend their time in exactly three primitives —
// prefix-masked XOR+popcount Hamming reduce (BitVec::hamming_prefix and
// DynamicCam::search_flat), the blocked SimHash projection GEMM
// (RandomProjection::project_cols), and sign-bit packing (pack_signs). This
// layer gives each primitive a narrow, hand-written codelet per ISA
// (scalar / AVX2 / AVX-512), poplibs-style: the scalar codelet is the
// reference semantics and the bitwise-equivalence oracle in property tests;
// the SIMD variants must match it bit for bit.
//
// Bitwise contract. Every kernel is bitwise deterministic and ISA-invariant:
//  * Hamming kernels are integer, so equivalence is trivial.
//  * The projection GEMM accumulates each output (p, j) over i in ascending
//    order with UNFUSED multiply-then-add (the codelet translation units are
//    compiled with -ffp-contract=off and without FMA codegen for the
//    accumulation), and preserves the scalar kernel's xi == 0.0f skip — so
//    AVX2/AVX-512 lanes perform the identical rounding sequence per output
//    and the packed signatures (and goldens) are unchanged by dispatch.
//  * pack_signs uses ordered >= 0 compares: +0/-0 pack as 1, NaN as 0, on
//    every ISA.
//
// Dispatch. The table is chosen once, at first use, from CPUID feature bits
// (AVX2 needs avx2+popcnt; AVX-512 needs avx512f+avx512bw+avx512vl). The
// environment variable DEEPCAM_FORCE_ISA = scalar | avx2 | avx512 | native
// overrides the choice for testing/CI; forcing an ISA the host cannot run
// (or that was not compiled in) fails fast. Non-x86 builds compile only the
// scalar codelets and dispatch degenerates to them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace deepcam::codelet {

enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" / "avx2" / "avx512" — the DEEPCAM_FORCE_ISA vocabulary.
const char* isa_name(Isa isa);

/// One ISA's kernel table. All function pointers are non-null in a table
/// returned by kernels_for()/kernels().
struct Kernels {
  /// Hamming distance over the first `k` bits of two packed word arrays.
  /// Both arrays must hold at least ceil(k/64) words.
  std::size_t (*hamming_prefix)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t k);

  /// Row-blocked dense Hamming reduce over a flat row arena: for each row
  /// r in [0, row_count), out_hd[r] = HD over the first `k` bits of `query`
  /// vs the row at rows + r*row_stride_words. Requires k <= 65535 (uint16
  /// result) and ceil(k/64) <= row_stride_words. This is the
  /// DynamicCam::search_flat / HashTuner inner loop.
  void (*hamming_many)(const std::uint64_t* query, const std::uint64_t* rows,
                       std::size_t row_stride_words, std::size_t row_count,
                       std::size_t k, std::uint16_t* out_hd);

  /// Blocked projection GEMM: out[p*ncols + j] = sum_i xs[p*input_dim + i] *
  /// c[i*c_stride + j] for p < count, j < ncols (ncols <= c_stride), with
  /// ascending-i unfused multiply-add per output and the xi == 0.0f skip.
  void (*project_cols)(const float* xs, const float* c, std::size_t count,
                       std::size_t input_dim, std::size_t c_stride,
                       std::size_t ncols, float* out);

  /// Packs `nbits` sign bits (proj[j] >= 0.0f) into words, 64 per word; the
  /// partial last word's high bits are zero.
  void (*pack_signs)(const float* proj, std::size_t nbits,
                     std::uint64_t* words);
};

/// The table compiled in for `isa`, or nullptr when its translation unit was
/// built without that ISA's codegen (non-x86 host, compiler without the
/// flag). Does NOT check whether the running CPU can execute it — pair with
/// isa_supported() before calling through a non-scalar table.
const Kernels* kernels_for(Isa isa);

/// True when `isa` is both compiled in and executable on this CPU.
/// Isa::kScalar is always supported.
bool isa_supported(Isa isa);

/// Highest-ranked supported ISA (what "native" resolves to).
Isa best_supported_isa();

/// The ISA the process-wide dispatch selected (DEEPCAM_FORCE_ISA applied).
Isa active_isa();

/// The dispatched kernel table. Resolved once, on first call; every hot-path
/// wrapper (hamming_prefix_words, RandomProjection, DynamicCam) routes
/// through this.
const Kernels& kernels();

}  // namespace deepcam::codelet
