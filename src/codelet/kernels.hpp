// Internal linkage between the per-ISA codelet translation units and the
// dispatcher. Each ISA TU exposes exactly one accessor; the AVX variants
// return nullptr when their TU was compiled without the ISA (non-x86 target
// or compiler lacking the flag), so the dispatcher never needs conditional
// compilation against the build system.
#pragma once

#include "codelet/codelet.hpp"

namespace deepcam::codelet::detail {

/// Always present: the reference semantics and test oracle.
const Kernels& scalar_kernels();

/// Compiled with -mavx2 -mpopcnt when available; nullptr otherwise.
const Kernels* avx2_kernels();

/// Compiled with -mavx512f -mavx512bw -mavx512vl -mpopcnt when available;
/// nullptr otherwise.
const Kernels* avx512_kernels();

}  // namespace deepcam::codelet::detail
