// AVX2 codelets. This TU is compiled with -mavx2 -mpopcnt -ffp-contract=off
// when the toolchain supports it (DEEPCAM_CODELET_AVX2 is then defined); on
// other targets it compiles to a nullptr table and dispatch skips the ISA.
//
// Bitwise equivalence with the scalar reference:
//  * Hamming: XOR+popcount is integer math; the vector path uses the
//    vpshufb nibble-LUT byte popcount (Mula) + vpsadbw reduction.
//  * project_cols: columns are vectorized 8-wide but every output (p, j)
//    still accumulates over i in ascending order with separate vmulps +
//    vaddps (this TU has no FMA contraction: -ffp-contract=off and the
//    accumulation never uses fmadd intrinsics), and the xi == 0.0f skip is
//    taken per (p, i) exactly like the scalar kernel. A vector lane performs
//    the same IEEE operation sequence as the scalar loop, so results —
//    including ±0, denormal and NaN cases — are bit-identical.
//  * pack_signs: vcmpps with _CMP_GE_OQ matches scalar `>= 0.0f` (+0/-0
//    pack as 1, NaN as 0); vmovmskps harvests 8 sign bits at a time.
#include "codelet/kernels.hpp"

#if defined(DEEPCAM_CODELET_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

namespace deepcam::codelet::detail {

namespace {

/// Per-byte popcount of a 256-bit vector (vpshufb nibble lookup).
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

std::size_t hamming_prefix_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t k) {
  const std::size_t full_words = k >> 6;
  std::size_t i = 0;
  std::size_t d = 0;
  if (full_words >= 4) {
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= full_words; i += 4) {
      const __m256i x = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(popcount_bytes(x), _mm256_setzero_si256()));
    }
    d = static_cast<std::size_t>(hsum_epi64(acc));
  }
  for (; i < full_words; ++i)
    d += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  const std::size_t rem = k & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    d += static_cast<std::size_t>(
        std::popcount((a[full_words] ^ b[full_words]) & mask));
  }
  return d;
}

void hamming_many_avx2(const std::uint64_t* query, const std::uint64_t* rows,
                       std::size_t row_stride_words, std::size_t row_count,
                       std::size_t k, std::uint16_t* out_hd) {
  const std::uint64_t* row = rows;
  for (std::size_t r = 0; r < row_count; ++r, row += row_stride_words)
    out_hd[r] = static_cast<std::uint16_t>(hamming_prefix_avx2(query, row, k));
}

constexpr std::size_t kPatchBlock = 8;
constexpr std::size_t kColBlock = 64;

/// Multi-patch path: the scalar kernel's 8-patch × 64-column L1 tile with
/// the inner column loop vectorized 8-wide. Each cached C row slice is
/// shared by up to kPatchBlock patches — for batch hashing (n×1024 matrices
/// larger than L2) the matrix streams once per 8 patches, not once per
/// patch, which dominates a register-resident accumulator at these sizes.
void project_cols_blocked_avx2(const float* xs, const float* c,
                               std::size_t count, std::size_t input_dim,
                               std::size_t c_stride, std::size_t ncols,
                               float* out) {
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    for (std::size_t j0 = 0; j0 < ncols; j0 += kColBlock) {
      const std::size_t jb = std::min(kColBlock, ncols - j0);
      alignas(64) float acc[kPatchBlock][kColBlock];
      std::memset(acc, 0, sizeof(acc));
      if (jb == kColBlock) {
        for (std::size_t i = 0; i < input_dim; ++i) {
          const float* __restrict__ crow = c + i * c_stride + j0;
          const __m256 c0 = _mm256_loadu_ps(crow);
          const __m256 c1 = _mm256_loadu_ps(crow + 8);
          const __m256 c2 = _mm256_loadu_ps(crow + 16);
          const __m256 c3 = _mm256_loadu_ps(crow + 24);
          const __m256 c4 = _mm256_loadu_ps(crow + 32);
          const __m256 c5 = _mm256_loadu_ps(crow + 40);
          const __m256 c6 = _mm256_loadu_ps(crow + 48);
          const __m256 c7 = _mm256_loadu_ps(crow + 56);
          for (std::size_t p = 0; p < pb; ++p) {
            const float xi = xs[(p0 + p) * input_dim + i];
            if (xi == 0.0f) continue;
            const __m256 xv = _mm256_set1_ps(xi);
            float* __restrict__ a = acc[p];
            _mm256_store_ps(
                a, _mm256_add_ps(_mm256_load_ps(a), _mm256_mul_ps(xv, c0)));
            _mm256_store_ps(a + 8, _mm256_add_ps(_mm256_load_ps(a + 8),
                                                 _mm256_mul_ps(xv, c1)));
            _mm256_store_ps(a + 16, _mm256_add_ps(_mm256_load_ps(a + 16),
                                                  _mm256_mul_ps(xv, c2)));
            _mm256_store_ps(a + 24, _mm256_add_ps(_mm256_load_ps(a + 24),
                                                  _mm256_mul_ps(xv, c3)));
            _mm256_store_ps(a + 32, _mm256_add_ps(_mm256_load_ps(a + 32),
                                                  _mm256_mul_ps(xv, c4)));
            _mm256_store_ps(a + 40, _mm256_add_ps(_mm256_load_ps(a + 40),
                                                  _mm256_mul_ps(xv, c5)));
            _mm256_store_ps(a + 48, _mm256_add_ps(_mm256_load_ps(a + 48),
                                                  _mm256_mul_ps(xv, c6)));
            _mm256_store_ps(a + 56, _mm256_add_ps(_mm256_load_ps(a + 56),
                                                  _mm256_mul_ps(xv, c7)));
          }
        }
      } else {
        // Column tail: scalar tile with the identical operation order.
        for (std::size_t i = 0; i < input_dim; ++i) {
          const float* __restrict__ crow = c + i * c_stride + j0;
          for (std::size_t p = 0; p < pb; ++p) {
            const float xi = xs[(p0 + p) * input_dim + i];
            if (xi == 0.0f) continue;
            float* __restrict__ a = acc[p];
            for (std::size_t j = 0; j < jb; ++j) a[j] += xi * crow[j];
          }
        }
      }
      for (std::size_t p = 0; p < pb; ++p)
        std::memcpy(out + (p0 + p) * ncols + j0, acc[p], jb * sizeof(float));
    }
  }
}

void project_cols_avx2(const float* xs, const float* c, std::size_t count,
                       std::size_t input_dim, std::size_t c_stride,
                       std::size_t ncols, float* out) {
  if (count != 1) {
    project_cols_blocked_avx2(xs, c, count, input_dim, c_stride, ncols, out);
    return;
  }
  {
    const float* __restrict__ xrow = xs;
    float* __restrict__ orow = out;
    std::size_t j0 = 0;
    // Single-vector path: 64-column register tile (8 ymm accumulators) —
    // no accumulator memory traffic, best when C is read once anyway.
    for (; j0 + 64 <= ncols; j0 += 64) {
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 a4 = _mm256_setzero_ps(), a5 = _mm256_setzero_ps();
      __m256 a6 = _mm256_setzero_ps(), a7 = _mm256_setzero_ps();
      for (std::size_t i = 0; i < input_dim; ++i) {
        const float xi = xrow[i];
        if (xi == 0.0f) continue;
        const __m256 xv = _mm256_set1_ps(xi);
        const float* __restrict__ crow = c + i * c_stride + j0;
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, _mm256_loadu_ps(crow)));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 8)));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 16)));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 24)));
        a4 = _mm256_add_ps(a4, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 32)));
        a5 = _mm256_add_ps(a5, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 40)));
        a6 = _mm256_add_ps(a6, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 48)));
        a7 = _mm256_add_ps(a7, _mm256_mul_ps(xv, _mm256_loadu_ps(crow + 56)));
      }
      _mm256_storeu_ps(orow + j0, a0);
      _mm256_storeu_ps(orow + j0 + 8, a1);
      _mm256_storeu_ps(orow + j0 + 16, a2);
      _mm256_storeu_ps(orow + j0 + 24, a3);
      _mm256_storeu_ps(orow + j0 + 32, a4);
      _mm256_storeu_ps(orow + j0 + 40, a5);
      _mm256_storeu_ps(orow + j0 + 48, a6);
      _mm256_storeu_ps(orow + j0 + 56, a7);
    }
    // Column tail (< 64): scalar loop with the identical operation order.
    if (j0 < ncols) {
      const std::size_t jb = ncols - j0;
      float acc[64];
      std::memset(acc, 0, jb * sizeof(float));
      for (std::size_t i = 0; i < input_dim; ++i) {
        const float xi = xrow[i];
        if (xi == 0.0f) continue;
        const float* __restrict__ crow = c + i * c_stride + j0;
        for (std::size_t j = 0; j < jb; ++j) acc[j] += xi * crow[j];
      }
      std::memcpy(orow + j0, acc, jb * sizeof(float));
    }
  }
}

void pack_signs_avx2(const float* proj, std::size_t nbits,
                     std::uint64_t* words) {
  const __m256 zero = _mm256_setzero_ps();
  const std::size_t full_words = nbits >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    const float* p = proj + w * 64;
    std::uint64_t bits = 0;
    for (std::size_t t = 0; t < 8; ++t) {
      const __m256 v = _mm256_loadu_ps(p + t * 8);
      const unsigned m = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_GE_OQ)));
      bits |= static_cast<std::uint64_t>(m) << (t * 8);
    }
    words[w] = bits;
  }
  const std::size_t rem = nbits & 63;
  if (rem != 0) {
    const float* p = proj + full_words * 64;
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < rem; ++j)
      bits |= static_cast<std::uint64_t>(p[j] >= 0.0f) << j;
    words[full_words] = bits;
  }
}

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels k = {hamming_prefix_avx2, hamming_many_avx2,
                            project_cols_avx2, pack_signs_avx2};
  return &k;
}

}  // namespace deepcam::codelet::detail

#else  // !DEEPCAM_CODELET_AVX2

namespace deepcam::codelet::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace deepcam::codelet::detail

#endif
