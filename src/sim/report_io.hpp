// ComparisonReport serialization: CSV for spreadsheets/plotting pipelines
// and an aligned human-readable table in the paper's Table-I style.
//
// Companion of core/report_io.hpp (which serializes a single DeepCAM
// RunReport); everything here is a pure, locale-proof function of the
// report — byte-exact output is regression-tested against checked-in
// goldens (tests/golden/).
#pragma once

#include <string>

#include "common/json.hpp"
#include "sim/comparison.hpp"

namespace deepcam::sim {

/// Appends one JSON object for the ComparisonReport — the normalized rows
/// (per-layer breakdown included) plus any VHL tuning results — to an
/// in-progress writer; the facade's Outcome JSON embeds this.
void comparison_json(JsonWriter& json, const ComparisonReport& report);

/// One CSV row per (model, batch, backend) with header:
/// model,backend,batch,total_cycles,cycles_per_inference,total_energy_j,
/// energy_per_inference_j,throughput_samples_s,peak_efficiency,clock_hz,
/// energy_modeled
std::string comparison_to_csv(const ComparisonReport& report);

/// Per-layer drill-down CSV with header:
/// model,backend,batch,layer,macs,cycles,energy_j
std::string comparison_layers_to_csv(const ComparisonReport& report);

/// Aligned table per (model, batch) cell, ranked by ascending cycles per
/// inference, with a "vs best" cycle ratio column and energy ranking —
/// the Table-I-style view. Energy prints "n/a" for unmodeled platforms.
std::string comparison_summary(const ComparisonReport& report);

}  // namespace deepcam::sim
