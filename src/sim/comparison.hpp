// ComparisonRunner: sweeps a backend registry over a workload registry and
// collects the normalized results into a ComparisonReport — the code path
// that actually reproduces the paper's Table I/II cross-platform rankings.
//
// Workloads name topologies from nn/topologies (LeNet5/VGG11/VGG16/
// ResNet18) and carry the batch sizes to sweep. Optionally the runner also
// evaluates a VHL-tuned DeepCAM variant ("deepcam-vhl"): per-layer hash
// lengths chosen by the HashTuner (kLayerLocal mode) on deterministic
// probes, compared against the registry's fixed-default-hash "deepcam".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"
#include "core/hash_tuner.hpp"
#include "sim/registry.hpp"

namespace deepcam::sim {

/// One CNN workload to sweep: a topology name for nn::make_model plus the
/// batch sizes to run.
struct WorkloadSpec {
  std::string model_name;  // "lenet5", "vgg11", "vgg16", "resnet18"
  std::uint64_t seed = 1;  // weight-init seed
  std::vector<std::size_t> batch_sizes = {1};
};

struct ComparisonOptions {
  /// Additionally run DeepCAM with HashTuner-chosen per-layer hash lengths
  /// as backend "deepcam-vhl" (paper §III-A VHL vs fixed 1024-bit).
  bool include_vhl_deepcam = false;
  /// Probe inputs for the tuner.
  std::size_t vhl_probes = 4;
  /// Tuner settings, honored as given. The default mode (kLayerLocal) is
  /// cheap enough for any topology; kEndToEnd costs a model forward per
  /// (layer, hash length, probe) — reasonable on LeNet-scale nets only.
  core::TunerConfig tuner = {};
  /// Base config for the VHL variant (layer_hash_bits is overwritten with
  /// the tuner's choice) — keep equal to the registry's "deepcam" config to
  /// make the two rows differ in hash lengths only.
  core::DeepCamConfig deepcam_config = {};
  std::size_t deepcam_threads = 0;
};

struct ComparisonReport {
  /// One row per (workload, batch, backend), in sweep order.
  std::vector<PlatformResult> rows;
  /// When include_vhl_deepcam: the tuner result behind each workload's
  /// "deepcam-vhl" rows (workload sweep order) — what drivers print as the
  /// chosen per-layer hash lengths. Empty otherwise.
  std::vector<core::TuneResult> vhl_tuning;

  /// Rows of one (model, batch) cell sorted by ascending total cycles —
  /// the paper's Table-I-style ranking. Pointers into `rows`.
  std::vector<const PlatformResult*> ranked_by_cycles(
      const std::string& model, std::size_t batch) const;
  /// Same cell ranked by ascending energy; energy-unmodeled backends sort
  /// last.
  std::vector<const PlatformResult*> ranked_by_energy(
      const std::string& model, std::size_t batch) const;
  /// Distinct (model, batch) cells, in first-appearance order.
  std::vector<std::pair<std::string, std::size_t>> cells() const;
};

class ComparisonRunner {
 public:
  /// `registry` must outlive the runner.
  explicit ComparisonRunner(const BackendRegistry& registry,
                            ComparisonOptions opts = {});

  /// Runs every (workload, batch, backend) combination.
  ComparisonReport run(const std::vector<WorkloadSpec>& workloads) const;

  /// The tuner result for `spec`'s model (what "deepcam-vhl" would use).
  /// Builds the model itself; inside run() the already-built model goes
  /// through tune_model() instead, and the result lands in
  /// ComparisonReport::vhl_tuning.
  core::TuneResult tune_workload(const WorkloadSpec& spec) const;

 private:
  core::TuneResult tune_model(const nn::Model& model,
                              nn::Shape input_shape) const;

  const BackendRegistry* registry_;
  ComparisonOptions opts_;
};

}  // namespace deepcam::sim
