#include "sim/comparison.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "nn/topologies.hpp"
#include "sim/backends.hpp"

namespace deepcam::sim {

namespace {

std::vector<const PlatformResult*> cell_rows(
    const std::vector<PlatformResult>& rows, const std::string& model,
    std::size_t batch) {
  std::vector<const PlatformResult*> out;
  for (const auto& r : rows)
    if (r.model == model && r.batch == batch) out.push_back(&r);
  return out;
}

}  // namespace

std::vector<const PlatformResult*> ComparisonReport::ranked_by_cycles(
    const std::string& model, std::size_t batch) const {
  auto cell = cell_rows(rows, model, batch);
  std::stable_sort(cell.begin(), cell.end(),
                   [](const PlatformResult* a, const PlatformResult* b) {
                     return a->total_cycles < b->total_cycles;
                   });
  return cell;
}

std::vector<const PlatformResult*> ComparisonReport::ranked_by_energy(
    const std::string& model, std::size_t batch) const {
  auto cell = cell_rows(rows, model, batch);
  std::stable_sort(cell.begin(), cell.end(),
                   [](const PlatformResult* a, const PlatformResult* b) {
                     if (a->energy_modeled != b->energy_modeled)
                       return a->energy_modeled;  // unmodeled sorts last
                     return a->total_energy_j < b->total_energy_j;
                   });
  return cell;
}

std::vector<std::pair<std::string, std::size_t>> ComparisonReport::cells()
    const {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const auto& r : rows) {
    const auto cell = std::make_pair(r.model, r.batch);
    if (std::find(out.begin(), out.end(), cell) == out.end())
      out.push_back(cell);
  }
  return out;
}

ComparisonRunner::ComparisonRunner(const BackendRegistry& registry,
                                   ComparisonOptions opts)
    : registry_(&registry), opts_(std::move(opts)) {}

core::TuneResult ComparisonRunner::tune_workload(
    const WorkloadSpec& spec) const {
  auto model = nn::make_model(spec.model_name, spec.seed);
  return tune_model(*model, nn::input_spec_for(spec.model_name).shape());
}

core::TuneResult ComparisonRunner::tune_model(const nn::Model& model,
                                              nn::Shape input_shape) const {
  const auto probes =
      make_probe_batch(input_shape, opts_.vhl_probes, kProbeSeed);
  return core::tune_hash_lengths(model, probes, opts_.tuner);
}

ComparisonReport ComparisonRunner::run(
    const std::vector<WorkloadSpec>& workloads) const {
  ComparisonReport report;
  for (const auto& spec : workloads) {
    DEEPCAM_CHECK_MSG(!spec.batch_sizes.empty(),
                      "workload has no batch sizes");
    auto model = nn::make_model(spec.model_name, spec.seed);
    const nn::Shape shape = nn::input_spec_for(spec.model_name).shape();

    // Tune once per workload, reused across its batch sizes.
    std::unique_ptr<DeepCamBackend> vhl;
    if (opts_.include_vhl_deepcam) {
      report.vhl_tuning.push_back(tune_model(*model, shape));
      const core::TuneResult& tuned = report.vhl_tuning.back();
      DeepCamBackend::Options dc;
      dc.config = opts_.deepcam_config;
      dc.config.layer_hash_bits = tuned.hash_bits;
      dc.threads = opts_.deepcam_threads;
      dc.name = "deepcam-vhl";
      vhl = std::make_unique<DeepCamBackend>(dc);
    }

    for (const std::size_t batch : spec.batch_sizes) {
      DEEPCAM_CHECK_MSG(batch > 0, "batch size must be positive");
      for (const auto& backend : *registry_)
        report.rows.push_back(backend->simulate(*model, shape, batch));
      if (vhl) report.rows.push_back(vhl->simulate(*model, shape, batch));
    }
  }
  return report;
}

}  // namespace deepcam::sim
