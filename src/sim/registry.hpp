// Backend registry: the named set of platforms a comparison sweeps.
//
// The ComparisonRunner and the generic backend-contract test suite iterate a
// registry rather than hard-coding platforms, so adding a backend to
// default_registry() automatically enrolls it in every sweep, serializer
// and contract check.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/backend.hpp"

namespace deepcam::sim {

class BackendRegistry {
 public:
  /// Registers `backend` under its name(); rejects duplicate names.
  void add(std::unique_ptr<Backend> backend);

  std::size_t size() const { return backends_.size(); }
  const Backend& at(std::size_t i) const;
  /// Lookup by registry key; nullptr when absent.
  const Backend* find(const std::string& name) const;
  std::vector<std::string> names() const;

  auto begin() const { return backends_.begin(); }
  auto end() const { return backends_.end(); }

 private:
  std::vector<std::unique_ptr<Backend>> backends_;
};

/// The paper's Table I/II platform set: "deepcam" (fixed default-length
/// hashes), "eyeriss", "cpu-avx512", "pim-neurosim", "pim-valavi".
/// `deepcam_threads` sizes the DeepCAM engine pool (0 = hardware
/// concurrency); it affects host speed only, never results.
BackendRegistry default_registry(std::size_t deepcam_threads = 0);

}  // namespace deepcam::sim
