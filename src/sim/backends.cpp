#include "sim/backends.hpp"

#include <utility>

#include "core/engine.hpp"
#include "cpu/cpu_model.hpp"
#include "systolic/eyeriss.hpp"

namespace deepcam::sim {

namespace {

/// Scales one per-inference layer cost to a batch total.
PlatformLayerResult scaled_layer(const std::string& name, std::size_t macs,
                                 double cycles, double energy_j,
                                 std::size_t batch) {
  const double b = static_cast<double>(batch);
  return {name, macs * batch, cycles * b, energy_j * b};
}

}  // namespace

// ---------------------------------------------------------------------------
// DeepCAM
// ---------------------------------------------------------------------------

DeepCamBackend::DeepCamBackend(Options opts) : opts_(std::move(opts)) {}

DeepCamBackend::DeepCamBackend() : DeepCamBackend(Options{}) {}

PlatformResult DeepCamBackend::simulate(const nn::Model& model,
                                        nn::Shape input_shape,
                                        std::size_t batch) const {
  auto compiled =
      std::make_shared<const core::CompiledModel>(model, opts_.config);
  core::InferenceEngine engine(compiled, opts_.threads);
  const auto probes = make_probe_batch(input_shape, batch, opts_.probe_seed);
  core::BatchReport br;
  engine.run_batch(probes, &br);

  PlatformResult r;
  r.backend = opts_.name;
  r.model = model.name();
  r.batch = batch;
  // The aggregate's layer counters are already batch totals (sample-order
  // merge); one CAM dot-product of context length n is n MAC-equivalents.
  for (const auto& l : br.aggregate.layers)
    r.layers.push_back({l.name, l.plan.dot_products * l.context_len,
                        static_cast<double>(l.cycles), l.total_energy()});
  r.extra_cycles = static_cast<double>(br.aggregate.peripheral_cycles);
  r.total_cycles = static_cast<double>(br.aggregate.total_cycles());
  r.total_energy_j = br.aggregate.total_energy();
  r.clock_hz = tech::kClockHz;
  r.peak_efficiency = br.aggregate.mean_utilization();
  return r;
}

// ---------------------------------------------------------------------------
// Eyeriss systolic array
// ---------------------------------------------------------------------------

EyerissBackend::EyerissBackend(systolic::ArrayConfig cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {}

EyerissBackend::EyerissBackend()
    : EyerissBackend(systolic::eyeriss_config()) {}

PlatformResult EyerissBackend::simulate(const nn::Model& model,
                                        nn::Shape input_shape,
                                        std::size_t batch) const {
  const auto mr = systolic::simulate_model(model, input_shape, cfg_);

  PlatformResult r;
  r.backend = name_;
  r.model = model.name();
  r.batch = batch;
  for (const auto& l : mr.layers)
    r.layers.push_back(scaled_layer(
        l.layer_name, l.macs, static_cast<double>(l.total_cycles()),
        l.energy(), batch));
  r.total_cycles =
      static_cast<double>(mr.total_cycles()) * static_cast<double>(batch);
  r.total_energy_j = mr.total_energy() * static_cast<double>(batch);
  r.clock_hz = tech::kClockHz;
  r.peak_efficiency = mr.mean_utilization();
  return r;
}

// ---------------------------------------------------------------------------
// Skylake AVX-512 CPU
// ---------------------------------------------------------------------------

PlatformResult CpuBackend::simulate(const nn::Model& model,
                                    nn::Shape input_shape,
                                    std::size_t batch) const {
  const auto mr = cpu::simulate_cpu(model, input_shape);

  PlatformResult r;
  r.backend = name();
  r.model = model.name();
  r.batch = batch;
  for (const auto& l : mr.layers)
    r.layers.push_back(scaled_layer(l.layer_name, l.macs, l.cycles,
                                    /*energy_j=*/0.0, batch));
  r.total_cycles = mr.total_cycles() * static_cast<double>(batch);
  r.total_energy_j = 0.0;
  r.energy_modeled = false;  // Table I excludes CPU energy, as in the paper
  r.clock_hz = tech::kCpuClockHz;
  r.peak_efficiency = mr.mean_efficiency();
  return r;
}

// ---------------------------------------------------------------------------
// Analog PIM crossbar
// ---------------------------------------------------------------------------

CrossbarBackend::CrossbarBackend(pim::CrossbarConfig cfg, std::string name)
    : cfg_(std::move(cfg)), name_(std::move(name)) {}

PlatformResult CrossbarBackend::simulate(const nn::Model& model,
                                         nn::Shape input_shape,
                                         std::size_t batch) const {
  const auto mr = pim::simulate_crossbar(model, input_shape, cfg_);

  PlatformResult r;
  r.backend = name_;
  r.model = model.name();
  r.batch = batch;
  for (const auto& l : mr.layers)
    r.layers.push_back(scaled_layer(l.layer_name, l.macs,
                                    static_cast<double>(l.cycles), l.energy,
                                    batch));
  r.total_cycles =
      static_cast<double>(mr.total_cycles()) * static_cast<double>(batch);
  r.total_energy_j = mr.total_energy() * static_cast<double>(batch);
  r.clock_hz = tech::kClockHz;
  const double peak =
      static_cast<double>(pim::peak_macs_per_cycle(cfg_));
  r.peak_efficiency =
      r.total_cycles > 0.0 && peak > 0.0
          ? static_cast<double>(r.total_macs()) / (r.total_cycles * peak)
          : 0.0;
  return r;
}

}  // namespace deepcam::sim
