#include "sim/registry.hpp"

#include "common/error.hpp"
#include "pim/comparators.hpp"
#include "sim/backends.hpp"

namespace deepcam::sim {

void BackendRegistry::add(std::unique_ptr<Backend> backend) {
  DEEPCAM_CHECK_MSG(backend != nullptr, "null backend");
  DEEPCAM_CHECK_MSG(!backend->name().empty(), "backend name empty");
  DEEPCAM_CHECK_MSG(find(backend->name()) == nullptr,
                    "duplicate backend name");
  backends_.push_back(std::move(backend));
}

const Backend& BackendRegistry::at(std::size_t i) const {
  DEEPCAM_CHECK(i < backends_.size());
  return *backends_[i];
}

const Backend* BackendRegistry::find(const std::string& name) const {
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

BackendRegistry default_registry(std::size_t deepcam_threads) {
  BackendRegistry reg;
  DeepCamBackend::Options dc;
  dc.threads = deepcam_threads;
  reg.add(std::make_unique<DeepCamBackend>(dc));
  reg.add(std::make_unique<EyerissBackend>());
  reg.add(std::make_unique<CpuBackend>());
  reg.add(std::make_unique<CrossbarBackend>(pim::neurosim_rram_config(),
                                            "pim-neurosim"));
  reg.add(std::make_unique<CrossbarBackend>(pim::valavi_sram_config(),
                                            "pim-valavi"));
  return reg;
}

}  // namespace deepcam::sim
