#include "sim/estimator_check.hpp"

#include <cmath>

#include "sim/backends.hpp"

namespace deepcam::sim {

EstimatorCheck check_estimator(const nn::Model& model, nn::Shape input,
                               const core::DeepCamConfig& cfg,
                               std::size_t batch) {
  DeepCamBackend::Options opts;
  opts.config = cfg;
  const PlatformResult measured =
      DeepCamBackend(opts).simulate(model, input, batch);

  const plan::CostModel cost(plan::extract_geometry(model, input));
  const plan::CostEstimate est = cost.estimate(cfg, batch);

  EstimatorCheck chk;
  chk.measured_cycles = measured.total_cycles;
  chk.measured_energy_j = measured.total_energy_j;
  chk.estimated_cycles = est.total_cycles();
  chk.estimated_energy_j = est.total_energy();
  if (measured.total_cycles > 0.0)
    chk.cycle_rel_error =
        std::abs(static_cast<double>(chk.estimated_cycles) -
                 measured.total_cycles) /
        measured.total_cycles;
  if (measured.total_energy_j > 0.0)
    chk.energy_rel_error =
        std::abs(chk.estimated_energy_j - measured.total_energy_j) /
        measured.total_energy_j;
  return chk;
}

}  // namespace deepcam::sim
