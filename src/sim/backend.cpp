#include "sim/backend.hpp"

#include "common/rng.hpp"

namespace deepcam::sim {

double PlatformResult::layer_cycle_sum() const {
  double c = extra_cycles;
  for (const auto& l : layers) c += l.cycles;
  return c;
}

double PlatformResult::layer_energy_sum() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.energy_j;
  return e;
}

std::size_t PlatformResult::total_macs() const {
  std::size_t m = 0;
  for (const auto& l : layers) m += l.macs;
  return m;
}

std::vector<nn::Tensor> make_probe_batch(nn::Shape input_shape,
                                         std::size_t batch,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Tensor> probes;
  probes.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    nn::Tensor t({1, input_shape.c, input_shape.h, input_shape.w});
    for (auto& v : t.flat()) v = static_cast<float>(rng.uniform());
    probes.push_back(std::move(t));
  }
  return probes;
}

}  // namespace deepcam::sim
