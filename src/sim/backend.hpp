// Unified hardware-backend abstraction (paper Tables I/II).
//
// The paper's headline results are cross-platform comparisons — DeepCAM
// against an Eyeriss-class systolic array, a Skylake AVX-512 CPU and two
// analog PIM crossbar macros — but each cost model in this repo grew its own
// API and result struct. `Backend` is the one interface they all adapt to
// (src/sim/backends.hpp) and `PlatformResult` the normalized result every
// comparison consumes: per-layer + total cycles, energy in joules,
// throughput in samples/s at the platform clock, and the achieved fraction
// of platform peak. Every future backend (sharded CAM, GPU model, a new
// crossbar config) plugs in here and inherits the ComparisonRunner sweeps,
// serializers and the generic backend-contract test suite for free.
//
// Conventions:
//  * `simulate(model, input_shape, batch)` costs `batch` independent
//    inferences of `model` on `{1,C,H,W}` inputs; per-layer and total
//    figures are batch totals (so cost is monotonic in `batch`).
//  * Functional backends (DeepCAM executes real arithmetic) consume the
//    deterministic probe inputs from make_probe_batch(); analytic cost
//    models ignore input data entirely.
//  * total_cycles/total_energy_j come from the wrapped model's own totals;
//    the contract suite cross-checks them against the per-layer sums.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/tech.hpp"
#include "nn/model.hpp"
#include "nn/workload.hpp"

namespace deepcam::sim {

/// Normalized per-layer cost of one GEMM-shaped (Conv2D/Linear) layer,
/// totaled over the batch.
struct PlatformLayerResult {
  std::string layer_name;
  std::size_t macs = 0;     // INT8-equivalent multiply-accumulates
  double cycles = 0.0;      // platform cycles (double: CPU model is analytic)
  double energy_j = 0.0;    // joules; 0 when the backend models no energy
};

/// Normalized result of simulating `batch` inferences on one platform.
struct PlatformResult {
  std::string backend;          // Backend::name() that produced this
  std::string model;            // nn::Model::name()
  std::size_t batch = 1;
  std::vector<PlatformLayerResult> layers;
  /// Cycles spent outside the GEMM layers (e.g. DeepCAM's digital
  /// peripherals running pool/ReLU/BN exactly). Zero for pure-GEMM models.
  double extra_cycles = 0.0;
  double total_cycles = 0.0;
  double total_energy_j = 0.0;
  /// False when the platform's energy is out of scope (the paper excludes
  /// CPU energy from Table I); total_energy_j is 0 in that case.
  bool energy_modeled = true;
  double clock_hz = tech::kClockHz;
  /// Achieved fraction of the platform's peak compute (utilization for
  /// array-shaped platforms, efficiency for the CPU).
  double peak_efficiency = 0.0;

  /// Sum of per-layer cycles plus extra_cycles; the backend contract
  /// requires this to match total_cycles.
  double layer_cycle_sum() const;
  /// Sum of per-layer energy; the backend contract requires this to match
  /// total_energy_j when energy_modeled.
  double layer_energy_sum() const;
  std::size_t total_macs() const;

  double seconds() const {
    return clock_hz > 0.0 ? total_cycles / clock_hz : 0.0;
  }
  /// Simulated-hardware throughput in samples/s at the platform clock.
  double throughput() const {
    const double s = seconds();
    return s > 0.0 ? static_cast<double>(batch) / s : 0.0;
  }
  double cycles_per_inference() const {
    return batch > 0 ? total_cycles / static_cast<double>(batch) : 0.0;
  }
  double energy_per_inference_j() const {
    return batch > 0 ? total_energy_j / static_cast<double>(batch) : 0.0;
  }
};

/// One simulated hardware platform. Implementations are stateless across
/// simulate() calls (each call compiles/maps the model from scratch), so a
/// single instance can serve any number of sweeps.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable registry key, e.g. "deepcam", "eyeriss", "pim-neurosim".
  virtual std::string name() const = 0;

  /// Costs `batch` inferences of `model` on `{1,C,H,W}` inputs shaped by
  /// `input_shape` (the n field is ignored). `model` must stay alive for
  /// the duration of the call only.
  virtual PlatformResult simulate(const nn::Model& model,
                                  nn::Shape input_shape,
                                  std::size_t batch) const = 0;
};

/// Seed all functional backends default to for probe generation, so two
/// independently constructed backends cost the exact same input batch.
inline constexpr std::uint64_t kProbeSeed = 0xD15C0;

/// Deterministic batch of `batch` inputs, each {1,C,H,W} with values
/// uniform in [0,1). Pure function of (input_shape, batch, seed): the
/// compare_platforms driver relies on this to reproduce a backend's input
/// batch bit-for-bit outside the backend.
std::vector<nn::Tensor> make_probe_batch(nn::Shape input_shape,
                                         std::size_t batch,
                                         std::uint64_t seed = kProbeSeed);

}  // namespace deepcam::sim
