// Estimator validation hook: CostModel predictions vs the DeepCAM sim
// backend's measured cycles/energy on the same (model, config, batch).
//
// This is the plan subsystem's ground-truth gate. The engine's accounting
// is data-independent, so the analytical estimate should land exactly on
// the measured counters; the ±15% acceptance band in tests/test_plan.cpp is
// the safety margin for future accounting drift, not expected error.
#pragma once

#include "core/compiled_model.hpp"
#include "nn/model.hpp"
#include "plan/cost_model.hpp"

namespace deepcam::sim {

/// Measured-vs-estimated totals for one configuration.
struct EstimatorCheck {
  double measured_cycles = 0.0;   // DeepCamBackend batch total
  double measured_energy_j = 0.0;
  std::size_t estimated_cycles = 0;  // CostModel batch total
  double estimated_energy_j = 0.0;
  double cycle_rel_error = 0.0;   // |est - meas| / meas
  double energy_rel_error = 0.0;
};

/// Runs the DeepCamBackend on `batch` probe inputs and the analytical
/// CostModel on the extracted geometry, under the same `cfg`.
EstimatorCheck check_estimator(const nn::Model& model, nn::Shape input,
                               const core::DeepCamConfig& cfg,
                               std::size_t batch);

}  // namespace deepcam::sim
