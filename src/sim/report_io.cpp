#include "sim/report_io.hpp"

#include <sstream>

#include "common/format.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/report_io.hpp"

namespace deepcam::sim {

void comparison_json(JsonWriter& json, const ComparisonReport& report) {
  json.begin_object();
  json.key("rows").begin_array();
  for (const auto& r : report.rows) {
    json.begin_object();
    json.kv("backend", r.backend);
    json.kv("model", r.model);
    json.kv("batch", r.batch);
    json.kv("total_cycles", r.total_cycles);
    json.kv("cycles_per_inference", r.cycles_per_inference());
    json.kv("extra_cycles", r.extra_cycles);
    json.kv("total_energy_j", r.total_energy_j);
    json.kv("energy_per_inference_j", r.energy_per_inference_j());
    json.kv("energy_modeled", r.energy_modeled);
    json.kv("throughput_samples_s", r.throughput());
    json.kv("peak_efficiency", r.peak_efficiency);
    json.kv("clock_hz", r.clock_hz);
    json.key("layers").begin_array();
    for (const auto& l : r.layers) {
      json.begin_object();
      json.kv("layer", l.layer_name);
      json.kv("macs", l.macs);
      json.kv("cycles", l.cycles);
      json.kv("energy_j", l.energy_j);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("vhl_tuning").begin_array();
  for (const auto& t : report.vhl_tuning) core::tune_result_json(json, t);
  json.end_array();
  json.end_object();
}

std::string comparison_to_csv(const ComparisonReport& report) {
  std::ostringstream os;
  os << "model,backend,batch,total_cycles,cycles_per_inference,"
        "total_energy_j,energy_per_inference_j,throughput_samples_s,"
        "peak_efficiency,clock_hz,energy_modeled\n";
  for (const auto& r : report.rows) {
    os << r.model << ',' << r.backend << ',' << r.batch << ','
       << format_fixed(r.total_cycles, 2) << ','
       << format_fixed(r.cycles_per_inference(), 2) << ','
       << format_sci(r.total_energy_j, 6) << ','
       << format_sci(r.energy_per_inference_j(), 6) << ','
       << format_fixed(r.throughput(), 3) << ','
       << format_fixed(r.peak_efficiency, 6) << ','
       << format_sci(r.clock_hz, 2) << ',' << (r.energy_modeled ? 1 : 0)
       << '\n';
  }
  return os.str();
}

std::string comparison_layers_to_csv(const ComparisonReport& report) {
  std::ostringstream os;
  os << "model,backend,batch,layer,macs,cycles,energy_j\n";
  for (const auto& r : report.rows)
    for (const auto& l : r.layers)
      os << r.model << ',' << r.backend << ',' << r.batch << ','
         << l.layer_name << ',' << l.macs << ','
         << format_fixed(l.cycles, 2) << ',' << format_sci(l.energy_j, 6)
         << '\n';
  return os.str();
}

std::string comparison_summary(const ComparisonReport& report) {
  std::ostringstream os;
  for (const auto& [model, batch] : report.cells()) {
    const auto by_cycles = report.ranked_by_cycles(model, batch);
    const auto by_energy = report.ranked_by_energy(model, batch);
    if (by_cycles.empty()) continue;
    os << "== " << model << " @ batch " << batch << " (ranked by cycles) ==\n";
    const double best_cycles = by_cycles.front()->total_cycles;
    Table t({"rank", "backend", "cycles/inf", "vs best", "energy/inf (uJ)",
             "energy rank", "samples/s", "peak eff"});
    for (std::size_t i = 0; i < by_cycles.size(); ++i) {
      const PlatformResult& r = *by_cycles[i];
      std::size_t erank = 0;
      while (erank < by_energy.size() && by_energy[erank] != &r) ++erank;
      t.add_row({std::to_string(i + 1), r.backend,
                 Table::num(r.cycles_per_inference(), 1),
                 best_cycles > 0.0
                     ? Table::ratio(r.total_cycles / best_cycles, 2)
                     : "-",
                 r.energy_modeled
                     ? Table::num(to_uJ(r.energy_per_inference_j()), 4)
                     : "n/a",
                 r.energy_modeled ? std::to_string(erank + 1) : "n/a",
                 Table::num(r.throughput(), 1),
                 // Table::num falls back to scientific for the analog PIM
                 // macros' structurally tiny fractions (see EXPERIMENTS.md)
                 // instead of collapsing them to "0.00".
                 Table::num(100.0 * r.peak_efficiency, 2) + "%"});
    }
    std::ostringstream ts;
    t.print(ts);
    os << ts.str() << '\n';
  }
  return os.str();
}

}  // namespace deepcam::sim
