// The four platform adapters behind the Backend interface (paper Tables
// I/II): DeepCAM itself (functional, via the batched InferenceEngine), the
// Eyeriss-class systolic array, the Skylake AVX-512 CPU, and the analog PIM
// crossbar macros (NeuroSim RRAM / Valavi SRAM — one adapter, two configs).
//
// Each adapter owns its platform configuration and translates the wrapped
// simulator's native result struct into the normalized PlatformResult. The
// analytic backends (Eyeriss/CPU/PIM) cost one inference and scale by
// `batch`; DeepCAM actually executes the probe batch through a thread pool
// (its cycle/energy counts are input-independent, so batch cost stays
// exactly linear — the contract tests check this).
#pragma once

#include "core/compiled_model.hpp"
#include "pim/crossbar.hpp"
#include "sim/backend.hpp"
#include "systolic/scale_sim.hpp"

namespace deepcam::sim {

/// DeepCAM via CompiledModel + InferenceEngine. The reported cycles/energy
/// are the BatchReport aggregate of running make_probe_batch() through the
/// engine — bit-identical to driving InferenceEngine directly on the same
/// config and probes (compare_platforms asserts this).
class DeepCamBackend : public Backend {
 public:
  struct Options {
    core::DeepCamConfig config = {};
    /// Engine pool size; 0 = hardware concurrency. Any value yields the
    /// same counts (engine determinism contract), only host speed differs.
    std::size_t threads = 0;
    std::uint64_t probe_seed = kProbeSeed;
    /// Registry key; the VHL-tuned variant registers as "deepcam-vhl".
    std::string name = "deepcam";
  };

  explicit DeepCamBackend(Options opts);
  /// Defaults: registry config ("deepcam", fixed default-length hashes).
  DeepCamBackend();

  const Options& options() const { return opts_; }

  std::string name() const override { return opts_.name; }
  PlatformResult simulate(const nn::Model& model, nn::Shape input_shape,
                          std::size_t batch) const override;

 private:
  Options opts_;
};

/// Eyeriss-class systolic array via the SCALE-Sim-style analytic model.
class EyerissBackend : public Backend {
 public:
  explicit EyerissBackend(systolic::ArrayConfig cfg,
                          std::string name = "eyeriss");
  /// Defaults to the paper's 14x12 INT8 Eyeriss configuration.
  EyerissBackend();

  std::string name() const override { return name_; }
  PlatformResult simulate(const nn::Model& model, nn::Shape input_shape,
                          std::size_t batch) const override;

 private:
  systolic::ArrayConfig cfg_;
  std::string name_;
};

/// Skylake AVX-512 VNNI CPU via the analytic core model. Energy is not
/// modeled (the paper excludes CPU energy from Table I): energy_modeled is
/// false and all energy figures are 0.
class CpuBackend : public Backend {
 public:
  std::string name() const override { return "cpu-avx512"; }
  PlatformResult simulate(const nn::Model& model, nn::Shape input_shape,
                          std::size_t batch) const override;
};

/// Analog PIM crossbar macro; instantiate once per CrossbarConfig
/// (pim::neurosim_rram_config() / pim::valavi_sram_config()).
class CrossbarBackend : public Backend {
 public:
  CrossbarBackend(pim::CrossbarConfig cfg, std::string name);

  std::string name() const override { return name_; }
  PlatformResult simulate(const nn::Model& model, nn::Shape input_shape,
                          std::size_t batch) const override;

 private:
  pim::CrossbarConfig cfg_;
  std::string name_;
};

}  // namespace deepcam::sim
