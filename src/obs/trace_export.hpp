// Trace export: canonical ordering + Chrome trace-event JSON (loads in
// Perfetto / chrome://tracing), a compact CSV, and the per-stage profile
// aggregation behind `deepcam run --profile`.
//
// Canonical form: spans are sorted by a total order over their fields
// (begin time, category, name, ids) and assigned *logical* track ids
// derived from the span data alone — never OS thread ids — so the same
// set of spans always serializes to the same bytes regardless of which
// thread recorded what. A VirtualClock serve run is therefore
// byte-identical across replays and golden-pinnable.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace deepcam::obs {

/// Sorts spans into the canonical export order (stable across runs for
/// identical span sets).
void canonicalize(std::vector<SpanRecord>& spans);

/// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]},
/// complete ("X") events in microseconds plus thread-name metadata for the
/// logical tracks. Spans are canonicalized internally.
std::string chrome_trace_json(std::vector<SpanRecord> spans);

/// Compact CSV, one span per row, integer nanosecond timestamps; id
/// fields are empty when not applicable. Canonicalized internally.
std::string trace_csv(std::vector<SpanRecord> spans);

/// Writes `spans` to `path`: CSV when the extension is .csv, Chrome JSON
/// otherwise. Throws Error on I/O failure.
void write_trace_file(const std::string& path,
                      std::vector<SpanRecord> spans);

/// One row of the per-stage breakdown table (aggregated over spans with
/// the same category + name).
struct StageStat {
  std::string stage;  // "<cat>/<name>"
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double mean_us = 0.0;
  double share = 0.0;  // of the summed duration across all stages
};

/// Aggregates spans into per-stage totals, ordered by descending total
/// time (ties by stage name).
std::vector<StageStat> aggregate_stages(
    const std::vector<SpanRecord>& spans);

}  // namespace deepcam::obs
