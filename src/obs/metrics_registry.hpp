// Pull-based metrics registry with Prometheus text exposition.
//
// The registry holds no live counters of its own: producers (Server,
// ServerMetrics mirrors, replica health) register collector callbacks
// that are invoked at scrape time (expose()) and publish point-in-time
// samples via set_counter/set_gauge/set_histogram. That keeps the hot
// serving path free of registry coupling — the existing ServerMetrics
// counters stay the source of truth and are merely mirrored out.
//
// Exposition follows the Prometheus text format (0.0.4): families sorted
// by metric name, samples sorted by label signature, values formatted
// through std::to_chars (locale-proof, like every other serializer in
// this repo), histograms expanded to cumulative _bucket{le=...} series
// plus _sum and _count.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"

namespace deepcam::obs {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One bucketed distribution snapshot (cumulative counts are computed at
/// render time from the per-bucket counts).
struct HistogramSnapshot {
  std::vector<double> upper_bounds;  // per-bucket le= upper edges
  std::vector<std::uint64_t> counts;  // per-bucket (non-cumulative)
  std::uint64_t count = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsRegistry&)>;

  /// Registers a scrape-time callback; invoked (in registration order) by
  /// every expose().
  void add_collector(Collector c);

  /// Publish one sample. `help` is taken from the first publisher of a
  /// family per scrape. Re-publishing the same (name, labels) within one
  /// scrape overwrites.
  void set_counter(const std::string& name, const std::string& help,
                   MetricLabels labels, double value);
  void set_gauge(const std::string& name, const std::string& help,
                 MetricLabels labels, double value);
  void set_histogram(const std::string& name, const std::string& help,
                     MetricLabels labels, const Histogram& h);
  void set_histogram(const std::string& name, const std::string& help,
                     MetricLabels labels, HistogramSnapshot snapshot);

  /// Runs every collector over a fresh sample set and renders the
  /// Prometheus text exposition.
  std::string expose();

 private:
  struct Sample {
    MetricLabels labels;
    double value = 0.0;
    HistogramSnapshot histogram;  // kHistogram only
  };
  struct Family {
    MetricKind kind = MetricKind::kGauge;
    std::string help;
    std::vector<Sample> samples;
  };

  void publish(const std::string& name, MetricKind kind,
               const std::string& help, Sample sample);

  // Recursive because expose() holds the lock while collectors call back
  // into the set_* publishers.
  std::recursive_mutex mu_;
  std::vector<Collector> collectors_;
  std::vector<std::pair<std::string, Family>> families_;  // name-sorted
};

/// Writes `text` to `path`; throws Error on I/O failure.
void write_metrics_file(const std::string& path, const std::string& text);

}  // namespace deepcam::obs
