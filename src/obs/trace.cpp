#include "obs/trace.hpp"

#include <chrono>

namespace deepcam::obs {

const char* to_string(SpanCat c) {
  switch (c) {
    case SpanCat::kAdmission: return "admission";
    case SpanCat::kQueue: return "queue";
    case SpanCat::kBatch: return "batch";
    case SpanCat::kDispatch: return "dispatch";
    case SpanCat::kRoute: return "route";
    case SpanCat::kRetry: return "retry";
    case SpanCat::kEngine: return "engine";
    case SpanCat::kKernel: return "kernel";
    case SpanCat::kComplete: return "complete";
    case SpanCat::kChaos: return "chaos";
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() = default;

void TraceRecorder::set_clock(NowFn fn, const void* ctx) {
  now_fn_ = fn;
  now_ctx_ = ctx;
}

std::uint64_t TraceRecorder::now_ns() const {
  if (now_fn_ != nullptr) return now_fn_(now_ctx_);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder::ThreadRing* TraceRecorder::local_ring() {
  // One ring per (thread, recorder) pair; the recorder is a process
  // singleton so a plain thread_local pointer suffices. Rings are never
  // freed (the registry owns them), so a pointer cached by a thread that
  // outlives clear() stays valid — the generation check resets its view.
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<ThreadRing>();
    owned->slots.resize(kRingCapacity);
    ring = owned.get();
    std::lock_guard<std::mutex> lk(registry_mu_);
    ring->generation.store(generation_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void TraceRecorder::record(const SpanRecord& r) {
  ThreadRing* ring = local_ring();
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (ring->generation.load(std::memory_order_relaxed) != gen) {
    // A clear() happened since this thread last recorded: restart the
    // ring. count=0 is published before the generation so a collect()
    // that observes the new generation never pairs it with a stale count.
    ring->count.store(0, std::memory_order_relaxed);
    ring->generation.store(gen, std::memory_order_release);
  }
  // Single-writer ring: only the owning thread stores, so the relaxed
  // load of our own count is exact.
  const std::size_t n = ring->count.load(std::memory_order_relaxed);
  if (n >= kRingCapacity) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->slots[n] = r;
  // Release-publish so collect()'s acquire load sees the slot contents.
  ring->count.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord> TraceRecorder::collect() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lk(registry_mu_);
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) {
    if (ring->generation.load(std::memory_order_acquire) != gen) {
      continue;  // stale pre-clear() content
    }
    const std::size_t n = ring->count.load(std::memory_order_acquire);
    out.insert(out.end(), ring->slots.begin(), ring->slots.begin() + n);
  }
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(registry_mu_);
  // Bumping the generation makes every ring's content stale: collect()
  // skips rings whose owner has not recorded (and thus re-published the
  // new generation) since. Owners reset their own count lazily on the
  // next record(), so no cross-thread count stores are needed here.
  generation_.fetch_add(1, std::memory_order_release);
  for (auto& ring : rings_) {
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

bool instant(TraceLevel need, SpanCat cat, const char* name,
             const SpanRecord& fields) {
  auto& rec = TraceRecorder::instance();
  if (!rec.enabled(need)) return false;
  SpanRecord r = fields;
  r.cat = cat;
  r.name = name;
  r.t_begin_ns = r.t_end_ns = rec.now_ns();
  rec.record(r);
  return true;
}

bool emit(TraceLevel need, const SpanRecord& r) {
  auto& rec = TraceRecorder::instance();
  if (!rec.enabled(need)) return false;
  rec.record(r);
  return true;
}

namespace {
thread_local TraceTag g_trace_tag{};
}  // namespace

TraceTag current_trace_tag() { return g_trace_tag; }

ScopedTraceTag::ScopedTraceTag(TraceTag tag) : prev_(g_trace_tag) {
  g_trace_tag = tag;
}

ScopedTraceTag::~ScopedTraceTag() { g_trace_tag = prev_; }

}  // namespace deepcam::obs
