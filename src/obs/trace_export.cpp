#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/json.hpp"

namespace deepcam::obs {

namespace {

// Logical track layout: one lane block per category, sub-lanes spreading
// concurrent spans so Perfetto renders them side by side instead of
// overlapping. Lanes derive from span fields only (request / batch ids),
// never from OS thread ids, so the layout is replay-stable.
constexpr std::uint64_t kQueueLanes = 8;
constexpr std::uint64_t kDispatchLanes = 4;
constexpr std::uint64_t kEngineLanes = 8;

std::uint64_t lane_of(const SpanRecord& r) {
  const std::uint64_t rid = r.rid == kNoId ? 0 : r.rid;
  const std::uint64_t batch = r.batch == kNoId ? 0 : r.batch;
  switch (r.cat) {
    case SpanCat::kQueue: return rid % kQueueLanes;
    case SpanCat::kDispatch:
    case SpanCat::kRoute: return batch % kDispatchLanes;
    case SpanCat::kEngine:
    case SpanCat::kKernel: return batch % kEngineLanes;
    default: return 0;
  }
}

std::uint64_t tid_of(const SpanRecord& r) {
  return (static_cast<std::uint64_t>(r.cat) + 1) * 10 + lane_of(r);
}

std::string track_name(SpanCat cat, std::uint64_t lane,
                       bool multi_lane) {
  std::string name = to_string(cat);
  if (multi_lane) name += "." + std::to_string(lane);
  return name;
}

struct SpanOrder {
  bool operator()(const SpanRecord& a, const SpanRecord& b) const {
    if (a.t_begin_ns != b.t_begin_ns) return a.t_begin_ns < b.t_begin_ns;
    if (a.cat != b.cat) return a.cat < b.cat;
    const int name_cmp = std::strcmp(a.name, b.name);
    if (name_cmp != 0) return name_cmp < 0;
    if (a.rid != b.rid) return a.rid < b.rid;
    if (a.batch != b.batch) return a.batch < b.batch;
    if (a.session != b.session) return a.session < b.session;
    if (a.slo != b.slo) return a.slo < b.slo;
    if (a.replica != b.replica) return a.replica < b.replica;
    if (a.value != b.value) return a.value < b.value;
    return a.t_end_ns < b.t_end_ns;
  }
};

void append_id_args(JsonWriter& w, const SpanRecord& r) {
  if (r.rid != kNoId) w.kv("rid", r.rid);
  if (r.session != kNoId) w.kv("session", r.session);
  if (r.slo != kNoId) w.kv("slo", r.slo);
  if (r.replica != kNoId) w.kv("replica", r.replica);
  if (r.batch != kNoId) w.kv("batch", r.batch);
  if (r.value != kNoId) w.kv("value", r.value);
}

void append_id_cell(std::string& out, std::uint64_t v) {
  out += ',';
  if (v != kNoId) out += std::to_string(v);
}

}  // namespace

void canonicalize(std::vector<SpanRecord>& spans) {
  std::sort(spans.begin(), spans.end(), SpanOrder{});
}

std::string chrome_trace_json(std::vector<SpanRecord> spans) {
  canonicalize(spans);

  // Emit thread-name metadata only for tracks that actually have spans,
  // in tid order; remember per category whether it spreads over lanes.
  std::set<std::uint64_t> tids;
  std::set<SpanCat> multi_lane_cats;
  std::map<std::uint64_t, std::pair<SpanCat, std::uint64_t>> tid_info;
  for (const auto& r : spans) {
    const std::uint64_t tid = tid_of(r);
    tids.insert(tid);
    tid_info.emplace(tid, std::make_pair(r.cat, lane_of(r)));
    if (lane_of(r) != 0) multi_lane_cats.insert(r.cat);
  }

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", 1)
      .kv("tid", std::uint64_t{0})
      .key("args")
      .begin_object()
      .kv("name", "deepcam")
      .end_object()
      .end_object();
  for (const std::uint64_t tid : tids) {
    const auto [cat, lane] = tid_info.at(tid);
    w.begin_object()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", tid)
        .key("args")
        .begin_object()
        .kv("name", track_name(cat, lane, multi_lane_cats.count(cat) > 0))
        .end_object()
        .end_object();
    w.begin_object()
        .kv("name", "thread_sort_index")
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", tid)
        .key("args")
        .begin_object()
        .kv("sort_index", tid)
        .end_object()
        .end_object();
  }

  for (const auto& r : spans) {
    w.begin_object()
        .kv("name", r.name)
        .kv("cat", to_string(r.cat))
        .kv("ph", "X")
        .kv("ts", static_cast<double>(r.t_begin_ns) / 1000.0)
        .kv("dur",
            static_cast<double>(r.t_end_ns - r.t_begin_ns) / 1000.0)
        .kv("pid", 1)
        .kv("tid", tid_of(r));
    w.key("args").begin_object();
    append_id_args(w, r);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str();
}

std::string trace_csv(std::vector<SpanRecord> spans) {
  canonicalize(spans);
  std::string out =
      "t_begin_ns,t_end_ns,dur_ns,cat,name,rid,session,slo,replica,batch,"
      "value\n";
  for (const auto& r : spans) {
    out += std::to_string(r.t_begin_ns);
    out += ',';
    out += std::to_string(r.t_end_ns);
    out += ',';
    out += std::to_string(r.t_end_ns - r.t_begin_ns);
    out += ',';
    out += to_string(r.cat);
    out += ',';
    out += r.name;
    append_id_cell(out, r.rid);
    append_id_cell(out, r.session);
    append_id_cell(out, r.slo);
    append_id_cell(out, r.replica);
    append_id_cell(out, r.batch);
    append_id_cell(out, r.value);
    out += '\n';
  }
  return out;
}

void write_trace_file(const std::string& path,
                      std::vector<SpanRecord> spans) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string doc =
      csv ? trace_csv(std::move(spans)) : chrome_trace_json(std::move(spans));
  std::ofstream out(path, std::ios::binary);
  out << doc;
  if (!csv) out << "\n";
  if (!out.good()) throw Error("failed to write trace file: " + path);
}

std::vector<StageStat> aggregate_stages(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> acc;
  for (const auto& r : spans) {
    const std::string key = std::string(to_string(r.cat)) + "/" + r.name;
    auto& [count, total_ns] = acc[key];
    count += 1;
    total_ns += r.t_end_ns - r.t_begin_ns;
  }
  std::uint64_t grand_total_ns = 0;
  for (const auto& [key, ct] : acc) grand_total_ns += ct.second;

  std::vector<StageStat> out;
  out.reserve(acc.size());
  for (const auto& [key, ct] : acc) {
    StageStat s;
    s.stage = key;
    s.count = ct.first;
    s.total_ms = static_cast<double>(ct.second) / 1e6;
    s.mean_us =
        ct.first == 0
            ? 0.0
            : static_cast<double>(ct.second) /
                  (1000.0 * static_cast<double>(ct.first));
    s.share = grand_total_ns == 0
                  ? 0.0
                  : static_cast<double>(ct.second) /
                        static_cast<double>(grand_total_ns);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const StageStat& a, const StageStat& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.stage < b.stage;
            });
  return out;
}

}  // namespace deepcam::obs
