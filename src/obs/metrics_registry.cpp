#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "common/error.hpp"

namespace deepcam::obs {

namespace {

// Shortest round-trip double, locale-independent (Prometheus values and
// le= bounds must not pick up a comma decimal separator from LC_NUMERIC).
std::string format_value(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  DEEPCAM_CHECK_MSG(res.ec == std::errc(), "metric value overflow");
  return std::string(buf, res.ptr);
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string label_block(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// le= bound plus the extra labels, for _bucket lines.
std::string bucket_label_block(const MetricLabels& labels,
                               const std::string& le) {
  MetricLabels with_le = labels;
  with_le.emplace_back("le", le);
  return label_block(with_le);
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void MetricsRegistry::add_collector(Collector c) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  collectors_.push_back(std::move(c));
}

void MetricsRegistry::set_counter(const std::string& name,
                                  const std::string& help,
                                  MetricLabels labels, double value) {
  Sample s;
  s.labels = std::move(labels);
  s.value = value;
  publish(name, MetricKind::kCounter, help, std::move(s));
}

void MetricsRegistry::set_gauge(const std::string& name,
                                const std::string& help, MetricLabels labels,
                                double value) {
  Sample s;
  s.labels = std::move(labels);
  s.value = value;
  publish(name, MetricKind::kGauge, help, std::move(s));
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& help,
                                    MetricLabels labels, const Histogram& h) {
  HistogramSnapshot snap;
  const auto& counts = h.bucket_counts();
  snap.counts = counts;
  snap.upper_bounds.reserve(counts.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    snap.upper_bounds.push_back(h.bucket_upper(b));
  }
  snap.count = h.count();
  snap.sum = h.sum();
  set_histogram(name, help, std::move(labels), std::move(snap));
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& help,
                                    MetricLabels labels,
                                    HistogramSnapshot snapshot) {
  DEEPCAM_CHECK_MSG(snapshot.upper_bounds.size() == snapshot.counts.size(),
                    "histogram snapshot bounds/counts size mismatch");
  Sample s;
  s.labels = std::move(labels);
  s.histogram = std::move(snapshot);
  publish(name, MetricKind::kHistogram, help, std::move(s));
}

void MetricsRegistry::publish(const std::string& name, MetricKind kind,
                              const std::string& help, Sample sample) {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  auto it = std::lower_bound(
      families_.begin(), families_.end(), name,
      [](const auto& fam, const std::string& n) { return fam.first < n; });
  if (it == families_.end() || it->first != name) {
    Family fam;
    fam.kind = kind;
    fam.help = help;
    it = families_.insert(it, {name, std::move(fam)});
  }
  DEEPCAM_CHECK_MSG(it->second.kind == kind,
                    "metric family republished with a different kind");
  auto& samples = it->second.samples;
  const std::string sig = label_block(sample.labels);
  for (auto& existing : samples) {
    if (label_block(existing.labels) == sig) {
      existing = std::move(sample);
      return;
    }
  }
  samples.push_back(std::move(sample));
}

std::string MetricsRegistry::expose() {
  std::lock_guard<std::recursive_mutex> lk(mu_);
  families_.clear();
  for (const auto& collector : collectors_) collector(*this);

  std::string out;
  for (auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " " + std::string(kind_name(fam.kind)) + "\n";
    std::sort(fam.samples.begin(), fam.samples.end(),
              [](const Sample& a, const Sample& b) {
                return label_block(a.labels) < label_block(b.labels);
              });
    for (const auto& s : fam.samples) {
      if (fam.kind != MetricKind::kHistogram) {
        out += name + label_block(s.labels) + " " + format_value(s.value) +
               "\n";
        continue;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < s.histogram.counts.size(); ++b) {
        cum += s.histogram.counts[b];
        out += name + "_bucket" +
               bucket_label_block(
                   s.labels, format_value(s.histogram.upper_bounds[b])) +
               " " + std::to_string(cum) + "\n";
      }
      out += name + "_bucket" + bucket_label_block(s.labels, "+Inf") + " " +
             std::to_string(s.histogram.count) + "\n";
      out += name + "_sum" + label_block(s.labels) + " " +
             format_value(s.histogram.sum) + "\n";
      out += name + "_count" + label_block(s.labels) + " " +
             std::to_string(s.histogram.count) + "\n";
    }
  }
  return out;
}

void write_metrics_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out.good()) throw Error("failed to write metrics file: " + path);
}

}  // namespace deepcam::obs
