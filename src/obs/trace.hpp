// Low-overhead tracing: per-thread span ring buffers behind one global
// recorder.
//
// Design constraints, in order:
//   1. ~Zero cost when disabled. Every public entry point first checks a
//      single relaxed atomic level; a disabled recorder costs one load and
//      a predicted branch, no locks, no allocation, no clock read.
//   2. Lock-free recording. Each recording thread owns a fixed-capacity
//      ring buffer; committing a span is one array store plus a release
//      store of the count. Buffers are only registered (once per thread)
//      under a mutex; the hot path never takes it. Overflow drops spans
//      and counts the drops rather than blocking or resizing.
//   3. Injectable time. Timestamps come from a pluggable now-function so
//      the serving tier's ClockSource (including VirtualClock) drives the
//      trace; a virtual-clock serve run therefore produces byte-identical
//      spans across replays, which tests/golden pin. The obs layer itself
//      depends only on common/ — serve installs an adapter, never the
//      other way around.
//
// Span identity: every record carries request id, session, SLO class,
// replica, and batch id (kNone when not applicable) so an exported trace
// reconstructs exactly what the router, batcher and breaker did. Engine
// worker threads inherit the request identity through a thread-local
// TraceTag set by the dispatching scope (ScopedTraceTag).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace deepcam::obs {

/// Sentinel for "field not applicable" on SpanRecord ids.
inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

/// Recording granularity. kServe captures the request-path spans
/// (admission .. completion); kFull adds per-sample engine/kernel stage
/// spans (hash, CAM search, postproc), the profiling view.
enum class TraceLevel : int { kOff = 0, kServe = 1, kFull = 2 };

/// Span category; doubles as the export track grouping.
enum class SpanCat : std::uint8_t {
  kAdmission = 0,  // submit(): admit / shed / reject decisions
  kQueue = 1,      // enqueue -> extraction wait, per request
  kBatch = 2,      // micro-batch formation
  kDispatch = 3,   // batch dispatch (router round trip), per batch
  kRoute = 4,      // replica pick / hedge / failover decisions
  kRetry = 5,      // retry backoff + requeue
  kEngine = 6,     // engine submit -> per-sample execution
  kKernel = 7,     // kernel stages: hash / cam_write / cam_search / postproc
  kComplete = 8,   // terminal per-request outcome
  kChaos = 9,      // fault injection events
};

const char* to_string(SpanCat c);

/// One completed span. `name` must point at a string literal (records
/// outlive any scope, and the hot path must not allocate).
struct SpanRecord {
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
  const char* name = "";
  SpanCat cat = SpanCat::kAdmission;
  std::uint64_t rid = kNoId;      // request id (head rider for batches)
  std::uint64_t session = kNoId;  // session id
  std::uint64_t slo = kNoId;      // SLO class index
  std::uint64_t replica = kNoId;  // replica index
  std::uint64_t batch = kNoId;    // micro-batch id / engine sample index
  std::uint64_t value = kNoId;    // span-specific payload (sizes, verdicts)
};

/// Identity inherited by engine worker threads from the dispatching
/// request scope (see ScopedTraceTag).
struct TraceTag {
  std::uint64_t tag = kNoId;     // request id of the batch head
  std::uint64_t sample = kNoId;  // sample index within the batch
};

/// Process-global trace recorder. Arm with set_level(); spans recorded
/// while armed are collected with collect(). One recorder per process:
/// concurrent traced Runner runs would interleave (documented, unsupported).
class TraceRecorder {
 public:
  /// Monotonic nanoseconds; `ctx` is the pointer given to set_clock.
  using NowFn = std::uint64_t (*)(const void* ctx);

  static TraceRecorder& instance();

  /// Installs the timestamp source. Pass fn == nullptr to restore the
  /// default (std::chrono::steady_clock). Not thread-safe vs. recording:
  /// install before set_level(), while disabled.
  void set_clock(NowFn fn, const void* ctx);

  void set_level(TraceLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  TraceLevel level() const {
    return static_cast<TraceLevel>(level_.load(std::memory_order_relaxed));
  }
  /// The one hot-path gate: true when recording at `need` or finer.
  bool enabled(TraceLevel need) const {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<int>(need);
  }

  std::uint64_t now_ns() const;

  /// Appends to the calling thread's ring buffer; drops (and counts) on
  /// overflow. Caller must have checked enabled() — record() itself does
  /// not gate, so unconditional calls would record even at kOff.
  void record(const SpanRecord& r);

  /// Snapshot of every thread's committed spans, in no particular order
  /// (export canonicalizes). Safe to call while threads record; spans
  /// committed concurrently may or may not appear.
  std::vector<SpanRecord> collect() const;

  /// Discards all recorded spans (all threads) and the drop counter.
  /// Buffers stay registered; the generation bump makes each thread lazily
  /// reset its ring on next record().
  void clear();

  /// Spans dropped to ring overflow since the last clear().
  std::uint64_t dropped() const;

  /// Ring capacity per recording thread.
  static constexpr std::size_t kRingCapacity = 1 << 16;

 private:
  struct ThreadRing {
    std::vector<SpanRecord> slots;          // fixed kRingCapacity
    std::atomic<std::size_t> count{0};      // committed records
    std::atomic<std::uint64_t> dropped{0};  // overflow drops
    std::atomic<std::uint64_t> generation{0};  // owner-published generation
  };

  TraceRecorder();
  ThreadRing* local_ring();

  std::atomic<int> level_{0};
  NowFn now_fn_ = nullptr;      // nullptr => steady_clock fallback
  const void* now_ctx_ = nullptr;

  mutable std::mutex registry_mu_;  // guards rings_ registration + collect
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::atomic<std::uint64_t> generation_{0};
};

/// RAII span: stamps begin at construction (when the recorder is enabled
/// at `need`), end + commit at destruction. Field setters chain and are
/// no-ops when inactive, so call sites stay branch-free:
///
///   obs::Span sp(obs::TraceLevel::kServe, obs::SpanCat::kDispatch,
///                "dispatch");
///   sp.rid(id).session(sess).batch(bid);
class Span {
 public:
  Span() = default;
  Span(TraceLevel need, SpanCat cat, const char* name) {
    auto& rec = TraceRecorder::instance();
    if (!rec.enabled(need)) return;
    active_ = true;
    rec_.cat = cat;
    rec_.name = name;
    rec_.t_begin_ns = rec.now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  /// Movable so helpers can build-and-return a configured span.
  Span(Span&& other) noexcept : active_(other.active_), rec_(other.rec_) {
    other.active_ = false;
  }
  Span& operator=(Span&&) = delete;
  ~Span() { finish(); }

  /// Commits the span early (idempotent; destructor becomes a no-op).
  void finish() {
    if (!active_) return;
    active_ = false;
    auto& rec = TraceRecorder::instance();
    rec_.t_end_ns = rec.now_ns();
    rec.record(rec_);
  }

  bool active() const { return active_; }

  Span& rid(std::uint64_t v) { return set(&SpanRecord::rid, v); }
  Span& session(std::uint64_t v) { return set(&SpanRecord::session, v); }
  Span& slo(std::uint64_t v) { return set(&SpanRecord::slo, v); }
  Span& replica(std::uint64_t v) { return set(&SpanRecord::replica, v); }
  Span& batch(std::uint64_t v) { return set(&SpanRecord::batch, v); }
  Span& value(std::uint64_t v) { return set(&SpanRecord::value, v); }

 private:
  Span& set(std::uint64_t SpanRecord::* field, std::uint64_t v) {
    if (active_) rec_.*field = v;
    return *this;
  }

  bool active_ = false;
  SpanRecord rec_{};
};

/// Zero-duration event at now() (admission verdicts, chaos faults,
/// hedge decisions). Returns true when recorded.
bool instant(TraceLevel need, SpanCat cat, const char* name,
             const SpanRecord& fields = {});

/// Records a span with caller-supplied begin/end timestamps (queue-wait
/// intervals reconstructed from request stamps). Returns true when
/// recorded.
bool emit(TraceLevel need, const SpanRecord& r);

/// Thread-local request identity for engine worker threads.
TraceTag current_trace_tag();

/// Installs a TraceTag for the current scope and restores the previous
/// one on destruction (engine worker loop wraps each sample with this).
class ScopedTraceTag {
 public:
  explicit ScopedTraceTag(TraceTag tag);
  ~ScopedTraceTag();
  ScopedTraceTag(const ScopedTraceTag&) = delete;
  ScopedTraceTag& operator=(const ScopedTraceTag&) = delete;

 private:
  TraceTag prev_;
};

}  // namespace deepcam::obs
