#include "api/report_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/format.hpp"
#include "common/table.hpp"
#include "core/report_io.hpp"
#include "plan/report_io.hpp"
#include "serve/report_io.hpp"
#include "sim/report_io.hpp"

namespace deepcam {

namespace {

/// The outcome's per-stage profile rows (empty unless outputs.profile).
const std::vector<obs::StageStat>& outcome_profile(const Outcome& outcome) {
  static const std::vector<obs::StageStat> kEmpty;
  switch (outcome.mode) {
    case Mode::kOffline: return outcome.offline().profile;
    case Mode::kServe: return outcome.serve().profile;
    default: return kEmpty;
  }
}

void profile_json(JsonWriter& json, const std::vector<obs::StageStat>& rows) {
  json.begin_array();
  for (const obs::StageStat& r : rows) {
    json.begin_object();
    json.kv("stage", r.stage);
    json.kv("count", r.count);
    json.kv("total_ms", r.total_ms);
    json.kv("mean_us", r.mean_us);
    json.kv("share", r.share);
    json.end_object();
  }
  json.end_array();
}

std::string profile_text(const std::vector<obs::StageStat>& rows) {
  std::ostringstream os;
  os << "\nStage profile (traced spans, by total time):\n";
  Table table({"stage", "count", "total ms", "mean us", "share"});
  for (const obs::StageStat& r : rows)
    table.add_row({r.stage, std::to_string(r.count), Table::num(r.total_ms),
                   Table::num(r.mean_us),
                   format_fixed(100.0 * r.share, 1) + "%"});
  table.print(os);
  return os.str();
}

void offline_json(JsonWriter& json, const OfflineOutcome& out,
                  bool per_sample) {
  core::batch_report_json(json, out.report, per_sample);
}

void serve_json(JsonWriter& json, const ServeOutcome& out) {
  json.begin_object();
  json.kv("trace_events", out.trace_events);
  json.key("sessions").begin_array();
  for (const std::string& s : out.sessions) json.value(s);
  json.end_array();
  json.key("load");
  serve::load_report_json(json, out.load);
  json.key("server");
  serve::server_summary_json(json, out.summary);
  json.end_object();
}

void tune_json(JsonWriter& json, const TuneOutcome& out) {
  json.begin_object();
  json.key("workloads").begin_array();
  for (const TuneOutcome::Entry& e : out.entries) {
    json.begin_object();
    json.kv("workload", e.workload);
    json.key("tuning");
    core::tune_result_json(json, e.result);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void plan_outcome_json(JsonWriter& json, const PlanOutcome& out) {
  json.begin_object();
  json.key("workloads").begin_array();
  for (const PlanOutcome::Entry& e : out.entries) {
    json.begin_object();
    json.kv("workload", e.workload);
    json.kv("cache_hit", e.cache_hit);
    json.key("plan");
    plan::plan_json(json, e.plan);
    if (e.validated) {
      json.key("validation").begin_object();
      json.kv("measured_cycles", e.measured_cycles);
      json.kv("estimated_cycles", e.plan.cost.total_cycles());
      json.kv("cycle_rel_error", e.cycle_rel_error);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.key("cache");
  plan::plan_cache_stats_json(json, out.cache);
  json.end_object();
}

std::string tune_result_text(const core::TuneResult& tuned) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "VHL tuner (layer-local): mean hash length %s bits\n",
                format_fixed(tuned.mean_hash_bits(), 0).c_str());
  os << buf;
  for (const auto& l : tuned.layers) {
    std::snprintf(buf, sizeof buf, "  %-8s n=%-5zu -> k=%zu\n",
                  l.layer_name.c_str(), l.context_len, l.chosen_bits);
    os << buf;
  }
  return os.str();
}

std::string offline_text(const OfflineOutcome& out) {
  std::ostringstream os;
  const core::BatchReport& br = out.report;
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "Batch: %zu samples on %zu engine threads in %s s "
                "(%s samples/s host, %s samples/s simulated)\n",
                br.samples, br.threads,
                format_fixed(br.wall_seconds, 3).c_str(),
                format_fixed(br.throughput(), 1).c_str(),
                format_fixed(br.simulated_throughput(), 1).c_str());
  os << buf;
  os << core::report_summary(br.aggregate);
  return os.str();
}

std::string compare_text(const CompareOutcome& out) {
  std::ostringstream os;
  for (const core::TuneResult& tuned : out.report.vhl_tuning)
    os << tune_result_text(tuned);
  if (!out.report.vhl_tuning.empty()) os << '\n';
  os << sim::comparison_summary(out.report);
  return os.str();
}

std::string serve_text(const ServeOutcome& out) {
  std::ostringstream os;
  const serve::LoadReport& load = out.load;
  char buf[240];
  std::snprintf(buf, sizeof buf,
                "offered %s req/s -> achieved %s req/s  "
                "(%zu ok, %zu rejected, %zu errors)\n",
                format_fixed(load.offered_rps, 1).c_str(),
                format_fixed(load.achieved_rps, 1).c_str(),
                load.sent - load.errors - load.expired, load.rejected,
                load.errors);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "goodput %s req/s  (%zu SLO met, %zu shed, %zu expired)\n",
                format_fixed(load.goodput_rps, 1).c_str(), load.slo_met,
                load.shed, load.expired);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "latency p50 %s ms  p95 %s ms  p99 %s ms  max %s ms\n",
                format_fixed(load.percentile_ms(50), 3).c_str(),
                format_fixed(load.percentile_ms(95), 3).c_str(),
                format_fixed(load.percentile_ms(99), 3).c_str(),
                format_fixed(load.latency.max() * 1e3, 3).c_str());
  os << buf << '\n';
  os << serve::server_summary_text(out.summary);
  return os.str();
}

std::string tune_text(const TuneOutcome& out) {
  std::ostringstream os;
  for (const TuneOutcome::Entry& e : out.entries) {
    os << "== " << e.workload << " ==\n";
    os << tune_result_text(e.result);
  }
  return os.str();
}

std::string plan_text(const PlanOutcome& out) {
  std::ostringstream os;
  char buf[200];
  for (const PlanOutcome::Entry& e : out.entries) {
    os << "== " << e.workload << (e.cache_hit ? " (cached) ==\n" : " ==\n");
    os << plan::plan_summary(e.plan);
    if (e.validated) {
      std::snprintf(buf, sizeof buf,
                    "  validated: %s measured cycles vs %zu estimated "
                    "(rel err %s)\n",
                    format_fixed(e.measured_cycles, 0).c_str(),
                    e.plan.cost.total_cycles(),
                    format_fixed(e.cycle_rel_error, 4).c_str());
      os << buf;
    }
  }
  std::snprintf(buf, sizeof buf,
                "plan cache: %llu hits, %llu misses, %zu entries\n",
                static_cast<unsigned long long>(out.cache.hits),
                static_cast<unsigned long long>(out.cache.misses),
                out.cache.entries);
  os << buf;
  return os.str();
}

}  // namespace

void outcome_json(JsonWriter& json, const Outcome& outcome,
                  bool per_sample) {
  json.begin_object();
  json.kv("spec", outcome.spec_name);
  json.kv("mode", mode_name(outcome.mode));
  json.key(mode_name(outcome.mode));
  switch (outcome.mode) {
    case Mode::kOffline:
      offline_json(json, outcome.offline(), per_sample);
      break;
    case Mode::kCompare: sim::comparison_json(json, outcome.compare().report); break;
    case Mode::kServe: serve_json(json, outcome.serve()); break;
    case Mode::kTune: tune_json(json, outcome.tune()); break;
    case Mode::kPlan: plan_outcome_json(json, outcome.plan()); break;
  }
  // Profiled runs append the per-stage table; untraced outcomes keep the
  // exact pre-profiling document shape.
  const auto& profile = outcome_profile(outcome);
  if (!profile.empty()) {
    json.key("profile");
    profile_json(json, profile);
  }
  json.end_object();
}

std::string outcome_to_json(const Outcome& outcome, bool per_sample) {
  JsonWriter json;
  outcome_json(json, outcome, per_sample);
  return json.str();
}

std::string outcome_text(const Outcome& outcome) {
  std::string text;
  switch (outcome.mode) {
    case Mode::kOffline: text = offline_text(outcome.offline()); break;
    case Mode::kCompare: text = compare_text(outcome.compare()); break;
    case Mode::kServe: text = serve_text(outcome.serve()); break;
    case Mode::kTune: text = tune_text(outcome.tune()); break;
    case Mode::kPlan: text = plan_text(outcome.plan()); break;
  }
  const auto& profile = outcome_profile(outcome);
  if (!profile.empty()) text += profile_text(profile);
  return text;
}

std::string outcome_csv(const Outcome& outcome) {
  switch (outcome.mode) {
    case Mode::kOffline:
      return core::report_to_csv(outcome.offline().report.aggregate);
    case Mode::kCompare:
      return sim::comparison_to_csv(outcome.compare().report) + "\n" +
             sim::comparison_layers_to_csv(outcome.compare().report);
    case Mode::kServe:
    case Mode::kTune:
    case Mode::kPlan:
      return {};
  }
  return {};
}

}  // namespace deepcam
