// deepcam::Spec — the declarative run description behind the public facade.
//
// Every experiment this repo can run (paper Tables I/II, Figs. 2/5/8–10,
// the serving demos, ad-hoc what-ifs) is described by one Spec:
//
//   workloads   — named topologies (nn/topologies) or inline layer lists
//   accelerator — CAM geometry, dataflow, hash lengths, VHL tuning
//   mode        — offline | compare | serve | tune, with per-mode options
//   outputs     — json / csv / text sinks
//
// A Spec comes from the fluent SpecBuilder (C++ callers) or from a JSON
// file via api/spec_io (the `deepcam` CLI); either way Runner::run(spec)
// executes it and returns one typed Outcome. The facade adds no semantics
// of its own: running a spec is bitwise-identical to hand-assembling the
// same InferenceEngine / ComparisonRunner / Server pipeline, which
// tests/test_api.cpp pins.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"
#include "nn/model.hpp"

namespace deepcam {

/// What Runner::run does with the spec. kOffline runs one probe batch
/// through the InferenceEngine; kCompare sweeps the sim backends; kServe
/// replays a load trace against an online Server; kTune runs the hash-length
/// tuner and reports the per-layer choice without executing a workload;
/// kPlan runs the analytical planner (src/plan) over the joint configuration
/// space and reports the chosen Plan plus cache statistics.
enum class Mode { kOffline, kCompare, kServe, kTune, kPlan };

/// Stable spelling used by spec JSON and the CLI ("offline", "compare",
/// "serve", "tune", "plan").
const char* mode_name(Mode mode);
/// Inverse of mode_name; Error on unknown spelling. The CLI's "run"
/// subcommand is accepted as an alias for "offline".
Mode mode_from_name(const std::string& name);

/// Registry keys compare mode accepts, in sim::default_registry() order —
/// the single list both Spec::validate() and the Runner's registry
/// construction consult.
const std::vector<std::string>& known_backend_names();

/// One layer of an inline workload. `kind` selects which of the parameter
/// fields matter: conv2d uses in_channels/out_channels/kernel/stride/pad,
/// linear uses in_features/out_features, maxpool/avgpool use window/stride,
/// relu/flatten/softmax take no parameters.
struct LayerSpec {
  std::string kind;  // conv2d|linear|relu|maxpool|avgpool|flatten|softmax
  std::string name;  // optional; defaults to "<kind><index>"
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  std::size_t window = 2;
};

/// One CNN workload: a named topology (lenet5/vgg11/vgg16/resnet18) or an
/// inline layer list with explicit input geometry. Weight layers of inline
/// workloads are seeded `seed + layer_index`, so the model is a pure
/// function of the workload description.
struct Workload {
  std::string topology;           // empty => inline `layers`
  std::string name = "custom";    // model name for inline workloads
  std::vector<LayerSpec> layers;  // inline definition
  std::size_t channels = 1;       // inline input geometry
  std::size_t height = 28;
  std::size_t width = 28;
  std::uint64_t seed = 1;
  /// Batch sizes the compare sweep runs (other modes ignore this and use
  /// their own batch knobs).
  std::vector<std::size_t> batch_sizes = {1};

  bool is_inline() const { return topology.empty(); }
  /// Topology name, or the inline model name.
  const std::string& display_name() const {
    return is_inline() ? name : topology;
  }
  /// The {1,C,H,W} input shape this workload expects.
  nn::Shape input_shape() const;
};

/// Instantiates the workload's nn::Model (topology builder or inline layer
/// list). Deterministic in the workload description.
std::unique_ptr<nn::Model> build_model(const Workload& workload);

/// DeepCAM accelerator configuration plus the optional VHL tuning step
/// that chooses per-layer hash lengths before running.
struct AcceleratorSpec {
  std::size_t cam_rows = 64;
  core::Dataflow dataflow = core::Dataflow::kActivationStationary;
  core::CyclePreset preset = core::CyclePreset::kConservative;
  /// Homogeneous hash length k (bits); overridden per layer by
  /// layer_hash_bits or by VHL tuning.
  std::size_t hash_bits = hash::kMaxHashBits;
  std::vector<std::size_t> layer_hash_bits;
  std::uint64_t hash_seed = 42;
  /// Engine pool size (simulated CAM pipelines); 0 = hardware concurrency.
  /// Affects host speed only, never results.
  std::size_t engine_threads = 0;
  /// Run the HashTuner (kLayerLocal) on probe inputs first and execute
  /// with its per-layer hash lengths (paper §III-A VHL).
  bool vhl = false;
  double vhl_max_rel_error = 0.25;
  std::size_t vhl_probes = 4;

  /// The core config this spec denotes (VHL not applied — the Runner
  /// overwrites layer_hash_bits with the tuner's choice when vhl is set).
  core::DeepCamConfig config() const;
};

/// kOffline: one probe batch through the InferenceEngine.
struct OfflineOptions {
  std::size_t batch = 8;
  /// Probe-input seed (sim::make_probe_batch); defaults to the shared
  /// kProbeSeed so offline runs cost the same inputs as the compare
  /// backends.
  std::uint64_t input_seed = 0xD15C0;
};

/// kCompare: which registry backends to sweep (empty = all five) and
/// whether to add the VHL-tuned "deepcam-vhl" variant.
struct CompareOptions {
  std::vector<std::string> backends;
  bool include_vhl = false;
};

/// One scripted fault in a serve spec's chaos list (serve/chaos.hpp).
/// `kind` is "crash" | "heal" | "stall" | "poison" | "slow"; `at` is the
/// event time in seconds from server start; `param` is seconds (stall,
/// slow) or a batch count (poison).
struct ChaosEventSpec {
  double at = 0.0;
  std::string kind = "crash";
  std::size_t replica = 0;
  double param = 0.0;
};

/// kServe: sessions = every workload compiled at every hash tier, behind
/// one Server; a seeded trace is replayed against it. The SLO knobs
/// default to a plain FIFO server (no deadlines / shedding / downgrades)
/// so pre-SLO specs behave unchanged.
struct ServeOptions {
  /// Hash lengths to host each workload at ("<model>-k<bits>" sessions).
  std::vector<std::size_t> hash_tiers = {1024, 256};
  std::size_t workers = 4;
  std::size_t queue_capacity = 512;
  std::size_t max_batch = 8;
  long max_delay_us = 2000;
  std::string trace = "poisson";  // poisson|bursty|diurnal|flash|closed
  std::size_t requests = 96;
  double rate_rps = 400.0;        // open-loop offered load
  std::size_t clients = 8;        // closed-loop concurrency
  std::uint64_t trace_seed = 1;

  // --- SLO tier ----------------------------------------------------------
  /// Per-class completion deadlines in microseconds; 0 = no deadline.
  long deadline_interactive_us = 0;
  long deadline_standard_us = 0;
  long deadline_batch_us = 0;
  /// Per-class shed watermarks as queue-depth fractions; >= 1.0 = never
  /// shed that class.
  double shed_interactive = 1.0;
  double shed_standard = 1.0;
  double shed_batch = 1.0;
  /// Queue-depth fraction above which admissions reroute to the next
  /// lower hash tier; >= 1.0 = never downgrade.
  double downgrade_fraction = 1.0;
  /// Relative SLO-class sampling weights {interactive, standard, batch}
  /// of the generated trace.
  std::vector<double> class_mix = {0.0, 1.0, 0.0};

  // --- fault tolerance ---------------------------------------------------
  /// Engine replicas per session; 1 = the pre-replica single-engine tier.
  std::size_t replicas = 1;
  /// Per-class retry budgets {interactive, standard, batch}: how often a
  /// failed rider is re-queued onto surviving replicas.
  std::vector<std::size_t> retry_limit = {1, 2, 3};
  /// Exponential retry backoff base / cap, microseconds.
  long retry_backoff_us = 200;
  long retry_backoff_max_us = 50000;
  /// Hedge interactive micro-batches onto a second replica.
  bool hedge = false;
  /// Fixed hedge delay in microseconds; 0 = p99-derived.
  long hedge_delay_us = 0;
  /// Circuit breaker: consecutive failures before quarantine.
  std::size_t breaker_failures = 3;
  /// Clean canary probes required to readmit a recovering replica.
  std::size_t canary_successes = 2;
  /// Quarantine time before canary probing starts, microseconds.
  long quarantine_backoff_us = 20000;
  /// Scripted faults injected while the trace replays.
  std::vector<ChaosEventSpec> chaos;

  // --- determinism -------------------------------------------------------
  /// Replay on a VirtualClock in manual-dispatch (pump) mode: the whole
  /// serve run is single-threaded and replay-identical, so an exported
  /// trace is byte-identical across runs (the golden-pinnable profile).
  /// `workers` is ignored (there are no worker threads to spawn).
  bool virtual_time = false;
};

/// kPlan (and model-guided kTune): planner search bounds. The accuracy
/// budget and probe seed ride on the accelerator's VHL knobs
/// (vhl_max_rel_error, hash_seed) so plan and tune agree on constraints.
struct PlanOptions {
  std::string objective = "cycles";  // cycles|energy|edp
  /// Batch size the schedule axes (micro-batch, threads) are planned for.
  std::size_t batch = 8;
  /// Search CAM row counts {64,128,256,512} (false = keep accelerator
  /// cam_rows fixed).
  bool search_rows = true;
  /// Consider both dataflows (false = keep the accelerator's).
  bool search_dataflow = true;
  /// Sensitivity probes for the per-layer accuracy floors; 0 skips the
  /// accuracy pass (every layer gets accelerator.hash_bits).
  std::size_t probes = 2;
  /// Fall back to measured runs: tune mode reverts to the empirical
  /// HashTuner sweep, plan mode additionally cross-checks the winning
  /// plan's cycle estimate against the DeepCAM sim backend.
  bool validate = false;
};

/// Where Runner results go when the CLI (or a caller honoring the spec)
/// serializes the Outcome.
struct OutputOptions {
  std::string json_path;    // "" = no JSON file; "-" = stdout
  bool text = true;         // human-readable summary to stdout
  bool csv = false;         // CSV dumps to stdout (offline/compare)
  bool per_sample = false;  // include per-sample reports in offline JSON
  /// Span-trace sink (offline/serve): ".csv" writes the compact CSV form,
  /// anything else Chrome trace-event JSON (load into Perfetto). "" = off.
  std::string trace_path;
  /// Prometheus text-exposition sink (serve only); "" = off.
  std::string metrics_path;
  /// Record kernel-stage spans (TraceLevel::kFull) and attach a per-stage
  /// aggregate table to the outcome (offline/serve).
  bool profile = false;
};

struct Spec {
  std::string name = "unnamed";
  Mode mode = Mode::kOffline;
  std::vector<Workload> workloads;
  AcceleratorSpec accelerator;
  OfflineOptions offline;
  CompareOptions compare;
  ServeOptions serve;
  PlanOptions plan;
  OutputOptions outputs;

  /// Full structural validation (modes × workloads × parameter ranges);
  /// throws Error with a actionable message on the first violation.
  /// Runner::run validates before executing.
  void validate() const;
};

/// Fluent Spec construction for C++ callers (the JSON loader in api/spec_io
/// is the other door to the same struct):
///
///   Spec spec = SpecBuilder("quickstart")
///                   .mode(Mode::kOffline)
///                   .workload("lenet5", /*seed=*/7)
///                   .hash_bits(256)
///                   .offline_batch(32)
///                   .build();
///
/// Workload-scoped calls (batch_sizes, layer appenders) apply to the most
/// recently added workload.
class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name = "unnamed");

  SpecBuilder& mode(Mode m);

  // --- workloads ---------------------------------------------------------
  SpecBuilder& workload(std::string topology, std::uint64_t seed = 1);
  SpecBuilder& custom_workload(std::string model_name, std::size_t channels,
                               std::size_t height, std::size_t width,
                               std::uint64_t seed = 1);
  SpecBuilder& batch_sizes(std::vector<std::size_t> sizes);
  /// Inline layer appenders (require a preceding custom_workload).
  SpecBuilder& conv2d(std::string layer_name, std::size_t in_channels,
                      std::size_t out_channels, std::size_t kernel,
                      std::size_t stride = 1, std::size_t pad = 0);
  SpecBuilder& linear(std::string layer_name, std::size_t in_features,
                      std::size_t out_features);
  SpecBuilder& relu(std::string layer_name = "");
  SpecBuilder& maxpool(std::size_t window, std::size_t stride);
  SpecBuilder& avgpool(std::size_t window, std::size_t stride);
  SpecBuilder& flatten(std::string layer_name = "");
  SpecBuilder& softmax(std::string layer_name = "");

  // --- accelerator -------------------------------------------------------
  SpecBuilder& cam_rows(std::size_t rows);
  SpecBuilder& dataflow(core::Dataflow df);
  SpecBuilder& preset(core::CyclePreset p);
  SpecBuilder& hash_bits(std::size_t bits);
  SpecBuilder& layer_hash_bits(std::vector<std::size_t> bits);
  SpecBuilder& hash_seed(std::uint64_t seed);
  SpecBuilder& engine_threads(std::size_t threads);
  SpecBuilder& vhl(double max_rel_error = 0.25, std::size_t probes = 4);

  // --- per-mode options --------------------------------------------------
  SpecBuilder& offline_batch(std::size_t batch);
  SpecBuilder& input_seed(std::uint64_t seed);
  SpecBuilder& backends(std::vector<std::string> names);
  SpecBuilder& include_vhl(bool on = true);
  SpecBuilder& serve_tiers(std::vector<std::size_t> hash_tiers);
  SpecBuilder& serve_workers(std::size_t workers);
  SpecBuilder& serve_queue(std::size_t capacity);
  SpecBuilder& serve_batch(std::size_t max_batch, long max_delay_us);
  SpecBuilder& serve_trace(std::string trace, std::size_t requests,
                           double rate_rps, std::uint64_t seed = 1);
  SpecBuilder& serve_clients(std::size_t clients);
  /// Per-class completion deadlines in microseconds (0 = none).
  SpecBuilder& serve_deadlines(long interactive_us, long standard_us,
                               long batch_us);
  /// Per-class shed watermarks as queue-depth fractions (>= 1.0 = off).
  SpecBuilder& serve_shed(double interactive, double standard, double batch);
  /// Downgrade dial: queue-depth fraction that reroutes admissions to the
  /// next lower hash tier (>= 1.0 = off).
  SpecBuilder& serve_downgrade(double fraction);
  /// Trace SLO-class mix {interactive, standard, batch} weights.
  SpecBuilder& serve_class_mix(double interactive, double standard,
                               double batch);
  /// Engine replicas per session (>= 1).
  SpecBuilder& serve_replicas(std::size_t replicas);
  /// Per-class retry budgets plus backoff base/cap in microseconds.
  SpecBuilder& serve_retry(std::size_t interactive, std::size_t standard,
                           std::size_t batch, long backoff_us = 200,
                           long backoff_max_us = 50000);
  /// Interactive hedging; delay 0 = p99-derived.
  SpecBuilder& serve_hedge(bool on = true, long delay_us = 0);
  /// Circuit-breaker / canary-readmission knobs.
  SpecBuilder& serve_breaker(std::size_t failures, std::size_t canaries,
                             long quarantine_backoff_us = 20000);
  /// Appends one scripted chaos fault (kind: crash|heal|stall|poison|slow).
  SpecBuilder& serve_chaos(double at_seconds, std::string kind,
                           std::size_t replica = 0, double param = 0.0);
  /// Deterministic pump-mode replay on a VirtualClock (byte-identical
  /// exported traces).
  SpecBuilder& serve_virtual_time(bool on = true);
  /// Planner objective ("cycles", "energy" or "edp").
  SpecBuilder& plan_objective(std::string objective);
  /// Batch size the planner schedules for.
  SpecBuilder& plan_batch(std::size_t batch);
  /// Which hardware axes the planner searches.
  SpecBuilder& plan_search(bool rows, bool dataflow);
  /// Sensitivity probes for the accuracy floors (0 = skip).
  SpecBuilder& plan_probes(std::size_t probes);
  /// Fall back to measured runs (empirical tune sweep / sim cross-check).
  SpecBuilder& plan_validate(bool on = true);

  // --- outputs -----------------------------------------------------------
  SpecBuilder& json_output(std::string path);
  SpecBuilder& csv_output(bool on = true);
  SpecBuilder& text_output(bool on);
  SpecBuilder& per_sample(bool on = true);
  /// Span-trace sink (".csv" = CSV, otherwise Chrome trace-event JSON).
  SpecBuilder& trace_output(std::string path);
  /// Prometheus text-exposition sink (serve mode).
  SpecBuilder& metrics_output(std::string path);
  /// Kernel-stage profiling (per-stage aggregate table in the outcome).
  SpecBuilder& profile(bool on = true);

  /// Validates and returns the spec (throws Error when invalid).
  Spec build() const;
  /// The spec as accumulated so far, unvalidated.
  const Spec& peek() const { return spec_; }

 private:
  Workload& current_workload();
  LayerSpec& append_layer(const std::string& kind, std::string layer_name);

  Spec spec_;
};

}  // namespace deepcam
