// deepcam::Runner — executes a Spec and returns one typed Outcome.
//
// The Runner is a pure dispatcher over the existing subsystems; it owns no
// simulation logic of its own, so running a spec is bitwise-identical to
// hand-assembling the same pipeline (pinned by tests/test_api.cpp):
//
//   kOffline — build_model -> CompiledModel (optionally VHL-tuned) ->
//              InferenceEngine::run_batch over a seeded probe batch
//   kCompare — per-spec BackendRegistry -> sim::ComparisonRunner sweep
//   kServe   — SessionManager (workloads x hash tiers) -> Server ->
//              seeded trace replayed by the LoadGenerator
//   kTune    — plan::Planner::guided_tune per workload (model-guided; the
//              empirical core::tune_hash_lengths sweep when plan.validate)
//   kPlan    — plan::Planner::plan per workload through the process-wide
//              PlanCache, optional sim::check_estimator cross-validation
//
// Outcome wraps the per-mode result structs behind one variant with
// uniform serialization in api/report_io (JSON through the shared
// JsonWriter, human-readable text, CSV where meaningful).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "api/spec.hpp"
#include "core/engine.hpp"
#include "core/hash_tuner.hpp"
#include "obs/trace_export.hpp"
#include "plan/plan_cache.hpp"
#include "serve/loadgen.hpp"
#include "sim/comparison.hpp"

namespace deepcam {

struct OfflineOutcome {
  core::BatchReport report;
  /// Per-stage aggregate of the run's kernel spans (outputs.profile only).
  std::vector<obs::StageStat> profile;
};

struct CompareOutcome {
  sim::ComparisonReport report;
};

struct ServeOutcome {
  serve::ServerSummary summary;   // server-side view
  serve::LoadReport load;         // client-side view (per-request records)
  std::size_t trace_events = 0;   // length of the replayed trace
  std::vector<std::string> sessions;  // session names, registration order
  /// Per-stage aggregate of the run's spans (outputs.profile only).
  std::vector<obs::StageStat> profile;
};

struct TuneOutcome {
  struct Entry {
    std::string workload;
    core::TuneResult result;
  };
  std::vector<Entry> entries;  // one per spec workload, in order
};

struct PlanOutcome {
  struct Entry {
    std::string workload;
    plan::Plan plan;
    bool cache_hit = false;  // plan came from the cache, search skipped
    /// spec.plan.validate only: the DeepCAM sim backend measured under the
    /// planned configuration, against the plan's own estimate.
    bool validated = false;
    double measured_cycles = 0.0;
    double cycle_rel_error = 0.0;  // |estimated - measured| / measured
  };
  std::vector<Entry> entries;   // one per spec workload, in order
  plan::PlanCacheStats cache;   // global cache counters after the run
};

/// Typed result of Runner::run — the per-mode payload plus enough identity
/// (spec name, mode) for the serializers to emit a self-describing
/// artifact. The checked accessors throw Error when the wrong alternative
/// is requested.
struct Outcome {
  std::string spec_name;
  Mode mode = Mode::kOffline;
  std::variant<OfflineOutcome, CompareOutcome, ServeOutcome, TuneOutcome,
               PlanOutcome>
      result;

  const OfflineOutcome& offline() const;
  const CompareOutcome& compare() const;
  const ServeOutcome& serve() const;
  const TuneOutcome& tune() const;
  const PlanOutcome& plan() const;
};

/// Executes specs. Stateless: one Runner can run any number of specs, and
/// run() is safe to call from multiple threads (each call builds its own
/// models/engines/servers).
class Runner {
 public:
  /// Validates `spec`, executes it, returns the typed outcome. Throws
  /// Error (from validation or the underlying subsystems) on failure.
  Outcome run(const Spec& spec) const;
};

/// Bitwise cross-check of every "deepcam" row in a compare outcome against
/// driving the InferenceEngine directly on the same config and probe batch
/// — the gate both examples/compare_platforms and `deepcam compare --check`
/// apply. Prints one line per checked (workload, batch) cell to stdout;
/// false on any mismatch or an empty row set.
bool verify_deepcam_rows(const Spec& spec, const CompareOutcome& outcome);

}  // namespace deepcam
