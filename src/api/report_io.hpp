// Outcome serialization: one JSON/text/CSV surface for every Runner result.
//
// Whatever the mode, the emitted JSON document has the same envelope —
// {"spec": ..., "mode": ..., "<mode>": {...}} — with the payload delegated
// to the subsystem serializers (core/report_io, sim/report_io,
// serve/report_io), all locale-proof through the shared JsonWriter and
// golden-pinned in tests/golden/. Text and CSV mirror what the pre-facade
// example drivers printed.
#pragma once

#include <string>

#include "api/runner.hpp"
#include "common/json.hpp"

namespace deepcam {

/// Appends the outcome envelope + payload to an in-progress writer.
/// `per_sample` adds the per-sample run reports to offline outcomes
/// (OutputOptions::per_sample).
void outcome_json(JsonWriter& json, const Outcome& outcome,
                  bool per_sample = false);

/// Self-contained JSON document for one Outcome.
std::string outcome_to_json(const Outcome& outcome, bool per_sample = false);

/// Multi-line human-readable view (the facade replacement for the ad-hoc
/// printing the example drivers used to do).
std::string outcome_text(const Outcome& outcome);

/// CSV where the mode has a tabular shape: offline -> per-layer run-report
/// CSV, compare -> comparison CSV + per-layer drill-down. Empty string for
/// serve/tune.
std::string outcome_csv(const Outcome& outcome);

}  // namespace deepcam
