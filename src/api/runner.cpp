#include "api/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "pim/comparators.hpp"
#include "serve/report_io.hpp"
#include "serve/server.hpp"
#include "sim/backends.hpp"
#include "sim/estimator_check.hpp"
#include "sim/registry.hpp"

namespace deepcam {

namespace {

// --- tracing --------------------------------------------------------------

/// TraceRecorder::NowFn adapter over a serve ClockSource: span timestamps
/// are the clock's time_since_epoch in nanoseconds, matching the stamps
/// the server reads for queue-wait reconstruction.
std::uint64_t clock_now_ns(const void* ctx) {
  const auto* clock = static_cast<const serve::ClockSource*>(ctx);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock->now().time_since_epoch())
          .count());
}

/// Arms the process-global TraceRecorder for one traced run (trace sink
/// and/or profiling requested); restores kOff + the default clock on
/// destruction so untraced runs stay zero-cost.
class TraceSession {
 public:
  TraceSession(const OutputOptions& out, const serve::ClockSource* clock)
      : enabled_(!out.trace_path.empty() || out.profile) {
    if (!enabled_) return;
    auto& rec = obs::TraceRecorder::instance();
    rec.set_level(obs::TraceLevel::kOff);
    if (clock != nullptr) rec.set_clock(&clock_now_ns, clock);
    rec.clear();
    rec.set_level(out.profile ? obs::TraceLevel::kFull
                              : obs::TraceLevel::kServe);
  }

  ~TraceSession() {
    if (!enabled_) return;
    auto& rec = obs::TraceRecorder::instance();
    rec.set_level(obs::TraceLevel::kOff);
    rec.set_clock(nullptr, nullptr);
    rec.clear();
  }

  /// Stops recording, writes the trace file when requested, and returns
  /// the per-stage aggregate when profiling (empty otherwise).
  std::vector<obs::StageStat> finish(const OutputOptions& out) {
    if (!enabled_) return {};
    auto& rec = obs::TraceRecorder::instance();
    rec.set_level(obs::TraceLevel::kOff);
    std::vector<obs::SpanRecord> spans = rec.collect();
    obs::canonicalize(spans);
    if (!out.trace_path.empty()) obs::write_trace_file(out.trace_path, spans);
    return out.profile ? obs::aggregate_stages(spans)
                       : std::vector<obs::StageStat>{};
  }

 private:
  bool enabled_;
};

core::TunerConfig tuner_config(const AcceleratorSpec& acc) {
  core::TunerConfig cfg;
  cfg.mode = core::TunerMode::kLayerLocal;
  cfg.max_rel_error = acc.vhl_max_rel_error;
  cfg.hash_seed = acc.hash_seed;
  return cfg;
}

core::TuneResult tune(const AcceleratorSpec& acc, nn::Model& model,
                      nn::Shape shape) {
  const auto probes =
      sim::make_probe_batch(shape, acc.vhl_probes, sim::kProbeSeed);
  return core::tune_hash_lengths(model, probes, tuner_config(acc));
}

/// The spec's accelerator config with VHL tuning applied when requested.
core::DeepCamConfig resolved_config(const AcceleratorSpec& acc,
                                    nn::Model& model, nn::Shape shape) {
  core::DeepCamConfig cfg = acc.config();
  if (acc.vhl) cfg.layer_hash_bits = tune(acc, model, shape).hash_bits;
  return cfg;
}

std::unique_ptr<sim::Backend> make_backend(const std::string& name,
                                           const Spec& spec) {
  if (name == "deepcam") {
    sim::DeepCamBackend::Options dc;
    dc.config = spec.accelerator.config();
    dc.threads = spec.accelerator.engine_threads;
    return std::make_unique<sim::DeepCamBackend>(dc);
  }
  if (name == "eyeriss") return std::make_unique<sim::EyerissBackend>();
  if (name == "cpu-avx512") return std::make_unique<sim::CpuBackend>();
  if (name == "pim-neurosim")
    return std::make_unique<sim::CrossbarBackend>(
        pim::neurosim_rram_config(), "pim-neurosim");
  if (name == "pim-valavi")
    return std::make_unique<sim::CrossbarBackend>(pim::valavi_sram_config(),
                                                  "pim-valavi");
  throw Error("unknown backend \"" + name + "\"");
}

/// Registry in default_registry() order, restricted to the spec's backend
/// selection (empty = all), with the deepcam row honoring the spec's
/// accelerator config. With a default accelerator spec this is exactly
/// sim::default_registry().
sim::BackendRegistry make_registry(const Spec& spec) {
  std::vector<std::string> names = spec.compare.backends;
  if (names.empty()) names = known_backend_names();
  sim::BackendRegistry registry;
  for (const std::string& name : names)
    registry.add(make_backend(name, spec));
  return registry;
}

Outcome run_offline(const Spec& spec) {
  const Workload& w = spec.workloads.front();
  const nn::Shape shape = w.input_shape();
  const auto model = build_model(w);
  const core::DeepCamConfig cfg =
      resolved_config(spec.accelerator, *model, shape);
  const auto compiled =
      std::make_shared<const core::CompiledModel>(*model, cfg);
  core::InferenceEngine engine(compiled, spec.accelerator.engine_threads);

  TraceSession tracing(spec.outputs, nullptr);
  OfflineOutcome out;
  engine.run_batch(
      sim::make_probe_batch(shape, spec.offline.batch, spec.offline.input_seed),
      &out.report);
  out.profile = tracing.finish(spec.outputs);
  return Outcome{spec.name, spec.mode, std::move(out)};
}

Outcome run_compare(const Spec& spec) {
  const sim::BackendRegistry registry = make_registry(spec);
  sim::ComparisonOptions opts;
  opts.include_vhl_deepcam = spec.compare.include_vhl;
  opts.vhl_probes = spec.accelerator.vhl_probes;
  opts.tuner = tuner_config(spec.accelerator);
  opts.deepcam_config = spec.accelerator.config();
  opts.deepcam_threads = spec.accelerator.engine_threads;
  const sim::ComparisonRunner runner(registry, opts);

  std::vector<sim::WorkloadSpec> workloads;
  workloads.reserve(spec.workloads.size());
  for (const Workload& w : spec.workloads)
    workloads.push_back(sim::WorkloadSpec{w.topology, w.seed, w.batch_sizes});

  CompareOutcome out;
  out.report = runner.run(workloads);
  return Outcome{spec.name, spec.mode, std::move(out)};
}

Outcome run_serve(const Spec& spec) {
  const ServeOptions& srv = spec.serve;
  serve::ServerConfig cfg;
  cfg.num_workers = srv.workers;
  cfg.queue_capacity = srv.queue_capacity;
  cfg.batch.max_batch_size = srv.max_batch;
  cfg.batch.max_queue_delay = std::chrono::microseconds(srv.max_delay_us);
  cfg.slo.deadline = {std::chrono::microseconds(srv.deadline_interactive_us),
                      std::chrono::microseconds(srv.deadline_standard_us),
                      std::chrono::microseconds(srv.deadline_batch_us)};
  // Watermarks above 1.0 mean "never shed"; the queue wants them in [0, 1].
  cfg.slo.admission.shed_depth_fraction = {
      std::min(srv.shed_interactive, 1.0), std::min(srv.shed_standard, 1.0),
      std::min(srv.shed_batch, 1.0)};
  cfg.slo.downgrade_fraction = srv.downgrade_fraction;
  // Fault tolerance: replica count, retry/hedge/breaker knobs, and the
  // scripted chaos events (all no-ops at their defaults).
  cfg.replicas = srv.replicas;
  if (srv.retry_limit.size() == serve::kNumSloClasses)
    for (std::size_t i = 0; i < serve::kNumSloClasses; ++i)
      cfg.router.retry_limit[i] = srv.retry_limit[i];
  cfg.router.retry_backoff = std::chrono::microseconds(srv.retry_backoff_us);
  cfg.router.retry_backoff_max =
      std::chrono::microseconds(srv.retry_backoff_max_us);
  cfg.router.hedge_interactive = srv.hedge;
  cfg.router.hedge_delay = std::chrono::microseconds(srv.hedge_delay_us);
  cfg.router.replica.breaker_failures = srv.breaker_failures;
  cfg.router.replica.canary_successes = srv.canary_successes;
  cfg.router.replica.quarantine_backoff =
      std::chrono::microseconds(srv.quarantine_backoff_us);
  for (const ChaosEventSpec& e : srv.chaos) {
    serve::FaultKind kind;
    DEEPCAM_CHECK_MSG(serve::fault_kind_from_string(e.kind, &kind),
                      "unknown chaos fault kind: " + e.kind);
    cfg.chaos.push_back(serve::FaultEvent{e.at, kind, e.replica, e.param});
  }
  // Deterministic mode: a VirtualClock plus manual dispatch makes the whole
  // run single-threaded (LoadGenerator::replay_deterministic pumps the
  // server inline), so an exported span trace is byte-identical across
  // replays.
  serve::VirtualClock vclock;
  if (srv.virtual_time) {
    cfg.clock = &vclock;
    cfg.manual_dispatch = true;
  }
  serve::Server server(cfg);
  TraceSession tracing(spec.outputs, cfg.clock);

  // Sessions: every workload compiled at every hash tier. The models must
  // outlive the server (CompiledModel only points at them).
  std::vector<std::unique_ptr<nn::Model>> models;
  std::vector<std::string> session_names;
  std::vector<nn::Shape> session_shapes;
  for (const Workload& w : spec.workloads) {
    models.push_back(build_model(w));
    std::string prev_session;
    for (const std::size_t k : srv.hash_tiers) {
      core::DeepCamConfig dc = spec.accelerator.config();
      dc.default_hash_bits = k;
      dc.layer_hash_bits.clear();  // tiers are homogeneous hash lengths
      auto compiled =
          std::make_shared<const core::CompiledModel>(*models.back(), dc);
      const std::string session =
          w.display_name() + "-k" + std::to_string(k);
      server.sessions().add_session(session, std::move(compiled),
                                    spec.accelerator.engine_threads);
      // Consecutive tiers chain as k-fallbacks (the quality dial): under
      // pressure, requests for a tier reroute to the next one declared —
      // list tiers high-k first so the fallback is the cheaper search.
      if (!prev_session.empty())
        server.sessions().set_fallback(prev_session, session);
      prev_session = session;
      session_names.push_back(session);
      session_shapes.push_back(w.input_shape());
    }
  }
  server.start();

  serve::TraceConfig tc;
  tc.requests = srv.requests;
  tc.rate_rps = srv.rate_rps;
  tc.sessions = session_names;
  tc.seed = srv.trace_seed;
  if (srv.class_mix.size() == serve::kNumSloClasses)
    for (std::size_t i = 0; i < serve::kNumSloClasses; ++i)
      tc.class_weights[i] = srv.class_mix[i];
  serve::ReplayOptions opts;
  if (srv.trace == "bursty") {
    tc.arrivals = serve::ArrivalProcess::kBursty;
    tc.burst_rate_rps = 4.0 * srv.rate_rps;
    tc.rate_rps = 0.25 * srv.rate_rps;
  } else if (srv.trace == "diurnal") {
    tc.arrivals = serve::ArrivalProcess::kDiurnal;
    tc.period_seconds = 0.5;
    tc.diurnal_amplitude = 0.8;
  } else if (srv.trace == "flash") {
    // Flash crowd: a 4x spike one tenth of the way into the nominal span.
    tc.arrivals = serve::ArrivalProcess::kFlash;
    tc.flash_rate_rps = 4.0 * srv.rate_rps;
    const double span =
        static_cast<double>(srv.requests) / srv.rate_rps;
    tc.flash_start_seconds = 0.1 * span;
    tc.flash_duration_seconds = 0.25 * span;
  } else if (srv.trace == "closed") {
    opts.mode = serve::ReplayOptions::Mode::kClosedLoop;
    opts.closed_loop_clients = srv.clients;
  }
  const serve::Trace trace = serve::make_trace(tc);

  serve::LoadGenerator loadgen(server, session_shapes);
  ServeOutcome out;
  if (srv.virtual_time) {
    out.load = loadgen.replay_deterministic(trace, vclock);
  } else {
    out.load = loadgen.replay(trace, opts);
    server.drain();
  }
  server.stop();
  out.summary = server.summary();
  out.trace_events = trace.events.size();
  out.sessions = std::move(session_names);
  out.profile = tracing.finish(spec.outputs);
  if (!spec.outputs.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    serve::register_prometheus_collector(registry, server);
    obs::write_metrics_file(spec.outputs.metrics_path, registry.expose());
  }
  return Outcome{spec.name, spec.mode, std::move(out)};
}

/// PlannerConfig realizing the spec: objective/batch/search axes from the
/// plan section, accuracy budget and baseline hardware from the accelerator
/// section. A pinned engine_threads collapses the thread axis to it.
plan::PlannerConfig planner_config(const Spec& spec) {
  plan::PlannerConfig cfg;
  cfg.objective = plan::objective_from_name(spec.plan.objective);
  cfg.batch = spec.plan.batch;
  if (!spec.plan.search_rows) cfg.row_candidates = {spec.accelerator.cam_rows};
  cfg.search_dataflow = spec.plan.search_dataflow;
  if (spec.accelerator.engine_threads != 0)
    cfg.thread_candidates = {spec.accelerator.engine_threads};
  cfg.max_rel_error = spec.accelerator.vhl_max_rel_error;
  cfg.probes = spec.plan.probes;
  cfg.base = spec.accelerator.config();
  return cfg;
}

Outcome run_tune(const Spec& spec) {
  TuneOutcome out;
  for (const Workload& w : spec.workloads) {
    const auto model = build_model(w);
    core::TuneResult result;
    if (spec.plan.validate) {
      // Ground truth: the empirical per-layer sweep over every probe patch.
      result = tune(spec.accelerator, *model, w.input_shape());
    } else {
      // Model-guided: hash once at 1024 bits, calibrate at k = 256 on
      // sampled patches, extrapolate err ∝ 1/sqrt(k), verify the choice.
      plan::PlannerConfig cfg = planner_config(spec);
      cfg.probes = spec.accelerator.vhl_probes;
      result = plan::Planner(*model, w.input_shape()).guided_tune(cfg);
    }
    out.entries.push_back(
        TuneOutcome::Entry{w.display_name(), std::move(result)});
  }
  return Outcome{spec.name, spec.mode, std::move(out)};
}

Outcome run_plan(const Spec& spec) {
  PlanOutcome out;
  for (const Workload& w : spec.workloads) {
    const auto model = build_model(w);
    const nn::Shape shape = w.input_shape();
    const plan::PlannerConfig cfg = planner_config(spec);
    const plan::Planner planner(*model, shape);
    const std::string key =
        plan::plan_cache_key(planner.cost_model().geometry().digest(), cfg);
    PlanOutcome::Entry entry;
    entry.workload = w.display_name();
    entry.plan = plan::PlanCache::global().get_or_plan(
        key, [&] { return planner.plan(cfg); }, &entry.cache_hit);
    if (spec.plan.validate) {
      // Cross-check the analytical estimate against the sim backend under
      // the planned configuration (the --validate fallback to measured runs).
      const sim::EstimatorCheck chk = sim::check_estimator(
          *model, shape, entry.plan.config(cfg.base), spec.plan.batch);
      entry.validated = true;
      entry.measured_cycles = chk.measured_cycles;
      entry.cycle_rel_error = chk.cycle_rel_error;
    }
    out.entries.push_back(std::move(entry));
  }
  out.cache = plan::PlanCache::global().stats();
  return Outcome{spec.name, spec.mode, std::move(out)};
}

template <typename T>
const T& get_alternative(
    const std::variant<OfflineOutcome, CompareOutcome, ServeOutcome,
                       TuneOutcome, PlanOutcome>& result,
    Mode mode, const char* wanted) {
  DEEPCAM_CHECK_MSG(std::holds_alternative<T>(result),
                    std::string("outcome of a ") + mode_name(mode) +
                        " run has no " + wanted + " result");
  return std::get<T>(result);
}

}  // namespace

const OfflineOutcome& Outcome::offline() const {
  return get_alternative<OfflineOutcome>(result, mode, "offline");
}
const CompareOutcome& Outcome::compare() const {
  return get_alternative<CompareOutcome>(result, mode, "compare");
}
const ServeOutcome& Outcome::serve() const {
  return get_alternative<ServeOutcome>(result, mode, "serve");
}
const TuneOutcome& Outcome::tune() const {
  return get_alternative<TuneOutcome>(result, mode, "tune");
}
const PlanOutcome& Outcome::plan() const {
  return get_alternative<PlanOutcome>(result, mode, "plan");
}

bool verify_deepcam_rows(const Spec& spec, const CompareOutcome& outcome) {
  bool ok = !outcome.report.rows.empty();
  for (const Workload& w : spec.workloads) {
    const auto model = build_model(w);
    const nn::Shape shape = w.input_shape();
    const auto compiled = std::make_shared<const core::CompiledModel>(
        *model, spec.accelerator.config());
    core::InferenceEngine engine(compiled, spec.accelerator.engine_threads);
    for (const std::size_t batch : w.batch_sizes) {
      const sim::PlatformResult* row = nullptr;
      for (const auto& r : outcome.report.rows)
        if (r.backend == "deepcam" && r.model == model->name() &&
            r.batch == batch)
          row = &r;
      if (row == nullptr) continue;  // deepcam not in the sweep
      core::BatchReport br;
      engine.run_batch(sim::make_probe_batch(shape, batch), &br);
      const bool match =
          row->total_cycles ==
              static_cast<double>(br.aggregate.total_cycles()) &&
          row->total_energy_j == br.aggregate.total_energy();
      std::printf("bitwise check (%s batch %zu): facade %.0f cycles vs "
                  "engine %zu cycles -> %s\n",
                  w.display_name().c_str(), batch, row->total_cycles,
                  br.aggregate.total_cycles(), match ? "OK" : "MISMATCH");
      ok = ok && match;
    }
  }
  return ok;
}

Outcome Runner::run(const Spec& spec) const {
  spec.validate();
  switch (spec.mode) {
    case Mode::kOffline: return run_offline(spec);
    case Mode::kCompare: return run_compare(spec);
    case Mode::kServe: return run_serve(spec);
    case Mode::kTune: return run_tune(spec);
    case Mode::kPlan: return run_plan(spec);
  }
  throw Error("unreachable spec mode");
}

}  // namespace deepcam
