#include "api/spec.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam {

namespace {

const std::vector<std::string>& known_topologies() {
  static const std::vector<std::string> kNames = {"lenet5", "vgg11", "vgg16",
                                                  "resnet18"};
  return kNames;
}

bool contains(const std::vector<std::string>& names, const std::string& s) {
  return std::find(names.begin(), names.end(), s) != names.end();
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

[[noreturn]] void invalid(const std::string& what) {
  throw Error("invalid spec: " + what);
}

void validate_hash_bits(std::size_t bits, const std::string& where) {
  if (bits == 0 || bits % 256 != 0 ||
      bits > static_cast<std::size_t>(hash::kMaxHashBits))
    invalid(where + " must be a multiple of 256 in [256, 1024], got " +
            std::to_string(bits));
}

void validate_layer(const LayerSpec& layer, const std::string& workload) {
  const std::string where = "workload " + workload + " layer \"" +
                            layer.kind + "\"";
  if (layer.kind == "conv2d") {
    if (layer.in_channels == 0 || layer.out_channels == 0 ||
        layer.kernel == 0 || layer.stride == 0)
      invalid(where + " needs positive in_channels/out_channels/kernel/"
                      "stride");
  } else if (layer.kind == "linear") {
    if (layer.in_features == 0 || layer.out_features == 0)
      invalid(where + " needs positive in_features/out_features");
  } else if (layer.kind == "maxpool" || layer.kind == "avgpool") {
    if (layer.window == 0 || layer.stride == 0)
      invalid(where + " needs positive window/stride");
  } else if (layer.kind != "relu" && layer.kind != "flatten" &&
             layer.kind != "softmax") {
    invalid(where + " has unknown kind (expected conv2d, linear, relu, "
                    "maxpool, avgpool, flatten or softmax)");
  }
}

void validate_workload(const Workload& w) {
  if (!w.is_inline()) {
    if (!contains(known_topologies(), w.topology))
      invalid("unknown topology \"" + w.topology + "\" (expected one of " +
              join(known_topologies()) + ")");
    return;
  }
  if (w.name.empty()) invalid("inline workload needs a model name");
  if (w.layers.empty())
    invalid("inline workload " + w.name + " has no layers");
  if (w.channels == 0 || w.height == 0 || w.width == 0)
    invalid("inline workload " + w.name + " needs positive input geometry");
  for (const LayerSpec& l : w.layers) validate_layer(l, w.name);
}

}  // namespace

const std::vector<std::string>& known_backend_names() {
  // default_registry() order; the one list validate() checks against and
  // make_registry() builds from, so the two can't drift.
  static const std::vector<std::string> kNames = {
      "deepcam", "eyeriss", "cpu-avx512", "pim-neurosim", "pim-valavi"};
  return kNames;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOffline: return "offline";
    case Mode::kCompare: return "compare";
    case Mode::kServe: return "serve";
    case Mode::kTune: return "tune";
    case Mode::kPlan: return "plan";
  }
  return "?";
}

Mode mode_from_name(const std::string& name) {
  if (name == "offline" || name == "run") return Mode::kOffline;
  if (name == "compare") return Mode::kCompare;
  if (name == "serve") return Mode::kServe;
  if (name == "tune") return Mode::kTune;
  if (name == "plan") return Mode::kPlan;
  throw Error("unknown mode \"" + name +
              "\" (expected offline, compare, serve, tune or plan)");
}

nn::Shape Workload::input_shape() const {
  if (!is_inline()) return nn::input_spec_for(topology).shape();
  return nn::Shape{1, channels, height, width};
}

std::unique_ptr<nn::Model> build_model(const Workload& workload) {
  if (!workload.is_inline())
    return nn::make_model(workload.topology, workload.seed);

  auto model = std::make_unique<nn::Model>(workload.name);
  std::size_t index = 0;
  for (const LayerSpec& l : workload.layers) {
    const std::string name =
        l.name.empty() ? l.kind + std::to_string(index) : l.name;
    // Weight layers draw deterministic seeds from the workload seed plus
    // their position, so the model is a pure function of the description.
    const std::uint64_t seed = workload.seed + index;
    if (l.kind == "conv2d") {
      model->add(std::make_unique<nn::Conv2D>(
          name,
          nn::ConvSpec{l.in_channels, l.out_channels, l.kernel, l.kernel,
                       l.stride, l.pad},
          seed));
    } else if (l.kind == "linear") {
      model->add(std::make_unique<nn::Linear>(name, l.in_features,
                                              l.out_features, seed));
    } else if (l.kind == "relu") {
      model->add(std::make_unique<nn::ReLU>(name));
    } else if (l.kind == "maxpool") {
      model->add(std::make_unique<nn::MaxPool>(name, l.window, l.stride));
    } else if (l.kind == "avgpool") {
      model->add(std::make_unique<nn::AvgPool>(name, l.window, l.stride));
    } else if (l.kind == "flatten") {
      model->add(std::make_unique<nn::Flatten>(name));
    } else if (l.kind == "softmax") {
      model->add(std::make_unique<nn::Softmax>(name));
    } else {
      invalid("unknown layer kind \"" + l.kind + "\"");
    }
    ++index;
  }
  return model;
}

core::DeepCamConfig AcceleratorSpec::config() const {
  core::DeepCamConfig cfg;
  cfg.cam_rows = cam_rows;
  cfg.dataflow = dataflow;
  cfg.preset = preset;
  cfg.layer_hash_bits = layer_hash_bits;
  cfg.default_hash_bits = hash_bits;
  cfg.hash_seed = hash_seed;
  return cfg;
}

void Spec::validate() const {
  if (name.empty()) invalid("spec needs a name");
  if (workloads.empty()) invalid("spec needs at least one workload");
  for (const Workload& w : workloads) {
    validate_workload(w);
    if (w.batch_sizes.empty())
      invalid("workload " + w.display_name() + " has no batch sizes");
    for (const std::size_t b : w.batch_sizes)
      if (b == 0)
        invalid("workload " + w.display_name() + " has a zero batch size");
  }

  if (accelerator.cam_rows == 0) invalid("accelerator.cam_rows must be > 0");
  validate_hash_bits(accelerator.hash_bits, "accelerator.hash_bits");
  for (const std::size_t k : accelerator.layer_hash_bits)
    validate_hash_bits(k, "accelerator.layer_hash_bits entry");
  if (accelerator.vhl) {
    if (accelerator.vhl_probes == 0) invalid("accelerator.vhl_probes == 0");
    if (accelerator.vhl_max_rel_error <= 0.0)
      invalid("accelerator.vhl_max_rel_error must be > 0");
  }

  switch (mode) {
    case Mode::kOffline:
      if (workloads.size() != 1)
        invalid("offline mode runs exactly one workload, got " +
                std::to_string(workloads.size()));
      if (offline.batch == 0) invalid("offline.batch must be > 0");
      break;
    case Mode::kCompare:
      for (const Workload& w : workloads)
        if (w.is_inline())
          invalid("compare mode sweeps named topologies only; workload " +
                  w.display_name() + " is inline");
      for (const std::string& b : compare.backends)
        if (!contains(known_backend_names(), b))
          invalid("unknown backend \"" + b + "\" (expected one of " +
                  join(known_backend_names()) + ")");
      if (compare.include_vhl) {
        if (accelerator.vhl_probes == 0)
          invalid("accelerator.vhl_probes == 0 with compare.include_vhl");
        if (accelerator.vhl_max_rel_error <= 0.0)
          invalid("accelerator.vhl_max_rel_error must be > 0 with "
                  "compare.include_vhl");
      }
      break;
    case Mode::kServe: {
      if (serve.hash_tiers.empty()) invalid("serve.hash_tiers is empty");
      for (const std::size_t k : serve.hash_tiers)
        validate_hash_bits(k, "serve.hash_tiers entry");
      for (std::size_t i = 0; i < serve.hash_tiers.size(); ++i)
        for (std::size_t j = i + 1; j < serve.hash_tiers.size(); ++j)
          if (serve.hash_tiers[i] == serve.hash_tiers[j])
            invalid("serve.hash_tiers has duplicate tier " +
                    std::to_string(serve.hash_tiers[i]));
      if (serve.workers == 0) invalid("serve.workers must be > 0");
      if (serve.queue_capacity == 0) invalid("serve.queue_capacity == 0");
      if (serve.max_batch == 0) invalid("serve.max_batch must be > 0");
      if (serve.max_delay_us < 0) invalid("serve.max_delay_us is negative");
      if (serve.requests == 0) invalid("serve.requests must be > 0");
      if (serve.trace != "poisson" && serve.trace != "bursty" &&
          serve.trace != "diurnal" && serve.trace != "flash" &&
          serve.trace != "closed")
        invalid("serve.trace must be poisson, bursty, diurnal, flash or "
                "closed, got \"" + serve.trace + "\"");
      if (serve.trace != "closed" && serve.rate_rps <= 0.0)
        invalid("serve.rate_rps must be > 0 for open-loop traces");
      if (serve.trace == "closed" && serve.clients == 0)
        invalid("serve.clients must be > 0 for closed-loop traces");
      if (serve.virtual_time && serve.trace == "closed")
        invalid("serve.virtual_time needs an open-loop trace (closed-loop "
                "clients block on real threads)");
      if (serve.deadline_interactive_us < 0 ||
          serve.deadline_standard_us < 0 || serve.deadline_batch_us < 0)
        invalid("serve deadlines must be >= 0 microseconds");
      if (serve.shed_interactive < 0.0 || serve.shed_standard < 0.0 ||
          serve.shed_batch < 0.0)
        invalid("serve shed watermarks must be >= 0");
      if (serve.downgrade_fraction < 0.0)
        invalid("serve.downgrade_fraction must be >= 0");
      if (serve.class_mix.size() != 3)
        invalid("serve.class_mix needs exactly 3 weights "
                "{interactive, standard, batch}, got " +
                std::to_string(serve.class_mix.size()));
      double mix_total = 0.0;
      for (const double w : serve.class_mix) {
        if (w < 0.0) invalid("serve.class_mix weights must be >= 0");
        mix_total += w;
      }
      if (mix_total <= 0.0)
        invalid("serve.class_mix weights must sum to > 0");
      if (serve.replicas == 0) invalid("serve.replicas must be >= 1");
      if (serve.retry_limit.size() != 3)
        invalid("serve.retry_limit needs exactly 3 budgets "
                "{interactive, standard, batch}, got " +
                std::to_string(serve.retry_limit.size()));
      if (serve.retry_backoff_us < 0 || serve.retry_backoff_max_us < 0)
        invalid("serve retry backoffs must be >= 0 microseconds");
      if (serve.hedge_delay_us < 0)
        invalid("serve.hedge_delay_us must be >= 0");
      if (serve.breaker_failures == 0)
        invalid("serve.breaker_failures must be >= 1");
      if (serve.canary_successes == 0)
        invalid("serve.canary_successes must be >= 1");
      if (serve.quarantine_backoff_us < 0)
        invalid("serve.quarantine_backoff_us must be >= 0");
      for (const ChaosEventSpec& e : serve.chaos) {
        if (e.at < 0.0) invalid("serve.chaos event time must be >= 0");
        if (e.param < 0.0) invalid("serve.chaos event param must be >= 0");
        if (e.kind != "crash" && e.kind != "heal" && e.kind != "stall" &&
            e.kind != "poison" && e.kind != "slow")
          invalid("serve.chaos event kind must be crash, heal, stall, "
                  "poison or slow, got \"" + e.kind + "\"");
        if (e.kind != "stall" && e.replica >= serve.replicas)
          invalid("serve.chaos event replica " + std::to_string(e.replica) +
                  " out of range for " + std::to_string(serve.replicas) +
                  " replicas");
      }
      break;
    }
    case Mode::kTune:
      // Tune mode always runs the tuner, whether or not accelerator.vhl
      // asked for tuned execution — its knobs must be sane either way.
      if (accelerator.vhl_probes == 0)
        invalid("accelerator.vhl_probes == 0 in tune mode");
      if (accelerator.vhl_max_rel_error <= 0.0)
        invalid("accelerator.vhl_max_rel_error must be > 0 in tune mode");
      break;
    case Mode::kPlan:
      if (plan.objective != "cycles" && plan.objective != "energy" &&
          plan.objective != "edp")
        invalid("plan.objective must be cycles, energy or edp, got \"" +
                plan.objective + "\"");
      if (plan.batch == 0) invalid("plan.batch must be > 0");
      if (accelerator.vhl_max_rel_error <= 0.0)
        invalid("accelerator.vhl_max_rel_error must be > 0 in plan mode");
      break;
  }

  // Observability sinks only make sense where spans/metrics are produced:
  // traces and profiling need an engine or server run, the Prometheus
  // mirror needs a server.
  const bool traced_mode = mode == Mode::kOffline || mode == Mode::kServe;
  if (!outputs.trace_path.empty() && !traced_mode)
    invalid("outputs.trace is only meaningful in offline or serve mode");
  if (outputs.profile && !traced_mode)
    invalid("outputs.profile is only meaningful in offline or serve mode");
  if (!outputs.metrics_path.empty() && mode != Mode::kServe)
    invalid("outputs.metrics is only meaningful in serve mode");
}

SpecBuilder::SpecBuilder(std::string name) { spec_.name = std::move(name); }

SpecBuilder& SpecBuilder::mode(Mode m) {
  spec_.mode = m;
  return *this;
}

SpecBuilder& SpecBuilder::workload(std::string topology, std::uint64_t seed) {
  Workload w;
  w.topology = std::move(topology);
  w.seed = seed;
  spec_.workloads.push_back(std::move(w));
  return *this;
}

SpecBuilder& SpecBuilder::custom_workload(std::string model_name,
                                          std::size_t channels,
                                          std::size_t height,
                                          std::size_t width,
                                          std::uint64_t seed) {
  Workload w;
  w.name = std::move(model_name);
  w.channels = channels;
  w.height = height;
  w.width = width;
  w.seed = seed;
  spec_.workloads.push_back(std::move(w));
  return *this;
}

Workload& SpecBuilder::current_workload() {
  DEEPCAM_CHECK_MSG(!spec_.workloads.empty(),
                    "add a workload before workload-scoped builder calls");
  return spec_.workloads.back();
}

SpecBuilder& SpecBuilder::batch_sizes(std::vector<std::size_t> sizes) {
  current_workload().batch_sizes = std::move(sizes);
  return *this;
}

LayerSpec& SpecBuilder::append_layer(const std::string& kind,
                                     std::string layer_name) {
  Workload& w = current_workload();
  DEEPCAM_CHECK_MSG(w.is_inline(),
                    "inline layers go into custom workloads, not topologies");
  LayerSpec l;
  l.kind = kind;
  l.name = std::move(layer_name);
  w.layers.push_back(std::move(l));
  return w.layers.back();
}

SpecBuilder& SpecBuilder::conv2d(std::string layer_name,
                                 std::size_t in_channels,
                                 std::size_t out_channels, std::size_t kernel,
                                 std::size_t stride, std::size_t pad) {
  LayerSpec& l = append_layer("conv2d", std::move(layer_name));
  l.in_channels = in_channels;
  l.out_channels = out_channels;
  l.kernel = kernel;
  l.stride = stride;
  l.pad = pad;
  return *this;
}

SpecBuilder& SpecBuilder::linear(std::string layer_name,
                                 std::size_t in_features,
                                 std::size_t out_features) {
  LayerSpec& l = append_layer("linear", std::move(layer_name));
  l.in_features = in_features;
  l.out_features = out_features;
  return *this;
}

SpecBuilder& SpecBuilder::relu(std::string layer_name) {
  append_layer("relu", std::move(layer_name));
  return *this;
}

SpecBuilder& SpecBuilder::maxpool(std::size_t window, std::size_t stride) {
  LayerSpec& l = append_layer("maxpool", "");
  l.window = window;
  l.stride = stride;
  return *this;
}

SpecBuilder& SpecBuilder::avgpool(std::size_t window, std::size_t stride) {
  LayerSpec& l = append_layer("avgpool", "");
  l.window = window;
  l.stride = stride;
  return *this;
}

SpecBuilder& SpecBuilder::flatten(std::string layer_name) {
  append_layer("flatten", std::move(layer_name));
  return *this;
}

SpecBuilder& SpecBuilder::softmax(std::string layer_name) {
  append_layer("softmax", std::move(layer_name));
  return *this;
}

SpecBuilder& SpecBuilder::cam_rows(std::size_t rows) {
  spec_.accelerator.cam_rows = rows;
  return *this;
}

SpecBuilder& SpecBuilder::dataflow(core::Dataflow df) {
  spec_.accelerator.dataflow = df;
  return *this;
}

SpecBuilder& SpecBuilder::preset(core::CyclePreset p) {
  spec_.accelerator.preset = p;
  return *this;
}

SpecBuilder& SpecBuilder::hash_bits(std::size_t bits) {
  spec_.accelerator.hash_bits = bits;
  return *this;
}

SpecBuilder& SpecBuilder::layer_hash_bits(std::vector<std::size_t> bits) {
  spec_.accelerator.layer_hash_bits = std::move(bits);
  return *this;
}

SpecBuilder& SpecBuilder::hash_seed(std::uint64_t seed) {
  spec_.accelerator.hash_seed = seed;
  return *this;
}

SpecBuilder& SpecBuilder::engine_threads(std::size_t threads) {
  spec_.accelerator.engine_threads = threads;
  return *this;
}

SpecBuilder& SpecBuilder::vhl(double max_rel_error, std::size_t probes) {
  spec_.accelerator.vhl = true;
  spec_.accelerator.vhl_max_rel_error = max_rel_error;
  spec_.accelerator.vhl_probes = probes;
  return *this;
}

SpecBuilder& SpecBuilder::offline_batch(std::size_t batch) {
  spec_.offline.batch = batch;
  return *this;
}

SpecBuilder& SpecBuilder::input_seed(std::uint64_t seed) {
  spec_.offline.input_seed = seed;
  return *this;
}

SpecBuilder& SpecBuilder::backends(std::vector<std::string> names) {
  spec_.compare.backends = std::move(names);
  return *this;
}

SpecBuilder& SpecBuilder::include_vhl(bool on) {
  spec_.compare.include_vhl = on;
  return *this;
}

SpecBuilder& SpecBuilder::serve_tiers(std::vector<std::size_t> hash_tiers) {
  spec_.serve.hash_tiers = std::move(hash_tiers);
  return *this;
}

SpecBuilder& SpecBuilder::serve_workers(std::size_t workers) {
  spec_.serve.workers = workers;
  return *this;
}

SpecBuilder& SpecBuilder::serve_queue(std::size_t capacity) {
  spec_.serve.queue_capacity = capacity;
  return *this;
}

SpecBuilder& SpecBuilder::serve_batch(std::size_t max_batch,
                                      long max_delay_us) {
  spec_.serve.max_batch = max_batch;
  spec_.serve.max_delay_us = max_delay_us;
  return *this;
}

SpecBuilder& SpecBuilder::serve_trace(std::string trace, std::size_t requests,
                                      double rate_rps, std::uint64_t seed) {
  spec_.serve.trace = std::move(trace);
  spec_.serve.requests = requests;
  spec_.serve.rate_rps = rate_rps;
  spec_.serve.trace_seed = seed;
  return *this;
}

SpecBuilder& SpecBuilder::serve_clients(std::size_t clients) {
  spec_.serve.clients = clients;
  return *this;
}

SpecBuilder& SpecBuilder::serve_deadlines(long interactive_us,
                                          long standard_us, long batch_us) {
  spec_.serve.deadline_interactive_us = interactive_us;
  spec_.serve.deadline_standard_us = standard_us;
  spec_.serve.deadline_batch_us = batch_us;
  return *this;
}

SpecBuilder& SpecBuilder::serve_shed(double interactive, double standard,
                                     double batch) {
  spec_.serve.shed_interactive = interactive;
  spec_.serve.shed_standard = standard;
  spec_.serve.shed_batch = batch;
  return *this;
}

SpecBuilder& SpecBuilder::serve_downgrade(double fraction) {
  spec_.serve.downgrade_fraction = fraction;
  return *this;
}

SpecBuilder& SpecBuilder::serve_class_mix(double interactive, double standard,
                                          double batch) {
  spec_.serve.class_mix = {interactive, standard, batch};
  return *this;
}

SpecBuilder& SpecBuilder::serve_replicas(std::size_t replicas) {
  spec_.serve.replicas = replicas;
  return *this;
}

SpecBuilder& SpecBuilder::serve_retry(std::size_t interactive,
                                      std::size_t standard, std::size_t batch,
                                      long backoff_us, long backoff_max_us) {
  spec_.serve.retry_limit = {interactive, standard, batch};
  spec_.serve.retry_backoff_us = backoff_us;
  spec_.serve.retry_backoff_max_us = backoff_max_us;
  return *this;
}

SpecBuilder& SpecBuilder::serve_hedge(bool on, long delay_us) {
  spec_.serve.hedge = on;
  spec_.serve.hedge_delay_us = delay_us;
  return *this;
}

SpecBuilder& SpecBuilder::serve_breaker(std::size_t failures,
                                        std::size_t canaries,
                                        long quarantine_backoff_us) {
  spec_.serve.breaker_failures = failures;
  spec_.serve.canary_successes = canaries;
  spec_.serve.quarantine_backoff_us = quarantine_backoff_us;
  return *this;
}

SpecBuilder& SpecBuilder::serve_chaos(double at_seconds, std::string kind,
                                      std::size_t replica, double param) {
  ChaosEventSpec e;
  e.at = at_seconds;
  e.kind = std::move(kind);
  e.replica = replica;
  e.param = param;
  spec_.serve.chaos.push_back(std::move(e));
  return *this;
}

SpecBuilder& SpecBuilder::serve_virtual_time(bool on) {
  spec_.serve.virtual_time = on;
  return *this;
}

SpecBuilder& SpecBuilder::plan_objective(std::string objective) {
  spec_.plan.objective = std::move(objective);
  return *this;
}

SpecBuilder& SpecBuilder::plan_batch(std::size_t batch) {
  spec_.plan.batch = batch;
  return *this;
}

SpecBuilder& SpecBuilder::plan_search(bool rows, bool dataflow) {
  spec_.plan.search_rows = rows;
  spec_.plan.search_dataflow = dataflow;
  return *this;
}

SpecBuilder& SpecBuilder::plan_probes(std::size_t probes) {
  spec_.plan.probes = probes;
  return *this;
}

SpecBuilder& SpecBuilder::plan_validate(bool on) {
  spec_.plan.validate = on;
  return *this;
}

SpecBuilder& SpecBuilder::json_output(std::string path) {
  spec_.outputs.json_path = std::move(path);
  return *this;
}

SpecBuilder& SpecBuilder::csv_output(bool on) {
  spec_.outputs.csv = on;
  return *this;
}

SpecBuilder& SpecBuilder::text_output(bool on) {
  spec_.outputs.text = on;
  return *this;
}

SpecBuilder& SpecBuilder::per_sample(bool on) {
  spec_.outputs.per_sample = on;
  return *this;
}

SpecBuilder& SpecBuilder::trace_output(std::string path) {
  spec_.outputs.trace_path = std::move(path);
  return *this;
}

SpecBuilder& SpecBuilder::metrics_output(std::string path) {
  spec_.outputs.metrics_path = std::move(path);
  return *this;
}

SpecBuilder& SpecBuilder::profile(bool on) {
  spec_.outputs.profile = on;
  return *this;
}

Spec SpecBuilder::build() const {
  spec_.validate();
  return spec_;
}

}  // namespace deepcam
