// Spec <-> JSON: the file format behind `deepcam <mode> <spec.json>`.
//
// spec_from_json walks a parsed common/json.hpp DOM strictly: unknown keys,
// wrong kinds, bad enum spellings and out-of-range numbers are all
// ParseError diagnostics pointing at the offending line/column of the spec
// file (never a crash or a silently ignored typo). spec_to_json emits the
// canonical form through the shared locale-proof JsonWriter — every field,
// defaults included — so spec -> JSON -> spec round-trips to an identical
// document (pinned by tests/test_api.cpp and the golden suite).
#pragma once

#include <string>

#include "api/spec.hpp"
#include "common/json.hpp"

namespace deepcam {

/// Builds a Spec from a parsed JSON document (strict; see file comment).
/// The result is additionally Spec::validate()d.
Spec spec_from_json(const JsonValue& doc);

/// Parses `text` and builds the Spec.
Spec spec_from_json_text(const std::string& text);

/// Reads and parses `path` and builds the Spec.
Spec spec_from_file(const std::string& path);

/// Canonical JSON document for `spec` (all fields, stable order).
std::string spec_to_json(const Spec& spec);

}  // namespace deepcam
