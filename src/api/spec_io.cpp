#include "api/spec_io.hpp"

#include "core/mapping.hpp"

namespace deepcam {

namespace {

// --- reading helpers ------------------------------------------------------

std::size_t as_size(const JsonValue& v) {
  return static_cast<std::size_t>(v.as_uint());
}

std::vector<std::size_t> as_size_array(const JsonValue& v) {
  std::vector<std::size_t> out;
  for (const JsonValue& item : v.items()) out.push_back(as_size(item));
  return out;
}

std::vector<std::string> as_string_array(const JsonValue& v) {
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) out.push_back(item.as_string());
  return out;
}

[[noreturn]] void unknown_key(const std::string& section,
                              const std::string& key, const JsonValue& v) {
  throw v.error("unknown key \"" + key + "\" in " + section);
}

core::Dataflow dataflow_from_json(const JsonValue& v) {
  const std::string& s = v.as_string();
  if (s == "weight-stationary") return core::Dataflow::kWeightStationary;
  if (s == "activation-stationary")
    return core::Dataflow::kActivationStationary;
  throw v.error("dataflow must be \"weight-stationary\" or "
                "\"activation-stationary\", got \"" + s + "\"");
}

core::CyclePreset preset_from_json(const JsonValue& v) {
  const std::string& s = v.as_string();
  if (s == "conservative") return core::CyclePreset::kConservative;
  if (s == "idealized") return core::CyclePreset::kIdealized;
  throw v.error("preset must be \"conservative\" or \"idealized\", got \"" +
                s + "\"");
}

Mode mode_from_json(const JsonValue& v) {
  const std::string& s = v.as_string();
  try {
    return mode_from_name(s);
  } catch (const Error&) {
    throw v.error("mode must be offline, compare, serve, tune or plan, "
                  "got \"" + s + "\"");
  }
}

// --- section readers ------------------------------------------------------

LayerSpec parse_layer(const JsonValue& doc) {
  LayerSpec l;
  for (const auto& [key, v] : doc.members()) {
    if (key == "kind") l.kind = v.as_string();
    else if (key == "name") l.name = v.as_string();
    else if (key == "in_channels") l.in_channels = as_size(v);
    else if (key == "out_channels") l.out_channels = as_size(v);
    else if (key == "kernel") l.kernel = as_size(v);
    else if (key == "stride") l.stride = as_size(v);
    else if (key == "pad") l.pad = as_size(v);
    else if (key == "in_features") l.in_features = as_size(v);
    else if (key == "out_features") l.out_features = as_size(v);
    else if (key == "window") l.window = as_size(v);
    else unknown_key("layer", key, v);
  }
  if (l.kind.empty()) throw doc.error("layer needs a \"kind\"");
  return l;
}

Workload parse_workload(const JsonValue& doc) {
  Workload w;
  bool named = false, has_layers = false;
  for (const auto& [key, v] : doc.members()) {
    if (key == "topology") {
      w.topology = v.as_string();
      named = true;
    } else if (key == "name") {
      w.name = v.as_string();
    } else if (key == "input") {
      for (const auto& [ikey, iv] : v.members()) {
        if (ikey == "channels") w.channels = as_size(iv);
        else if (ikey == "height") w.height = as_size(iv);
        else if (ikey == "width") w.width = as_size(iv);
        else unknown_key("workload input", ikey, iv);
      }
    } else if (key == "seed") {
      w.seed = v.as_uint();
    } else if (key == "batch_sizes") {
      w.batch_sizes = as_size_array(v);
    } else if (key == "layers") {
      has_layers = true;
      w.layers.clear();
      for (const JsonValue& layer : v.items())
        w.layers.push_back(parse_layer(layer));
    } else {
      unknown_key("workload", key, v);
    }
  }
  if (named && has_layers)
    throw doc.error("workload is either a named topology or an inline "
                    "layer list, not both");
  if (!named && !has_layers)
    throw doc.error("workload needs a \"topology\" or a \"layers\" list");
  // Topologies carry their own input geometry and model name; accepting
  // the inline-only keys would silently ignore them.
  if (named && doc.find("input") != nullptr)
    throw doc.at("input").error(
        "\"input\" is meaningless for a named topology (its geometry is "
        "fixed); only inline workloads take it");
  if (named && doc.find("name") != nullptr)
    throw doc.at("name").error(
        "\"name\" is meaningless for a named topology (the topology is the "
        "name); only inline workloads take it");
  return w;
}

void parse_accelerator(const JsonValue& doc, AcceleratorSpec& acc) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "cam_rows") acc.cam_rows = as_size(v);
    else if (key == "dataflow") acc.dataflow = dataflow_from_json(v);
    else if (key == "preset") acc.preset = preset_from_json(v);
    else if (key == "hash_bits") acc.hash_bits = as_size(v);
    else if (key == "layer_hash_bits") acc.layer_hash_bits = as_size_array(v);
    else if (key == "hash_seed") acc.hash_seed = v.as_uint();
    else if (key == "engine_threads") acc.engine_threads = as_size(v);
    else if (key == "vhl") {
      for (const auto& [vkey, vv] : v.members()) {
        if (vkey == "enabled") acc.vhl = vv.as_bool();
        else if (vkey == "max_rel_error") acc.vhl_max_rel_error = vv.as_number();
        else if (vkey == "probes") acc.vhl_probes = as_size(vv);
        else unknown_key("accelerator vhl", vkey, vv);
      }
    } else {
      unknown_key("accelerator", key, v);
    }
  }
}

void parse_offline(const JsonValue& doc, OfflineOptions& off) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "batch") off.batch = as_size(v);
    else if (key == "input_seed") off.input_seed = v.as_uint();
    else unknown_key("offline", key, v);
  }
}

void parse_compare(const JsonValue& doc, CompareOptions& cmp) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "backends") cmp.backends = as_string_array(v);
    else if (key == "include_vhl") cmp.include_vhl = v.as_bool();
    else unknown_key("compare", key, v);
  }
}

void parse_serve(const JsonValue& doc, ServeOptions& srv) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "hash_tiers") srv.hash_tiers = as_size_array(v);
    else if (key == "workers") srv.workers = as_size(v);
    else if (key == "queue_capacity") srv.queue_capacity = as_size(v);
    else if (key == "max_batch") srv.max_batch = as_size(v);
    else if (key == "max_delay_us") srv.max_delay_us = static_cast<long>(v.as_uint());
    else if (key == "trace") srv.trace = v.as_string();
    else if (key == "requests") srv.requests = as_size(v);
    else if (key == "rate_rps") srv.rate_rps = v.as_number();
    else if (key == "clients") srv.clients = as_size(v);
    else if (key == "trace_seed") srv.trace_seed = v.as_uint();
    else if (key == "deadline_interactive_us")
      srv.deadline_interactive_us = static_cast<long>(v.as_uint());
    else if (key == "deadline_standard_us")
      srv.deadline_standard_us = static_cast<long>(v.as_uint());
    else if (key == "deadline_batch_us")
      srv.deadline_batch_us = static_cast<long>(v.as_uint());
    else if (key == "shed_interactive") srv.shed_interactive = v.as_number();
    else if (key == "shed_standard") srv.shed_standard = v.as_number();
    else if (key == "shed_batch") srv.shed_batch = v.as_number();
    else if (key == "downgrade_fraction")
      srv.downgrade_fraction = v.as_number();
    else if (key == "class_mix") {
      srv.class_mix.clear();
      for (const JsonValue& item : v.items())
        srv.class_mix.push_back(item.as_number());
    } else if (key == "replicas") {
      srv.replicas = as_size(v);
    } else if (key == "retry_limit") {
      srv.retry_limit = as_size_array(v);
    } else if (key == "retry_backoff_us") {
      srv.retry_backoff_us = static_cast<long>(v.as_uint());
    } else if (key == "retry_backoff_max_us") {
      srv.retry_backoff_max_us = static_cast<long>(v.as_uint());
    } else if (key == "hedge") {
      srv.hedge = v.as_bool();
    } else if (key == "hedge_delay_us") {
      srv.hedge_delay_us = static_cast<long>(v.as_uint());
    } else if (key == "breaker_failures") {
      srv.breaker_failures = as_size(v);
    } else if (key == "canary_successes") {
      srv.canary_successes = as_size(v);
    } else if (key == "quarantine_backoff_us") {
      srv.quarantine_backoff_us = static_cast<long>(v.as_uint());
    } else if (key == "virtual_time") {
      srv.virtual_time = v.as_bool();
    } else if (key == "chaos") {
      srv.chaos.clear();
      for (const JsonValue& item : v.items()) {
        ChaosEventSpec e;
        for (const auto& [ekey, ev] : item.members()) {
          if (ekey == "at") e.at = ev.as_number();
          else if (ekey == "kind") e.kind = ev.as_string();
          else if (ekey == "replica") e.replica = as_size(ev);
          else if (ekey == "param") e.param = ev.as_number();
          else unknown_key("serve chaos event", ekey, ev);
        }
        srv.chaos.push_back(std::move(e));
      }
    } else {
      unknown_key("serve", key, v);
    }
  }
}

void parse_plan(const JsonValue& doc, PlanOptions& plan) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "objective") plan.objective = v.as_string();
    else if (key == "batch") plan.batch = as_size(v);
    else if (key == "search_rows") plan.search_rows = v.as_bool();
    else if (key == "search_dataflow") plan.search_dataflow = v.as_bool();
    else if (key == "probes") plan.probes = as_size(v);
    else if (key == "validate") plan.validate = v.as_bool();
    else unknown_key("plan", key, v);
  }
}

void parse_outputs(const JsonValue& doc, OutputOptions& out) {
  for (const auto& [key, v] : doc.members()) {
    if (key == "json") out.json_path = v.as_string();
    else if (key == "csv") out.csv = v.as_bool();
    else if (key == "text") out.text = v.as_bool();
    else if (key == "per_sample") out.per_sample = v.as_bool();
    else if (key == "trace") out.trace_path = v.as_string();
    else if (key == "metrics") out.metrics_path = v.as_string();
    else if (key == "profile") out.profile = v.as_bool();
    else unknown_key("outputs", key, v);
  }
}

// --- writing helpers ------------------------------------------------------

void layer_json(JsonWriter& json, const LayerSpec& l) {
  json.begin_object();
  json.kv("kind", l.kind);
  if (!l.name.empty()) json.kv("name", l.name);
  if (l.kind == "conv2d") {
    json.kv("in_channels", l.in_channels);
    json.kv("out_channels", l.out_channels);
    json.kv("kernel", l.kernel);
    json.kv("stride", l.stride);
    json.kv("pad", l.pad);
  } else if (l.kind == "linear") {
    json.kv("in_features", l.in_features);
    json.kv("out_features", l.out_features);
  } else if (l.kind == "maxpool" || l.kind == "avgpool") {
    json.kv("window", l.window);
    json.kv("stride", l.stride);
  }
  json.end_object();
}

void workload_json(JsonWriter& json, const Workload& w) {
  json.begin_object();
  if (w.is_inline()) {
    json.kv("name", w.name);
    json.key("input").begin_object();
    json.kv("channels", w.channels);
    json.kv("height", w.height);
    json.kv("width", w.width);
    json.end_object();
  } else {
    json.kv("topology", w.topology);
  }
  json.kv("seed", w.seed);
  json.key("batch_sizes").begin_array();
  for (const std::size_t b : w.batch_sizes) json.value(b);
  json.end_array();
  if (w.is_inline()) {
    json.key("layers").begin_array();
    for (const LayerSpec& l : w.layers) layer_json(json, l);
    json.end_array();
  }
  json.end_object();
}

}  // namespace

Spec spec_from_json(const JsonValue& doc) {
  Spec spec;
  bool have_workloads = false;
  for (const auto& [key, v] : doc.members()) {
    if (key == "name") {
      spec.name = v.as_string();
    } else if (key == "mode") {
      spec.mode = mode_from_json(v);
    } else if (key == "workload" || key == "workloads") {
      if (have_workloads)
        throw v.error("give either \"workload\" or \"workloads\", not both");
      have_workloads = true;
      spec.workloads.clear();
      if (key == "workload") {
        spec.workloads.push_back(parse_workload(v));
      } else {
        for (const JsonValue& w : v.items())
          spec.workloads.push_back(parse_workload(w));
      }
    } else if (key == "accelerator") {
      parse_accelerator(v, spec.accelerator);
    } else if (key == "offline") {
      parse_offline(v, spec.offline);
    } else if (key == "compare") {
      parse_compare(v, spec.compare);
    } else if (key == "serve") {
      parse_serve(v, spec.serve);
    } else if (key == "plan") {
      parse_plan(v, spec.plan);
    } else if (key == "outputs") {
      parse_outputs(v, spec.outputs);
    } else {
      unknown_key("spec", key, v);
    }
  }
  if (!have_workloads)
    throw doc.error("spec needs a \"workload\" or \"workloads\" section");
  spec.validate();
  return spec;
}

Spec spec_from_json_text(const std::string& text) {
  return spec_from_json(parse_json(text));
}

Spec spec_from_file(const std::string& path) {
  return spec_from_json(parse_json_file(path));
}

std::string spec_to_json(const Spec& spec) {
  JsonWriter json;
  json.begin_object();
  json.kv("name", spec.name);
  json.kv("mode", mode_name(spec.mode));

  json.key("workloads").begin_array();
  for (const Workload& w : spec.workloads) workload_json(json, w);
  json.end_array();

  const AcceleratorSpec& acc = spec.accelerator;
  json.key("accelerator").begin_object();
  json.kv("cam_rows", acc.cam_rows);
  json.kv("dataflow", core::dataflow_name(acc.dataflow));
  json.kv("preset", acc.preset == core::CyclePreset::kConservative
                        ? "conservative"
                        : "idealized");
  json.kv("hash_bits", acc.hash_bits);
  json.key("layer_hash_bits").begin_array();
  for (const std::size_t k : acc.layer_hash_bits) json.value(k);
  json.end_array();
  json.kv("hash_seed", acc.hash_seed);
  json.kv("engine_threads", acc.engine_threads);
  json.key("vhl").begin_object();
  json.kv("enabled", acc.vhl);
  json.kv("max_rel_error", acc.vhl_max_rel_error);
  json.kv("probes", acc.vhl_probes);
  json.end_object();
  json.end_object();

  json.key("offline").begin_object();
  json.kv("batch", spec.offline.batch);
  json.kv("input_seed", spec.offline.input_seed);
  json.end_object();

  json.key("compare").begin_object();
  json.key("backends").begin_array();
  for (const std::string& b : spec.compare.backends) json.value(b);
  json.end_array();
  json.kv("include_vhl", spec.compare.include_vhl);
  json.end_object();

  const ServeOptions& srv = spec.serve;
  json.key("serve").begin_object();
  json.key("hash_tiers").begin_array();
  for (const std::size_t k : srv.hash_tiers) json.value(k);
  json.end_array();
  json.kv("workers", srv.workers);
  json.kv("queue_capacity", srv.queue_capacity);
  json.kv("max_batch", srv.max_batch);
  json.kv("max_delay_us", static_cast<std::int64_t>(srv.max_delay_us));
  json.kv("trace", srv.trace);
  json.kv("requests", srv.requests);
  json.kv("rate_rps", srv.rate_rps);
  json.kv("clients", srv.clients);
  json.kv("trace_seed", srv.trace_seed);
  json.kv("deadline_interactive_us",
          static_cast<std::int64_t>(srv.deadline_interactive_us));
  json.kv("deadline_standard_us",
          static_cast<std::int64_t>(srv.deadline_standard_us));
  json.kv("deadline_batch_us",
          static_cast<std::int64_t>(srv.deadline_batch_us));
  json.kv("shed_interactive", srv.shed_interactive);
  json.kv("shed_standard", srv.shed_standard);
  json.kv("shed_batch", srv.shed_batch);
  json.kv("downgrade_fraction", srv.downgrade_fraction);
  json.key("class_mix").begin_array();
  for (const double w : srv.class_mix) json.value(w);
  json.end_array();
  json.kv("replicas", srv.replicas);
  json.key("retry_limit").begin_array();
  for (const std::size_t r : srv.retry_limit) json.value(r);
  json.end_array();
  json.kv("retry_backoff_us", static_cast<std::int64_t>(srv.retry_backoff_us));
  json.kv("retry_backoff_max_us",
          static_cast<std::int64_t>(srv.retry_backoff_max_us));
  json.kv("hedge", srv.hedge);
  json.kv("hedge_delay_us", static_cast<std::int64_t>(srv.hedge_delay_us));
  json.kv("breaker_failures", srv.breaker_failures);
  json.kv("canary_successes", srv.canary_successes);
  json.kv("quarantine_backoff_us",
          static_cast<std::int64_t>(srv.quarantine_backoff_us));
  json.kv("virtual_time", srv.virtual_time);
  json.key("chaos").begin_array();
  for (const ChaosEventSpec& e : srv.chaos) {
    json.begin_object();
    json.kv("at", e.at);
    json.kv("kind", e.kind);
    json.kv("replica", e.replica);
    json.kv("param", e.param);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  json.key("plan").begin_object();
  json.kv("objective", spec.plan.objective);
  json.kv("batch", spec.plan.batch);
  json.kv("search_rows", spec.plan.search_rows);
  json.kv("search_dataflow", spec.plan.search_dataflow);
  json.kv("probes", spec.plan.probes);
  json.kv("validate", spec.plan.validate);
  json.end_object();

  json.key("outputs").begin_object();
  json.kv("json", spec.outputs.json_path);
  json.kv("csv", spec.outputs.csv);
  json.kv("text", spec.outputs.text);
  json.kv("per_sample", spec.outputs.per_sample);
  json.kv("trace", spec.outputs.trace_path);
  json.kv("metrics", spec.outputs.metrics_path);
  json.kv("profile", spec.outputs.profile);
  json.end_object();

  json.end_object();
  return json.str();
}

}  // namespace deepcam
