// Keyed plan cache (the poplibs ConvReuse trick): planning is deterministic
// in (model geometry, planner configuration), so a canonical string key over
// exactly those inputs lets repeated specs skip the search entirely.
//
// The cache is process-wide and thread-safe; hit/miss counters are exposed
// through the plan outcome JSON so CI can assert that a warm second run
// actually skipped the search.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "plan/planner.hpp"

namespace deepcam::plan {

/// Canonical cache key: every input the planner's output depends on —
/// geometry digest, batch, objective, the full candidate axes, the accuracy
/// constraints, and the baseline hardware parameters. Two specs that differ
/// in any of these never share a plan.
std::string plan_cache_key(std::uint64_t geometry_digest,
                           const PlannerConfig& cfg);

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

class PlanCache {
 public:
  /// The process-wide cache the Runner uses.
  static PlanCache& global();

  /// Returns the plan stored under `key`, or runs `make` and stores its
  /// result. `hit` (optional) reports whether the search was skipped.
  Plan get_or_plan(const std::string& key, const std::function<Plan()>& make,
                   bool* hit = nullptr);

  PlanCacheStats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Plan> plans_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace deepcam::plan
