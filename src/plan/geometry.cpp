#include "plan/geometry.hpp"

#include "common/error.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace deepcam::plan {

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void mix_byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void mix(const std::string& s) {
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
    mix_byte(0);  // delimit, so {"ab","c"} != {"a","bc"}
  }
};

}  // namespace

std::size_t ModelGeometry::peripheral_cycles() const {
  std::size_t cycles = 0;
  for (const std::size_t elems : peripheral_elems) cycles += (elems + 15) / 16;
  return cycles;
}

std::uint64_t ModelGeometry::digest() const {
  Fnv1a f;
  f.mix(model_name);
  f.mix(input.n);
  f.mix(input.c);
  f.mix(input.h);
  f.mix(input.w);
  for (const auto& l : cam_layers) {
    f.mix(l.name);
    f.mix(l.node_index);
    f.mix(static_cast<std::uint64_t>(l.is_conv));
    f.mix(l.patches);
    f.mix(l.kernels);
    f.mix(l.context_len);
  }
  for (const std::size_t elems : peripheral_elems) f.mix(elems);
  return f.h;
}

ModelGeometry extract_geometry(const nn::Model& model, nn::Shape input) {
  ModelGeometry geo;
  geo.model_name = model.name();
  geo.input = input;
  // Per-sample geometry: the engine simulates batch 1 per worker pass.
  input.n = 1;

  std::vector<nn::Shape> shapes(model.node_count());
  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const nn::Layer& layer = model.layer(i);
    const auto& inputs = model.inputs_of(i);
    const nn::Shape in = inputs[0] == nn::kModelInput
                             ? input
                             : shapes[static_cast<std::size_t>(inputs[0])];
    nn::Shape out = in;
    switch (layer.kind()) {
      case nn::LayerKind::kConv2D: {
        const auto& conv = static_cast<const nn::Conv2D&>(layer);
        const nn::ConvSpec& spec = conv.spec();
        out = {1, spec.out_channels, spec.out_h(in.h), spec.out_w(in.w)};
        CamLayerGeometry cl;
        cl.name = layer.name();
        cl.node_index = i;
        cl.is_conv = true;
        cl.patches = out.h * out.w;
        cl.kernels = spec.out_channels;
        cl.context_len = spec.patch_len();
        geo.cam_layers.push_back(std::move(cl));
        break;
      }
      case nn::LayerKind::kLinear: {
        const auto& fc = static_cast<const nn::Linear&>(layer);
        out = {1, fc.out_features(), 1, 1};
        CamLayerGeometry cl;
        cl.name = layer.name();
        cl.node_index = i;
        cl.is_conv = false;
        cl.patches = 1;  // one flat context per sample
        cl.kernels = fc.out_features();
        cl.context_len = fc.in_features();
        geo.cam_layers.push_back(std::move(cl));
        break;
      }
      case nn::LayerKind::kMaxPool: {
        const auto& pool = static_cast<const nn::MaxPool&>(layer);
        out.h = (in.h - pool.window()) / pool.stride() + 1;
        out.w = (in.w - pool.window()) / pool.stride() + 1;
        geo.peripheral_elems.push_back(out.numel());
        break;
      }
      case nn::LayerKind::kAvgPool: {
        const auto& pool = static_cast<const nn::AvgPool&>(layer);
        out.h = (in.h - pool.window()) / pool.stride() + 1;
        out.w = (in.w - pool.window()) / pool.stride() + 1;
        geo.peripheral_elems.push_back(out.numel());
        break;
      }
      case nn::LayerKind::kFlatten:
        out = {1, in.c * in.h * in.w, 1, 1};
        geo.peripheral_elems.push_back(out.numel());
        break;
      case nn::LayerKind::kAdd:
        // Residual add: shape of the first input; the engine charges it as
        // peripheral energy only (zero cycles), so it stays out of
        // peripheral_elems.
        break;
      case nn::LayerKind::kReLU:
      case nn::LayerKind::kBatchNorm:
      case nn::LayerKind::kSoftmax:
        geo.peripheral_elems.push_back(out.numel());
        break;
    }
    shapes[i] = out;
  }
  DEEPCAM_CHECK_MSG(!geo.cam_layers.empty(),
                    "model has no CAM-mapped (Conv2D/Linear) layers");
  return geo;
}

}  // namespace deepcam::plan
