#include "plan/plan_cache.hpp"

#include <sstream>

namespace deepcam::plan {

std::string plan_cache_key(std::uint64_t geometry_digest,
                           const PlannerConfig& cfg) {
  std::ostringstream key;
  key << "geo=" << geometry_digest;
  key << ";obj=" << objective_name(cfg.objective);
  key << ";batch=" << cfg.batch;
  key << ";threads=";
  for (const auto t : cfg.thread_candidates) key << t << ",";
  key << ";micro=";
  for (const auto m : cfg.micro_batch_candidates) key << m << ",";
  key << ";rows=";
  for (const auto r : cfg.row_candidates) key << r << ",";
  key << ";df=" << (cfg.search_dataflow ? "*" : dataflow_name(cfg.base.dataflow));
  key << ";err=" << cfg.max_rel_error;
  key << ";probes=" << cfg.probes;
  key << ";patches=" << cfg.max_sample_patches;
  const core::DeepCamConfig& b = cfg.base;
  key << ";base=" << b.cam_rows << "/" << core::dataflow_name(b.dataflow)
      << "/" << (b.preset == core::CyclePreset::kConservative ? "cons" : "ideal")
      << "/" << (b.tech == cam::CellTech::kFeFET ? "fefet" : "cmos")
      << "/k" << b.default_hash_bits << "/s" << b.hash_seed
      << "/pwl" << (b.postproc.use_pwl_cosine ? 1 : 0)
      << "/mf" << (b.postproc.minifloat_norms ? 1 : 0);
  return key.str();
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

Plan PlanCache::get_or_plan(const std::string& key,
                            const std::function<Plan()>& make, bool* hit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  // Plan outside the lock: planning is pure, so a racing duplicate is
  // merely redundant work producing an identical value.
  Plan plan = make();
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  if (hit != nullptr) *hit = false;
  plans_.emplace(key, plan);
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = plans_.size();
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace deepcam::plan
