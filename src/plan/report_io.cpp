#include "plan/report_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/format.hpp"

namespace deepcam::plan {

void plan_json(JsonWriter& json, const Plan& plan) {
  json.begin_object();
  json.kv("model", plan.model_name);
  json.kv("geometry_digest", plan.geometry_digest);
  json.kv("objective", objective_name(plan.objective));
  json.kv("batch", plan.batch);
  json.kv("cam_rows", plan.cam_rows);
  json.kv("dataflow", core::dataflow_name(plan.dataflow));
  json.kv("micro_batch", plan.micro_batch);
  json.kv("threads", plan.threads);
  json.key("hash_bits").begin_array();
  for (const std::size_t k : plan.hash_bits) json.value(k);
  json.end_array();
  json.key("floors").begin_array();
  for (const auto& f : plan.floors) {
    json.begin_object();
    json.kv("layer", f.name);
    json.kv("hash_bits", f.hash_bits);
    json.kv("predicted_rel_error", f.predicted_rel_error);
    json.kv("measured_rel_error", f.measured_rel_error);
    json.end_object();
  }
  json.end_array();
  json.kv("configs_evaluated", plan.configs_evaluated);
  json.kv("objective_value", plan.objective_value);
  json.key("cost").begin_object();
  json.kv("sample_cycles", plan.cost.sample_cycles());
  json.kv("peripheral_cycles", plan.cost.peripheral_cycles);
  json.kv("total_cycles", plan.cost.total_cycles());
  json.kv("total_energy_j", plan.cost.total_energy());
  json.kv("makespan_cycles", plan.cost.makespan_cycles());
  json.kv("time_seconds", plan.cost.time_seconds());
  json.kv("edp", plan.cost.edp());
  json.kv("throughput_samples_per_s", plan.cost.throughput_samples_per_s());
  json.key("layers").begin_array();
  for (const auto& l : plan.cost.layers) {
    json.begin_object();
    json.kv("name", l.name);
    json.kv("patches", l.patches);
    json.kv("kernels", l.kernels);
    json.kv("context_len", l.context_len);
    json.kv("hash_bits", l.hash_bits);
    json.kv("passes", l.plan.passes);
    json.kv("searches", l.plan.searches);
    json.kv("rows_written", l.plan.rows_written);
    json.kv("utilization", l.plan.utilization);
    json.kv("cycles", l.cycles);
    json.kv("cam_energy_j", l.cam_energy);
    json.kv("postproc_energy_j", l.postproc_energy);
    json.kv("ctxgen_energy_j", l.ctxgen_energy);
    json.end_object();
  }
  json.end_array();
  json.end_object();  // cost
  json.end_object();
}

std::string plan_to_json(const Plan& plan) {
  JsonWriter json;
  plan_json(json, plan);
  return json.str();
}

void plan_cache_stats_json(JsonWriter& json, const PlanCacheStats& stats) {
  json.begin_object();
  json.kv("hits", stats.hits);
  json.kv("misses", stats.misses);
  json.kv("entries", stats.entries);
  json.end_object();
}

std::string plan_summary(const Plan& plan) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "plan %s: objective %s, batch %zu -> rows=%zu %s "
                "micro_batch=%zu threads=%zu (%zu configs)\n",
                plan.model_name.c_str(), objective_name(plan.objective),
                plan.batch, plan.cam_rows,
                core::dataflow_name(plan.dataflow), plan.micro_batch,
                plan.threads, plan.configs_evaluated);
  os << buf;
  for (const auto& f : plan.floors) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s k=%-4zu rel_err %s (predicted %s)\n",
                  f.name.c_str(), f.hash_bits,
                  format_fixed(f.measured_rel_error, 4).c_str(),
                  format_fixed(f.predicted_rel_error, 4).c_str());
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "  est: %zu cycles/sample, makespan %zu cycles (%s us), "
                "energy %s uJ, %s samples/s\n",
                plan.cost.sample_cycles(), plan.cost.makespan_cycles(),
                format_fixed(plan.cost.time_seconds() * 1e6, 3).c_str(),
                format_fixed(plan.cost.total_energy() * 1e6, 3).c_str(),
                format_fixed(plan.cost.throughput_samples_per_s(), 0).c_str());
  os << buf;
  return os.str();
}

}  // namespace deepcam::plan
