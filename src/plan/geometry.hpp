// Static geometry extraction for the plan subsystem.
//
// Every cycle and every reported joule in the DeepCAM engine is a pure
// function of (model geometry, DeepCamConfig) — the cost paths never look at
// activation values — so a planner can cost a configuration without running
// a single forward pass. extract_geometry() propagates output shapes through
// the layer DAG symbolically (the same closed forms the layers implement)
// and records, per CAM-mapped layer, the (P, K, n) triple that drives the
// mapping arithmetic, plus the element counts of the digital peripheral
// layers.
//
// The geometry also yields a stable FNV-1a digest over (name, topology,
// every geometry number), which is the plan-cache key component identifying
// "the same network" across processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace deepcam::plan {

/// One CAM-mapped (Conv2D/Linear) layer's static workload shape.
struct CamLayerGeometry {
  std::string name;
  std::size_t node_index = 0;
  bool is_conv = false;
  std::size_t patches = 0;      // P: activation contexts per sample
  std::size_t kernels = 0;      // K: weight contexts (CAM occupancy)
  std::size_t context_len = 0;  // n: patch vector length
};

/// Whole-model static geometry at a fixed input shape.
struct ModelGeometry {
  std::string model_name;
  nn::Shape input;
  std::vector<CamLayerGeometry> cam_layers;
  /// Output element counts of the single-input non-CAM layers, in node
  /// order. The conservative preset charges ceil(elems/16) cycles each;
  /// residual Adds are energy-only and deliberately absent.
  std::vector<std::size_t> peripheral_elems;

  /// Conservative-preset peripheral cycles per sample (idealized charges 0).
  std::size_t peripheral_cycles() const;

  /// FNV-1a digest over every field above.
  std::uint64_t digest() const;
};

/// Propagates `input` through the graph without executing it.
ModelGeometry extract_geometry(const nn::Model& model, nn::Shape input);

}  // namespace deepcam::plan
