// Plan serialization: the JSON shape golden-pinned by outcome_plan.json.
//
// plan_json is an append-style JsonWriter helper (the same idiom as
// core::run_report_json) so the facade outcome, the CLI artifact, and the
// bench harness all embed byte-identical plan objects — which is exactly
// what the cache-determinism test compares.
#pragma once

#include <string>

#include "common/json.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"

namespace deepcam::plan {

/// Appends one JSON object describing `plan`: the chosen configuration,
/// per-layer hash floors, and the analytical cost estimate.
void plan_json(JsonWriter& json, const Plan& plan);

/// One self-contained JSON document for a Plan. Locale-proof, byte-stable.
std::string plan_to_json(const Plan& plan);

/// Appends the cache counters object ({hits, misses, entries}).
void plan_cache_stats_json(JsonWriter& json, const PlanCacheStats& stats);

/// Multi-line human-readable summary of a Plan.
std::string plan_summary(const Plan& plan);

}  // namespace deepcam::plan
