// Plan search over the joint DeepCAM configuration space (the poplibs
// ConvPlan role).
//
// The planner replaces wall-clock sweeps with two model-guided passes:
//
//  1. Accuracy floors — per CAM layer, the smallest hash length whose
//     approximation error fits the budget. Instead of the empirical tuner's
//     exhaustive (probe × patch × candidate-k) evaluation, the planner
//     subsamples patches, hashes them ONCE at the full 1024 bits (shorter
//     hashes are bit prefixes), calibrates the relative L2 error at k = 256
//     and extrapolates with the SimHash concentration law err ∝ 1/sqrt(k),
//     then verifies only the predicted choice (bumping one level at a time
//     if the measurement disagrees). Cost per layer: one hash pass plus
//     ~two Hamming evaluations, versus the tuner's four.
//
//  2. Cost search — with per-layer hash lengths fixed by the floors (cost is
//     strictly monotone in k, so the minimal admissible k is optimal under
//     every objective), exhaustively cost the small discrete grid of
//     (CAM rows × dataflow × micro-batch × threads) with the analytical
//     CostModel and keep the configuration minimizing the objective
//     (cycles, energy, or EDP). No simulation anywhere.
//
// The resulting Plan is a plain serializable value: byte-identical for
// identical inputs (no wall-clock inside), which is what the PlanCache's
// determinism contract pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hash_tuner.hpp"
#include "nn/model.hpp"
#include "plan/cost_model.hpp"

namespace deepcam::plan {

enum class Objective { kCycles, kEnergy, kEdp };

const char* objective_name(Objective obj);
Objective objective_from_name(const std::string& name);

/// Search-space bounds and accuracy constraints.
struct PlannerConfig {
  Objective objective = Objective::kCycles;
  std::size_t batch = 1;
  /// Engine worker counts to consider (0 entries = {1}).
  std::vector<std::size_t> thread_candidates = {1, 2, 4, 8};
  /// Micro-batch sizes to consider (clamped to batch; 0 entries = {batch}).
  std::vector<std::size_t> micro_batch_candidates = {1, 4, 8, 16, 32};
  /// CAM row counts to consider; empty = keep `base.cam_rows` fixed.
  std::vector<std::size_t> row_candidates = {64, 128, 256, 512};
  /// Consider both dataflows (false = keep `base.dataflow`).
  bool search_dataflow = true;
  /// Accuracy budget: max mean relative L2 error per CAM layer (the
  /// HashTuner's kLayerLocal criterion).
  double max_rel_error = 0.25;
  /// Sensitivity probes (0 disables the accuracy pass: every layer gets
  /// base.default_hash_bits).
  std::size_t probes = 2;
  /// Patches sampled per layer per probe for the sensitivity estimate.
  std::size_t max_sample_patches = 64;
  /// Baseline hardware parameters (tech, preset, seed, postproc options);
  /// cam_rows/dataflow serve as the fixed point when their search is off.
  core::DeepCamConfig base = {};
};

/// Per-layer accuracy-floor diagnostics.
struct LayerFloor {
  std::string name;
  std::size_t hash_bits = 0;      // chosen floor
  double predicted_rel_error = 0.0;
  double measured_rel_error = 0.0;  // at the chosen k
};

/// A fully resolved configuration choice — serializable, wall-clock free.
struct Plan {
  std::string model_name;
  std::uint64_t geometry_digest = 0;
  Objective objective = Objective::kCycles;
  std::size_t batch = 1;

  std::size_t cam_rows = 64;
  core::Dataflow dataflow = core::Dataflow::kActivationStationary;
  std::size_t micro_batch = 1;
  std::size_t threads = 1;
  std::vector<std::size_t> hash_bits;  // per CAM layer
  std::vector<LayerFloor> floors;

  CostEstimate cost;             // under the chosen configuration
  double objective_value = 0.0;  // cycles, joules, or J·s
  std::size_t configs_evaluated = 0;

  /// DeepCamConfig realizing this plan (threads/micro-batch live in the
  /// engine/serving layer, not here).
  core::DeepCamConfig config(const core::DeepCamConfig& base) const;
};

class Planner {
 public:
  /// The model is only read: geometry extraction, const inference for the
  /// sensitivity probes, and weight hashing.
  Planner(const nn::Model& model, nn::Shape input);

  const CostModel& cost_model() const { return cost_; }

  /// Runs the accuracy pass + cost search.
  Plan plan(const PlannerConfig& cfg) const;

  /// Model-guided replacement for core::tune_hash_lengths: the accuracy
  /// pass alone, reported in the tuner's TuneResult shape. Metrics for hash
  /// lengths the planner did not measure are the 1/sqrt(k) predictions.
  core::TuneResult guided_tune(const PlannerConfig& cfg) const;

 private:
  std::vector<LayerFloor> accuracy_floors(const PlannerConfig& cfg,
                                          std::vector<std::vector<double>>*
                                              metrics) const;

  const nn::Model* model_;
  CostModel cost_;
};

}  // namespace deepcam::plan
