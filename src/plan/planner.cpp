#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>

#include "codelet/codelet.hpp"
#include "common/error.hpp"
#include "hash/cosine_approx.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "sim/backend.hpp"

namespace deepcam::plan {

const char* objective_name(Objective obj) {
  switch (obj) {
    case Objective::kCycles: return "cycles";
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "edp";
  }
  return "?";
}

Objective objective_from_name(const std::string& name) {
  if (name == "cycles") return Objective::kCycles;
  if (name == "energy") return Objective::kEnergy;
  if (name == "edp") return Objective::kEdp;
  throw Error("unknown plan objective \"" + name +
              "\" (cycles|energy|edp)");
}

core::DeepCamConfig Plan::config(const core::DeepCamConfig& base) const {
  core::DeepCamConfig cfg = base;
  cfg.cam_rows = cam_rows;
  cfg.dataflow = dataflow;
  cfg.layer_hash_bits = hash_bits;
  return cfg;
}

namespace {

/// Sampled sensitivity data of one CAM layer: contexts hashed once at the
/// full 1024 bits (every shorter k is a bit prefix) plus the exact outputs
/// they approximate.
struct LayerSamples {
  core::ContextBatch weights;
  std::vector<float> bias;
  std::vector<core::ContextBatch> acts;       // per probe
  std::vector<std::vector<double>> refs;      // per probe, [K][m] row-major
};

/// Mean-over-probes relative L2 error of the approximate dot products at
/// hash length `k` — the HashTuner's kLayerLocal metric on the sampled
/// patches.
double rel_error_at(const LayerSamples& s, std::size_t k,
                    const core::PostProcessingUnit::Options& pp) {
  double err_sum = 0.0;
  const std::size_t K = s.weights.size();
  std::vector<std::uint16_t> hd;
  for (std::size_t pi = 0; pi < s.acts.size(); ++pi) {
    const core::ContextBatch& a_ctx = s.acts[pi];
    const std::size_t m = a_ctx.size();
    hd.resize(m);
    double num = 0.0, den = 0.0;
    for (std::size_t kk = 0; kk < K; ++kk) {
      const core::ContextRef w = s.weights[kk];
      const double nw = pp.minifloat_norms ? w.norm() : w.exact_norm;
      if (m > 0)
        codelet::kernels().hamming_many(w.sig, a_ctx.sig(0),
                                        a_ctx.words_per_sig(), m, k,
                                        hd.data());
      for (std::size_t j = 0; j < m; ++j) {
        const core::ContextRef a = a_ctx[j];
        const double na = pp.minifloat_norms ? a.norm() : a.exact_norm;
        const double approx =
            hash::approx_dot(nw, na, hd[j], k, pp.use_pwl_cosine) +
            static_cast<double>(s.bias[kk]);
        const double ref = s.refs[pi][kk * m + j];
        const double d = approx - ref;
        num += d * d;
        den += ref * ref;
      }
    }
    err_sum += std::sqrt(num / (den + 1e-30));
  }
  return s.acts.empty() ? 0.0 : err_sum / static_cast<double>(s.acts.size());
}

std::size_t level_of(std::size_t k) { return k / 256 - 1; }

}  // namespace

Planner::Planner(const nn::Model& model, nn::Shape input)
    : model_(&model), cost_(extract_geometry(model, input)) {}

std::vector<LayerFloor> Planner::accuracy_floors(
    const PlannerConfig& cfg,
    std::vector<std::vector<double>>* metrics) const {
  const ModelGeometry& geo = cost_.geometry();
  std::vector<LayerFloor> floors(geo.cam_layers.size());
  if (metrics != nullptr)
    metrics->assign(geo.cam_layers.size(),
                    std::vector<double>(hash::kNumHashLengths, 0.0));
  if (cfg.probes == 0) {
    for (std::size_t li = 0; li < geo.cam_layers.size(); ++li) {
      floors[li].name = geo.cam_layers[li].name;
      floors[li].hash_bits = cfg.base.default_hash_bits;
    }
    return floors;
  }

  const std::vector<nn::Tensor> probes =
      sim::make_probe_batch(geo.input, cfg.probes, sim::kProbeSeed);
  std::vector<std::vector<nn::Tensor>> exact;
  exact.reserve(probes.size());
  for (const auto& p : probes) exact.push_back(model_->infer_all(p));

  for (std::size_t li = 0; li < geo.cam_layers.size(); ++li) {
    const CamLayerGeometry& cl = geo.cam_layers[li];
    const nn::Layer& layer = model_->layer(cl.node_index);
    const int in_node = model_->inputs_of(cl.node_index)[0];

    // Gather sampled contexts (hashed once, at the maximum length) and
    // their exact reference outputs.
    LayerSamples samples;
    core::ContextGenerator gen(
        cl.context_len,
        core::layer_hash_seed(cfg.base.hash_seed, cl.node_index));
    if (cl.is_conv) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      const nn::ConvSpec& spec = conv.spec();
      samples.weights = gen.weight_context_batch(conv);
      samples.bias = conv.bias();
      const std::size_t P = cl.patches;
      const std::size_t m =
          std::min(P, std::max<std::size_t>(1, cfg.max_sample_patches));
      std::vector<float> mat(m * cl.context_len);
      for (std::size_t pi = 0; pi < probes.size(); ++pi) {
        const nn::Tensor& in =
            in_node == nn::kModelInput
                ? probes[pi]
                : exact[pi][static_cast<std::size_t>(in_node)];
        const std::size_t ow = spec.out_w(in.shape().w);
        for (std::size_t j = 0; j < m; ++j) {
          const std::size_t idx = j * P / m;  // strictly increasing: m <= P
          nn::extract_patch(in, 0, idx / ow, idx % ow, spec.kernel_h,
                            spec.kernel_w, spec.stride, spec.pad,
                            {mat.data() + j * cl.context_len,
                             cl.context_len});
        }
        core::ContextBatch acts;
        gen.contexts_into(mat.data(), m, acts, hash::kMaxHashBits);
        acts.release_scratch();
        const nn::Tensor& out = exact[pi][cl.node_index];
        std::vector<double> ref(cl.kernels * m);
        for (std::size_t kk = 0; kk < cl.kernels; ++kk)
          for (std::size_t j = 0; j < m; ++j)
            ref[kk * m + j] =
                static_cast<double>(out[kk * P + j * P / m]);
        samples.acts.push_back(std::move(acts));
        samples.refs.push_back(std::move(ref));
      }
    } else {
      const auto& fc = static_cast<const nn::Linear&>(layer);
      samples.weights = gen.weight_context_batch(fc);
      samples.bias = fc.bias();
      for (std::size_t pi = 0; pi < probes.size(); ++pi) {
        const nn::Tensor& in =
            in_node == nn::kModelInput
                ? probes[pi]
                : exact[pi][static_cast<std::size_t>(in_node)];
        core::ContextBatch acts;
        gen.activation_context_flat_into(in, acts, 0, hash::kMaxHashBits);
        acts.release_scratch();
        const nn::Tensor& out = exact[pi][cl.node_index];
        std::vector<double> ref(cl.kernels);
        for (std::size_t kk = 0; kk < cl.kernels; ++kk)
          ref[kk] = static_cast<double>(out[kk]);
        samples.acts.push_back(std::move(acts));
        samples.refs.push_back(std::move(ref));
      }
    }

    // Calibrate at the shortest hash, extrapolate with the SimHash
    // concentration law err ∝ 1/sqrt(k), verify the predicted choice.
    const double err256 = rel_error_at(samples, 256, cfg.base.postproc);
    std::vector<double> metric(hash::kNumHashLengths);
    std::vector<bool> measured(hash::kNumHashLengths, false);
    metric[0] = err256;
    measured[0] = true;
    for (int ki = 1; ki < hash::kNumHashLengths; ++ki)
      metric[ki] =
          err256 * std::sqrt(256.0 /
                             static_cast<double>(hash::kHashLengths[ki]));

    std::size_t chosen = hash::kMaxHashBits;
    for (int ki = 0; ki < hash::kNumHashLengths; ++ki) {
      if (metric[ki] <= cfg.max_rel_error) {
        chosen = static_cast<std::size_t>(hash::kHashLengths[ki]);
        break;
      }
    }
    double predicted = metric[level_of(chosen)];
    if (!measured[level_of(chosen)]) {
      metric[level_of(chosen)] =
          rel_error_at(samples, chosen, cfg.base.postproc);
      measured[level_of(chosen)] = true;
    }
    // The extrapolation can undershoot; climb one level at a time until the
    // measurement agrees (or the ladder tops out).
    while (metric[level_of(chosen)] > cfg.max_rel_error &&
           chosen < hash::kMaxHashBits) {
      chosen += 256;
      predicted = metric[level_of(chosen)];
      if (!measured[level_of(chosen)]) {
        metric[level_of(chosen)] =
            rel_error_at(samples, chosen, cfg.base.postproc);
        measured[level_of(chosen)] = true;
      }
    }

    floors[li].name = cl.name;
    floors[li].hash_bits = chosen;
    floors[li].predicted_rel_error = predicted;
    floors[li].measured_rel_error = metric[level_of(chosen)];
    if (metrics != nullptr) (*metrics)[li] = std::move(metric);
  }
  return floors;
}

Plan Planner::plan(const PlannerConfig& cfg) const {
  const ModelGeometry& geo = cost_.geometry();
  const std::size_t batch = std::max<std::size_t>(1, cfg.batch);

  Plan best;
  best.model_name = geo.model_name;
  best.geometry_digest = geo.digest();
  best.objective = cfg.objective;
  best.batch = batch;
  best.floors = accuracy_floors(cfg, nullptr);
  best.hash_bits.reserve(best.floors.size());
  for (const auto& f : best.floors) best.hash_bits.push_back(f.hash_bits);

  // Candidate axes, deterministic order. Search runs strictly-better
  // replacement, so ties resolve to the earliest candidate (smallest rows,
  // AS dataflow, smallest micro-batch/threads).
  std::vector<std::size_t> rows = cfg.row_candidates;
  if (rows.empty()) rows = {cfg.base.cam_rows};
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  std::vector<core::Dataflow> dataflows;
  if (cfg.search_dataflow)
    dataflows = {core::Dataflow::kActivationStationary,
                 core::Dataflow::kWeightStationary};
  else
    dataflows = {cfg.base.dataflow};

  std::vector<std::size_t> micro = cfg.micro_batch_candidates;
  for (auto& m : micro) m = std::min(std::max<std::size_t>(1, m), batch);
  if (micro.empty()) micro = {batch};
  std::sort(micro.begin(), micro.end());
  micro.erase(std::unique(micro.begin(), micro.end()), micro.end());

  std::vector<std::size_t> threads = cfg.thread_candidates;
  for (auto& t : threads) t = std::max<std::size_t>(1, t);
  if (threads.empty()) threads = {1};
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());

  bool have_best = false;
  for (const std::size_t r : rows) {
    for (const core::Dataflow df : dataflows) {
      core::DeepCamConfig hw = cfg.base;
      hw.cam_rows = r;
      hw.dataflow = df;
      hw.layer_hash_bits = best.hash_bits;
      // Layer costs depend only on (rows, dataflow, hash bits); micro-batch
      // and threads only reshape the makespan, so estimate once per
      // hardware point and sweep the schedule axes on the same estimate.
      CostEstimate est = cost_.estimate(hw, batch);
      for (const std::size_t m : micro) {
        for (const std::size_t t : threads) {
          est.micro_batch = m;
          est.threads = t;
          double value = 0.0;
          switch (cfg.objective) {
            case Objective::kCycles:
              value = static_cast<double>(est.makespan_cycles());
              break;
            case Objective::kEnergy:
              value = est.total_energy();
              break;
            case Objective::kEdp:
              value = est.edp();
              break;
          }
          ++best.configs_evaluated;
          if (!have_best || value < best.objective_value) {
            have_best = true;
            best.cam_rows = r;
            best.dataflow = df;
            best.micro_batch = m;
            best.threads = t;
            best.cost = est;
            best.objective_value = value;
          }
        }
      }
    }
  }
  DEEPCAM_CHECK(have_best);
  return best;
}

core::TuneResult Planner::guided_tune(const PlannerConfig& cfg) const {
  std::vector<std::vector<double>> metrics;
  const std::vector<LayerFloor> floors = accuracy_floors(cfg, &metrics);
  core::TuneResult result;
  const ModelGeometry& geo = cost_.geometry();
  for (std::size_t li = 0; li < floors.size(); ++li) {
    core::LayerSensitivity sens;
    sens.layer_name = floors[li].name;
    sens.context_len = geo.cam_layers[li].context_len;
    sens.metric = metrics[li];
    sens.chosen_bits = floors[li].hash_bits;
    result.layers.push_back(std::move(sens));
    result.hash_bits.push_back(floors[li].hash_bits);
  }
  return result;
}

}  // namespace deepcam::plan
