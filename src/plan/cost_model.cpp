#include "plan/cost_model.hpp"

#include "cam/energy_model.hpp"
#include "common/digital_sqrt.hpp"
#include "common/error.hpp"
#include "common/tech.hpp"

namespace deepcam::plan {

namespace {

/// Search latency in cycles — same closed form as
/// CompiledModel::search_cycles_for.
std::size_t search_cycles(std::size_t hash_bits, core::CyclePreset preset) {
  if (preset == core::CyclePreset::kIdealized) return 1;
  const std::size_t chunks = (hash_bits + 255) / 256;
  return static_cast<std::size_t>(tech::kCamSearchBaseCycles) +
         static_cast<std::size_t>(tech::kCamSearchCyclesPerChunk) * chunks;
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

std::size_t CostEstimate::sample_cycles() const {
  std::size_t cycles = peripheral_cycles;
  for (const auto& l : layers) cycles += l.cycles;
  return cycles;
}

double CostEstimate::sample_energy() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.total_energy();
  return e;
}

std::size_t CostEstimate::makespan_cycles() const {
  if (batch == 0) return 0;
  const std::size_t m = micro_batch == 0 ? batch : std::min(micro_batch, batch);
  const std::size_t t = threads == 0 ? 1 : threads;
  const std::size_t rounds = ceil_div(batch, m);
  const std::size_t waves = ceil_div(std::min(m, batch), t);
  return rounds * waves * sample_cycles();
}

double CostEstimate::time_seconds() const {
  return static_cast<double>(makespan_cycles()) * tech::kCycleSeconds;
}

double CostEstimate::throughput_samples_per_s() const {
  const double t = time_seconds();
  return t > 0.0 ? static_cast<double>(batch) / t : 0.0;
}

LayerCost CostModel::layer_cost(const CamLayerGeometry& layer,
                                std::size_t hash_bits, bool online_ctxgen,
                                const core::DeepCamConfig& cfg) const {
  const std::size_t P = layer.patches;
  const std::size_t K = layer.kernels;
  const std::size_t n = layer.context_len;
  const std::size_t k = hash_bits;

  LayerCost lc;
  lc.name = layer.name;
  lc.patches = P;
  lc.kernels = K;
  lc.context_len = n;
  lc.hash_bits = k;
  lc.plan = core::plan_mapping({P, K}, cfg.cam_rows, cfg.dataflow);

  // Cycles: the engine's simulate_cam_layer accounting, verbatim.
  lc.cycles = lc.plan.searches * search_cycles(k, cfg.preset);
  if (cfg.preset == core::CyclePreset::kConservative) {
    lc.cycles += lc.plan.rows_written *
                 static_cast<std::size_t>(tech::kCamWriteCyclesPerRow);
    lc.cycles +=
        lc.plan.passes * static_cast<std::size_t>(tech::kCamPassDrainCycles);
    if (online_ctxgen)
      lc.cycles += P * static_cast<std::size_t>(tech::kXbarInputBits);
  }

  // CAM energy: one search_flat per search, one row program per row write,
  // both at active_bits == k (hash lengths are multiples of the 256-bit
  // chunk). Search energy scales with the full row count R, not occupancy —
  // every row's match line discharges.
  const cam::CamConfig cam_cfg{cfg.cam_rows, 256, 4, cfg.tech};
  lc.cam_energy = static_cast<double>(lc.plan.searches) *
                      cam::CamCostModel::search_energy(cam_cfg, k) +
                  static_cast<double>(lc.plan.rows_written) *
                      cam::CamCostModel::write_energy(cam_cfg, k);

  // Post-processing: one finish_dot_product per (kernel, patch) pair.
  lc.postproc_energy =
      static_cast<double>(P) * static_cast<double>(K) *
      (tech::kCosineUnitEnergy + 2.0 * tech::kMiniFloatMulEnergy +
       tech::kAdd8Energy + tech::kPipeRegEnergy);

  // Online context generation: norm adder tree + digital sqrt + crossbar
  // hash, once per patch (CAM layers after the first only).
  if (online_ctxgen) {
    const double norm_energy =
        static_cast<double>(n) * tech::kMul8Energy +
        static_cast<double>(n > 0 ? n - 1 : 0) * tech::kAdd16Energy +
        static_cast<double>(kCyclesPerSqrt32) * tech::kSqrtIterEnergy;
    const double hash_energy =
        static_cast<double>(n) * static_cast<double>(k) *
            tech::kXbarCellEnergy +
        static_cast<double>(k) * tech::kXbarSenseAmpEnergy;
    lc.ctxgen_energy = static_cast<double>(P) * (norm_energy + hash_energy);
  }
  return lc;
}

CostEstimate CostModel::estimate(const core::DeepCamConfig& cfg,
                                 std::size_t batch, std::size_t threads,
                                 std::size_t micro_batch) const {
  DEEPCAM_CHECK_MSG(cfg.layer_hash_bits.empty() ||
                        cfg.layer_hash_bits.size() == geo_.cam_layers.size(),
                    "layer_hash_bits arity mismatch");
  CostEstimate est;
  est.batch = batch;
  est.micro_batch = micro_batch == 0 ? batch : micro_batch;
  est.threads = threads == 0 ? 1 : threads;
  est.peripheral_cycles = cfg.preset == core::CyclePreset::kConservative
                              ? geo_.peripheral_cycles()
                              : 0;
  est.layers.reserve(geo_.cam_layers.size());
  for (std::size_t i = 0; i < geo_.cam_layers.size(); ++i) {
    const std::size_t k = cfg.layer_hash_bits.empty()
                              ? cfg.default_hash_bits
                              : cfg.layer_hash_bits[i];
    est.layers.push_back(layer_cost(geo_.cam_layers[i], k, i > 0, cfg));
  }
  return est;
}

}  // namespace deepcam::plan
