// Analytical per-stage cost model (the poplibs PerformanceEstimation.hpp
// role for DeepCAM).
//
// CostModel::estimate() replicates the engine's accounting closed-form:
// mapping arithmetic (passes/searches/row writes), CAM search + write
// energy via cam::CamCostModel, post-processing energy per dot product,
// online context-generation energy for every CAM layer after the first, and
// the conservative preset's write/drain/bit-serial-input and peripheral
// cycles. Because the engine itself never inspects activation values when
// charging cost, the estimate is exact on the per-sample counters — the
// test_plan suite pins it well inside the ±15% acceptance band and asserts
// near-exactness on LeNet5.
//
// Batching/threading extends the per-sample cost to wall-clock: samples are
// data-parallel across engine workers, so a batch B executed in micro-
// batches of m on t threads has makespan ceil(B/m)·ceil(min(m,B)/t) sample
// latencies, matching BatchReport::simulated_throughput's pipeline count.
#pragma once

#include <string>
#include <vector>

#include "core/compiled_model.hpp"
#include "core/mapping.hpp"
#include "plan/geometry.hpp"

namespace deepcam::plan {

/// Analytical cost of one CAM layer — mirrors core::LayerReport.
struct LayerCost {
  std::string name;
  std::size_t patches = 0;       // P
  std::size_t kernels = 0;       // K
  std::size_t context_len = 0;   // n
  std::size_t hash_bits = 0;     // k
  core::MappingPlan plan;
  std::size_t cycles = 0;        // per chosen preset, one sample
  double cam_energy = 0.0;       // joules (search + write)
  double postproc_energy = 0.0;  // joules (cosine/mult/bias per dot product)
  double ctxgen_energy = 0.0;    // joules (online context generation)

  double total_energy() const {
    return cam_energy + postproc_energy + ctxgen_energy;
  }
};

/// Whole-run analytical estimate for (geometry, config, batch, threads).
struct CostEstimate {
  std::vector<LayerCost> layers;
  std::size_t peripheral_cycles = 0;  // per sample, conservative preset
  std::size_t batch = 1;
  std::size_t micro_batch = 1;
  std::size_t threads = 1;

  /// Latency of one sample through the whole network (the engine's
  /// RunReport::total_cycles for that sample).
  std::size_t sample_cycles() const;
  /// Reported energy of one sample (peripheral energy is excluded from
  /// RunReport::total_energy; so here).
  double sample_energy() const;

  /// Aggregate simulated work over the batch — what the engine's merged
  /// BatchReport aggregate counts (exactly linear in batch).
  std::size_t total_cycles() const { return sample_cycles() * batch; }
  double total_energy() const { return sample_energy() * batch; }

  /// Wall-clock cycles with `threads` data-parallel workers draining the
  /// batch in micro-batches of `micro_batch` samples.
  std::size_t makespan_cycles() const;
  double time_seconds() const;  // makespan at the 300 MHz system clock
  double edp() const { return total_energy() * time_seconds(); }
  double throughput_samples_per_s() const;
};

/// Stateless estimator over one extracted ModelGeometry.
class CostModel {
 public:
  explicit CostModel(ModelGeometry geometry) : geo_(std::move(geometry)) {}

  const ModelGeometry& geometry() const { return geo_; }

  /// Cost of one CAM layer under `cfg` at hash length `hash_bits`.
  /// `online_ctxgen` mirrors the engine: every CAM layer but the first
  /// generates its activation contexts online.
  LayerCost layer_cost(const CamLayerGeometry& layer, std::size_t hash_bits,
                       bool online_ctxgen,
                       const core::DeepCamConfig& cfg) const;

  /// Full-network estimate. `cfg.layer_hash_bits` (or default_hash_bits)
  /// resolves per-layer k exactly as CompiledModel does. micro_batch = 0
  /// means one micro-batch covering the whole batch; threads = 0 means one
  /// worker.
  CostEstimate estimate(const core::DeepCamConfig& cfg, std::size_t batch = 1,
                        std::size_t threads = 1,
                        std::size_t micro_batch = 0) const;

 private:
  ModelGeometry geo_;
};

}  // namespace deepcam::plan
