// Piecewise-linear cosine approximation (paper eq. 5) and angle estimation.
//
// The post-processing unit cannot afford a real cosine (LUTs / CORDIC are
// called out as too expensive), so the paper uses:
//
//   cos(θ) ≈  1 − θ/π            for 0   < θ ≤ π/3
//   cos(θ) ≈ −0.96·θ + 1.51      for π/3 < θ ≤ π/2
//   cos(θ) ≈ −cos_approx(π − θ)  for θ > π/2       (odd reflection)
//
// The angle itself comes from the CAM: θ ≈ π · HD / k  (eq. 3).
#pragma once

#include <cstddef>

namespace deepcam::hash {

/// PWL cosine per paper eq. 5. Input domain [0, π]; values outside are
/// clamped. Exactly reproduces the published breakpoints.
double pwl_cosine(double theta);

/// Maximum absolute error of pwl_cosine over [0, π] (useful bound for tests;
/// the 1−θ/π segment peaks at ~0.167 near θ=π/3).
inline constexpr double kPwlCosineMaxAbsError = 0.18;

/// Angle estimate from a Hamming distance at hash length k (paper eq. 3).
double angle_from_hamming(std::size_t hamming, std::size_t k);

/// Approximate geometric dot-product (paper eq. 4):
///   x·y ≈ ‖x‖·‖y‖·cos(π·HD/k)
/// `use_pwl` selects the hardware PWL cosine vs an exact cosine (ablation).
double approx_dot(double norm_x, double norm_y, std::size_t hamming,
                  std::size_t k, bool use_pwl = true);

}  // namespace deepcam::hash
