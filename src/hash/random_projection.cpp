#include "hash/random_projection.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace deepcam::hash {

namespace {

// Tile sizes of the blocked projection kernel. Up to kPatchBlock vectors
// share each cached slice of a C row (an 8× cut in traffic over the n×1024
// matrix, the kernel's only large operand); accumulation runs in a local
// 8×64-float tile (2 KiB, hot in L1 and free of aliasing with the operands)
// that is spilled to the output once per tile instead of re-loading/storing
// output rows every input element. Measured ~2× over accumulating in the
// output buffer directly at the baseline (no-FMA) ISA this project pins for
// reproducibility.
constexpr std::size_t kPatchBlock = 8;
constexpr std::size_t kColBlock = 64;

/// Packs `nbits` sign bits (proj[j] >= 0, so +0/-0 both hash to 1 and NaN to
/// 0, matching the scalar comparison) into words, 64 bits per word write.
void pack_signs(const float* proj, std::size_t nbits, std::uint64_t* words) {
  const std::size_t nwords = (nbits + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(nbits, lo + 64);
    std::uint64_t bits = 0;
    for (std::size_t j = lo; j < hi; ++j)
      bits |= static_cast<std::uint64_t>(proj[j] >= 0.0f) << (j - lo);
    words[w] = bits;
  }
}

}  // namespace

RandomProjection::RandomProjection(std::size_t input_dim,
                                   std::size_t hash_bits, std::uint64_t seed)
    : input_dim_(input_dim), hash_bits_(hash_bits) {
  DEEPCAM_CHECK(input_dim > 0);
  DEEPCAM_CHECK(hash_bits > 0);
  c_.resize(input_dim * hash_bits);
  Rng rng(seed);
  for (auto& v : c_) v = static_cast<float>(rng.gaussian());
}

void RandomProjection::project_cols(const float* xs, std::size_t count,
                                    std::size_t ncols, float* out) const {
  // For any fixed output (p, j) the adds run over i in ascending order with
  // the same zero-skip as the original scalar GEMV, so every entry point
  // built on this kernel is bitwise identical to the per-vector path.
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    for (std::size_t j0 = 0; j0 < ncols; j0 += kColBlock) {
      const std::size_t jb = std::min(kColBlock, ncols - j0);
      float acc[kPatchBlock][kColBlock];
      std::memset(acc, 0, sizeof(acc));
      for (std::size_t i = 0; i < input_dim_; ++i) {
        const float* __restrict__ crow = &c_[i * hash_bits_ + j0];
        for (std::size_t p = 0; p < pb; ++p) {
          const float xi = xs[(p0 + p) * input_dim_ + i];
          if (xi == 0.0f) continue;
          float* __restrict__ a = acc[p];
          for (std::size_t j = 0; j < jb; ++j) a[j] += xi * crow[j];
        }
      }
      for (std::size_t p = 0; p < pb; ++p)
        std::memcpy(out + (p0 + p) * ncols + j0, acc[p], jb * sizeof(float));
    }
  }
}

void RandomProjection::project(std::span<const float> x,
                               std::span<float> out) const {
  DEEPCAM_CHECK_MSG(x.size() == input_dim_, "projection input dim mismatch");
  DEEPCAM_CHECK(out.size() == hash_bits_);
  project_cols(x.data(), 1, hash_bits_, out.data());
}

void RandomProjection::project_prefix(std::span<const float> x,
                                      std::span<float> out) const {
  DEEPCAM_CHECK_MSG(x.size() == input_dim_, "projection input dim mismatch");
  DEEPCAM_CHECK(out.size() <= hash_bits_);
  project_cols(x.data(), 1, out.size(), out.data());
}

void RandomProjection::project_batch(const float* xs, std::size_t count,
                                     float* out) const {
  project_cols(xs, count, hash_bits_, out);
}

void RandomProjection::sign_hash_batch(const float* xs, std::size_t count,
                                       std::size_t k,
                                       std::uint64_t* sig_words,
                                       std::vector<float>& proj_scratch) const {
  DEEPCAM_CHECK(k <= hash_bits_);
  const std::size_t wps = (k + 63) / 64;
  if (proj_scratch.size() < kPatchBlock * k)
    proj_scratch.resize(kPatchBlock * k);
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    project_cols(xs + p0 * input_dim_, pb, k, proj_scratch.data());
    for (std::size_t p = 0; p < pb; ++p)
      pack_signs(proj_scratch.data() + p * k, k,
                 sig_words + (p0 + p) * wps);
  }
}

BitVec RandomProjection::sign_hash(std::span<const float> x) const {
  std::vector<float> proj(hash_bits_);
  project(x, proj);
  BitVec bits(hash_bits_);
  pack_signs(proj.data(), hash_bits_, bits.data());
  return bits;
}

BitVec RandomProjection::sign_hash_prefix(std::span<const float> x,
                                          std::size_t k) const {
  DEEPCAM_CHECK(k <= hash_bits_);
  std::vector<float> proj(k);
  project_prefix(x, proj);
  BitVec bits(k);
  pack_signs(proj.data(), k, bits.data());
  return bits;
}

}  // namespace deepcam::hash
