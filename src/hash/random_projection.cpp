#include "hash/random_projection.hpp"

#include "common/error.hpp"

namespace deepcam::hash {

RandomProjection::RandomProjection(std::size_t input_dim,
                                   std::size_t hash_bits, std::uint64_t seed)
    : input_dim_(input_dim), hash_bits_(hash_bits) {
  DEEPCAM_CHECK(input_dim > 0);
  DEEPCAM_CHECK(hash_bits > 0);
  c_.resize(input_dim * hash_bits);
  Rng rng(seed);
  for (auto& v : c_) v = static_cast<float>(rng.gaussian());
}

void RandomProjection::project(std::span<const float> x,
                               std::span<float> out) const {
  DEEPCAM_CHECK_MSG(x.size() == input_dim_, "projection input dim mismatch");
  DEEPCAM_CHECK(out.size() == hash_bits_);
  for (auto& o : out) o = 0.0f;
  // Row-major accumulation: for each input element, add its row of C.
  // This is the cache-friendly order for row-major storage.
  for (std::size_t i = 0; i < input_dim_; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* row = &c_[i * hash_bits_];
    for (std::size_t j = 0; j < hash_bits_; ++j) out[j] += xi * row[j];
  }
}

BitVec RandomProjection::sign_hash(std::span<const float> x) const {
  std::vector<float> proj(hash_bits_);
  project(x, proj);
  BitVec bits(hash_bits_);
  for (std::size_t j = 0; j < hash_bits_; ++j)
    if (proj[j] >= 0.0f) bits.set(j, true);
  return bits;
}

BitVec RandomProjection::sign_hash_prefix(std::span<const float> x,
                                          std::size_t k) const {
  DEEPCAM_CHECK(k <= hash_bits_);
  return sign_hash(x).prefix(k);
}

}  // namespace deepcam::hash
