#include "hash/random_projection.hpp"

#include <algorithm>

#include "codelet/codelet.hpp"
#include "common/error.hpp"

namespace deepcam::hash {

namespace {

// Patch-block size of sign_hash_batch's tiling: the projection scratch holds
// one kPatchBlock×k tile, hashed and packed before the next block is
// projected, so steady state allocates nothing. (The GEMM itself — and its
// cache blocking — lives in the dispatched codelet now.)
constexpr std::size_t kPatchBlock = 8;

/// Packs `nbits` sign bits (proj[j] >= 0, so +0/-0 both hash to 1 and NaN to
/// 0 on every ISA) into words via the dispatched sign-packing codelet.
void pack_signs(const float* proj, std::size_t nbits, std::uint64_t* words) {
  codelet::kernels().pack_signs(proj, nbits, words);
}

}  // namespace

RandomProjection::RandomProjection(std::size_t input_dim,
                                   std::size_t hash_bits, std::uint64_t seed)
    : input_dim_(input_dim), hash_bits_(hash_bits) {
  DEEPCAM_CHECK(input_dim > 0);
  DEEPCAM_CHECK(hash_bits > 0);
  c_.resize(input_dim * hash_bits);
  Rng rng(seed);
  for (auto& v : c_) v = static_cast<float>(rng.gaussian());
}

void RandomProjection::project_cols(const float* xs, std::size_t count,
                                    std::size_t ncols, float* out) const {
  // Dispatched GEMM codelet (scalar / AVX2 / AVX-512). For any fixed output
  // (p, j) every ISA runs the adds over i in ascending order, unfused, with
  // the same zero-skip as the original scalar GEMV — so every entry point
  // built on this kernel is bitwise identical to the per-vector path,
  // regardless of which ISA dispatch selected.
  codelet::kernels().project_cols(xs, c_.data(), count, input_dim_,
                                  hash_bits_, ncols, out);
}

void RandomProjection::project(std::span<const float> x,
                               std::span<float> out) const {
  DEEPCAM_CHECK_MSG(x.size() == input_dim_, "projection input dim mismatch");
  DEEPCAM_CHECK(out.size() == hash_bits_);
  project_cols(x.data(), 1, hash_bits_, out.data());
}

void RandomProjection::project_prefix(std::span<const float> x,
                                      std::span<float> out) const {
  DEEPCAM_CHECK_MSG(x.size() == input_dim_, "projection input dim mismatch");
  DEEPCAM_CHECK(out.size() <= hash_bits_);
  project_cols(x.data(), 1, out.size(), out.data());
}

void RandomProjection::project_batch(const float* xs, std::size_t count,
                                     float* out) const {
  project_cols(xs, count, hash_bits_, out);
}

void RandomProjection::sign_hash_batch(const float* xs, std::size_t count,
                                       std::size_t k,
                                       std::uint64_t* sig_words,
                                       std::vector<float>& proj_scratch) const {
  DEEPCAM_CHECK(k <= hash_bits_);
  const std::size_t wps = (k + 63) / 64;
  if (proj_scratch.size() < kPatchBlock * k)
    proj_scratch.resize(kPatchBlock * k);
  for (std::size_t p0 = 0; p0 < count; p0 += kPatchBlock) {
    const std::size_t pb = std::min(kPatchBlock, count - p0);
    project_cols(xs + p0 * input_dim_, pb, k, proj_scratch.data());
    for (std::size_t p = 0; p < pb; ++p)
      pack_signs(proj_scratch.data() + p * k, k,
                 sig_words + (p0 + p) * wps);
  }
}

BitVec RandomProjection::sign_hash(std::span<const float> x) const {
  std::vector<float> proj(hash_bits_);
  project(x, proj);
  BitVec bits(hash_bits_);
  pack_signs(proj.data(), hash_bits_, bits.data());
  return bits;
}

BitVec RandomProjection::sign_hash_prefix(std::span<const float> x,
                                          std::size_t k) const {
  DEEPCAM_CHECK(k <= hash_bits_);
  std::vector<float> proj(k);
  project_prefix(x, proj);
  BitVec bits(k);
  pack_signs(proj.data(), k, bits.data());
  return bits;
}

}  // namespace deepcam::hash
