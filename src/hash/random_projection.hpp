// Gaussian random-projection matrix for SimHash signature generation.
//
// Section II-B of the paper: a vector x ∈ R^n is hashed to k bits by
// hash(x) = sign(x·C) with C ∈ R^{n×k}, C_ij ~ N(0,1). The Hamming distance
// between two hashes estimates the angle between the vectors
// (Goemans–Williamson):  θ ≈ π/k · HD(hash(x), hash(y)).
//
// Key implementation property (DESIGN.md §5.1, the "prefix-hash" trick):
// the columns of C are i.i.d., so the first k columns of a 1024-column C are
// themselves a valid n×k Gaussian matrix. We therefore always generate
// kMaxHashBits columns and realize any smaller hash length as a prefix of the
// full signature. This makes variable-hash-length sweeps essentially free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace deepcam::hash {

/// Hash lengths supported by the dynamic-size CAM (256-bit chunks).
inline constexpr int kChunkBits = 256;
inline constexpr int kMaxHashBits = 1024;
inline constexpr int kNumHashLengths = 4;
/// The four realizable hash lengths: 256, 512, 768, 1024.
inline constexpr int kHashLengths[kNumHashLengths] = {256, 512, 768, 1024};

/// A dense n×k Gaussian projection matrix, stored row-major (k = columns).
class RandomProjection {
 public:
  /// Generates an `input_dim × hash_bits` matrix from `seed`.
  RandomProjection(std::size_t input_dim, std::size_t hash_bits,
                   std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hash_bits() const { return hash_bits_; }

  /// Raw matrix element C[row][col].
  float at(std::size_t row, std::size_t col) const {
    return c_[row * hash_bits_ + col];
  }

  /// Projects x (length input_dim) onto all columns: out[j] = Σ_i x_i C_ij.
  /// `out` must have hash_bits elements.
  void project(std::span<const float> x, std::span<float> out) const;

  /// Full SimHash signature: bit j = (x·C_col_j >= 0).
  BitVec sign_hash(std::span<const float> x) const;

  /// SimHash signature truncated to the first `k` bits.
  BitVec sign_hash_prefix(std::span<const float> x, std::size_t k) const;

 private:
  std::size_t input_dim_;
  std::size_t hash_bits_;
  std::vector<float> c_;  // row-major [input_dim][hash_bits]
};

}  // namespace deepcam::hash
