// Gaussian random-projection matrix for SimHash signature generation.
//
// Section II-B of the paper: a vector x ∈ R^n is hashed to k bits by
// hash(x) = sign(x·C) with C ∈ R^{n×k}, C_ij ~ N(0,1). The Hamming distance
// between two hashes estimates the angle between the vectors
// (Goemans–Williamson):  θ ≈ π/k · HD(hash(x), hash(y)).
//
// Key implementation property (DESIGN.md §5.1, the "prefix-hash" trick):
// the columns of C are i.i.d., so the first k columns of a 1024-column C are
// themselves a valid n×k Gaussian matrix. We therefore always generate
// kMaxHashBits columns and realize any smaller hash length as a prefix of the
// full signature. This makes variable-hash-length sweeps essentially free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace deepcam::hash {

/// Hash lengths supported by the dynamic-size CAM (256-bit chunks).
inline constexpr int kChunkBits = 256;
inline constexpr int kMaxHashBits = 1024;
inline constexpr int kNumHashLengths = 4;
/// The four realizable hash lengths: 256, 512, 768, 1024.
inline constexpr int kHashLengths[kNumHashLengths] = {256, 512, 768, 1024};

/// A dense n×k Gaussian projection matrix, stored row-major (k = columns).
class RandomProjection {
 public:
  /// Generates an `input_dim × hash_bits` matrix from `seed`.
  RandomProjection(std::size_t input_dim, std::size_t hash_bits,
                   std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hash_bits() const { return hash_bits_; }
  /// Words of one packed signature (64 sign bits per word).
  std::size_t words_per_sig() const { return (hash_bits_ + 63) / 64; }

  /// Raw matrix element C[row][col].
  float at(std::size_t row, std::size_t col) const {
    return c_[row * hash_bits_ + col];
  }

  /// Projects x (length input_dim) onto all columns: out[j] = Σ_i x_i C_ij.
  /// `out` must have hash_bits elements.
  void project(std::span<const float> x, std::span<float> out) const;

  /// Projects x onto the first out.size() columns only. Each column's sum is
  /// independent, so this equals the first out.size() entries of project()
  /// bitwise, at a proportional fraction of the cost.
  void project_prefix(std::span<const float> x, std::span<float> out) const;

  /// Batched projection of `count` row-major vectors (xs = count×input_dim,
  /// contiguous): out[p*hash_bits + j] = Σ_i xs[p][i]·C_ij. Cache-blocked
  /// over patches × columns; for every output the accumulation order over i
  /// matches project(), so results are bitwise identical to `count`
  /// individual project() calls.
  void project_batch(const float* xs, std::size_t count, float* out) const;

  /// Batched SimHash: hashes `count` row-major vectors to `k` bits
  /// (projecting only the first k columns) and packs the sign bits into
  /// `sig_words` (count × ceil(k/64) words, one 64-bit word write per 64
  /// bits). Bitwise identical to `count` sign_hash_prefix() calls — and,
  /// for k == hash_bits(), to `count` sign_hash() calls. `proj_scratch` is
  /// resized internally (to one patch-block tile, not the full batch) and
  /// reused across calls, so steady state allocates nothing.
  void sign_hash_batch(const float* xs, std::size_t count, std::size_t k,
                       std::uint64_t* sig_words,
                       std::vector<float>& proj_scratch) const;

  /// Full SimHash signature: bit j = (x·C_col_j >= 0).
  BitVec sign_hash(std::span<const float> x) const;

  /// SimHash signature truncated to the first `k` bits. Projects only the
  /// first k columns — bitwise identical to sign_hash(x).prefix(k) (prefix
  /// of i.i.d. columns) at k/hash_bits of the work.
  BitVec sign_hash_prefix(std::span<const float> x, std::size_t k) const;

 private:
  /// The one blocked GEMM kernel behind every projection entry point:
  /// computes the first `ncols` columns for `count` vectors into `out`
  /// (count × ncols row-major).
  void project_cols(const float* xs, std::size_t count, std::size_t ncols,
                    float* out) const;

  std::size_t input_dim_;
  std::size_t hash_bits_;
  std::vector<float> c_;  // row-major [input_dim][hash_bits]
};

}  // namespace deepcam::hash
