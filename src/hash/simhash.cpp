#include "hash/simhash.hpp"

#include <cmath>

#include "common/error.hpp"
#include "hash/cosine_approx.hpp"

namespace deepcam::hash {

double l2_norm(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

SimHasher::SimHasher(std::size_t input_dim, std::uint64_t seed,
                     std::size_t hash_bits)
    : proj_(input_dim, hash_bits, seed) {}

Signature SimHasher::hash(std::span<const float> x) const {
  Signature sig;
  sig.bits = proj_.sign_hash(x);
  sig.norm = l2_norm(x);
  return sig;
}

double SimHasher::estimate_angle(const Signature& a, const Signature& b,
                                 std::size_t k) const {
  DEEPCAM_CHECK(k <= proj_.hash_bits());
  const std::size_t hd = a.bits.hamming_prefix(b.bits, k);
  return angle_from_hamming(hd, k);
}

double SimHasher::approx_dot(const Signature& a, const Signature& b,
                             std::size_t k, bool use_pwl) const {
  DEEPCAM_CHECK(k <= proj_.hash_bits());
  const std::size_t hd = a.bits.hamming_prefix(b.bits, k);
  return hash::approx_dot(a.norm, b.norm, hd, k, use_pwl);
}

}  // namespace deepcam::hash
