#include "hash/cosine_approx.hpp"

#include <algorithm>
#include <cmath>

namespace deepcam::hash {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double pwl_cosine(double theta) {
  theta = std::clamp(theta, 0.0, kPi);
  if (theta > kPi / 2.0) return -pwl_cosine(kPi - theta);
  if (theta > kPi / 3.0) return -0.96 * theta + 1.51;
  return 1.0 - theta / kPi;
}

double angle_from_hamming(std::size_t hamming, std::size_t k) {
  if (k == 0) return 0.0;
  return kPi * static_cast<double>(hamming) / static_cast<double>(k);
}

double approx_dot(double norm_x, double norm_y, std::size_t hamming,
                  std::size_t k, bool use_pwl) {
  const double theta = angle_from_hamming(hamming, k);
  const double c = use_pwl ? pwl_cosine(theta) : std::cos(theta);
  return norm_x * norm_y * c;
}

}  // namespace deepcam::hash
