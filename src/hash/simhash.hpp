// SimHash signature convenience layer over RandomProjection.
//
// A Signature bundles the packed sign bits with the L2 norm of the source
// vector — exactly the "context" the DeepCAM hardware stores (the norm is
// quantized to 8-bit minifloat at the core/context layer, not here; this
// layer keeps full precision so the quantization is an explicit, testable
// step).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "hash/random_projection.hpp"

namespace deepcam::hash {

/// Full-precision signature of one vector.
struct Signature {
  BitVec bits;    ///< kMaxHashBits sign bits (prefix gives shorter hashes)
  double norm;    ///< exact L2 norm of the source vector
};

/// Computes the L2 norm of a vector.
double l2_norm(std::span<const float> x);

/// Hashes a batch of equal-length vectors with a shared projection matrix.
class SimHasher {
 public:
  /// `input_dim`: vector length; `seed`: projection matrix seed.
  SimHasher(std::size_t input_dim, std::uint64_t seed,
            std::size_t hash_bits = kMaxHashBits);

  const RandomProjection& projection() const { return proj_; }
  std::size_t input_dim() const { return proj_.input_dim(); }
  std::size_t hash_bits() const { return proj_.hash_bits(); }

  /// Signature (full hash_bits) plus exact norm of `x`.
  Signature hash(std::span<const float> x) const;

  /// Estimated angle between two previously hashed vectors at hash length k.
  double estimate_angle(const Signature& a, const Signature& b,
                        std::size_t k) const;

  /// Approximate geometric dot-product at hash length k (paper eq. 4).
  double approx_dot(const Signature& a, const Signature& b, std::size_t k,
                    bool use_pwl = true) const;

 private:
  RandomProjection proj_;
};

}  // namespace deepcam::hash
