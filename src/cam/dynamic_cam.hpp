// Dynamic-size CAM array (paper Fig. 6).
//
// Functional + cycle + energy model of the reconfigurable FeFET CAM:
//  * rows hold contexts (SimHash signatures) of up to num_chunks*256 bits;
//  * set_active_chunks() drives the transmission gates, selecting the word
//    (hash) length for subsequent operations;
//  * search() compares a key against every occupied row in parallel and
//    returns the per-row Hamming distances as seen through the sense
//    amplifier model.
//
// Every operation updates CamStats (searches, writes, cycles, joules) using
// the tech.hpp cost model, so callers get hardware numbers for free.
// Fault injection (inject_bit_fault) supports the failure-injection tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cam/config.hpp"
#include "cam/energy_model.hpp"
#include "cam/sense_amp.hpp"
#include "common/bitvec.hpp"

namespace deepcam::cam {

class DynamicCam {
 public:
  explicit DynamicCam(CamConfig cfg, SenseAmpConfig sa_cfg = {});

  const CamConfig& config() const { return cfg_; }
  const CamStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Number of currently enabled 256-bit chunks (1..num_chunks).
  std::size_t active_chunks() const { return active_chunks_; }
  /// Active word length in bits (the effective hash length k).
  std::size_t active_bits() const { return active_chunks_ * cfg_.chunk_bits; }

  /// Drives the transmission gates: word length = chunks*chunk_bits.
  /// Charged one reconfiguration cycle when the setting changes.
  void set_active_chunks(std::size_t chunks);

  /// Convenience: selects the smallest chunk count covering `hash_bits`.
  void set_hash_length(std::size_t hash_bits);

  /// Clears all occupancy (does not touch stats).
  void clear();

  /// Programs `bits` (must be >= active_bits() long; the first active_bits()
  /// are stored) into row `row` and marks it occupied. Copies 64-bit words,
  /// not individual bits.
  void write_row(std::size_t row, const BitVec& bits);

  /// Number of occupied rows — O(1), maintained as a counter by
  /// write_row()/clear() instead of scanning the occupancy vector.
  std::size_t occupied_rows() const { return occupied_count_; }
  bool row_occupied(std::size_t row) const { return occupied_[row]; }

  /// Result of one parallel search.
  struct SearchResult {
    /// Measured Hamming distance per row; nullopt for unoccupied rows.
    std::vector<std::optional<std::size_t>> row_hd;
  };

  /// Searches `key` (first active_bits() used) against all occupied rows in
  /// parallel — O(1) in rows and word length, one sense window in time.
  /// Logically const: the array contents are read-only during a search;
  /// only the observability counters (CamStats) advance.
  SearchResult search(const BitVec& key) const;

  /// Buffer-reuse variant of search(): overwrites `out.row_hd` in place so
  /// steady-state searching performs no heap allocation. `out` may be the
  /// result of a previous call on any DynamicCam.
  void search_into(const BitVec& key, SearchResult& out) const;

  /// Flips one stored bit (FeFET retention/program fault model).
  void inject_bit_fault(std::size_t row, std::size_t bit);

  /// Area of this array instance (µm²).
  double area_um2() const { return CamCostModel::area_um2(cfg_); }

  /// Latency, in cycles, of a single search at the current word length.
  std::size_t search_cycles() const;

 private:
  CamConfig cfg_;
  SenseAmp sense_amp_;
  std::size_t active_chunks_;
  std::vector<BitVec> rows_;
  std::vector<bool> occupied_;
  std::size_t occupied_count_ = 0;
  // Hardware counters: advanced by logically-read-only operations (search),
  // hence mutable.
  mutable CamStats stats_;
};

}  // namespace deepcam::cam
