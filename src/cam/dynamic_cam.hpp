// Dynamic-size CAM array (paper Fig. 6).
//
// Functional + cycle + energy model of the reconfigurable FeFET CAM:
//  * rows hold contexts (SimHash signatures) of up to num_chunks*256 bits;
//  * set_active_chunks() drives the transmission gates, selecting the word
//    (hash) length for subsequent operations;
//  * search() compares a key against every occupied row in parallel and
//    returns the per-row Hamming distances as seen through the sense
//    amplifier model.
//
// Every operation updates CamStats (searches, writes, cycles, joules) using
// the tech.hpp cost model, so callers get hardware numbers for free.
// Fault injection (inject_bit_fault) supports the failure-injection tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cam/config.hpp"
#include "cam/energy_model.hpp"
#include "cam/sense_amp.hpp"
#include "common/bitvec.hpp"

namespace deepcam::cam {

class DynamicCam {
 public:
  explicit DynamicCam(CamConfig cfg, SenseAmpConfig sa_cfg = {});

  const CamConfig& config() const { return cfg_; }
  const CamStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Number of currently enabled 256-bit chunks (1..num_chunks).
  std::size_t active_chunks() const { return active_chunks_; }
  /// Active word length in bits (the effective hash length k).
  std::size_t active_bits() const { return active_chunks_ * cfg_.chunk_bits; }

  /// Drives the transmission gates: word length = chunks*chunk_bits.
  /// Charged one reconfiguration cycle when the setting changes.
  void set_active_chunks(std::size_t chunks);

  /// Convenience: selects the smallest chunk count covering `hash_bits`.
  void set_hash_length(std::size_t hash_bits);

  /// Clears all occupancy (does not touch stats).
  void clear();

  /// Programs `bits` (must be >= active_bits() long; the first active_bits()
  /// are stored) into row `row` and marks it occupied. Copies 64-bit words,
  /// not individual bits.
  void write_row(std::size_t row, const BitVec& bits);

  /// Word-span overload for callers whose signatures live in a flat arena
  /// (ContextBatch): programs the first active_bits() bits of `words`
  /// (at least ceil(active_bits()/64) words) into row `row`. Identical
  /// semantics, occupancy and stats to the BitVec overload.
  void write_row(std::size_t row, std::span<const std::uint64_t> words);

  /// Number of occupied rows — O(1), maintained as a counter by
  /// write_row()/clear() instead of scanning the occupancy vector.
  std::size_t occupied_rows() const { return occupied_count_; }
  bool row_occupied(std::size_t row) const { return occupied_[row]; }

  /// Result of one parallel search.
  struct SearchResult {
    /// Measured Hamming distance per row; nullopt for unoccupied rows.
    std::vector<std::optional<std::size_t>> row_hd;
  };

  /// Searches `key` (first active_bits() used) against all occupied rows in
  /// parallel — O(1) in rows and word length, one sense window in time.
  /// Logically const: the array contents are read-only during a search;
  /// only the observability counters (CamStats) advance.
  SearchResult search(const BitVec& key) const;

  /// Buffer-reuse variant of search(): overwrites `out.row_hd` in place so
  /// steady-state searching performs no heap allocation. `out` may be the
  /// result of a previous call on any DynamicCam.
  void search_into(const BitVec& key, SearchResult& out) const;

  /// Dense result of one parallel search over a contiguously occupied CAM:
  /// row r's measured HD at row_hd[r] for r < occupied — no optionals to
  /// unwrap, no per-row occupancy branch in the consumer's inner loop.
  /// uint16_t suffices: HDs are bounded by the 1024-bit max word length.
  struct FlatSearchResult {
    std::vector<std::uint16_t> row_hd;
    std::size_t occupied = 0;
  };

  /// Flat-result search for the engine's inner loop. Requires the occupied
  /// rows to be exactly [0, occupied_rows()) — the clear(); write_row(0..n)
  /// pattern every mapping pass uses (checked once per search, not per
  /// row). Same Hamming/sense-amp math and stats charges as search().
  void search_flat(std::span<const std::uint64_t> key_words,
                   FlatSearchResult& out) const;

  /// Flips one stored bit (FeFET retention/program fault model) and records
  /// the (row, bit) pair so clear_faults() can undo it later. Injecting the
  /// same bit twice cancels out — the XOR restores the cell and the record
  /// is dropped.
  void inject_bit_fault(std::size_t row, std::size_t bit);

  /// One outstanding stuck/flipped cell, as injected by inject_bit_fault().
  struct BitFault {
    std::size_t row;
    std::size_t bit;
  };

  /// Currently outstanding injected faults. A write_row() to a faulted row
  /// reprograms the cells, so that row's faults are dropped from the mask;
  /// clear() wipes the whole mask along with occupancy.
  const std::vector<BitFault>& faults() const { return faults_; }

  /// Heals every outstanding fault by re-flipping the recorded bits,
  /// restoring the stored contents bit-exactly. Chaos runs use this to
  /// inject/heal repeatedly without rebuilding (or rewriting) the array.
  void clear_faults();

  /// Area of this array instance (µm²).
  double area_um2() const { return CamCostModel::area_um2(cfg_); }

  /// Latency, in cycles, of a single search at the current word length.
  std::size_t search_cycles() const;

 private:
  CamConfig cfg_;
  SenseAmp sense_amp_;
  std::size_t active_chunks_;
  // Row storage is one contiguous word arena (row r at r*words_per_row_)
  // instead of a BitVec per row: searches stream it linearly and writes are
  // word copies into place, with no per-row indirection.
  std::size_t words_per_row_;
  std::vector<std::uint64_t> row_words_;
  std::vector<bool> occupied_;
  std::size_t occupied_count_ = 0;
  // Highest row index ever written since the last clear(). The occupied set
  // is a subset of [0, max_occupied_row_], so it equals the prefix
  // [0, occupied_count_) — the search_flat precondition — exactly when
  // occupied_count_ == max_occupied_row_ + 1, regardless of write order.
  std::size_t max_occupied_row_ = 0;
  // Outstanding injected faults, in injection order (see faults()).
  std::vector<BitFault> faults_;

  bool prefix_occupancy() const {
    return occupied_count_ == 0 || occupied_count_ == max_occupied_row_ + 1;
  }
  // Hardware counters: advanced by logically-read-only operations (search),
  // hence mutable.
  mutable CamStats stats_;
};

}  // namespace deepcam::cam
