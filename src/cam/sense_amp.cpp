#include "cam/sense_amp.hpp"

#include <cmath>

namespace deepcam::cam {

std::size_t SenseAmp::measure(std::size_t true_hd) const {
  if (cfg_.mode == SenseMode::kIdeal) return true_hd;
  if (true_hd == 0) return 0;  // ML never crosses threshold in the window
  // Discharge time in TDC bins; the SA latches the bin index b in which the
  // ML crossed (t in (b-1, b]), and the digital back-end reconstructs
  // h = tau / t evaluated at the bin centre. Distances with t below one bin
  // are unresolvable and saturate at tau.
  const double tau = static_cast<double>(cfg_.tau_unit_bins);
  const double t = tau / static_cast<double>(true_hd);
  const double bin = std::max(1.0, std::ceil(t));
  const double h_meas = std::min(tau, tau / (bin - 0.5));
  return static_cast<std::size_t>(std::lround(h_meas));
}

}  // namespace deepcam::cam
