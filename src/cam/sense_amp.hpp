// Clocked self-referenced sense amplifier model (paper Fig. 1c, after
// Ni et al., Nature Electronics 2019).
//
// Physics: during a search, every mismatching cell on a match line (ML)
// sinks a unit current, so the ML discharge time is inversely proportional
// to the Hamming distance h:  t(h) = tau_unit / h  (h >= 1; h = 0 never
// discharges within the sense window). The clocked SA latches the cycle in
// which the ML crosses the sensing threshold, i.e. it is a time-to-digital
// converter (TDC) whose bin width is the sense clock period.
//
// Two operating modes:
//  * kIdeal     — returns the true Hamming distance (the abstraction the
//                 paper's accuracy results assume);
//  * kQuantized — returns the HD reconstructed from the quantized discharge
//                 time, modeling the real TDC resolution limit. Used for
//                 fidelity/failure-injection studies.
#pragma once

#include <cstddef>

namespace deepcam::cam {

enum class SenseMode { kIdeal, kQuantized };

struct SenseAmpConfig {
  SenseMode mode = SenseMode::kIdeal;
  /// Discharge time for HD=1 expressed in sense-clock bins. Also the sense
  /// window length: HD=1 is the slowest discharge that must be captured.
  std::size_t tau_unit_bins = 256;
  /// Sense-clock bins per system clock cycle (sub-cycle TDC resolution).
  std::size_t bins_per_cycle = 8;
};

class SenseAmp {
 public:
  explicit SenseAmp(SenseAmpConfig cfg) : cfg_(cfg) {}

  const SenseAmpConfig& config() const { return cfg_; }

  /// Measured Hamming distance for a row whose true distance is `true_hd`.
  std::size_t measure(std::size_t true_hd) const;

  /// Sense window length in system clock cycles (latency of one search's
  /// sensing phase under this configuration).
  std::size_t window_cycles() const {
    return (cfg_.tau_unit_bins + cfg_.bins_per_cycle - 1) / cfg_.bins_per_cycle;
  }

 private:
  SenseAmpConfig cfg_;
};

}  // namespace deepcam::cam
