// EvaCAM-style energy/area model for the CAM array.
//
// The paper extracts FeFET CAM search energy and area from EvaCAM (Liu et
// al., DATE 2022) for row sizes 64/128/256/512 and word lengths
// 256/512/768/1024 (its Fig. 8). We reproduce that surface from per-bit /
// per-row primitives in tech.hpp: energy scales with (rows x active bits)
// for the cell array plus a per-row sense-amp term; area scales with
// (rows x physical bits) plus peripheral overhead.
#pragma once

#include <cstddef>

#include "cam/config.hpp"

namespace deepcam::cam {

struct CamCostModel {
  /// Energy (J) of one search over `rows` words of `active_bits` each.
  static double search_energy(const CamConfig& cfg, std::size_t active_bits);

  /// Energy (J) of programming one row of `active_bits` cells.
  static double write_energy(const CamConfig& cfg, std::size_t active_bits);

  /// Silicon area (µm²) of the full array (all physical chunks, peripherals).
  static double area_um2(const CamConfig& cfg);

  /// Search energy per bit for the chosen technology (J/bit).
  static double search_energy_per_bit(CellTech tech);
};

}  // namespace deepcam::cam
