// Configuration of the dynamic-size CAM array (paper §III-B, Fig. 6).
//
// The array has `rows` words. Each word is built from up to four 256-bit
// chunks connected by transmission gates; enabling 1..4 chunks realizes word
// (= hash) lengths 256/512/768/1024. The paper evaluates row counts
// 64/128/256/512 and all four word lengths (Fig. 8).
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace deepcam::cam {

enum class CellTech {
  kFeFET,  // 2T-2FeFET cell (the paper's choice)
  kCmos,   // 16T CMOS TCAM cell (comparison point)
};

struct CamConfig {
  std::size_t rows = 64;
  std::size_t chunk_bits = 256;
  std::size_t num_chunks = 4;  // physical chunks present
  CellTech tech = CellTech::kFeFET;

  std::size_t max_word_bits() const { return chunk_bits * num_chunks; }

  void validate() const {
    DEEPCAM_CHECK_MSG(rows > 0, "CAM must have rows");
    DEEPCAM_CHECK_MSG(chunk_bits > 0, "CAM chunk must have bits");
    DEEPCAM_CHECK_MSG(num_chunks >= 1 && num_chunks <= 8,
                      "CAM supports 1..8 chunks");
  }
};

/// Cycle/energy/traffic counters accumulated by the CAM model.
struct CamStats {
  std::size_t searches = 0;
  std::size_t row_writes = 0;
  std::size_t reconfigs = 0;
  std::size_t cycles = 0;
  double search_energy = 0.0;  // joules
  double write_energy = 0.0;   // joules

  double total_energy() const { return search_energy + write_energy; }

  CamStats& operator+=(const CamStats& o) {
    searches += o.searches;
    row_writes += o.row_writes;
    reconfigs += o.reconfigs;
    cycles += o.cycles;
    search_energy += o.search_energy;
    write_energy += o.write_energy;
    return *this;
  }
};

}  // namespace deepcam::cam
