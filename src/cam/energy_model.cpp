#include "cam/energy_model.hpp"

#include "common/tech.hpp"

namespace deepcam::cam {

double CamCostModel::search_energy_per_bit(CellTech tech) {
  // [paper] FeFET search is ~2.4x cheaper than the CMOS TCAM cell.
  if (tech == CellTech::kFeFET) return tech::kCamSearchEnergyPerBit;
  return tech::kCamSearchEnergyPerBit * tech::kCmosSearchEnergyFactor;
}

double CamCostModel::search_energy(const CamConfig& cfg,
                                   std::size_t active_bits) {
  const double cell = search_energy_per_bit(cfg.tech) *
                      static_cast<double>(cfg.rows) *
                      static_cast<double>(active_bits);
  const double sa =
      tech::kCamSenseAmpEnergyPerRow * static_cast<double>(cfg.rows);
  const double precharge = tech::kCamPrechargeEnergyPerBit *
                           static_cast<double>(cfg.rows) *
                           static_cast<double>(active_bits);
  return cell + sa + precharge;
}

double CamCostModel::write_energy(const CamConfig& cfg,
                                  std::size_t active_bits) {
  (void)cfg;
  return tech::kCamWriteEnergyPerBit * static_cast<double>(active_bits);
}

double CamCostModel::area_um2(const CamConfig& cfg) {
  const double cell_area = (cfg.tech == CellTech::kFeFET)
                               ? tech::kFeFetCamCellAreaUm2
                               : tech::kFeFetCamCellAreaUm2 *
                                     tech::kCmosAreaFactor;
  const double cells = static_cast<double>(cfg.rows) *
                       static_cast<double>(cfg.max_word_bits());
  // Peripheral overhead: sense amps (per row), search-line drivers (per
  // column), transmission-gate columns between chunks (per row per joint).
  const double sa_area = 12.0 * static_cast<double>(cfg.rows);
  const double driver_area = 1.2 * static_cast<double>(cfg.max_word_bits());
  const double tgate_area =
      2.0 * static_cast<double>(cfg.rows) *
      static_cast<double>(cfg.num_chunks > 0 ? cfg.num_chunks - 1 : 0);
  return cells * cell_area + sa_area + driver_area + tgate_area;
}

}  // namespace deepcam::cam
