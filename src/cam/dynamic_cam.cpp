#include "cam/dynamic_cam.hpp"

#include <algorithm>

#include "codelet/codelet.hpp"
#include "common/tech.hpp"

namespace deepcam::cam {

DynamicCam::DynamicCam(CamConfig cfg, SenseAmpConfig sa_cfg)
    : cfg_(cfg),
      sense_amp_(sa_cfg),
      active_chunks_(cfg.num_chunks),
      words_per_row_((cfg.max_word_bits() + 63) / 64) {
  cfg_.validate();
  row_words_.assign(cfg_.rows * words_per_row_, 0ULL);
  occupied_.assign(cfg_.rows, false);
}

void DynamicCam::set_active_chunks(std::size_t chunks) {
  DEEPCAM_CHECK_MSG(chunks >= 1 && chunks <= cfg_.num_chunks,
                    "chunk count out of range");
  if (chunks != active_chunks_) {
    active_chunks_ = chunks;
    ++stats_.reconfigs;
    ++stats_.cycles;  // transmission-gate enable settle
  }
}

void DynamicCam::set_hash_length(std::size_t hash_bits) {
  DEEPCAM_CHECK_MSG(hash_bits >= 1 && hash_bits <= cfg_.max_word_bits(),
                    "hash length exceeds CAM word");
  const std::size_t chunks =
      (hash_bits + cfg_.chunk_bits - 1) / cfg_.chunk_bits;
  set_active_chunks(chunks);
}

void DynamicCam::clear() {
  occupied_.assign(cfg_.rows, false);
  occupied_count_ = 0;
  max_occupied_row_ = 0;
  // Unoccupied rows are never read and every re-occupation goes through
  // write_row (which reprograms the full word), so outstanding fault
  // records refer to logically dead cells: drop them.
  faults_.clear();
}

void DynamicCam::write_row(std::size_t row, const BitVec& bits) {
  DEEPCAM_CHECK_MSG(bits.size() >= active_bits(),
                    "context shorter than active word");
  write_row(row, std::span<const std::uint64_t>(bits.data(),
                                                bits.word_count()));
}

void DynamicCam::write_row(std::size_t row,
                           std::span<const std::uint64_t> words) {
  DEEPCAM_CHECK_MSG(row < cfg_.rows, "CAM row out of range");
  const std::size_t k = active_bits();
  DEEPCAM_CHECK_MSG(words.size() * 64 >= k,
                    "context shorter than active word");
  // Prefix-copy with stale-tail clearing (same primitive as
  // BitVec::assign_prefix): the bits past the active word are zeroed so a
  // later word-length increase never observes a previous write's data.
  copy_prefix_words(&row_words_[row * words_per_row_], words.data(), k,
                    words_per_row_);

  if (!occupied_[row]) {
    occupied_[row] = true;
    ++occupied_count_;
  }
  // Reprogramming the row overwrites any injected flips in its cells, so
  // their records no longer describe outstanding damage.
  if (!faults_.empty())
    faults_.erase(std::remove_if(faults_.begin(), faults_.end(),
                                 [&](const BitFault& f) {
                                   return f.row == row;
                                 }),
                  faults_.end());
  max_occupied_row_ = std::max(max_occupied_row_, row);
  ++stats_.row_writes;
  stats_.cycles += tech::kCamWriteCyclesPerRow;
  stats_.write_energy += CamCostModel::write_energy(cfg_, k);
}

std::size_t DynamicCam::search_cycles() const {
  return static_cast<std::size_t>(tech::kCamSearchBaseCycles) +
         static_cast<std::size_t>(tech::kCamSearchCyclesPerChunk) *
             active_chunks_;
}

DynamicCam::SearchResult DynamicCam::search(const BitVec& key) const {
  SearchResult result;
  search_into(key, result);
  return result;
}

void DynamicCam::search_into(const BitVec& key, SearchResult& out) const {
  const std::size_t k = active_bits();
  DEEPCAM_CHECK_MSG(key.size() >= k, "search key shorter than active word");
  out.row_hd.assign(cfg_.rows, std::nullopt);
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    if (!occupied_[r]) continue;
    const std::size_t true_hd =
        hamming_prefix_words(key.data(), &row_words_[r * words_per_row_], k);
    out.row_hd[r] = sense_amp_.measure(true_hd);
  }
  ++stats_.searches;
  stats_.cycles += search_cycles();
  stats_.search_energy += CamCostModel::search_energy(cfg_, k);
}

void DynamicCam::search_flat(std::span<const std::uint64_t> key_words,
                             FlatSearchResult& out) const {
  const std::size_t k = active_bits();
  DEEPCAM_CHECK_MSG(key_words.size() * 64 >= k,
                    "search key shorter than active word");
  DEEPCAM_CHECK_MSG(prefix_occupancy(),
                    "search_flat requires rows occupied contiguously from 0");
  // uint16_t results: ideal mode is bounded by the word length (<= 1024);
  // quantized mode saturates at tau_unit_bins, which must therefore fit.
  DEEPCAM_CHECK_MSG(sense_amp_.config().mode == SenseMode::kIdeal ||
                        sense_amp_.config().tau_unit_bins <= 0xFFFF,
                    "quantized sense-amp tau exceeds uint16 HD range");
  out.occupied = occupied_count_;
  if (out.row_hd.size() < occupied_count_) out.row_hd.resize(occupied_count_);
  // Row-blocked Hamming codelet: dense uint16 HDs over the contiguous row
  // arena in one dispatched call. The ideal sense amp is the identity, so
  // the measure() pass only runs in quantized mode.
  codelet::kernels().hamming_many(key_words.data(), row_words_.data(),
                                  words_per_row_, occupied_count_, k,
                                  out.row_hd.data());
  if (sense_amp_.config().mode != SenseMode::kIdeal)
    for (std::size_t r = 0; r < occupied_count_; ++r)
      out.row_hd[r] = static_cast<std::uint16_t>(
          sense_amp_.measure(out.row_hd[r]));
  ++stats_.searches;
  stats_.cycles += search_cycles();
  stats_.search_energy += CamCostModel::search_energy(cfg_, k);
}

void DynamicCam::inject_bit_fault(std::size_t row, std::size_t bit) {
  DEEPCAM_CHECK(row < cfg_.rows);
  DEEPCAM_CHECK(bit < cfg_.max_word_bits());
  row_words_[row * words_per_row_ + (bit >> 6)] ^= 1ULL << (bit & 63);
  // Double injection of the same cell is a no-op on the contents (XOR), so
  // it must also be a no-op on the mask.
  const auto it = std::find_if(faults_.begin(), faults_.end(),
                               [&](const BitFault& f) {
                                 return f.row == row && f.bit == bit;
                               });
  if (it != faults_.end())
    faults_.erase(it);
  else
    faults_.push_back(BitFault{row, bit});
}

void DynamicCam::clear_faults() {
  for (const BitFault& f : faults_)
    row_words_[f.row * words_per_row_ + (f.bit >> 6)] ^= 1ULL << (f.bit & 63);
  faults_.clear();
}

}  // namespace deepcam::cam
