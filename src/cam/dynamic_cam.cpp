#include "cam/dynamic_cam.hpp"

#include "common/tech.hpp"

namespace deepcam::cam {

DynamicCam::DynamicCam(CamConfig cfg, SenseAmpConfig sa_cfg)
    : cfg_(cfg), sense_amp_(sa_cfg), active_chunks_(cfg.num_chunks) {
  cfg_.validate();
  rows_.assign(cfg_.rows, BitVec(cfg_.max_word_bits()));
  occupied_.assign(cfg_.rows, false);
}

void DynamicCam::set_active_chunks(std::size_t chunks) {
  DEEPCAM_CHECK_MSG(chunks >= 1 && chunks <= cfg_.num_chunks,
                    "chunk count out of range");
  if (chunks != active_chunks_) {
    active_chunks_ = chunks;
    ++stats_.reconfigs;
    ++stats_.cycles;  // transmission-gate enable settle
  }
}

void DynamicCam::set_hash_length(std::size_t hash_bits) {
  DEEPCAM_CHECK_MSG(hash_bits >= 1 && hash_bits <= cfg_.max_word_bits(),
                    "hash length exceeds CAM word");
  const std::size_t chunks =
      (hash_bits + cfg_.chunk_bits - 1) / cfg_.chunk_bits;
  set_active_chunks(chunks);
}

void DynamicCam::clear() {
  occupied_.assign(cfg_.rows, false);
  occupied_count_ = 0;
}

void DynamicCam::write_row(std::size_t row, const BitVec& bits) {
  DEEPCAM_CHECK_MSG(row < cfg_.rows, "CAM row out of range");
  const std::size_t k = active_bits();
  DEEPCAM_CHECK_MSG(bits.size() >= k, "context shorter than active word");
  rows_[row].assign_prefix(bits, k);
  if (!occupied_[row]) {
    occupied_[row] = true;
    ++occupied_count_;
  }
  ++stats_.row_writes;
  stats_.cycles += tech::kCamWriteCyclesPerRow;
  stats_.write_energy += CamCostModel::write_energy(cfg_, k);
}

std::size_t DynamicCam::search_cycles() const {
  return static_cast<std::size_t>(tech::kCamSearchBaseCycles) +
         static_cast<std::size_t>(tech::kCamSearchCyclesPerChunk) *
             active_chunks_;
}

DynamicCam::SearchResult DynamicCam::search(const BitVec& key) const {
  SearchResult result;
  search_into(key, result);
  return result;
}

void DynamicCam::search_into(const BitVec& key, SearchResult& out) const {
  const std::size_t k = active_bits();
  DEEPCAM_CHECK_MSG(key.size() >= k, "search key shorter than active word");
  out.row_hd.assign(cfg_.rows, std::nullopt);
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    if (!occupied_[r]) continue;
    const std::size_t true_hd = key.hamming_prefix(rows_[r], k);
    out.row_hd[r] = sense_amp_.measure(true_hd);
  }
  ++stats_.searches;
  stats_.cycles += search_cycles();
  stats_.search_energy += CamCostModel::search_energy(cfg_, k);
}

void DynamicCam::inject_bit_fault(std::size_t row, std::size_t bit) {
  DEEPCAM_CHECK(row < cfg_.rows);
  DEEPCAM_CHECK(bit < cfg_.max_word_bits());
  rows_[row].flip(bit);
}

}  // namespace deepcam::cam
