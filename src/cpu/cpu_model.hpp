// Analytic CPU baseline: Intel Skylake-class core with AVX-512 VNNI INT8.
//
// The paper's second baseline (Table I) is a Skylake CPU with the AVX-512
// vector neural network instructions. We model per-layer latency as the sum
// of:
//   * vectorized MAC work: ceil(K/64)*64 lanes per reduction (tail waste),
//     two FMA ports -> 128 INT8 MACs/cycle at a capped efficiency;
//   * per-output-reduction loop overhead (setup, horizontal add, store) —
//     this is what makes CPUs slow on small CNN layers in practice;
//   * im2col materialization traffic (bytes / 16 per cycle);
//   * fixed per-layer dispatch overhead.
//
// Output is in CPU core cycles; the paper compares raw "computation cycles"
// across platforms and so do we (see EXPERIMENTS.md for the caveat).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/workload.hpp"

namespace deepcam::cpu {

struct CpuLayerResult {
  std::string layer_name;
  std::size_t macs = 0;
  double cycles = 0.0;
  double efficiency = 0.0;  // achieved MACs/cycle over peak
};

struct CpuModelResult {
  std::vector<CpuLayerResult> layers;
  double total_cycles() const;
  std::size_t total_macs() const;
  double mean_efficiency() const;
  /// Wall time of one inference at the Skylake core clock (tech.hpp) —
  /// cross-platform throughput must not assume the 300 MHz ASIC clock.
  double total_seconds() const;
};

/// Simulates one GEMM-shaped layer on the CPU model.
CpuLayerResult simulate_layer(const nn::GemmDims& dims);

/// Simulates the whole model.
CpuModelResult simulate_cpu(const nn::Model& model, nn::Shape input_shape);

}  // namespace deepcam::cpu
