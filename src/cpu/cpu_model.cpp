#include "cpu/cpu_model.hpp"

#include "common/tech.hpp"

namespace deepcam::cpu {

CpuLayerResult simulate_layer(const nn::GemmDims& dims) {
  CpuLayerResult r;
  r.layer_name = dims.layer_name;
  r.macs = dims.macs();

  const double lanes = 64.0;  // INT8 lanes per 512-bit FMA
  const double vec_k = std::size_t((dims.k + 63) / 64) * lanes;
  const double vector_macs =
      static_cast<double>(dims.m) * static_cast<double>(dims.n) * vec_k;
  const double compute =
      vector_macs / (static_cast<double>(tech::kCpuPeakMacsPerCycle) *
                     tech::kCpuMaxEfficiency);
  const double reduction_overhead = static_cast<double>(dims.m) *
                                    static_cast<double>(dims.n) *
                                    tech::kCpuPerVectorLoopOverhead /
                                    (vec_k / lanes);
  // im2col buffer write+read: M*K bytes each way at ~16 B/cycle.
  const double im2col = 2.0 * static_cast<double>(dims.m) *
                        static_cast<double>(dims.k) / 16.0;
  r.cycles = tech::kCpuPerLayerOverheadCycles + compute +
             reduction_overhead + im2col;
  r.efficiency = static_cast<double>(r.macs) /
                 (r.cycles * static_cast<double>(tech::kCpuPeakMacsPerCycle));
  return r;
}

CpuModelResult simulate_cpu(const nn::Model& model, nn::Shape input_shape) {
  CpuModelResult result;
  for (const auto& dims : nn::extract_gemm_workload(model, input_shape))
    result.layers.push_back(simulate_layer(dims));
  return result;
}

double CpuModelResult::total_cycles() const {
  double c = 0.0;
  for (const auto& l : layers) c += l.cycles;
  return c;
}

std::size_t CpuModelResult::total_macs() const {
  std::size_t m = 0;
  for (const auto& l : layers) m += l.macs;
  return m;
}

double CpuModelResult::total_seconds() const {
  return total_cycles() / tech::kCpuClockHz;
}

double CpuModelResult::mean_efficiency() const {
  const double c = total_cycles();
  return c == 0.0 ? 0.0
                  : static_cast<double>(total_macs()) /
                        (c * static_cast<double>(tech::kCpuPeakMacsPerCycle));
}

}  // namespace deepcam::cpu
