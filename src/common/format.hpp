// Locale-proof number formatting for serializers.
//
// printf-family float conversions honor the process-global LC_NUMERIC
// locale: under e.g. de_DE a "%.6f" prints "0,5" and silently corrupts CSV
// output (and any golden-file diff). std::to_chars is specified to be
// locale-independent, so every serializer that promises byte-exact output
// (core/report_io, sim/report_io) formats through these helpers instead of
// snprintf. Integers and strings are locale-safe already.
#pragma once

#include <charconv>
#include <string>

#include "common/error.hpp"

namespace deepcam {

/// "%.<prec>f" equivalent, independent of the global locale.
inline std::string format_fixed(double v, int prec) {
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, prec);
  DEEPCAM_CHECK_MSG(res.ec == std::errc(), "format_fixed overflow");
  return std::string(buf, res.ptr);
}

/// "%.<prec>e" equivalent, independent of the global locale.
inline std::string format_sci(double v, int prec) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::scientific, prec);
  DEEPCAM_CHECK_MSG(res.ec == std::errc(), "format_sci overflow");
  return std::string(buf, res.ptr);
}

/// Right-aligns `s` to `width` (no-op when already wider).
inline std::string pad_left(std::string s, std::size_t width) {
  return s.size() >= width ? s
                           : std::string(width - s.size(), ' ') + std::move(s);
}

}  // namespace deepcam
