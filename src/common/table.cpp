#include "common/table.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/format.hpp"

namespace deepcam {

void Table::add_row(std::vector<std::string> cells) {
  DEEPCAM_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int prec) {
  // format.hpp keeps the output locale-proof (a user locale with a comma
  // decimal point must not change table bytes — the goldens depend on it).
  if (v != 0.0 && (v >= 1e6 || v < 1e-3)) return format_sci(v, prec);
  return format_fixed(v, prec);
}

std::string Table::ratio(double v, int prec) {
  return format_fixed(v, prec) + "x";
}

}  // namespace deepcam
