// Packed bit-vector with fast Hamming distance.
//
// BitVec is the storage format for SimHash signatures and for CAM row
// contents. Bits are packed into 64-bit words; Hamming distance uses
// hardware popcount. A key operation for the variable-hash-length (VHL)
// strategy is hamming_prefix(): the Hamming distance restricted to the first
// k bits, which lets one 1024-bit signature serve every hash length in
// {256, 512, 768, 1024} (see DESIGN.md §5.1).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "codelet/codelet.hpp"
#include "common/error.hpp"

namespace deepcam {

/// Copies the first `k` bits of packed word array `src` into `dst` (masking
/// the partial last word) and zeroes dst words [ceil(k/64), dst_words) — the
/// shared prefix-copy-with-clean-tail primitive behind BitVec::assign_prefix
/// and DynamicCam's row programming. `src` must hold at least ceil(k/64)
/// words; `dst` at least dst_words.
inline void copy_prefix_words(std::uint64_t* dst, const std::uint64_t* src,
                              std::size_t k, std::size_t dst_words) {
  const std::size_t full_words = k >> 6;
  for (std::size_t i = 0; i < full_words; ++i) dst[i] = src[i];
  const std::size_t rem = k & 63;
  std::size_t next = full_words;
  if (rem != 0) {
    dst[full_words] = src[full_words] & ((1ULL << rem) - 1);
    next = full_words + 1;
  }
  for (std::size_t i = next; i < dst_words; ++i) dst[i] = 0ULL;
}

/// Hamming distance over the first `k` bits of two packed word arrays — the
/// word-span counterpart of BitVec::hamming_prefix for callers (ContextBatch,
/// DynamicCam's flat row arena) that store signatures outside BitVec objects.
/// Both arrays must hold at least ceil(k/64) words. Routes through the
/// dispatched SIMD codelet (src/codelet/); the scalar codelet is the
/// reference semantics and every ISA variant matches it bit for bit.
inline std::size_t hamming_prefix_words(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t k) {
  return codelet::kernels().hamming_prefix(a, b, k);
}

class BitVec {
 public:
  BitVec() = default;

  /// Creates an all-zero vector of `nbits` bits.
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0ULL) {}

  std::size_t size() const { return nbits_; }
  std::size_t word_count() const { return words_.size(); }
  const std::uint64_t* data() const { return words_.data(); }
  /// Mutable word access for bulk writers (sign packing, word copies). The
  /// caller must keep bits past size() zero — every prefix/Hamming routine
  /// assumes a clean tail.
  std::uint64_t* data() { return words_.data(); }

  bool get(std::size_t i) const {
    DEEPCAM_CHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v) {
    DEEPCAM_CHECK(i < nbits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    DEEPCAM_CHECK(i < nbits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Hamming distance over full length. Both vectors must be equal length.
  std::size_t hamming(const BitVec& other) const {
    DEEPCAM_CHECK_MSG(nbits_ == other.nbits_, "Hamming length mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      d += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
    return d;
  }

  /// Hamming distance over the first `k` bits only (prefix signature).
  /// Requires k <= size() of both vectors.
  std::size_t hamming_prefix(const BitVec& other, std::size_t k) const {
    DEEPCAM_CHECK(k <= nbits_ && k <= other.nbits_);
    return hamming_prefix_words(words_.data(), other.words_.data(), k);
  }

  /// Overwrites this vector with the first `k` bits of `src` and zeroes the
  /// rest, copying whole 64-bit words (the CAM row-program hot path; the
  /// per-bit get/set loop it replaces dominated `DynamicCam::write_row`).
  /// Requires k <= size() of both vectors. Length is unchanged.
  void assign_prefix(const BitVec& src, std::size_t k) {
    DEEPCAM_CHECK(k <= nbits_ && k <= src.nbits_);
    copy_prefix_words(words_.data(), src.words_.data(), k, words_.size());
  }

  /// Returns a copy truncated to the first `k` bits.
  BitVec prefix(std::size_t k) const {
    DEEPCAM_CHECK(k <= nbits_);
    BitVec out(k);
    const std::size_t full_words = k >> 6;
    for (std::size_t i = 0; i < full_words; ++i) out.words_[i] = words_[i];
    const std::size_t rem = k & 63;
    if (rem != 0)
      out.words_[full_words] = words_[full_words] & ((1ULL << rem) - 1);
    return out;
  }

  bool operator==(const BitVec& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace deepcam
