// Latency histogram: fixed geometric buckets + exact small-N percentiles.
//
// ServerMetrics and bench/serve_throughput need p50/p95/p99 over latency
// samples whose magnitudes span decades (microseconds to seconds), at
// bounded memory. The histogram keeps:
//
//  * a fixed array of geometrically-spaced buckets over [min_value,
//    max_value] (values outside clamp into the edge buckets), and
//  * the raw samples, exactly, up to `exact_cap` of them.
//
// While count() <= exact_cap, percentile() is exact (nearest-rank on a
// sorted copy) — the common case for tests and short benchmark runs. Past
// the cap the raw samples are dropped and percentile() falls back to linear
// interpolation inside the covering bucket, clamped to the observed
// min/max. Everything is deterministic: same insertion multiset, same
// answers.
//
// Not thread-safe; callers (ServerMetrics) synchronize externally.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace deepcam {

class Histogram {
 public:
  /// Buckets span [min_value, max_value] geometrically. Requirements:
  /// 0 < min_value < max_value, buckets >= 1.
  explicit Histogram(double min_value = 1e-6, double max_value = 1e3,
                     std::size_t buckets = 96, std::size_t exact_cap = 4096)
      : min_value_(min_value),
        max_value_(max_value),
        exact_cap_(exact_cap),
        inv_log_ratio_(0.0),
        counts_(buckets, 0) {
    DEEPCAM_CHECK_MSG(buckets >= 1, "histogram needs at least one bucket");
    DEEPCAM_CHECK_MSG(min_value > 0.0 && max_value > min_value,
                      "histogram range must satisfy 0 < min < max");
    if (buckets > 1)
      inv_log_ratio_ = static_cast<double>(buckets) /
                       std::log(max_value_ / min_value_);
  }

  void add(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_seen_) min_seen_ = v;
    if (count_ == 1 || v > max_seen_) max_seen_ = v;
    ++counts_[bucket_index(v)];
    sorted_valid_ = false;
    // Keep the raw set only while it covers every sample; past the cap it
    // would be a biased subset, so drop it for good.
    if (samples_.size() + 1 == count_ && count_ <= exact_cap_) {
      samples_.push_back(v);
    } else if (!samples_.empty()) {
      samples_.clear();
      samples_.shrink_to_fit();
    }
  }

  /// Adds every sample of `other` (bucket geometry must match). Exactness
  /// survives only if the merged count still fits the exact cap.
  void merge(const Histogram& other) {
    DEEPCAM_CHECK_MSG(counts_.size() == other.counts_.size() &&
                          min_value_ == other.min_value_ &&
                          max_value_ == other.max_value_,
                      "cannot merge histograms of different geometry");
    if (other.count_ == 0) return;
    const bool was_exact = count_ == 0 || exact();
    if (count_ == 0 || other.min_seen_ < min_seen_) min_seen_ = other.min_seen_;
    if (count_ == 0 || other.max_seen_ > max_seen_) max_seen_ = other.max_seen_;
    count_ += other.count_;
    sum_ += other.sum_;
    sorted_valid_ = false;
    for (std::size_t b = 0; b < counts_.size(); ++b)
      counts_[b] += other.counts_[b];
    if (was_exact && other.exact() && count_ <= exact_cap_) {
      samples_.insert(samples_.end(), other.samples_.begin(),
                      other.samples_.end());
    } else {
      samples_.clear();
      samples_.shrink_to_fit();
    }
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_seen_ : 0.0; }
  double max() const { return count_ > 0 ? max_seen_ : 0.0; }
  /// True while percentile() answers from the full raw-sample set.
  bool exact() const { return count_ > 0 && samples_.size() == count_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// p in [0, 100]. Empty histogram -> 0. p=0 -> min, p=100 -> max. Exact
  /// (nearest-rank) while count() <= exact_cap, bucket-interpolated after.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return min_seen_;
    if (p >= 100.0) return max_seen_;
    if (exact()) {
      // Lazily sorted view of the raw set, reused until the next add/merge
      // (ServerMetrics::snapshot asks for several percentiles in a row).
      if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
      }
      // Nearest-rank: smallest value with at least ceil(p/100 * N) samples
      // at or below it.
      const auto rank = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
      return sorted_[std::max<std::size_t>(rank, 1) - 1];
    }
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      if (cum + counts_[b] >= target) {
        // Linear interpolation for the target rank inside this bucket.
        const double frac =
            (static_cast<double>(target - cum) - 0.5) /
            static_cast<double>(counts_[b]);
        const double lo = bucket_lower(b);
        const double hi = bucket_upper(b);
        return std::clamp(lo + frac * (hi - lo), min_seen_, max_seen_);
      }
      cum += counts_[b];
    }
    return max_seen_;  // unreachable: buckets cover every sample
  }

  /// Geometric lower/upper bound of bucket `b` (clamped to the range).
  double bucket_lower(std::size_t b) const {
    return b == 0 ? min_value_
                  : min_value_ * std::exp(static_cast<double>(b) /
                                          inv_log_ratio_);
  }
  double bucket_upper(std::size_t b) const {
    return b + 1 >= counts_.size() ? max_value_ : bucket_lower(b + 1);
  }

 private:
  std::size_t bucket_index(double v) const {
    if (!(v > min_value_)) return 0;
    if (v >= max_value_ || counts_.size() == 1) return counts_.size() - 1;
    const auto idx = static_cast<std::size_t>(
        std::log(v / min_value_) * inv_log_ratio_);
    return std::min(idx, counts_.size() - 1);
  }

  double min_value_;
  double max_value_;
  std::size_t exact_cap_;
  double inv_log_ratio_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> samples_;  // raw values while count_ <= exact_cap_
  mutable std::vector<double> sorted_;  // percentile() cache of samples_
  mutable bool sorted_valid_ = false;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace deepcam
