// 8-bit minifloat (E4M3) codec.
//
// The paper stores the L2 norm of every weight/activation context as an
// "8-bit minifloat" (it cites Ristretto-style minifloat). We implement the
// common E4M3 layout: 1 sign bit, 4 exponent bits (bias 7), 3 mantissa bits,
// with subnormals; we do not reserve NaN/Inf codes (saturating arithmetic),
// which matches hardware norm storage where only finite magnitudes occur.
//
// encode() performs round-to-nearest-even; decode() is exact.
#pragma once

#include <cmath>
#include <cstdint>

namespace deepcam {

class MiniFloat {
 public:
  static constexpr int kExpBits = 4;
  static constexpr int kManBits = 3;
  static constexpr int kBias = 7;
  /// Largest representable magnitude: 2^8 * (1 + 7/8) = 480.
  static constexpr float kMax = 480.0f;
  /// Smallest positive subnormal: 2^(1-7) * 2^-3 = 2^-9.
  static constexpr float kMinSubnormal = 0x1.0p-9f;

  /// Encodes a float into the 8-bit code (round-to-nearest-even, saturating).
  static std::uint8_t encode(float x);

  /// Decodes an 8-bit code back to float (exact).
  static float decode(std::uint8_t code);

  /// Round-trips a value through the 8-bit representation.
  static float quantize(float x) { return decode(encode(x)); }
};

}  // namespace deepcam
