// Error handling utilities for the DeepCAM library.
//
// The library reports contract violations (bad shapes, out-of-range
// configuration, misuse of hardware models) by throwing deepcam::Error.
// Internal invariants use DEEPCAM_CHECK which produces a message with the
// failing expression and source location.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace deepcam {

/// Exception type thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error in externally supplied text (JSON specs, config files): carries the
/// 1-based line/column of the offending byte so a user can fix the input,
/// unlike plain Error which points at code. Thrown by the common/json.hpp
/// reader and the spec loader built on it.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : Error(what + " at line " + std::to_string(line) + ", column " +
              std::to_string(column)),
        line_(line),
        column_(column) {}

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::string full = std::string("DEEPCAM_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace deepcam

/// Checks a condition and throws deepcam::Error with location info on failure.
#define DEEPCAM_CHECK(expr)                                                   \
  do {                                                                        \
    if (!(expr))                                                              \
      ::deepcam::detail::raise_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like DEEPCAM_CHECK but with an extra std::string message.
#define DEEPCAM_CHECK_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr))                                                              \
      ::deepcam::detail::raise_check_failure(#expr, __FILE__, __LINE__,      \
                                             (msg));                          \
  } while (0)
