// Error handling utilities for the DeepCAM library.
//
// The library reports contract violations (bad shapes, out-of-range
// configuration, misuse of hardware models) by throwing deepcam::Error.
// Internal invariants use DEEPCAM_CHECK which produces a message with the
// failing expression and source location.
#pragma once

#include <stdexcept>
#include <string>

namespace deepcam {

/// Exception type thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::string full = std::string("DEEPCAM_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace deepcam

/// Checks a condition and throws deepcam::Error with location info on failure.
#define DEEPCAM_CHECK(expr)                                                   \
  do {                                                                        \
    if (!(expr))                                                              \
      ::deepcam::detail::raise_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like DEEPCAM_CHECK but with an extra std::string message.
#define DEEPCAM_CHECK_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr))                                                              \
      ::deepcam::detail::raise_check_failure(#expr, __FILE__, __LINE__,      \
                                             (msg));                          \
  } while (0)
