// Non-restoring digital integer square root with hardware cost model.
//
// The paper's online activation-context generator computes L2 norms with "a
// simple adder tree and a digital square-root module". We implement the
// classic non-restoring square root over 32-bit radicands: one iteration per
// result bit (16 iterations for 32-bit inputs), each iteration being one
// add/subtract — the standard serial hardware realization. isqrt() gives the
// functional result; kCyclesPerSqrt32 is the latency the cycle model charges.
#pragma once

#include <cstdint>

namespace deepcam {

/// Floor of sqrt(x) computed with the non-restoring algorithm.
std::uint16_t isqrt_nonrestoring(std::uint32_t x);

/// Fixed-point sqrt: returns sqrt(x) where x is Q(16.16); result is Q(16.16).
/// Implemented as isqrt(x << 16) using 64-bit intermediate.
std::uint32_t fxsqrt_q16(std::uint64_t x_q32);

/// Serial non-restoring sqrt latency: one cycle per output bit.
inline constexpr int kCyclesPerSqrt32 = 16;

}  // namespace deepcam
