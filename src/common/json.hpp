// Minimal locale-proof JSON writer and reader.
//
// Writer: the serving/bench artifacts (BENCH_pr4.json, server summaries)
// need one shared JSON shape instead of ad-hoc printing, and — like the CSV
// serializers (see common/format.hpp) — byte-exact output independent of the
// process locale. JsonWriter emits numbers through std::to_chars (shortest
// round-trip form for doubles), escapes strings per RFC 8259, and tracks
// nesting so commas/keys are placed automatically.
//
// Reader: parse_json() is a small strict recursive-descent RFC 8259 parser
// feeding the declarative run-spec API (api/spec_io). It produces a
// JsonValue DOM in which every value remembers the line/column it started
// at, so both syntax errors (thrown here) and semantic errors (thrown by
// whoever walks the DOM, via JsonValue::error) point into the input text as
// a ParseError. Hardened for hostile input: duplicate object keys, numbers
// outside double range, truncated documents, trailing garbage and
// pathological nesting are all typed errors, never crashes. Numbers parse
// through std::from_chars — locale-proof like the writer.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace deepcam {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    begin_value();
    out_ += '{';
    stack_.push_back(kObject);
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    pop(kObject);
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    begin_value();
    out_ += '[';
    stack_.push_back(kArray);
    first_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    pop(kArray);
    out_ += ']';
    return *this;
  }

  /// Key of the next value; only valid directly inside an object.
  JsonWriter& key(const std::string& name) {
    DEEPCAM_CHECK_MSG(!stack_.empty() && stack_.back() == kObject,
                      "JSON key outside of an object");
    DEEPCAM_CHECK_MSG(!have_key_, "JSON key without a value");
    comma();
    append_quoted(name);
    out_ += ':';
    have_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    begin_value();
    append_quoted(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    begin_value();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    begin_value();
    if (!std::isfinite(v)) {  // JSON has no NaN/Inf; null is the convention
      out_ += "null";
      return *this;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    DEEPCAM_CHECK_MSG(res.ec == std::errc(), "JSON number overflow");
    out_.append(buf, res.ptr);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
  }
  // Catch the common integer types without double-ambiguity. (std::size_t
  // is std::uint64_t on every target we build for.)
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, T v) {
    return key(name).value(v);
  }

  /// Finished document. Valid once every container is closed.
  const std::string& str() const {
    DEEPCAM_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    return out_;
  }

 private:
  enum Scope : char { kObject, kArray };

  void comma() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  void begin_value() {
    if (!stack_.empty() && stack_.back() == kObject) {
      DEEPCAM_CHECK_MSG(have_key_, "JSON value in object without a key");
      have_key_ = false;
    } else {
      comma();
    }
  }
  void pop(Scope s) {
    DEEPCAM_CHECK_MSG(!stack_.empty() && stack_.back() == s && !have_key_,
                      "mismatched JSON container close");
    stack_.pop_back();
    first_ = false;
  }
  void append_quoted(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> stack_;
  bool first_ = true;
  bool have_key_ = false;
};

/// One parsed JSON value. Objects keep their members in document order
/// (duplicate keys are a parse error); every value carries the 1-based
/// line/column where it started in the source text.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

  /// Checked accessors: ParseError (pointing at this value) on kind
  /// mismatch — the spec loader reports "expected a number" with the line
  /// of the offending value, not of the whole document.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  // array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Non-negative integral number (rejects fractions, negatives, and
  /// values above 2^53 where doubles stop being exact).
  std::uint64_t as_uint() const;

  /// Object member by key; nullptr when absent (or not an object — callers
  /// check is_object first via members()).
  const JsonValue* find(const std::string& key) const;
  /// Object member by key; ParseError when absent.
  const JsonValue& at(const std::string& key) const;

  /// A ParseError anchored at this value's position — for semantic errors
  /// discovered while walking the DOM ("unknown key", "bad enum value").
  ParseError error(const std::string& what) const {
    return ParseError(what, line_, column_);
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

/// Parses one complete JSON document (trailing whitespace only). Throws
/// ParseError with line/column on any syntax error, duplicate object key,
/// out-of-range number, truncation, trailing garbage, or nesting deeper
/// than an internal bound.
JsonValue parse_json(std::string_view text);

/// parse_json over the contents of `path`; Error if unreadable.
JsonValue parse_json_file(const std::string& path);

}  // namespace deepcam
