// Minimal locale-proof JSON writer for report serializers.
//
// The serving/bench artifacts (BENCH_pr4.json, server summaries) need one
// shared JSON shape instead of ad-hoc printing, and — like the CSV
// serializers (see common/format.hpp) — byte-exact output independent of the
// process locale. JsonWriter emits numbers through std::to_chars (shortest
// round-trip form for doubles), escapes strings per RFC 8259, and tracks
// nesting so commas/keys are placed automatically. No parsing, no DOM: the
// writers here only ever produce JSON.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace deepcam {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    begin_value();
    out_ += '{';
    stack_.push_back(kObject);
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    pop(kObject);
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    begin_value();
    out_ += '[';
    stack_.push_back(kArray);
    first_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    pop(kArray);
    out_ += ']';
    return *this;
  }

  /// Key of the next value; only valid directly inside an object.
  JsonWriter& key(const std::string& name) {
    DEEPCAM_CHECK_MSG(!stack_.empty() && stack_.back() == kObject,
                      "JSON key outside of an object");
    DEEPCAM_CHECK_MSG(!have_key_, "JSON key without a value");
    comma();
    append_quoted(name);
    out_ += ':';
    have_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    begin_value();
    append_quoted(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    begin_value();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    begin_value();
    if (!std::isfinite(v)) {  // JSON has no NaN/Inf; null is the convention
      out_ += "null";
      return *this;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    DEEPCAM_CHECK_MSG(res.ec == std::errc(), "JSON number overflow");
    out_.append(buf, res.ptr);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
  }
  // Catch the common integer types without double-ambiguity. (std::size_t
  // is std::uint64_t on every target we build for.)
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, T v) {
    return key(name).value(v);
  }

  /// Finished document. Valid once every container is closed.
  const std::string& str() const {
    DEEPCAM_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    return out_;
  }

 private:
  enum Scope : char { kObject, kArray };

  void comma() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  void begin_value() {
    if (!stack_.empty() && stack_.back() == kObject) {
      DEEPCAM_CHECK_MSG(have_key_, "JSON value in object without a key");
      have_key_ = false;
    } else {
      comma();
    }
  }
  void pop(Scope s) {
    DEEPCAM_CHECK_MSG(!stack_.empty() && stack_.back() == s && !have_key_,
                      "mismatched JSON container close");
    stack_.pop_back();
    first_ = false;
  }
  void append_quoted(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> stack_;
  bool first_ = true;
  bool have_key_ = false;
};

}  // namespace deepcam
