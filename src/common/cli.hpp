// Tiny shared command-line flag parser.
//
// bench/serve_throughput, examples/serve_loadgen and the deepcam CLI each
// grew their own argv loop with slightly different error behavior; Flags is
// the one implementation they share. Deliberately small: long flags only
// ("--name value" or "--name=value"), typed targets registered up front,
// positional arguments bounded, numbers parsed with std::from_chars
// (locale-proof, full-token validation). parse() never exits or throws on
// user input — it returns false and keeps the message in error() so the
// caller owns the exit path.
#pragma once

#include <charconv>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace deepcam::cli {

class Flags {
 public:
  /// `program` names the binary in usage(); `summary` is its one-liner.
  explicit Flags(std::string program, std::string summary = "")
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Presence flag: --name sets *target to true (no value).
  Flags& flag(const std::string& name, bool* target,
              const std::string& help) {
    return add(name, Kind::kBool, target, help);
  }
  /// Valued options; --name VALUE and --name=VALUE both work.
  Flags& option(const std::string& name, std::string* target,
                const std::string& help) {
    return add(name, Kind::kString, target, help);
  }
  Flags& option(const std::string& name, std::uint64_t* target,
                const std::string& help) {
    return add(name, Kind::kUint, target, help);
  }
  Flags& option(const std::string& name, long* target,
                const std::string& help) {
    return add(name, Kind::kLong, target, help);
  }
  Flags& option(const std::string& name, double* target,
                const std::string& help) {
    return add(name, Kind::kDouble, target, help);
  }

  /// Allows between `min` and `max` positional arguments (default none);
  /// `names` labels them in usage(), e.g. "<mode> <spec.json>".
  Flags& positional(std::size_t min, std::size_t max, std::string names) {
    pos_min_ = min;
    pos_max_ = max;
    pos_names_ = std::move(names);
    return *this;
  }

  /// Parses argv[1..); true on success. On failure error() holds a
  /// one-line diagnostic and the targets may be partially written.
  bool parse(int argc, char** argv) {
    args_.clear();
    error_.clear();
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        args_.push_back(std::move(arg));
        continue;
      }
      std::string name = arg.substr(2);
      std::string value;
      bool have_value = false;
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        have_value = true;
      }
      Spec* spec = find(name);
      if (spec == nullptr) return fail("unknown flag: --" + name);
      if (spec->kind == Kind::kBool) {
        if (have_value) return fail("flag --" + name + " takes no value");
        *static_cast<bool*>(spec->target) = true;
        continue;
      }
      if (!have_value) {
        if (i + 1 >= argc) return fail("missing value for --" + name);
        value = argv[++i];
      }
      if (!assign(*spec, value))
        return fail("invalid value for --" + name + ": '" + value + "'");
    }
    if (args_.size() < pos_min_ || args_.size() > pos_max_)
      return fail(args_.size() < pos_min_ ? "missing argument(s): " + pos_names_
                                          : "unexpected extra argument");
    return true;
  }

  /// Positional arguments, in order.
  const std::vector<std::string>& args() const { return args_; }
  const std::string& error() const { return error_; }

  std::string usage() const {
    std::ostringstream os;
    os << "usage: " << program_;
    if (!specs_.empty()) os << " [flags]";
    if (!pos_names_.empty()) os << ' ' << pos_names_;
    os << '\n';
    if (!summary_.empty()) os << "  " << summary_ << '\n';
    for (const Spec& s : specs_) {
      std::string head = "--" + s.name;
      if (s.kind != Kind::kBool)
        head += std::string(" <") + type_name(s.kind) + ">";
      os << "  " << head;
      for (std::size_t pad = head.size(); pad < 24; ++pad) os << ' ';
      os << s.help << '\n';
    }
    return os.str();
  }

 private:
  enum class Kind { kBool, kString, kUint, kLong, kDouble };

  struct Spec {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  Flags& add(const std::string& name, Kind kind, void* target,
             const std::string& help) {
    DEEPCAM_CHECK_MSG(!name.empty() && name.rfind("--", 0) != 0,
                      "flag names are registered without the leading --");
    DEEPCAM_CHECK_MSG(find(name) == nullptr, "duplicate flag --" + name);
    DEEPCAM_CHECK_MSG(target != nullptr, "null flag target");
    specs_.push_back(Spec{name, kind, target, help});
    return *this;
  }

  Spec* find(const std::string& name) {
    for (Spec& s : specs_)
      if (s.name == name) return &s;
    return nullptr;
  }

  static const char* type_name(Kind k) {
    switch (k) {
      case Kind::kBool: return "";
      case Kind::kString: return "string";
      case Kind::kUint: return "uint";
      case Kind::kLong: return "int";
      case Kind::kDouble: return "float";
    }
    return "?";
  }

  template <typename T>
  static bool parse_number(const std::string& value, T* out) {
    const char* first = value.c_str();
    const char* last = first + value.size();
    const auto res = std::from_chars(first, last, *out);
    return res.ec == std::errc() && res.ptr == last;
  }

  bool assign(const Spec& spec, const std::string& value) {
    switch (spec.kind) {
      case Kind::kBool: return false;  // handled in parse()
      case Kind::kString:
        *static_cast<std::string*>(spec.target) = value;
        return true;
      case Kind::kUint:
        return parse_number(value, static_cast<std::uint64_t*>(spec.target));
      case Kind::kLong:
        return parse_number(value, static_cast<long*>(spec.target));
      case Kind::kDouble:
        return parse_number(value, static_cast<double*>(spec.target));
    }
    return false;
  }

  bool fail(std::string message) {
    error_ = std::move(message);
    return false;
  }

  std::string program_;
  std::string summary_;
  std::vector<Spec> specs_;
  std::vector<std::string> args_;
  std::string error_;
  std::size_t pos_min_ = 0;
  std::size_t pos_max_ = 0;
  std::string pos_names_;
};

/// Splits "a,b,c" into {"a","b","c"}, dropping empty segments — the shape
/// of list-valued flags like serve_loadgen's --models.
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace deepcam::cli
