// Physical unit helpers.
//
// All energies inside the models are carried in joules and all times in
// seconds, as plain doubles; these helpers make the literals in the tech
// model self-describing (0.165_fJ reads as intended).
#pragma once

namespace deepcam {

constexpr double operator"" _fJ(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator"" _pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator"" _nJ(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _uJ(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator"" _ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator"" _MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator"" _um2(long double v) { return static_cast<double>(v); }  // µm²

/// Converts joules to microjoules (for report printing).
constexpr double to_uJ(double joules) { return joules * 1e6; }
/// Converts joules to picojoules.
constexpr double to_pJ(double joules) { return joules * 1e12; }

}  // namespace deepcam
