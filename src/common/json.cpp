#include "common/json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace deepcam {

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "a boolean";
    case JsonValue::Kind::kNumber: return "a number";
    case JsonValue::Kind::kString: return "a string";
    case JsonValue::Kind::kArray: return "an array";
    case JsonValue::Kind::kObject: return "an object";
  }
  return "?";
}

[[noreturn]] void kind_mismatch(const JsonValue& v, const char* wanted) {
  throw v.error(std::string("expected ") + wanted + ", got " +
                kind_name(v.kind()));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_mismatch(*this, "a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_mismatch(*this, "a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_mismatch(*this, "a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) kind_mismatch(*this, "an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (!is_object()) kind_mismatch(*this, "an object");
  return members_;
}

std::uint64_t JsonValue::as_uint() const {
  const double v = as_number();
  if (v < 0.0) throw error("expected a non-negative integer");
  // Doubles represent integers exactly only up to 2^53; a seed that large
  // would silently round, so reject it instead.
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (v > kMaxExact || v != std::floor(v))
    throw error("expected an exact non-negative integer");
  return static_cast<std::uint64_t>(v);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    if (!is_object()) kind_mismatch(*this, "an object");
    throw error("missing required key \"" + key + "\"");
  }
  return *v;
}

/// Strict recursive-descent RFC 8259 parser. One instance per document;
/// tracks line/column as it consumes bytes so every thrown ParseError and
/// every produced JsonValue knows its position.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return root;
  }

 private:
  // Deep enough for any real spec; shallow enough that hostile nesting
  // can't exhaust the stack under ASan.
  static constexpr std::size_t kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, line_, column_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c, const char* what) {
    if (eof()) fail(std::string("unexpected end of input, expected ") + what);
    if (peek() != c)
      fail(std::string("expected ") + what + ", got '" + peek() + "'");
    advance();
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  JsonValue parse_value() {
    if (depth_ > kMaxDepth) fail("JSON nesting too deep");
    if (eof()) fail("unexpected end of input, expected a value");
    JsonValue v;
    v.line_ = line_;
    v.column_ = column_;
    switch (peek()) {
      case '{': parse_object(v); break;
      case '[': parse_array(v); break;
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        break;
      case 't':
      case 'f':
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = peek() == 't';
        parse_literal(v.bool_ ? "true" : "false");
        break;
      case 'n':
        parse_literal("null");
        break;
      default: parse_number(v); break;
    }
    return v;
  }

  void parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p)
        fail(std::string("invalid literal, expected \"") + word + "\"");
      advance();
    }
  }

  void parse_object(JsonValue& v) {
    v.kind_ = JsonValue::Kind::kObject;
    ++depth_;
    advance();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      advance();
      --depth_;
      return;
    }
    while (true) {
      skip_ws();
      if (eof()) fail("unexpected end of input inside object");
      if (peek() != '"') fail("expected a quoted object key");
      const std::size_t key_line = line_, key_col = column_;
      std::string key = parse_string();
      for (const auto& member : v.members_)
        if (member.first == key)
          throw ParseError("duplicate object key \"" + key + "\"", key_line,
                           key_col);
      skip_ws();
      expect(':', "':' after object key");
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unexpected end of input inside object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "',' or '}' in object");
      break;
    }
    --depth_;
  }

  void parse_array(JsonValue& v) {
    v.kind_ = JsonValue::Kind::kArray;
    ++depth_;
    advance();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      advance();
      --depth_;
      return;
    }
    while (true) {
      skip_ws();
      v.items_.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unexpected end of input inside array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "',' or ']' in array");
      break;
    }
    --depth_;
  }

  std::string parse_string() {
    advance();  // opening quote
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(advance());
      if (c == '"') return out;
      if (c < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_codepoint()); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = advance();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return cp;
  }

  std::uint32_t parse_codepoint() {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xDC00 && cp <= 0xDFFF) fail("unpaired low surrogate");
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (eof() || peek() != '\\') fail("unpaired high surrogate");
      advance();
      if (eof() || peek() != 'u') fail("unpaired high surrogate");
      advance();
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
    return cp;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  void parse_number(JsonValue& v) {
    // Scan the token by the JSON grammar first (from_chars alone would
    // accept non-JSON forms like "0123", "+1" or hex), then convert.
    const std::size_t start = pos_;
    auto digit = [&] { return !eof() && peek() >= '0' && peek() <= '9'; };
    if (!eof() && peek() == '-') advance();
    if (!digit()) {
      if (pos_ == start)  // not even a minus sign: not a value at all
        fail(std::string("expected a value, got '") + peek() + "'");
      fail("invalid number");
    }
    if (peek() == '0') {
      advance();
      if (digit()) fail("leading zeros are not allowed");
    } else {
      while (digit()) advance();
    }
    if (!eof() && peek() == '.') {
      advance();
      if (!digit()) fail("digit required after decimal point");
      while (digit()) advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (!digit()) fail("digit required in exponent");
      while (digit()) advance();
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    v.kind_ = JsonValue::Kind::kNumber;
    const auto res = std::from_chars(first, last, v.number_);
    if (res.ec == std::errc::result_out_of_range)
      throw ParseError("number out of range", v.line_, v.column_);
    if (res.ec != std::errc() || res.ptr != last)
      throw ParseError("invalid number", v.line_, v.column_);
    if (!std::isfinite(v.number_))
      throw ParseError("number out of range", v.line_, v.column_);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  std::size_t depth_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw Error("cannot read JSON file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_json(os.str());
}

}  // namespace deepcam
