#include "common/digital_sqrt.hpp"

namespace deepcam {

std::uint16_t isqrt_nonrestoring(std::uint32_t x) {
  // Classic non-restoring square root (two radicand bits in, one root bit
  // out per iteration; 16 iterations for a 32-bit radicand). The remainder
  // is allowed to go negative and is compensated on the next iteration —
  // exactly one add/subtract per cycle in the serial hardware unit.
  std::int64_t rem = 0;
  std::uint32_t root = 0;
  for (int i = 15; i >= 0; --i) {
    const std::int64_t bits = (x >> (2 * i)) & 0x3u;
    if (rem >= 0) {
      rem = (rem << 2) | bits;
      rem -= (static_cast<std::int64_t>(root) << 2) | 1;  // - (4q + 1)
    } else {
      rem = (rem << 2) | bits;
      rem += (static_cast<std::int64_t>(root) << 2) | 3;  // + (4q + 3)
    }
    root = (root << 1) | (rem >= 0 ? 1u : 0u);
  }
  return static_cast<std::uint16_t>(root);
}

std::uint32_t fxsqrt_q16(std::uint64_t x_q32) {
  // sqrt over Q(32.32)-scaled integer: integer sqrt of a 64-bit value.
  // Binary search based integer sqrt (hardware: 32-iteration serial unit).
  std::uint64_t lo = 0, hi = 0xFFFFFFFFull;
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi + 1) >> 1;
    if (mid * mid <= x_q32)
      lo = mid;
    else
      hi = mid - 1;
  }
  return static_cast<std::uint32_t>(lo);
}

}  // namespace deepcam
