#include "common/minifloat.hpp"

#include <algorithm>
#include <cstring>

namespace deepcam {

namespace {
constexpr int kManBits = MiniFloat::kManBits;
constexpr int kBias = MiniFloat::kBias;
constexpr int kExpMax = 15;  // 4-bit exponent field max
}  // namespace

std::uint8_t MiniFloat::encode(float x) {
  std::uint8_t sign = 0;
  if (std::signbit(x)) {
    sign = 0x80;
    x = -x;
  }
  if (std::isnan(x)) return sign;              // treat NaN as zero magnitude
  if (x >= kMax) return sign | 0x7F;           // saturate to max finite code
  if (x < kMinSubnormal / 2.0f) return sign;   // underflow to zero

  int e = 0;
  const float m = std::frexp(x, &e);  // x = m * 2^e, m in [0.5, 1)
  // Normalize to 1.f * 2^(e-1) form.
  int exp = e - 1;
  int biased = exp + kBias;

  float scaled;  // mantissa scaled so that integer rounding yields the code
  if (biased >= 1) {
    // Normal number: code mantissa = round((m*2 - 1) * 2^kManBits).
    scaled = (m * 2.0f - 1.0f) * (1 << kManBits);
  } else {
    // Subnormal: value = frac * 2^(1-kBias), mantissa = round(x / 2^(1-bias-man)).
    scaled = std::ldexp(x, kBias - 1 + kManBits);
    biased = 0;
  }
  // Round to nearest even.
  int mant = static_cast<int>(std::nearbyint(scaled));
  if (biased >= 1 && mant == (1 << kManBits)) {
    mant = 0;
    ++biased;
  } else if (biased == 0 && mant == (1 << kManBits)) {
    mant = 0;
    biased = 1;
  }
  if (biased > kExpMax) return sign | 0x7F;  // saturate after rounding
  return static_cast<std::uint8_t>(sign | (biased << kManBits) | mant);
}

float MiniFloat::decode(std::uint8_t code) {
  const float sign = (code & 0x80) ? -1.0f : 1.0f;
  const int biased = (code >> kManBits) & 0xF;
  const int mant = code & ((1 << kManBits) - 1);
  if (biased == 0) {
    // Subnormal: mant * 2^(1 - bias - kManBits).
    return sign * std::ldexp(static_cast<float>(mant), 1 - kBias - kManBits);
  }
  const float frac = 1.0f + static_cast<float>(mant) / (1 << kManBits);
  return sign * std::ldexp(frac, biased - kBias);
}

}  // namespace deepcam
