// Plain-text table printer used by the benchmark harnesses to emit rows in
// the same layout as the paper's tables/figures. Column widths auto-size.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace deepcam {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row; cell count must equal header count.
  void add_row(std::vector<std::string> cells);

  /// Renders the table to `os` with aligned columns.
  void print(std::ostream& os = std::cout) const;

  /// Formats a double with `prec` significant decimals.
  static std::string num(double v, int prec = 3);

  /// Formats a ratio like "12.3x".
  static std::string ratio(double v, int prec = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepcam
