// Central technology cost model for every hardware component simulated in
// this repository. All energy/latency/area constants live here, each with a
// comment stating its origin:
//   [paper]    — a number or ratio stated in the DeepCAM paper itself
//   [evacam]   — EvaCAM-style FeFET CAM scaling (paper extracts FeFET CAM
//                energy/area from EvaCAM, DATE 2022); we use representative
//                per-bit values of that tool's 45 nm FeFET corner
//   [est45]    — standard-cell estimate at 45 nm / 300 MHz (the paper's
//                synthesis corner, Synopsys DC + PrimeTime)
//   [arch]     — microarchitectural parameter of our design, ablatable
//
// Nothing outside this header hard-codes a physical constant.
#pragma once

#include "common/units.hpp"

namespace deepcam::tech {

// ---------------------------------------------------------------------------
// System clock
// ---------------------------------------------------------------------------
/// [paper] hardware evaluations carried out at 300 MHz, 45 nm CMOS.
inline constexpr double kClockHz = 300.0e6;
/// Seconds per cycle at the system clock.
inline constexpr double kCycleSeconds = 1.0 / kClockHz;

// ---------------------------------------------------------------------------
// FeFET CAM (the DeepCAM array)
// ---------------------------------------------------------------------------
/// [evacam] FeFET CAM search energy per cell per search operation.
inline constexpr double kCamSearchEnergyPerBit = 0.165e-15;  // J/bit/search
/// [evacam] clocked self-referenced sense amplifier energy per row per search.
inline constexpr double kCamSenseAmpEnergyPerRow = 2.0e-15;  // J/row/search
/// [evacam] FeFET program (write) energy per cell.
inline constexpr double kCamWriteEnergyPerBit = 10.0e-15;  // J/bit
/// [evacam] 2T-2FeFET CAM cell area at 45 nm.
inline constexpr double kFeFetCamCellAreaUm2 = 0.35;  // µm²
/// [paper] FeFET CAM cell is ~7.5x smaller than the 16T CMOS TCAM cell,
/// with ~2.4x lower search energy; used for the CMOS comparison mode.
inline constexpr double kCmosAreaFactor = 7.5;
inline constexpr double kCmosSearchEnergyFactor = 2.4;
/// [evacam] match-line precharge energy per bit (included in search energy
/// above for FeFET; CMOS adds this separately).
inline constexpr double kCamPrechargeEnergyPerBit = 0.05e-15;  // J/bit

/// [arch] CAM search latency in cycles per enabled 256-bit chunk: precharge,
/// discharge window and TDC latch scale with match-line length.
inline constexpr int kCamSearchBaseCycles = 2;
inline constexpr int kCamSearchCyclesPerChunk = 2;
/// [arch] FeFET row program latency (one row, all columns in parallel).
inline constexpr int kCamWriteCyclesPerRow = 2;
/// [arch] pipeline drain cycles charged once per CAM pass.
inline constexpr int kCamPassDrainCycles = 8;

// ---------------------------------------------------------------------------
// Post-processing & transformation unit (45 nm digital @ 300 MHz)
// ---------------------------------------------------------------------------
/// [est45] 8-bit adder energy.
inline constexpr double kAdd8Energy = 0.03e-12;
/// [est45] 16-bit adder energy (adder-tree nodes).
inline constexpr double kAdd16Energy = 0.05e-12;
/// [est45] 8x8 multiplier energy.
inline constexpr double kMul8Energy = 0.20e-12;
/// [est45] minifloat (8-bit) multiplier energy — smaller than int8 multiplier
/// because the mantissa multiplier is 4x4.
inline constexpr double kMiniFloatMulEnergy = 0.10e-12;
/// [est45] PWL cosine unit: one multiply + one add on 16-bit fixed point.
inline constexpr double kCosineUnitEnergy = 0.15e-12;
/// [est45] non-restoring sqrt: per-iteration add/sub on 32-bit datapath.
inline constexpr double kSqrtIterEnergy = 0.06e-12;
/// [est45] register/latch energy per 8-bit value moved through the pipeline.
inline constexpr double kPipeRegEnergy = 0.01e-12;

// ---------------------------------------------------------------------------
// Online activation-context generator (NVM crossbar hasher)
// ---------------------------------------------------------------------------
/// [evacam] FeFET crossbar cell access energy for the random-projection
/// matrix-vector multiply (sign output via sense amp — no ADC).
inline constexpr double kXbarCellEnergy = 1.0e-15;  // J per cell per pass
/// [est45] sign-detecting sense amplifier energy per output column.
inline constexpr double kXbarSenseAmpEnergy = 5.0e-15;
/// [arch] bit-serial input precision driving the crossbar (cycles/patch).
inline constexpr int kXbarInputBits = 8;

// ---------------------------------------------------------------------------
// Eyeriss-style systolic array (INT8 datapath, 45 nm)
// ---------------------------------------------------------------------------
/// [est45] INT8 MAC energy at 45 nm (paper normalizes memory cost to this).
inline constexpr double kMacInt8Energy = 0.25e-12;
/// [paper] on-chip SRAM access costs ~6x a MAC.
inline constexpr double kSramAccessFactor = 6.0;
/// [paper] off-chip DRAM access costs ~200x a MAC.
inline constexpr double kDramAccessFactor = 200.0;
/// [arch] Eyeriss PE array geometry used in the paper's baseline.
inline constexpr int kEyerissRows = 14;
inline constexpr int kEyerissCols = 12;
/// [arch] global buffer size (Eyeriss: 108 KB) — drives DRAM traffic model.
inline constexpr int kEyerissGlobalBufferBytes = 108 * 1024;
/// [arch] DRAM bandwidth in bytes per compute cycle (single LPDDR channel
/// at accelerator clock).
inline constexpr double kDramBytesPerCycle = 4.0;

// ---------------------------------------------------------------------------
// CPU baseline (Intel Skylake, AVX-512 VNNI-class INT8)
// ---------------------------------------------------------------------------
/// [arch] Skylake-class core clock; the paper compares raw computation
/// cycles, but throughput (samples/s) must use each platform's own clock.
inline constexpr double kCpuClockHz = 3.2e9;
/// [arch] peak INT8 MACs per cycle per core: 2 FMA ports x 64 INT8 lanes.
inline constexpr int kCpuPeakMacsPerCycle = 128;
/// [arch] achievable fraction of peak on large GEMM-shaped layers.
inline constexpr double kCpuMaxEfficiency = 0.50;
/// [arch] fixed per-layer overhead (loop setup, packing, cache warmup).
inline constexpr double kCpuPerLayerOverheadCycles = 2000.0;
/// [arch] per-output-row vector loop overhead in cycles; dominates tiny
/// layers and reproduces the poor efficiency CPUs show on small CNNs.
inline constexpr double kCpuPerVectorLoopOverhead = 8.0;

// ---------------------------------------------------------------------------
// Analog PIM baselines (Table II comparators)
// ---------------------------------------------------------------------------
/// [arch] NeuroSim-style RRAM crossbar: effective energy per INT8-equivalent
/// MAC including DAC/ADC and peripherals (ADC-dominated).
inline constexpr double kRramMacEnergy = 0.23e-12;
/// [arch] NeuroSim crossbar tile geometry and ADC sharing.
inline constexpr int kRramTileRows = 128;
inline constexpr int kRramTileCols = 128;
inline constexpr int kRramAdcsPerTile = 16;
inline constexpr int kRramInputBits = 8;
/// [arch] Valavi-style SRAM charge-domain macro: energy per binary MAC
/// (charge-redistribution compute is ~10x cheaper than RRAM+ADC).
inline constexpr double kSramChargeMacEnergy = 0.023e-12;
inline constexpr int kValaviTileRows = 64;   // 64-tile, 2.4 Mb macro
inline constexpr int kValaviTileCols = 64;
inline constexpr int kValaviTiles = 64;

}  // namespace deepcam::tech
