// Deterministic random number generation for the whole project.
//
// Every stochastic component (weight init, synthetic datasets, random
// projection matrices, fault injection) derives its stream from an explicit
// 64-bit seed so that all experiments are exactly reproducible. We use
// SplitMix64 for seeding and Xoshiro256** as the bulk generator — both are
// small, fast, and well studied; std::mt19937 is avoided because its state
// initialization from a single seed is poor.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace deepcam {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: bulk 64-bit PRNG with 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xDEEC0DEull) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-ish reduction (bias negligible
    // for our n << 2^64 use cases; exact enough for simulation workloads).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Standard normal via Box–Muller (cached second value).
  double gaussian() {
    if (has_cache_) {
      has_cache_ = false;
      return cache_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cache_ = r * std::sin(theta);
    has_cache_ = true;
    return r * std::cos(theta);
  }

  /// Gaussian with explicit mean/stddev.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Derive an independent child stream (for per-layer / per-module seeding).
  Rng fork(std::uint64_t stream_id) {
    SplitMix64 sm(next() ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)));
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double cache_ = 0.0;
  bool has_cache_ = false;
};

}  // namespace deepcam
