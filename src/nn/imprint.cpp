#include "nn/imprint.hpp"

#include <cmath>

#include "nn/linear.hpp"

namespace deepcam::nn {

void imprint_classifier(Model& model,
                        const std::vector<Tensor>& class_prototypes) {
  // Locate the final Linear node.
  std::size_t fc_node = model.node_count();
  for (std::size_t i = model.node_count(); i-- > 0;) {
    if (model.layer(i).kind() == LayerKind::kLinear) {
      fc_node = i;
      break;
    }
  }
  DEEPCAM_CHECK_MSG(fc_node < model.node_count(),
                    "imprinting needs a Linear classifier head");
  auto& fc = static_cast<Linear&>(model.layer(fc_node));
  DEEPCAM_CHECK_MSG(class_prototypes.size() == fc.out_features(),
                    "one prototype per output class required");
  const int in_node = model.inputs_of(fc_node)[0];

  for (std::size_t c = 0; c < class_prototypes.size(); ++c) {
    const auto outs = model.forward_all(class_prototypes[c]);
    const Tensor& feat = in_node == kModelInput
                             ? class_prototypes[c]
                             : outs[static_cast<std::size_t>(in_node)];
    DEEPCAM_CHECK_MSG(feat.numel() == fc.in_features(),
                      "penultimate feature size mismatch");
    double ss = 0.0;
    for (std::size_t i = 0; i < feat.numel(); ++i)
      ss += double(feat[i]) * feat[i];
    const float inv = static_cast<float>(1.0 / (std::sqrt(ss) + 1e-12));
    for (std::size_t i = 0; i < fc.in_features(); ++i)
      fc.weights()[c * fc.in_features() + i] = feat[i] * inv;
    fc.bias()[c] = 0.0f;
  }
}

}  // namespace deepcam::nn
