// INT8 symmetric quantization helpers.
//
// The Eyeriss baseline runs an INT8 datapath (the paper switches Eyeriss
// from INT16 to INT8, "the state-of-the-art quantization"). These helpers
// quantize weights/activations per-tensor with a symmetric scale and measure
// the accuracy impact, so the Eyeriss baseline's functional behaviour (not
// just its cycle count) is modeled.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace deepcam::nn {

struct QuantParams {
  float scale = 1.0f;  // real_value = scale * int_value
};

/// Chooses a symmetric scale covering max|x|; 127 codes.
QuantParams choose_scale(std::span<const float> x);

/// Quantizes to int8 with round-to-nearest, saturating.
std::vector<std::int8_t> quantize_int8(std::span<const float> x,
                                       const QuantParams& qp);

/// Dequantizes back to float.
std::vector<float> dequantize_int8(std::span<const std::int8_t> q,
                                   const QuantParams& qp);

/// Round-trips a tensor through INT8 (fake quantization).
Tensor fake_quantize(const Tensor& t);

}  // namespace deepcam::nn
