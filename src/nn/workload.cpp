#include "nn/workload.hpp"

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace deepcam::nn {

std::vector<Shape> infer_shapes(const Model& model, Shape input_shape) {
  std::vector<Shape> shapes;
  shapes.reserve(model.node_count());
  auto shape_of = [&](int idx) -> const Shape& {
    return idx == kModelInput ? input_shape
                              : shapes[static_cast<std::size_t>(idx)];
  };
  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const Layer& layer = model.layer(i);
    const Shape in = shape_of(model.inputs_of(i)[0]);
    Shape out = in;
    switch (layer.kind()) {
      case LayerKind::kConv2D: {
        const auto& conv = static_cast<const Conv2D&>(layer);
        const ConvSpec& sp = conv.spec();
        DEEPCAM_CHECK_MSG(in.c == sp.in_channels,
                          "shape inference: conv channel mismatch");
        out = {in.n, sp.out_channels, sp.out_h(in.h), sp.out_w(in.w)};
        break;
      }
      case LayerKind::kLinear: {
        const auto& fc = static_cast<const Linear&>(layer);
        DEEPCAM_CHECK_MSG(in.c * in.h * in.w == fc.in_features(),
                          "shape inference: linear feature mismatch");
        out = {in.n, fc.out_features(), 1, 1};
        break;
      }
      case LayerKind::kMaxPool: {
        const auto& p = static_cast<const MaxPool&>(layer);
        out = {in.n, in.c, (in.h - p.window()) / p.stride() + 1,
               (in.w - p.window()) / p.stride() + 1};
        break;
      }
      case LayerKind::kAvgPool: {
        const auto& p = static_cast<const AvgPool&>(layer);
        out = {in.n, in.c, (in.h - p.window()) / p.stride() + 1,
               (in.w - p.window()) / p.stride() + 1};
        break;
      }
      case LayerKind::kFlatten:
        out = {in.n, in.c * in.h * in.w, 1, 1};
        break;
      case LayerKind::kAdd: {
        const Shape other = shape_of(model.inputs_of(i)[1]);
        DEEPCAM_CHECK_MSG(in == other, "shape inference: add mismatch");
        out = in;
        break;
      }
      case LayerKind::kReLU:
      case LayerKind::kBatchNorm:
      case LayerKind::kSoftmax:
        out = in;
        break;
    }
    shapes.push_back(out);
  }
  return shapes;
}

std::vector<GemmDims> extract_gemm_workload(const Model& model,
                                            Shape input_shape) {
  const auto shapes = infer_shapes(model, input_shape);
  std::vector<GemmDims> work;
  auto shape_of = [&](int idx) -> const Shape& {
    return idx == kModelInput ? input_shape
                              : shapes[static_cast<std::size_t>(idx)];
  };
  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const Layer& layer = model.layer(i);
    if (layer.kind() == LayerKind::kConv2D) {
      const auto& conv = static_cast<const Conv2D&>(layer);
      const Shape in = shape_of(model.inputs_of(i)[0]);
      const ConvSpec& sp = conv.spec();
      work.push_back({layer.name(), sp.out_h(in.h) * sp.out_w(in.w),
                      sp.out_channels, sp.patch_len()});
    } else if (layer.kind() == LayerKind::kLinear) {
      const auto& fc = static_cast<const Linear&>(layer);
      work.push_back({layer.name(), 1, fc.out_features(), fc.in_features()});
    }
  }
  return work;
}

std::size_t total_macs(const Model& model, Shape input_shape) {
  std::size_t total = 0;
  for (const auto& g : extract_gemm_workload(model, input_shape))
    total += g.macs();
  return total;
}

}  // namespace deepcam::nn
