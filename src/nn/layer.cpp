#include "nn/layer.hpp"

namespace deepcam::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2D: return "Conv2D";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kSoftmax: return "Softmax";
  }
  return "Unknown";
}

Tensor Layer::backward(const Tensor& /*grad_out*/) {
  throw Error(std::string("layer '") + name() + "' does not support backward");
}

}  // namespace deepcam::nn
