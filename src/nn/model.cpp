#include "nn/model.hpp"

#include <cmath>

#include "nn/pointwise.hpp"

namespace deepcam::nn {

int Model::add(LayerPtr layer) {
  const int input = nodes_.empty() ? kModelInput
                                   : static_cast<int>(nodes_.size()) - 1;
  return add(std::move(layer), input);
}

int Model::add(LayerPtr layer, int input) {
  DEEPCAM_CHECK(input >= kModelInput &&
                input < static_cast<int>(nodes_.size()));
  nodes_.push_back({std::move(layer), {input}});
  return static_cast<int>(nodes_.size()) - 1;
}

int Model::add(LayerPtr layer, int input_a, int input_b) {
  DEEPCAM_CHECK(input_a >= kModelInput &&
                input_a < static_cast<int>(nodes_.size()));
  DEEPCAM_CHECK(input_b >= kModelInput &&
                input_b < static_cast<int>(nodes_.size()));
  nodes_.push_back({std::move(layer), {input_a, input_b}});
  return static_cast<int>(nodes_.size()) - 1;
}

std::vector<Tensor> Model::forward_all_impl(const Tensor& input, bool train) {
  std::vector<Tensor> outs;
  outs.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    auto fetch = [&](int idx) -> const Tensor& {
      return idx == kModelInput ? input : outs[static_cast<std::size_t>(idx)];
    };
    if (node.inputs.size() == 2) {
      auto* add = dynamic_cast<Add*>(node.layer.get());
      DEEPCAM_CHECK_MSG(add != nullptr, "two-input node must be Add");
      outs.push_back(add->forward2(fetch(node.inputs[0]),
                                   fetch(node.inputs[1])));
    } else {
      outs.push_back(node.layer->forward(fetch(node.inputs[0]), train));
    }
  }
  return outs;
}

Tensor Model::forward(const Tensor& input, bool train) {
  std::vector<Tensor> outs = forward_all_impl(input, train);
  return outs.back();
}

std::vector<Tensor> Model::forward_all(const Tensor& input) {
  return forward_all_impl(input, false);
}

std::vector<Tensor> Model::infer_all(const Tensor& input) const {
  std::vector<Tensor> outs;
  outs.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = nodes_[i];
    auto fetch = [&](int idx) -> const Tensor& {
      return idx == kModelInput ? input : outs[static_cast<std::size_t>(idx)];
    };
    if (node.inputs.size() == 2) {
      const auto* add = dynamic_cast<const Add*>(node.layer.get());
      DEEPCAM_CHECK_MSG(add != nullptr, "two-input node must be Add");
      outs.push_back(add->forward2(fetch(node.inputs[0]),
                                   fetch(node.inputs[1])));
    } else {
      outs.push_back(node.layer->infer(fetch(node.inputs[0])));
    }
  }
  return outs;
}

Tensor Model::infer(const Tensor& input) const {
  std::vector<Tensor> outs = infer_all(input);
  return outs.back();
}

bool Model::is_sequential() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].inputs.size() != 1) return false;
    const int expect = (i == 0) ? kModelInput : static_cast<int>(i) - 1;
    if (nodes_[i].inputs[0] != expect) return false;
  }
  return true;
}

void Model::backward(const Tensor& grad) {
  DEEPCAM_CHECK_MSG(is_sequential(), "backward requires a sequential model");
  Tensor g = grad;
  for (std::size_t i = nodes_.size(); i-- > 0;) g = nodes_[i].layer->backward(g);
}

void Model::update(float lr) {
  for (auto& n : nodes_) n.layer->update(lr);
}

std::size_t Model::param_count() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) total += n.layer->param_count();
  return total;
}

std::size_t argmax_class(const Tensor& logits, std::size_t n) {
  const Shape& s = logits.shape();
  const std::size_t feat = s.c * s.h * s.w;
  const float* x = logits.data() + n * feat;
  std::size_t best = 0;
  for (std::size_t i = 1; i < feat; ++i)
    if (x[i] > x[best]) best = i;
  return best;
}

float softmax_cross_entropy(const Tensor& logits,
                            const std::vector<std::size_t>& labels,
                            Tensor* grad) {
  const Shape& s = logits.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK(labels.size() == s.n);
  if (grad != nullptr) *grad = Tensor(s);
  double loss = 0.0;
  std::vector<double> p(feat);
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* x = logits.data() + n * feat;
    double mx = x[0];
    for (std::size_t i = 1; i < feat; ++i) mx = std::max(mx, double(x[i]));
    double sum = 0.0;
    for (std::size_t i = 0; i < feat; ++i) {
      p[i] = std::exp(x[i] - mx);
      sum += p[i];
    }
    for (std::size_t i = 0; i < feat; ++i) p[i] /= sum;
    loss -= std::log(std::max(p[labels[n]], 1e-12));
    if (grad != nullptr) {
      float* g = grad->data() + n * feat;
      for (std::size_t i = 0; i < feat; ++i) {
        g[i] = static_cast<float>(
            (p[i] - (i == labels[n] ? 1.0 : 0.0)) / double(s.n));
      }
    }
  }
  return static_cast<float>(loss / double(s.n));
}

}  // namespace deepcam::nn
