#include "nn/topologies.hpp"

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"

namespace deepcam::nn {

namespace {

/// Per-layer seed derivation keeps weight streams independent.
std::uint64_t sub_seed(std::uint64_t seed, int idx) {
  return seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(idx) + 1;
}

/// conv3x3(pad 1) + BN + ReLU block used by VGG and ResNet.
int add_conv_bn_relu(Model& m, int& idx, std::uint64_t seed, int input,
                     std::size_t in_c, std::size_t out_c, std::size_t stride) {
  ConvSpec spec{in_c, out_c, 3, 3, stride, 1};
  int n = m.add(std::make_unique<Conv2D>("conv" + std::to_string(idx), spec,
                                         sub_seed(seed, idx)),
                input);
  ++idx;
  n = m.add(std::make_unique<BatchNorm>("bn" + std::to_string(idx), out_c,
                                        sub_seed(seed, idx)),
            n);
  ++idx;
  n = m.add(std::make_unique<ReLU>("relu" + std::to_string(idx)), n);
  ++idx;
  return n;
}

}  // namespace

std::unique_ptr<Model> make_lenet5(std::uint64_t seed) {
  auto m = std::make_unique<Model>("lenet5");
  // Classic LeNet5 adapted to 28x28 input: conv5x5x6, pool, conv5x5x16,
  // pool, FC 256->120->84->10 (valid convolutions, ReLU activations).
  m->add(std::make_unique<Conv2D>("conv1", ConvSpec{1, 6, 5, 5, 1, 0},
                                  sub_seed(seed, 0)));
  m->add(std::make_unique<ReLU>("relu1"));
  m->add(std::make_unique<MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<Conv2D>("conv2", ConvSpec{6, 16, 5, 5, 1, 0},
                                  sub_seed(seed, 1)));
  m->add(std::make_unique<ReLU>("relu2"));
  m->add(std::make_unique<MaxPool>("pool2", 2, 2));
  m->add(std::make_unique<Flatten>("flatten"));
  m->add(std::make_unique<Linear>("fc1", 16 * 4 * 4, 120, sub_seed(seed, 2)));
  m->add(std::make_unique<ReLU>("relu3"));
  m->add(std::make_unique<Linear>("fc2", 120, 84, sub_seed(seed, 3)));
  m->add(std::make_unique<ReLU>("relu4"));
  m->add(std::make_unique<Linear>("fc3", 84, 10, sub_seed(seed, 4)));
  return m;
}

namespace {

std::unique_ptr<Model> make_vgg(const std::string& name,
                                const std::vector<int>& cfg,  // -1 = pool
                                std::uint64_t seed, std::size_t classes) {
  auto m = std::make_unique<Model>(name);
  int idx = 0;
  int node = kModelInput;
  std::size_t in_c = 3;
  int pool_idx = 0;
  for (int v : cfg) {
    if (v < 0) {
      node = m->add(std::make_unique<MaxPool>(
                        "pool" + std::to_string(pool_idx++), 2, 2),
                    node);
    } else {
      node = add_conv_bn_relu(*m, idx, seed, node, in_c,
                              static_cast<std::size_t>(v), 1);
      in_c = static_cast<std::size_t>(v);
    }
  }
  node = m->add(std::make_unique<Flatten>("flatten"), node);
  node = m->add(std::make_unique<Linear>("fc1", in_c, 512, sub_seed(seed, 900)),
                node);
  node = m->add(std::make_unique<ReLU>("relu_fc1"), node);
  m->add(std::make_unique<Linear>("fc2", 512, classes, sub_seed(seed, 901)),
         node);
  return m;
}

}  // namespace

std::unique_ptr<Model> make_vgg11(std::uint64_t seed, std::size_t classes) {
  // VGG11 (configuration A) for 32x32: conv widths with pools between stages.
  return make_vgg("vgg11",
                  {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1},
                  seed, classes);
}

std::unique_ptr<Model> make_vgg16(std::uint64_t seed, std::size_t classes) {
  // VGG16 (configuration D) for 32x32.
  return make_vgg("vgg16",
                  {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512,
                   -1, 512, 512, 512, -1},
                  seed, classes);
}

std::unique_ptr<Model> make_resnet18(std::uint64_t seed, std::size_t classes) {
  auto m = std::make_unique<Model>("resnet18");
  int idx = 0;
  // Stem: conv3x3 64 (CIFAR variant — no 7x7/stride-2, no initial maxpool).
  int node = add_conv_bn_relu(*m, idx, seed, kModelInput, 3, 64, 1);

  struct StageCfg {
    std::size_t channels;
    std::size_t stride;  // first block's stride
  };
  const StageCfg stages[] = {{64, 1}, {128, 2}, {256, 2}, {512, 2}};
  std::size_t in_c = 64;
  for (const auto& st : stages) {
    for (int block = 0; block < 2; ++block) {
      const std::size_t stride = (block == 0) ? st.stride : 1;
      const int skip_src = node;
      // Main path: conv-bn-relu, conv-bn.
      int n = add_conv_bn_relu(*m, idx, seed, node, in_c, st.channels, stride);
      ConvSpec spec2{st.channels, st.channels, 3, 3, 1, 1};
      n = m->add(std::make_unique<Conv2D>("conv" + std::to_string(idx), spec2,
                                          sub_seed(seed, idx)),
                 n);
      ++idx;
      n = m->add(std::make_unique<BatchNorm>("bn" + std::to_string(idx),
                                             st.channels, sub_seed(seed, idx)),
                 n);
      ++idx;
      // Shortcut: identity, or 1x1/stride-s projection when shape changes.
      int shortcut = skip_src;
      if (stride != 1 || in_c != st.channels) {
        ConvSpec ds{in_c, st.channels, 1, 1, stride, 0};
        shortcut = m->add(
            std::make_unique<Conv2D>("ds" + std::to_string(idx), ds,
                                     sub_seed(seed, idx)),
            skip_src);
        ++idx;
        shortcut = m->add(std::make_unique<BatchNorm>(
                              "dsbn" + std::to_string(idx), st.channels,
                              sub_seed(seed, idx)),
                          shortcut);
        ++idx;
      }
      n = m->add(std::make_unique<Add>("add" + std::to_string(idx)), n,
                 shortcut);
      ++idx;
      node = m->add(std::make_unique<ReLU>("relu" + std::to_string(idx)), n);
      ++idx;
      in_c = st.channels;
    }
  }
  // Head: global average pool (4x4 for 32x32 input), FC to classes.
  node = m->add(std::make_unique<AvgPool>("gap", 4, 4), node);
  node = m->add(std::make_unique<Flatten>("flatten"), node);
  m->add(std::make_unique<Linear>("fc", 512, classes, sub_seed(seed, 999)),
         node);
  return m;
}

InputSpec input_spec_for(const std::string& model_name) {
  if (model_name == "lenet5") return {1, 28, 28, 10};
  if (model_name == "vgg11") return {3, 32, 32, 10};
  if (model_name == "vgg16") return {3, 32, 32, 100};
  if (model_name == "resnet18") return {3, 32, 32, 100};
  throw Error("unknown model name: " + model_name);
}

std::unique_ptr<Model> make_model(const std::string& name,
                                  std::uint64_t seed) {
  if (name == "lenet5") return make_lenet5(seed);
  if (name == "vgg11") return make_vgg11(seed, 10);
  if (name == "vgg16") return make_vgg16(seed, 100);
  if (name == "resnet18") return make_resnet18(seed, 100);
  throw Error("unknown model name: " + name);
}

}  // namespace deepcam::nn
