// Fully-connected layer with training support.
//
// Accepts any input shape with matching element count (implicit flatten of
// C×H×W); output shape is {N, out_features, 1, 1}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace deepcam::nn {

class Linear final : public Layer {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         std::uint64_t seed);

  LayerKind kind() const override { return LayerKind::kLinear; }
  std::string name() const override { return name_; }
  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  Tensor backward(const Tensor& grad_out) override;
  void update(float lr) override;
  std::size_t param_count() const override {
    return weights_.size() + bias_.size();
  }

  /// Hash-noise-aware training (see Conv2D::set_training_noise).
  void set_training_noise(float scale, std::uint64_t seed) {
    noise_scale_ = scale;
    noise_rng_ = Rng(seed);
  }

  /// Weights, row-major [out_features][in_features].
  std::vector<float>& weights() { return weights_; }
  const std::vector<float>& weights() const { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  std::string name_;
  std::size_t in_, out_;
  std::vector<float> weights_, bias_, grad_w_, grad_b_;
  Tensor cached_in_;
  bool has_cache_ = false;
  float noise_scale_ = 0.0f;
  Rng noise_rng_{0};
};

}  // namespace deepcam::nn
