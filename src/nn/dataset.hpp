// Synthetic datasets standing in for MNIST / CIFAR10 / CIFAR100.
//
// Offline substitution (DESIGN.md §2): benchmark image sets are not
// available in this environment, so we generate procedural datasets with the
// same tensor geometry and a controllable degree of class structure:
//
//  * SyntheticDigits — MNIST-like 1x28x28. Each class is a coarse 7x7 stroke
//    template (digit-shaped) upscaled to 28x28 and perturbed by random
//    translation, per-pixel noise, and amplitude jitter. Linearly separable
//    enough that LeNet5 trains to high accuracy in seconds, hard enough that
//    accuracy is sensitive to dot-product approximation error — which is the
//    property the Fig. 5 experiment depends on.
//
//  * GaussianTextures — CIFAR-like 3x32x32. Each class has a smoothed random
//    prototype; samples are prototype + i.i.d. noise with SNR control.
//
// Everything is seed-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace deepcam::nn {

struct Sample {
  Tensor image;       // {1, C, H, W}
  std::size_t label;  // class index
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::size_t size() const = 0;
  virtual std::size_t num_classes() const = 0;
  virtual const Sample& sample(std::size_t i) const = 0;

  /// Assembles a batch tensor {B, C, H, W} + labels from sample indices.
  std::pair<Tensor, std::vector<std::size_t>> batch(
      const std::vector<std::size_t>& indices) const;
};

class SyntheticDigits final : public Dataset {
 public:
  /// `count` samples, deterministic in `seed`. `noise` is per-pixel Gaussian
  /// sigma (default produces ~98-99% LeNet5 accuracy after 2 epochs).
  SyntheticDigits(std::size_t count, std::uint64_t seed, double noise = 0.25);

  std::size_t size() const override { return samples_.size(); }
  std::size_t num_classes() const override { return 10; }
  const Sample& sample(std::size_t i) const override { return samples_[i]; }

 private:
  std::vector<Sample> samples_;
};

class GaussianTextures final : public Dataset {
 public:
  /// CIFAR-like: `classes` classes of 3x32x32 images. `noise` relative to
  /// unit prototype amplitude.
  GaussianTextures(std::size_t count, std::size_t classes, std::uint64_t seed,
                   double noise = 0.5);

  std::size_t size() const override { return samples_.size(); }
  std::size_t num_classes() const override { return classes_; }
  const Sample& sample(std::size_t i) const override { return samples_[i]; }

  /// The noise-free class prototype (used for classifier imprinting).
  const Tensor& prototype(std::size_t c) const { return protos_[c]; }

 private:
  std::size_t classes_;
  std::vector<Tensor> protos_;
  std::vector<Sample> samples_;
};

}  // namespace deepcam::nn
