// Graph-structured model container.
//
// A Model is a DAG of layers evaluated in node order. Node inputs refer to
// earlier nodes by index (kModelInput = the network input), which is enough
// to express the sequential topologies (LeNet5, VGG) and ResNet18's residual
// skip connections. Purely sequential models additionally support training
// through backward()/update() (used to train LeNet5 in-repo).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace deepcam::nn {

inline constexpr int kModelInput = -1;

class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a node fed by `input` (default: previous node, or the model
  /// input for the first node). Returns the new node's index.
  int add(LayerPtr layer);
  int add(LayerPtr layer, int input);
  /// Appends a two-input node (residual Add).
  int add(LayerPtr layer, int input_a, int input_b);

  std::size_t node_count() const { return nodes_.size(); }
  Layer& layer(std::size_t i) { return *nodes_[i].layer; }
  const Layer& layer(std::size_t i) const { return *nodes_[i].layer; }
  const std::vector<int>& inputs_of(std::size_t i) const {
    return nodes_[i].inputs;
  }

  /// Runs the graph; returns the last node's output.
  Tensor forward(const Tensor& input, bool train = false);

  /// All intermediate activations (index i = output of node i). Used by the
  /// hardware simulators, which need per-layer inputs.
  std::vector<Tensor> forward_all(const Tensor& input);

  /// Const inference pass: identical numerics to forward(input, false) but
  /// touches no mutable layer state, so a shared const Model can be run
  /// concurrently from many threads (the InferenceEngine relies on this).
  Tensor infer(const Tensor& input) const;

  /// Const-inference variant of forward_all().
  std::vector<Tensor> infer_all(const Tensor& input) const;

  /// True if every node has exactly one input which is the previous node.
  bool is_sequential() const;

  /// Backward pass for sequential models; `grad` is dLoss/dOutput.
  void backward(const Tensor& grad);

  /// SGD step on every layer.
  void update(float lr);

  /// Total trainable parameters.
  std::size_t param_count() const;

 private:
  std::vector<Tensor> forward_all_impl(const Tensor& input, bool train);

  struct Node {
    LayerPtr layer;
    std::vector<int> inputs;
  };
  std::string name_;
  std::vector<Node> nodes_;
};

/// Index of the maximum logit of sample n in a {N, classes, 1, 1} tensor.
std::size_t argmax_class(const Tensor& logits, std::size_t n = 0);

/// Softmax cross-entropy loss over a batch; fills `grad` (same shape as
/// logits) with dLoss/dlogits averaged over the batch.
float softmax_cross_entropy(const Tensor& logits,
                            const std::vector<std::size_t>& labels,
                            Tensor* grad);

}  // namespace deepcam::nn
