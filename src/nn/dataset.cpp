#include "nn/dataset.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace deepcam::nn {

std::pair<Tensor, std::vector<std::size_t>> Dataset::batch(
    const std::vector<std::size_t>& indices) const {
  DEEPCAM_CHECK(!indices.empty());
  const Shape s0 = sample(indices[0]).image.shape();
  Tensor out({indices.size(), s0.c, s0.h, s0.w});
  std::vector<std::size_t> labels(indices.size());
  const std::size_t per = s0.c * s0.h * s0.w;
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const Sample& sm = sample(indices[b]);
    DEEPCAM_CHECK(sm.image.shape() == s0);
    std::copy(sm.image.data(), sm.image.data() + per, out.data() + b * per);
    labels[b] = sm.label;
  }
  return {std::move(out), std::move(labels)};
}

namespace {

// 7x5 coarse stroke templates for digits 0-9 ('#' = ink). Rendered into the
// centre of a 28x28 canvas at 4x3 scale plus jitter.
constexpr std::array<const char*, 10> kDigitGlyphs = {
    "#####"
    "#...#"
    "#...#"
    "#...#"
    "#...#"
    "#...#"
    "#####",  // 0
    "..#.."
    ".##.."
    "..#.."
    "..#.."
    "..#.."
    "..#.."
    ".###.",  // 1
    "#####"
    "....#"
    "....#"
    "#####"
    "#...."
    "#...."
    "#####",  // 2
    "#####"
    "....#"
    "....#"
    ".####"
    "....#"
    "....#"
    "#####",  // 3
    "#...#"
    "#...#"
    "#...#"
    "#####"
    "....#"
    "....#"
    "....#",  // 4
    "#####"
    "#...."
    "#...."
    "#####"
    "....#"
    "....#"
    "#####",  // 5
    "#####"
    "#...."
    "#...."
    "#####"
    "#...#"
    "#...#"
    "#####",  // 6
    "#####"
    "....#"
    "...#."
    "..#.."
    "..#.."
    ".#..."
    ".#...",  // 7
    "#####"
    "#...#"
    "#...#"
    "#####"
    "#...#"
    "#...#"
    "#####",  // 8
    "#####"
    "#...#"
    "#...#"
    "#####"
    "....#"
    "....#"
    "#####",  // 9
};

}  // namespace

SyntheticDigits::SyntheticDigits(std::size_t count, std::uint64_t seed,
                                 double noise) {
  Rng rng(seed);
  samples_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = rng.uniform_index(10);
    const char* glyph = kDigitGlyphs[label];
    Tensor img({1, 1, 28, 28});
    // Random placement: glyph occupies 21x15 cells; jitter within canvas.
    const int oy = 2 + static_cast<int>(rng.uniform_index(4));  // 2..5
    const int ox = 4 + static_cast<int>(rng.uniform_index(6));  // 4..9
    const float amplitude = static_cast<float>(rng.uniform(0.8, 1.2));
    for (int gy = 0; gy < 7; ++gy) {
      for (int gx = 0; gx < 5; ++gx) {
        if (glyph[gy * 5 + gx] != '#') continue;
        for (int sy = 0; sy < 3; ++sy) {
          for (int sx = 0; sx < 3; ++sx) {
            const int y = oy + gy * 3 + sy;
            const int x = ox + gx * 3 + sx;
            if (y >= 0 && y < 28 && x >= 0 && x < 28)
              img.at(0, 0, static_cast<std::size_t>(y),
                     static_cast<std::size_t>(x)) = amplitude;
          }
        }
      }
    }
    for (std::size_t p = 0; p < img.numel(); ++p) {
      img[p] += static_cast<float>(rng.gaussian(0.0, noise));
      img[p] = std::clamp(img[p], -0.5f, 1.5f);
    }
    samples_.push_back({std::move(img), label});
  }
}

GaussianTextures::GaussianTextures(std::size_t count, std::size_t classes,
                                   std::uint64_t seed, double noise)
    : classes_(classes) {
  DEEPCAM_CHECK(classes >= 2);
  // Build one smoothed prototype per class.
  std::vector<Tensor>& protos = protos_;
  protos.reserve(classes);
  Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    Tensor raw({1, 3, 32, 32});
    for (std::size_t p = 0; p < raw.numel(); ++p)
      raw[p] = static_cast<float>(rng.gaussian());
    // 3x3 box smoothing, two passes, to create spatial correlation.
    Tensor sm = raw;
    for (int pass = 0; pass < 2; ++pass) {
      Tensor next = sm;
      for (std::size_t ch = 0; ch < 3; ++ch)
        for (std::size_t y = 1; y + 1 < 32; ++y)
          for (std::size_t x = 1; x + 1 < 32; ++x) {
            float acc = 0.0f;
            for (int dy = -1; dy <= 1; ++dy)
              for (int dx = -1; dx <= 1; ++dx)
                acc += sm.at(0, ch, y + static_cast<std::size_t>(dy),
                             x + static_cast<std::size_t>(dx));
            next.at(0, ch, y, x) = acc / 9.0f;
          }
      sm = next;
    }
    // Normalize prototype to unit RMS amplitude.
    double ss = 0.0;
    for (std::size_t p = 0; p < sm.numel(); ++p) ss += double(sm[p]) * sm[p];
    const float scale =
        static_cast<float>(1.0 / std::sqrt(ss / double(sm.numel()) + 1e-12));
    for (std::size_t p = 0; p < sm.numel(); ++p) sm[p] *= scale;
    protos.push_back(std::move(sm));
  }
  samples_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = rng.uniform_index(classes);
    Tensor img = protos[label];
    for (std::size_t p = 0; p < img.numel(); ++p)
      img[p] += static_cast<float>(rng.gaussian(0.0, noise));
    samples_.push_back({std::move(img), label});
  }
}

}  // namespace deepcam::nn
