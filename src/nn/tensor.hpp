// Minimal dense float tensor in NCHW layout.
//
// This is the numeric substrate for the CNN inference/training framework the
// paper's evaluation needs (LeNet5, VGG11/16, ResNet18). Batch dimension is
// first; 2-D tensors are represented as {N, C, 1, 1}.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace deepcam::nn {

struct Shape {
  std::size_t n = 1, c = 1, h = 1, w = 1;

  std::size_t numel() const { return n * c * h * w; }
  bool operator==(const Shape&) const = default;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape), data_(shape.numel(), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {
    DEEPCAM_CHECK_MSG(data_.size() == shape_.numel(), "tensor size mismatch");
  }

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[index(n, c, h, w)];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[index(n, c, h, w)];
  }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Returns a reshaped view-copy with identical element count.
  Tensor reshaped(Shape s) const {
    DEEPCAM_CHECK_MSG(s.numel() == numel(), "reshape element count mismatch");
    return Tensor(s, data_);
  }

  /// Copies batch sample `n` out of an {N,C,H,W} tensor as {1,C,H,W} — the
  /// batch entry point the InferenceEngine uses to fan a batched tensor out
  /// over its workers.
  Tensor slice_sample(std::size_t n) const {
    DEEPCAM_CHECK_MSG(n < shape_.n, "sample index out of batch range");
    const std::size_t chw = shape_.c * shape_.h * shape_.w;
    return Tensor({1, shape_.c, shape_.h, shape_.w},
                  std::vector<float>(data_.begin() + n * chw,
                                     data_.begin() + (n + 1) * chw));
  }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }

 private:
  std::size_t index(std::size_t n, std::size_t c, std::size_t h,
                    std::size_t w) const {
    DEEPCAM_CHECK(n < shape_.n && c < shape_.c && h < shape_.h && w < shape_.w);
    return ((n * shape_.c + c) * shape_.h + h) * shape_.w + w;
  }

  Shape shape_;
  std::vector<float> data_;
};

/// Extracts one im2col patch (all input channels, kh*kw window) at output
/// position (oy, ox) of image `n`, with zero padding. Output layout matches
/// the kernel reshape the paper's Fig. 4 shows: channel-major, then row, col.
void extract_patch(const Tensor& input, std::size_t n, std::size_t oy,
                   std::size_t ox, std::size_t kh, std::size_t kw,
                   std::size_t stride, std::size_t pad, std::span<float> out);

}  // namespace deepcam::nn
