// Minibatch SGD trainer for sequential models (LeNet5-scale).
//
// Fig. 5 needs a model whose *accuracy* (not just output fidelity) can be
// measured under DeepCAM's approximate dot-products, so we train LeNet5 on
// the synthetic digits in-repo. The trainer is deliberately plain SGD with
// softmax cross-entropy — deterministic given its seed.
#pragma once

#include <cstdint>

#include "nn/dataset.hpp"
#include "nn/model.hpp"

namespace deepcam::nn {

struct TrainConfig {
  std::size_t epochs = 2;
  std::size_t batch_size = 16;
  float lr = 0.05f;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Hash-noise-aware training: inject per-output Gaussian noise with std
  /// `noise_scale * ||patch|| * ||kernel||` during training forwards — the
  /// first-order error model of the approximate geometric dot-product. A
  /// network fine-tuned with noise_scale ~ pi/(2*sqrt(k)) becomes robust to
  /// DeepCAM's hash noise at length k (0 disables; see DESIGN.md §5).
  float noise_scale = 0.0f;
};

/// Sets the hash-noise injection scale on every Conv2D/Linear layer.
void set_training_noise(Model& model, float scale, std::uint64_t seed);

struct TrainResult {
  float final_loss = 0.0f;
  double train_accuracy = 0.0;
};

/// Trains `model` (must be sequential) on `data`; returns summary stats.
TrainResult train_sgd(Model& model, const Dataset& data,
                      const TrainConfig& cfg);

/// Top-1 accuracy of `model` over `data` (optionally only first `limit`).
double evaluate_accuracy(Model& model, const Dataset& data,
                         std::size_t limit = 0);

}  // namespace deepcam::nn
