#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace deepcam::nn {

QuantParams choose_scale(std::span<const float> x) {
  float mx = 0.0f;
  for (float v : x) mx = std::max(mx, std::abs(v));
  QuantParams qp;
  qp.scale = (mx == 0.0f) ? 1.0f : mx / 127.0f;
  return qp;
}

std::vector<std::int8_t> quantize_int8(std::span<const float> x,
                                       const QuantParams& qp) {
  std::vector<std::int8_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float q = std::nearbyint(x[i] / qp.scale);
    out[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
  return out;
}

std::vector<float> dequantize_int8(std::span<const std::int8_t> q,
                                   const QuantParams& qp) {
  std::vector<float> out(q.size());
  for (std::size_t i = 0; i < q.size(); ++i)
    out[i] = static_cast<float>(q[i]) * qp.scale;
  return out;
}

Tensor fake_quantize(const Tensor& t) {
  const QuantParams qp = choose_scale(t.flat());
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const float q = std::clamp(std::nearbyint(out[i] / qp.scale), -127.0f,
                               127.0f);
    out[i] = q * qp.scale;
  }
  return out;
}

}  // namespace deepcam::nn
