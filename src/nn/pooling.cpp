#include "nn/pooling.hpp"

#include <limits>

namespace deepcam::nn {

Tensor MaxPool::pool(const Tensor& in,
                     std::vector<std::size_t>* argmax) const {
  const Shape& s = in.shape();
  const std::size_t oh = (s.h - window_) / stride_ + 1;
  const std::size_t ow = (s.w - window_) / stride_ + 1;
  Tensor out({s.n, s.c, oh, ow});
  if (argmax != nullptr) argmax->assign(out.numel(), 0);
  std::size_t oidx = 0;
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t c = 0; c < s.c; ++c) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = in.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((n * s.c + c) * s.h + iy) * s.w + ix;
              }
            }
          }
          out.at(n, c, oy, ox) = best;
          if (argmax != nullptr) (*argmax)[oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool::infer(const Tensor& in) const { return pool(in, nullptr); }

Tensor MaxPool::forward(const Tensor& in, bool train) {
  if (!train) return infer(in);
  cached_in_shape_ = in.shape();
  has_cache_ = true;
  return pool(in, &argmax_);
}

Tensor MaxPool::backward(const Tensor& grad_out) {
  DEEPCAM_CHECK_MSG(has_cache_, "MaxPool::backward without cached forward");
  Tensor grad_in(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[i]] += grad_out[i];
  return grad_in;
}

Tensor AvgPool::forward(const Tensor& in, bool /*train*/) {
  return infer(in);
}

Tensor AvgPool::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  const std::size_t oh = (s.h - window_) / stride_ + 1;
  const std::size_t ow = (s.w - window_) / stride_ + 1;
  Tensor out({s.n, s.c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t n = 0; n < s.n; ++n)
    for (std::size_t c = 0; c < s.c; ++c)
      for (std::size_t oy = 0; oy < oh; ++oy)
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx)
              acc += in.at(n, c, oy * stride_ + ky, ox * stride_ + kx);
          out.at(n, c, oy, ox) = acc * inv;
        }
  return out;
}

}  // namespace deepcam::nn
