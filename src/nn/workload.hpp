// Workload extraction: turns a Model into the list of GEMM-shaped jobs its
// Conv2D/Linear layers perform, via shape inference (no data needed).
//
// Every hardware baseline (Eyeriss systolic array, CPU, analog PIM) and the
// DeepCAM mapping arithmetic consume this same description:
//   M = output pixels (patches), N = filters/output features,
//   K = reduction length (C·kh·kw or in_features).
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"

namespace deepcam::nn {

struct GemmDims {
  std::string layer_name;
  std::size_t m = 0;  // patches / output pixels
  std::size_t n = 0;  // filters / output features
  std::size_t k = 0;  // reduction (context) length

  std::size_t macs() const { return m * n * k; }
};

/// Shape inference: output shape of every node for `input_shape`.
std::vector<Shape> infer_shapes(const Model& model, Shape input_shape);

/// GEMM dims of every CAM-mappable (Conv2D/Linear) layer, execution order.
std::vector<GemmDims> extract_gemm_workload(const Model& model,
                                            Shape input_shape);

/// Total multiply-accumulates of the model on this input shape.
std::size_t total_macs(const Model& model, Shape input_shape);

}  // namespace deepcam::nn
