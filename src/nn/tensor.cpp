#include "nn/tensor.hpp"

namespace deepcam::nn {

void extract_patch(const Tensor& input, std::size_t n, std::size_t oy,
                   std::size_t ox, std::size_t kh, std::size_t kw,
                   std::size_t stride, std::size_t pad, std::span<float> out) {
  const Shape& s = input.shape();
  DEEPCAM_CHECK(out.size() == s.c * kh * kw);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < s.c; ++c) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      const std::ptrdiff_t iy =
          static_cast<std::ptrdiff_t>(oy * stride + ky) -
          static_cast<std::ptrdiff_t>(pad);
      for (std::size_t kx = 0; kx < kw; ++kx) {
        const std::ptrdiff_t ix =
            static_cast<std::ptrdiff_t>(ox * stride + kx) -
            static_cast<std::ptrdiff_t>(pad);
        if (iy < 0 || ix < 0 || iy >= static_cast<std::ptrdiff_t>(s.h) ||
            ix >= static_cast<std::ptrdiff_t>(s.w)) {
          out[idx++] = 0.0f;
        } else {
          out[idx++] = input.at(n, c, static_cast<std::size_t>(iy),
                                static_cast<std::size_t>(ix));
        }
      }
    }
  }
}

}  // namespace deepcam::nn
