// Element-wise and shape layers: ReLU, Flatten, Softmax, BatchNorm (inference
// affine form), and residual Add. ReLU/Flatten support training (used by the
// LeNet5 trainer); BatchNorm and Add are inference-only graph nodes used by
// the VGG/ResNet topologies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace deepcam::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kReLU; }
  std::string name() const override { return name_; }
  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Tensor cached_in_;
  bool has_cache_ = false;
};

class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string name() const override { return name_; }
  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Shape cached_shape_;
  bool has_cache_ = false;
};

class Softmax final : public Layer {
 public:
  explicit Softmax(std::string name) : name_(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  std::string name() const override { return name_; }
  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;

 private:
  std::string name_;
};

/// Inference-form batch normalization: y = gamma_hat * x + beta_hat per
/// channel, where the running statistics have been folded into the affine
/// parameters. Parameters are deterministic-seeded near identity (synthetic
/// pretrained weights; see DESIGN.md §2).
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, std::size_t channels, std::uint64_t seed);
  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  std::string name() const override { return name_; }
  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  std::size_t param_count() const override { return 2 * gamma_.size(); }

  std::vector<float>& gamma() { return gamma_; }
  std::vector<float>& beta() { return beta_; }

 private:
  std::string name_;
  std::vector<float> gamma_, beta_;
};

/// Residual addition. As a graph node it receives both operands; the Layer
/// interface carries one input, so the second arrives via forward2().
class Add final : public Layer {
 public:
  explicit Add(std::string name) : name_(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kAdd; }
  std::string name() const override { return name_; }
  Tensor forward(const Tensor& in, bool train) override;  // throws: needs 2
  Tensor infer(const Tensor& in) const override;          // throws: needs 2
  Tensor forward2(const Tensor& a, const Tensor& b) const;

 private:
  std::string name_;
};

}  // namespace deepcam::nn
