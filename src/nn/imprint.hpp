// Classifier imprinting: synthetic "pretrained" weights without training.
//
// Offline substitution (DESIGN.md §2): VGG16/ResNet18-scale training is not
// feasible in this environment, but the Fig. 5 experiment needs networks
// with real decision margins. Imprinting sets the final Linear layer's row
// for class c to the (L2-normalized) penultimate feature vector of that
// class's noise-free prototype — turning the random feature extractor plus
// imprinted head into a nearest-prototype classifier in feature space. This
// is the standard "weight imprinting" construction (Qi et al., CVPR 2018)
// and yields high FP32 accuracy on the Gaussian-texture datasets, so
// accuracy preservation under DeepCAM can be measured meaningfully.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace deepcam::nn {

/// Replaces the last Linear layer's weights with normalized penultimate
/// features of `class_prototypes` (index = class). The prototype count must
/// equal the layer's output features. Bias is zeroed.
void imprint_classifier(Model& model,
                        const std::vector<Tensor>& class_prototypes);

}  // namespace deepcam::nn
