// Max and average pooling layers. MaxPool supports backward (LeNet trainer);
// AvgPool is inference-only (ResNet18 global pooling).
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace deepcam::nn {

class MaxPool final : public Layer {
 public:
  MaxPool(std::string name, std::size_t window, std::size_t stride)
      : name_(std::move(name)), window_(window), stride_(stride) {}

  LayerKind kind() const override { return LayerKind::kMaxPool; }
  std::string name() const override { return name_; }
  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }

  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  /// Shared pooling kernel; records argmax indices into `*argmax` when
  /// non-null (training path only).
  Tensor pool(const Tensor& in, std::vector<std::size_t>* argmax) const;

  std::string name_;
  std::size_t window_, stride_;
  Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  bool has_cache_ = false;
};

class AvgPool final : public Layer {
 public:
  AvgPool(std::string name, std::size_t window, std::size_t stride)
      : name_(std::move(name)), window_(window), stride_(stride) {}

  LayerKind kind() const override { return LayerKind::kAvgPool; }
  std::string name() const override { return name_; }
  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }

  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;

 private:
  std::string name_;
  std::size_t window_, stride_;
};

}  // namespace deepcam::nn
