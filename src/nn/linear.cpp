#include "nn/linear.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace deepcam::nn {

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, std::uint64_t seed)
    : name_(std::move(name)), in_(in_features), out_(out_features) {
  weights_.resize(in_ * out_);
  bias_.assign(out_, 0.0f);
  grad_w_.assign(weights_.size(), 0.0f);
  grad_b_.assign(bias_.size(), 0.0f);
  Rng rng(seed);
  const double std = std::sqrt(2.0 / static_cast<double>(in_));
  for (auto& w : weights_) w = static_cast<float>(rng.gaussian(0.0, std));
}

Tensor Linear::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK_MSG(feat == in_, "linear input feature mismatch");
  Tensor out({s.n, out_, 1, 1});
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* x = in.data() + n * feat;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* w = &weights_[o * in_];
      float acc = bias_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += w[i] * x[i];
      out.at(n, o, 0, 0) = acc;
    }
  }
  return out;
}

Tensor Linear::forward(const Tensor& in, bool train) {
  if (!train) return infer(in);
  const Shape& s = in.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK_MSG(feat == in_, "linear input feature mismatch");
  Tensor out({s.n, out_, 1, 1});
  const bool noisy = noise_scale_ > 0.0f;
  std::vector<float> w_norms;
  if (noisy) {
    w_norms.resize(out_);
    for (std::size_t o = 0; o < out_; ++o) {
      double ss = 0.0;
      for (std::size_t i = 0; i < in_; ++i) {
        const float w = weights_[o * in_ + i];
        ss += double(w) * w;
      }
      w_norms[o] = static_cast<float>(std::sqrt(ss));
    }
  }
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* x = in.data() + n * feat;
    float x_norm = 0.0f;
    if (noisy) {
      double ss = 0.0;
      for (std::size_t i = 0; i < in_; ++i) ss += double(x[i]) * x[i];
      x_norm = static_cast<float>(std::sqrt(ss));
    }
    for (std::size_t o = 0; o < out_; ++o) {
      const float* w = &weights_[o * in_];
      float acc = bias_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += w[i] * x[i];
      if (noisy)
        acc += noise_scale_ * x_norm * w_norms[o] *
               static_cast<float>(noise_rng_.gaussian());
      out.at(n, o, 0, 0) = acc;
    }
  }
  cached_in_ = in;
  has_cache_ = true;
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  DEEPCAM_CHECK_MSG(has_cache_, "Linear::backward without cached forward");
  const Tensor& in = cached_in_;
  const Shape& s = in.shape();
  const std::size_t feat = s.c * s.h * s.w;
  Tensor grad_in(s);
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* x = in.data() + n * feat;
    float* gi = grad_in.data() + n * feat;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = grad_out.at(n, o, 0, 0);
      if (g == 0.0f) continue;
      grad_b_[o] += g;
      float* gw = &grad_w_[o * in_];
      const float* w = &weights_[o * in_];
      for (std::size_t i = 0; i < in_; ++i) {
        gw[i] += g * x[i];
        gi[i] += g * w[i];
      }
    }
  }
  return grad_in;
}

void Linear::update(float lr) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= lr * grad_w_[i];
    grad_w_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= lr * grad_b_[i];
    grad_b_[i] = 0.0f;
  }
}

}  // namespace deepcam::nn
