#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace deepcam::nn {

void set_training_noise(Model& model, float scale, std::uint64_t seed) {
  for (std::size_t i = 0; i < model.node_count(); ++i) {
    Layer& layer = model.layer(i);
    if (layer.kind() == LayerKind::kConv2D) {
      static_cast<Conv2D&>(layer).set_training_noise(
          scale, seed + 2 * i);
    } else if (layer.kind() == LayerKind::kLinear) {
      static_cast<Linear&>(layer).set_training_noise(
          scale, seed + 2 * i + 1);
    }
  }
}

TrainResult train_sgd(Model& model, const Dataset& data,
                      const TrainConfig& cfg) {
  DEEPCAM_CHECK_MSG(model.is_sequential(), "trainer needs sequential model");
  if (cfg.noise_scale > 0.0f)
    set_training_noise(model, cfg.noise_scale, cfg.shuffle_seed ^ 0xA5A5);
  Rng rng(cfg.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);

    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0, batches = 0;
    for (std::size_t start = 0; start + cfg.batch_size <= order.size();
         start += cfg.batch_size) {
      std::vector<std::size_t> idx(order.begin() + start,
                                   order.begin() + start + cfg.batch_size);
      auto [images, labels] = data.batch(idx);
      Tensor logits = model.forward(images, /*train=*/true);
      Tensor grad;
      const float loss = softmax_cross_entropy(logits, labels, &grad);
      model.backward(grad);
      model.update(cfg.lr);
      loss_sum += loss;
      ++batches;
      for (std::size_t b = 0; b < labels.size(); ++b, ++seen)
        if (argmax_class(logits, b) == labels[b]) ++correct;
    }
    result.final_loss = static_cast<float>(loss_sum / std::max<std::size_t>(batches, 1));
    result.train_accuracy = static_cast<double>(correct) / std::max<std::size_t>(seen, 1);
    if (cfg.verbose) {
      std::printf("[train] epoch %zu: loss=%.4f acc=%.2f%%\n", epoch + 1,
                  result.final_loss, 100.0 * result.train_accuracy);
    }
  }
  return result;
}

double evaluate_accuracy(Model& model, const Dataset& data, std::size_t limit) {
  const std::size_t n = (limit == 0) ? data.size() : std::min(limit, data.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = data.sample(i);
    Tensor logits = model.forward(s.image, /*train=*/false);
    if (argmax_class(logits) == s.label) ++correct;
  }
  return n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace deepcam::nn
