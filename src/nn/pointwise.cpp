#include "nn/pointwise.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace deepcam::nn {

Tensor ReLU::infer(const Tensor& in) const {
  Tensor out = in;
  for (std::size_t i = 0; i < out.numel(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

Tensor ReLU::forward(const Tensor& in, bool train) {
  if (train) {
    cached_in_ = in;
    has_cache_ = true;
  }
  return infer(in);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  DEEPCAM_CHECK_MSG(has_cache_, "ReLU::backward without cached forward");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i)
    if (cached_in_[i] <= 0.0f) grad_in[i] = 0.0f;
  return grad_in;
}

Tensor Flatten::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  return in.reshaped({s.n, s.c * s.h * s.w, 1, 1});
}

Tensor Flatten::forward(const Tensor& in, bool train) {
  if (train) {
    cached_shape_ = in.shape();
    has_cache_ = true;
  }
  return infer(in);
}

Tensor Flatten::backward(const Tensor& grad_out) {
  DEEPCAM_CHECK_MSG(has_cache_, "Flatten::backward without cached forward");
  return grad_out.reshaped(cached_shape_);
}

Tensor Softmax::forward(const Tensor& in, bool /*train*/) {
  return infer(in);
}

Tensor Softmax::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  const std::size_t feat = s.c * s.h * s.w;
  Tensor out = in;
  for (std::size_t n = 0; n < s.n; ++n) {
    float* x = out.data() + n * feat;
    float mx = x[0];
    for (std::size_t i = 1; i < feat; ++i) mx = std::max(mx, x[i]);
    double sum = 0.0;
    for (std::size_t i = 0; i < feat; ++i) {
      x[i] = std::exp(x[i] - mx);
      sum += x[i];
    }
    for (std::size_t i = 0; i < feat; ++i)
      x[i] = static_cast<float>(x[i] / sum);
  }
  return out;
}

BatchNorm::BatchNorm(std::string name, std::size_t channels,
                     std::uint64_t seed)
    : name_(std::move(name)) {
  gamma_.resize(channels);
  beta_.resize(channels);
  Rng rng(seed);
  // Near-identity folded parameters: gamma in [0.8, 1.2], small beta.
  for (auto& g : gamma_) g = static_cast<float>(rng.uniform(0.8, 1.2));
  for (auto& b : beta_) b = static_cast<float>(rng.gaussian(0.0, 0.05));
}

Tensor BatchNorm::forward(const Tensor& in, bool /*train*/) {
  return infer(in);
}

Tensor BatchNorm::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  DEEPCAM_CHECK_MSG(s.c == gamma_.size(), "batchnorm channel mismatch");
  Tensor out = in;
  for (std::size_t n = 0; n < s.n; ++n)
    for (std::size_t c = 0; c < s.c; ++c)
      for (std::size_t y = 0; y < s.h; ++y)
        for (std::size_t x = 0; x < s.w; ++x)
          out.at(n, c, y, x) = gamma_[c] * in.at(n, c, y, x) + beta_[c];
  return out;
}

Tensor Add::forward(const Tensor& /*in*/, bool /*train*/) {
  throw Error("Add is a two-input node; use forward2 via the graph Model");
}

Tensor Add::infer(const Tensor& /*in*/) const {
  throw Error("Add is a two-input node; use forward2 via the graph Model");
}

Tensor Add::forward2(const Tensor& a, const Tensor& b) const {
  DEEPCAM_CHECK_MSG(a.shape() == b.shape(), "residual add shape mismatch");
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] += b[i];
  return out;
}

}  // namespace deepcam::nn
