// 2-D convolution layer with training support.
//
// Forward uses im2col patch extraction plus an inner dot-product loop; the
// same patch layout is what the DeepCAM context generator hashes (paper
// Fig. 4 reshapes a kernel of size C×kh×kw into one context vector).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace deepcam::nn {

/// Static geometry of a convolution, shared with the hardware simulators.
struct ConvSpec {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel_h = 3;
  std::size_t kernel_w = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;

  /// Context/patch vector length n = C·kh·kw.
  std::size_t patch_len() const { return in_channels * kernel_h * kernel_w; }
  std::size_t out_h(std::size_t in_h) const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::size_t out_w(std::size_t in_w) const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
};

class Conv2D final : public Layer {
 public:
  /// Weights are He-initialized from `seed`; bias is zero.
  Conv2D(std::string name, ConvSpec spec, std::uint64_t seed);

  LayerKind kind() const override { return LayerKind::kConv2D; }
  std::string name() const override { return name_; }
  const ConvSpec& spec() const { return spec_; }

  Tensor forward(const Tensor& in, bool train) override;
  Tensor infer(const Tensor& in) const override;
  Tensor backward(const Tensor& grad_out) override;
  void update(float lr) override;
  std::size_t param_count() const override {
    return weights_.size() + bias_.size();
  }

  /// Enables hash-noise-aware training: during train-mode forward passes,
  /// every output gets additive Gaussian noise with std
  /// `scale * ||patch|| * ||kernel||` — the first-order error model of the
  /// approximate geometric dot-product (DESIGN.md: noise-aware fine-tuning
  /// extension). scale = 0 disables. Inference forwards stay exact.
  void set_training_noise(float scale, std::uint64_t seed) {
    noise_scale_ = scale;
    noise_rng_ = Rng(seed);
  }

  /// Kernel weights, row-major [out_channels][patch_len].
  std::vector<float>& weights() { return weights_; }
  const std::vector<float>& weights() const { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  std::string name_;
  ConvSpec spec_;
  std::vector<float> weights_;  // [out_c][in_c*kh*kw]
  std::vector<float> bias_;     // [out_c]
  std::vector<float> grad_w_, grad_b_;
  Tensor cached_in_;
  bool has_cache_ = false;
  float noise_scale_ = 0.0f;
  Rng noise_rng_{0};
};

}  // namespace deepcam::nn
