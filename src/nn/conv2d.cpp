#include "nn/conv2d.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace deepcam::nn {

Conv2D::Conv2D(std::string name, ConvSpec spec, std::uint64_t seed)
    : name_(std::move(name)), spec_(spec) {
  const std::size_t fan_in = spec_.patch_len();
  weights_.resize(spec_.out_channels * fan_in);
  bias_.assign(spec_.out_channels, 0.0f);
  grad_w_.assign(weights_.size(), 0.0f);
  grad_b_.assign(bias_.size(), 0.0f);
  Rng rng(seed);
  const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& w : weights_) w = static_cast<float>(rng.gaussian(0.0, std));
}

Tensor Conv2D::infer(const Tensor& in) const {
  const Shape& s = in.shape();
  DEEPCAM_CHECK_MSG(s.c == spec_.in_channels, "conv input channel mismatch");
  const std::size_t oh = spec_.out_h(s.h);
  const std::size_t ow = spec_.out_w(s.w);
  Tensor out({s.n, spec_.out_channels, oh, ow});
  const std::size_t plen = spec_.patch_len();
  std::vector<float> patch(plen);
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        extract_patch(in, n, oy, ox, spec_.kernel_h, spec_.kernel_w,
                      spec_.stride, spec_.pad, patch);
        for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
          const float* w = &weights_[oc * plen];
          float acc = bias_[oc];
          for (std::size_t i = 0; i < plen; ++i) acc += w[i] * patch[i];
          out.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::forward(const Tensor& in, bool train) {
  if (!train) return infer(in);
  const Shape& s = in.shape();
  DEEPCAM_CHECK_MSG(s.c == spec_.in_channels, "conv input channel mismatch");
  const std::size_t oh = spec_.out_h(s.h);
  const std::size_t ow = spec_.out_w(s.w);
  Tensor out({s.n, spec_.out_channels, oh, ow});
  const std::size_t plen = spec_.patch_len();
  std::vector<float> patch(plen);
  const bool noisy = noise_scale_ > 0.0f;
  // Per-kernel norms for the noise model (only when noise is enabled).
  std::vector<float> w_norms;
  if (noisy) {
    w_norms.resize(spec_.out_channels);
    for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
      double ss = 0.0;
      for (std::size_t i = 0; i < plen; ++i) {
        const float w = weights_[oc * plen + i];
        ss += double(w) * w;
      }
      w_norms[oc] = static_cast<float>(std::sqrt(ss));
    }
  }
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        extract_patch(in, n, oy, ox, spec_.kernel_h, spec_.kernel_w,
                      spec_.stride, spec_.pad, patch);
        float patch_norm = 0.0f;
        if (noisy) {
          double ss = 0.0;
          for (std::size_t i = 0; i < plen; ++i)
            ss += double(patch[i]) * patch[i];
          patch_norm = static_cast<float>(std::sqrt(ss));
        }
        for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
          const float* w = &weights_[oc * plen];
          float acc = bias_[oc];
          for (std::size_t i = 0; i < plen; ++i) acc += w[i] * patch[i];
          if (noisy)
            acc += noise_scale_ * patch_norm * w_norms[oc] *
                   static_cast<float>(noise_rng_.gaussian());
          out.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  cached_in_ = in;
  has_cache_ = true;
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  DEEPCAM_CHECK_MSG(has_cache_, "Conv2D::backward without cached forward");
  const Tensor& in = cached_in_;
  const Shape& s = in.shape();
  const std::size_t oh = spec_.out_h(s.h);
  const std::size_t ow = spec_.out_w(s.w);
  const std::size_t plen = spec_.patch_len();
  Tensor grad_in(s);
  std::vector<float> patch(plen);
  for (std::size_t n = 0; n < s.n; ++n) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        extract_patch(in, n, oy, ox, spec_.kernel_h, spec_.kernel_w,
                      spec_.stride, spec_.pad, patch);
        for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
          const float g = grad_out.at(n, oc, oy, ox);
          if (g == 0.0f) continue;
          grad_b_[oc] += g;
          float* gw = &grad_w_[oc * plen];
          const float* w = &weights_[oc * plen];
          // Accumulate weight grads and scatter input grads.
          std::size_t idx = 0;
          for (std::size_t c = 0; c < s.c; ++c) {
            for (std::size_t ky = 0; ky < spec_.kernel_h; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                  static_cast<std::ptrdiff_t>(spec_.pad);
              for (std::size_t kx = 0; kx < spec_.kernel_w; ++kx, ++idx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                    static_cast<std::ptrdiff_t>(spec_.pad);
                gw[idx] += g * patch[idx];
                if (iy >= 0 && ix >= 0 &&
                    iy < static_cast<std::ptrdiff_t>(s.h) &&
                    ix < static_cast<std::ptrdiff_t>(s.w)) {
                  grad_in.at(n, c, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix)) += g * w[idx];
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2D::update(float lr) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= lr * grad_w_[i];
    grad_w_[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    bias_[i] -= lr * grad_b_[i];
    grad_b_[i] = 0.0f;
  }
}

}  // namespace deepcam::nn
