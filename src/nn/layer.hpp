// Layer interface for the CNN framework.
//
// Layers implement forward(); trainable layers additionally implement
// backward()/update() (sufficient for the in-repo LeNet5 training used by
// the Fig. 5 reproduction). Layers that map onto the DeepCAM CAM array
// (Conv2D, Linear) expose their geometry through kind() so the accelerator
// and the baseline simulators can introspect the model.
#pragma once

#include <memory>
#include <string>

#include "nn/tensor.hpp"

namespace deepcam::nn {

enum class LayerKind {
  kConv2D,
  kLinear,
  kReLU,
  kMaxPool,
  kAvgPool,
  kBatchNorm,
  kFlatten,
  kAdd,       // residual addition (two inputs)
  kSoftmax,
};

/// Human-readable name of a LayerKind.
const char* layer_kind_name(LayerKind kind);

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Computes the output given one input. `train` requests caching of
  /// whatever backward() needs.
  virtual Tensor forward(const Tensor& in, bool train = false) = 0;

  /// Inference-only forward pass: no gradient caching, no training noise, no
  /// mutation of any member. Safe to call concurrently from many threads on
  /// a shared model — this is the path the batched InferenceEngine uses.
  virtual Tensor infer(const Tensor& in) const = 0;

  /// Propagates gradients; returns d(loss)/d(input). Only layers used by the
  /// trainer implement this; the default reports non-trainable.
  virtual Tensor backward(const Tensor& grad_out);

  /// Applies an SGD step with learning rate `lr` and zeroes the gradients.
  virtual void update(float lr) { (void)lr; }

  /// Number of trainable parameters.
  virtual std::size_t param_count() const { return 0; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace deepcam::nn
