// Builders for the four CNN topologies the paper evaluates (Table I):
//   LeNet5   on MNIST-like    28x28x1,  10 classes
//   VGG11    on CIFAR10-like  32x32x3,  10 classes
//   VGG16    on CIFAR100-like 32x32x3, 100 classes
//   ResNet18 on CIFAR100-like 32x32x3, 100 classes
//
// VGG/ResNet use the standard CIFAR adaptations (3x3 stem, no initial
// downsampling, 512-d head). All weights are deterministically seeded;
// LeNet5 is additionally trainable in-repo (see Trainer).
#pragma once

#include <cstdint>
#include <memory>

#include "nn/model.hpp"

namespace deepcam::nn {

struct InputSpec {
  std::size_t channels;
  std::size_t height;
  std::size_t width;
  std::size_t classes;

  /// The {1,C,H,W} input shape this topology expects.
  Shape shape() const { return {1, channels, height, width}; }
};

std::unique_ptr<Model> make_lenet5(std::uint64_t seed);
std::unique_ptr<Model> make_vgg11(std::uint64_t seed, std::size_t classes = 10);
std::unique_ptr<Model> make_vgg16(std::uint64_t seed, std::size_t classes = 100);
std::unique_ptr<Model> make_resnet18(std::uint64_t seed,
                                     std::size_t classes = 100);

/// The input geometry each topology expects.
InputSpec input_spec_for(const std::string& model_name);

/// Builds any of "lenet5", "vgg11", "vgg16", "resnet18".
std::unique_ptr<Model> make_model(const std::string& name, std::uint64_t seed);

}  // namespace deepcam::nn
