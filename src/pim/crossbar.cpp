#include "pim/crossbar.hpp"

#include "common/error.hpp"

namespace deepcam::pim {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

std::size_t peak_macs_per_cycle(const CrossbarConfig& cfg) {
  return cfg.parallel_tiles * cfg.tile_rows * cfg.tile_cols;
}

CrossbarLayerResult simulate_layer(const nn::GemmDims& dims,
                                   const CrossbarConfig& cfg) {
  DEEPCAM_CHECK(cfg.tile_rows > 0 && cfg.tile_cols > 0);
  CrossbarLayerResult r;
  r.layer_name = dims.layer_name;
  r.macs = dims.macs();

  const std::size_t row_tiles = ceil_div(dims.k, cfg.tile_rows);
  const std::size_t col_tiles = ceil_div(dims.n, cfg.tile_cols);
  r.tiles = row_tiles * col_tiles;

  // Per input vector: every mapped tile runs one evaluation; tile jobs are
  // throttled to `parallel_tiles` concurrently.
  const std::size_t cols_used = std::min(dims.n, cfg.tile_cols);
  const std::size_t conversions = ceil_div(cols_used, cfg.adcs_per_tile);
  const std::size_t tile_latency =
      cfg.input_serial_cycles + conversions * cfg.adc_cycles;
  const std::size_t waves = ceil_div(r.tiles, cfg.parallel_tiles);
  r.cycles = dims.m * waves * tile_latency;

  r.energy = static_cast<double>(r.macs) * cfg.energy_per_mac;
  return r;
}

CrossbarModelResult simulate_crossbar(const nn::Model& model,
                                      nn::Shape input_shape,
                                      const CrossbarConfig& cfg) {
  CrossbarModelResult result;
  for (const auto& dims : nn::extract_gemm_workload(model, input_shape))
    result.layers.push_back(simulate_layer(dims, cfg));
  return result;
}

std::size_t CrossbarModelResult::total_cycles() const {
  std::size_t c = 0;
  for (const auto& l : layers) c += l.cycles;
  return c;
}

double CrossbarModelResult::total_energy() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.energy;
  return e;
}

}  // namespace deepcam::pim
