#include "pim/comparators.hpp"

#include "common/tech.hpp"

namespace deepcam::pim {

CrossbarConfig neurosim_rram_config() {
  CrossbarConfig cfg;
  cfg.name = "NeuroSim-RRAM";
  cfg.tile_rows = static_cast<std::size_t>(tech::kRramTileRows);
  cfg.tile_cols = static_cast<std::size_t>(tech::kRramTileCols);
  cfg.input_serial_cycles = static_cast<std::size_t>(tech::kRramInputBits);
  cfg.adcs_per_tile = static_cast<std::size_t>(tech::kRramAdcsPerTile);
  cfg.adc_cycles = 10;
  cfg.parallel_tiles = 4;
  cfg.energy_per_mac = tech::kRramMacEnergy;
  return cfg;
}

CrossbarConfig valavi_sram_config() {
  CrossbarConfig cfg;
  cfg.name = "Valavi-SRAM";
  cfg.tile_rows = static_cast<std::size_t>(tech::kValaviTileRows * 36);
  cfg.tile_cols = static_cast<std::size_t>(tech::kValaviTileCols);
  // Charge-domain: single analog evaluation (no bit-serial input), but a
  // capacitor settle + SA readout wave per tile group.
  cfg.input_serial_cycles = 16;
  cfg.adcs_per_tile = 8;
  cfg.adc_cycles = 8;
  cfg.parallel_tiles = static_cast<std::size_t>(tech::kValaviTiles);
  cfg.energy_per_mac = tech::kSramChargeMacEnergy;
  return cfg;
}

}  // namespace deepcam::pim
