// Generic analog in-memory-computing crossbar cost model.
//
// Substrate for the two Table II comparators (NeuroSim RRAM and the Valavi
// SRAM charge-domain macro). A GEMM layer (M, N, K) is mapped
// weight-stationary onto tiles of rows x cols cells: K spreads across
// row-tiles (partial sums accumulated digitally), N across column-tiles.
// Each input vector activates every mapped tile; a tile evaluation costs
//   input_serial_cycles  (DAC bit-serial input or charge settling)
// + readout_cycles       (ADC conversions shared across columns, or SA latch)
// and tiles execute `parallel_tiles` at a time (ADC/power budget).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/workload.hpp"

namespace deepcam::pim {

struct CrossbarConfig {
  std::string name;
  std::size_t tile_rows = 128;
  std::size_t tile_cols = 128;
  std::size_t input_serial_cycles = 8;  // DAC bits / settle time
  std::size_t adcs_per_tile = 16;
  std::size_t adc_cycles = 10;          // cycles per conversion batch
  std::size_t parallel_tiles = 8;       // concurrently active tiles
  double energy_per_mac = 0.23e-12;     // J per INT8-equivalent MAC
};

struct CrossbarLayerResult {
  std::string layer_name;
  std::size_t macs = 0;
  std::size_t tiles = 0;
  std::size_t cycles = 0;
  double energy = 0.0;  // joules
};

struct CrossbarModelResult {
  std::vector<CrossbarLayerResult> layers;
  std::size_t total_cycles() const;
  double total_energy() const;
};

/// Upper bound on MACs the macro retires per cycle: every cell of every
/// concurrently active tile firing at once. Denominator of the
/// peak-efficiency fraction the sim::Backend adapter reports.
std::size_t peak_macs_per_cycle(const CrossbarConfig& cfg);

CrossbarLayerResult simulate_layer(const nn::GemmDims& dims,
                                   const CrossbarConfig& cfg);

CrossbarModelResult simulate_crossbar(const nn::Model& model,
                                      nn::Shape input_shape,
                                      const CrossbarConfig& cfg);

}  // namespace deepcam::pim
