// The two published PIM designs DeepCAM is compared against in Table II.
//
//  * NeuroSim-style RRAM engine (Peng et al., IEDM 2019): 128x128 RRAM
//    tiles, 8-bit bit-serial DAC input, shared SAR ADCs. Energy is
//    ADC-dominated (~0.23 pJ per INT8-equivalent MAC).
//  * Valavi et al. (JSSC 2019): 64-tile 2.4 Mb SRAM charge-domain macro;
//    charge-redistribution compute is ~10x cheaper per MAC and needs no
//    per-bit input serialization (one analog evaluation per vector), but
//    pays a capacitor settle + readout latency per tile wave.
//
// Parameters are calibrated so the VGG11/CIFAR10 workload lands at the
// published per-inference magnitudes (34.98 uJ / 5.74e5 cycles for NeuroSim,
// 3.55 uJ / 2.56e5 cycles for Valavi) — see EXPERIMENTS.md.
#pragma once

#include "pim/crossbar.hpp"

namespace deepcam::pim {

CrossbarConfig neurosim_rram_config();
CrossbarConfig valavi_sram_config();

}  // namespace deepcam::pim
