// Serving report serialization: JSON + human-readable server summaries.
//
// One shared, locale-proof format (common/json.hpp + common/format.hpp)
// for every artifact the serving layer produces — the serve_loadgen
// example, bench/serve_throughput's BENCH_pr4.json and the CI artifact all
// emit these serializers instead of ad-hoc printing. Both functions are
// pure: byte-identical output for equal summaries, pinned by the golden
// tests in tests/golden/.
#pragma once

#include <string>

#include "common/json.hpp"
#include "obs/metrics_registry.hpp"
#include "serve/loadgen.hpp"
#include "serve/metrics.hpp"

namespace deepcam::serve {

/// Appends the load generator's view of one replay (admission counts,
/// offered/achieved rate, end-to-end latency percentiles) as one JSON
/// object — the client-side complement of the server summary.
void load_report_json(JsonWriter& json, const LoadReport& load);

/// Appends `summary` as one JSON object ({elapsed, workers, queue stats,
/// sessions:[...]}) to an in-progress writer — embeddable into larger
/// artifacts (BENCH_pr4.json).
void server_summary_json(JsonWriter& json, const ServerSummary& summary);

/// Self-contained JSON document for one ServerSummary.
std::string server_summary_to_json(const ServerSummary& summary);

/// Multi-line human-readable view (totals + one line per session).
std::string server_summary_text(const ServerSummary& summary);

/// Registers a scrape-time collector on `registry` that mirrors `server`'s
/// live ServerMetrics into Prometheus families (deepcam_server_* counters
/// and gauges, per-session latency/queue-wait histograms, the two
/// queue-depth streams, and one labeled health gauge per replica). The
/// server must outlive the registry's scrapes. Every sample is a
/// point-in-time snapshot taken inside expose() — the serving hot path
/// never touches the registry.
void register_prometheus_collector(obs::MetricsRegistry& registry,
                                   const Server& server);

}  // namespace deepcam::serve
