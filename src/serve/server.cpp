#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace deepcam::serve {

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Trace timestamp for a clock reading: nanoseconds since the clock's
/// epoch, matching the NowFn adapter the Runner installs on the recorder.
std::uint64_t to_ns(Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

const char* admission_span_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accept";
    case Admission::kRejectedFull: return "reject_full";
    case Admission::kRejectedClosed: return "reject_closed";
    case Admission::kRejectedUnknownSession: return "reject_unknown";
    case Admission::kRejectedShed: return "shed";
  }
  return "unknown";
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      clock_(cfg.clock != nullptr ? cfg.clock : &ClockSource::steady()),
      queue_(cfg.queue_capacity, cfg.slo.admission, clock_) {
  DEEPCAM_CHECK_MSG(cfg.num_workers >= 1, "server needs >= 1 worker");
  DEEPCAM_CHECK_MSG(cfg.replicas >= 1, "server needs >= 1 replica");
  sessions_.set_replica_config(cfg_.replicas, cfg_.router.replica, clock_);
  router_ = std::make_unique<Router>(cfg_.router, clock_);
  injector_ = std::make_unique<FaultInjector>(cfg_.chaos);
}

Server::~Server() { stop(); }

void Server::start() {
  DEEPCAM_CHECK_MSG(!running_ && !stopped_, "server already started");
  DEEPCAM_CHECK_MSG(sessions_.count() >= 1,
                    "register at least one session before start()");
  metrics_ = std::make_unique<ServerMetrics>(sessions_.count());
  // Second depth stream: sampled inside the queue at micro-batch
  // extraction (what the batcher actually saw), vs. the admission-time
  // stream sampled in submit()/run().
  queue_.set_depth_observer([this](std::size_t depth) {
    metrics_->on_queue_depth(ServerMetrics::DepthStream::kExtract, depth);
  });
  t_start_ = clock_->now();
  injector_->arm(t_start_);
  running_ = true;
  if (cfg_.manual_dispatch) {
    // Pump mode: the owner drives dispatch inline; no threads.
    pump_batcher_ = std::make_unique<DynamicBatcher>(queue_, cfg_.batch,
                                                     cfg_.slo.expire_doomed);
    return;
  }
  workers_.reserve(cfg_.num_workers);
  try {
    for (std::size_t i = 0; i < cfg_.num_workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    queue_.close();
    for (auto& w : workers_) w.join();
    workers_.clear();
    running_ = false;
    throw;
  }
}

bool Server::prepare(const std::string& session, SloClass slo, Request& req,
                     bool& downgraded_out) {
  const auto idx = sessions_.find(session);
  if (!idx.has_value()) return false;
  std::size_t target = *idx;
  downgraded_out = false;
  // Quality dial: under queue pressure, reroute to the lower-k fallback
  // tier — a cheaper search that keeps latency bounded at a small accuracy
  // cost (the paper's variable hash length as a live serving control).
  if (cfg_.slo.downgrade_fraction < 1.0 &&
      queue_.pressured(cfg_.slo.downgrade_fraction)) {
    const auto fb = sessions_.fallback(target);
    if (fb.has_value()) {
      target = *fb;
      downgraded_out = true;
    }
  }
  req.session = target;
  req.slo = slo;
  req.downgraded = downgraded_out;
  const Clock::duration d =
      cfg_.slo.deadline[static_cast<std::size_t>(slo)];
  if (d > Clock::duration::zero()) req.deadline = clock_->now() + d;
  return true;
}

Admission Server::submit(const std::string& session, nn::Tensor input,
                         std::function<void(Response&&)> on_done,
                         SloClass slo) {
  if (!running_) return Admission::kRejectedClosed;
  Request req;
  bool downgraded = false;
  if (!prepare(session, slo, req, downgraded)) {
    metrics_->on_unknown_session();
    obs::SpanRecord tr;
    tr.slo = static_cast<std::uint64_t>(slo);
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kAdmission,
                 "reject_unknown", tr);
    return Admission::kRejectedUnknownSession;
  }
  const std::size_t idx = req.session;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.input = std::move(input);
  req.on_done = std::move(on_done);
  const std::uint64_t trace_rid = req.id;
  // Count the admission *before* the push: once the request is visible to a
  // batcher it can be answered, and drain() must never see answered_ >
  // accepted_.
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++accepted_;
  }
  const Admission verdict = queue_.try_push(std::move(req));
  if (verdict != Admission::kAccepted) {
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      --accepted_;
    }
    done_cv_.notify_all();
  }
  metrics_->on_admission(idx, verdict, slo);
  if (verdict == Admission::kAccepted) {
    if (downgraded) metrics_->on_downgrade(idx, slo);
    metrics_->on_queue_depth(ServerMetrics::DepthStream::kAdmission,
                             queue_.depth());
  }
  {
    obs::SpanRecord tr;
    tr.rid = trace_rid;
    tr.session = idx;
    tr.slo = static_cast<std::uint64_t>(slo);
    tr.value = downgraded ? 1 : 0;
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kAdmission,
                 admission_span_name(verdict), tr);
  }
  return verdict;
}

Response Server::run(const std::string& session, nn::Tensor input,
                     SloClass slo) {
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };
  auto slot = std::make_shared<Slot>();

  auto fail = [&](const std::string& why) {
    Response r;
    r.slo = slo;
    r.error = std::make_exception_ptr(Error("serve: " + why));
    return r;
  };
  if (!running_) return fail("server not running");
  Request req;
  bool downgraded = false;
  if (!prepare(session, slo, req, downgraded)) {
    metrics_->on_unknown_session();
    return fail("unknown session: " + session);
  }
  const std::size_t idx = req.session;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t rid = req.id;
  req.input = std::move(input);
  req.on_done = [slot](Response&& r) {
    {
      std::lock_guard<std::mutex> lk(slot->mu);
      slot->response = std::move(r);
      slot->done = true;
    }
    slot->cv.notify_one();
  };
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++accepted_;
  }
  if (!queue_.push(std::move(req))) {  // blocking admission
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      --accepted_;
    }
    done_cv_.notify_all();
    metrics_->on_admission(idx, Admission::kRejectedClosed, slo);
    return fail("server stopped while waiting for queue space");
  }
  metrics_->on_admission(idx, Admission::kAccepted, slo);
  if (downgraded) metrics_->on_downgrade(idx, slo);
  metrics_->on_queue_depth(ServerMetrics::DepthStream::kAdmission,
                           queue_.depth());
  {
    obs::SpanRecord tr;
    tr.rid = rid;
    tr.session = idx;
    tr.slo = static_cast<std::uint64_t>(slo);
    tr.value = downgraded ? 1 : 0;
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kAdmission, "accept",
                 tr);
  }

  std::unique_lock<std::mutex> lk(slot->mu);
  slot->cv.wait(lk, [&] { return slot->done; });
  return std::move(slot->response);
}

void Server::worker_loop() {
  DynamicBatcher batcher(queue_, cfg_.batch, cfg_.slo.expire_doomed);
  for (;;) {
    // Fire chaos events that came due; a pending worker-stall fault is
    // served by this worker sleeping it out through the clock.
    injector_->poll(clock_->now(), sessions_);
    const Clock::duration stall = injector_->take_stall();
    if (stall > Clock::duration::zero())
      clock_->sleep_until(clock_->now() + stall);
    MicroBatch mb = batcher.next();
    if (mb.empty()) return;  // queue closed and drained
    dispatch(std::move(mb));
  }
}

void Server::count_answered() {
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++answered_;
  }
  done_cv_.notify_all();
}

void Server::answer_expired(Request&& req) {
  const Clock::time_point now = clock_->now();
  if (obs::TraceRecorder::instance().enabled(obs::TraceLevel::kServe)) {
    obs::SpanRecord q;
    q.t_begin_ns = to_ns(req.enqueued);
    q.t_end_ns = to_ns(now);
    q.name = "wait";
    q.cat = obs::SpanCat::kQueue;
    q.rid = req.id;
    q.session = req.session;
    q.slo = static_cast<std::uint64_t>(req.slo);
    obs::emit(obs::TraceLevel::kServe, q);
    obs::SpanRecord c;
    c.rid = req.id;
    c.session = req.session;
    c.slo = q.slo;
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kComplete, "expired",
                 c);
  }
  Response resp;
  resp.id = req.id;
  resp.session = req.session;
  resp.slo = req.slo;
  resp.expired = true;
  resp.downgraded = req.downgraded;
  resp.had_deadline = req.has_deadline();
  resp.slack_seconds =
      req.has_deadline() ? seconds_between(now, req.deadline) : 0.0;
  resp.queue_seconds = seconds_between(req.enqueued, now);
  resp.total_seconds = resp.queue_seconds;
  resp.batch_size = 0;
  resp.error = std::make_exception_ptr(
      Error("serve: deadline expired before dispatch"));
  metrics_->on_response(resp);
  if (req.on_done) {
    try {
      req.on_done(std::move(resp));
    } catch (...) {
      // A throwing completion callback must not take down the worker.
    }
  }
  count_answered();
}

void Server::dispatch(MicroBatch&& mb) {
  // Deadline-lapsed requests are answered first — their answers are
  // already overdue and they never touch the engine.
  for (Request& req : mb.expired) answer_expired(std::move(req));
  std::vector<Request>& batch = mb.run;
  if (batch.empty()) return;

  injector_->poll(clock_->now(), sessions_);

  const std::size_t session = batch.front().session;
  const std::size_t n = batch.size();
  const Clock::time_point t_dispatch = clock_->now();
  const std::uint64_t batch_id =
      next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t head_slo =
      static_cast<std::uint64_t>(batch.front().slo);

  // Per-rider queue-wait spans, reconstructed from the admission stamps
  // (no hooks needed inside the queue), plus one batch-formation span
  // covering head-enqueue -> dispatch.
  if (obs::TraceRecorder::instance().enabled(obs::TraceLevel::kServe)) {
    for (const Request& r : batch) {
      obs::SpanRecord q;
      q.t_begin_ns = to_ns(r.enqueued);
      q.t_end_ns = to_ns(t_dispatch);
      q.name = "wait";
      q.cat = obs::SpanCat::kQueue;
      q.rid = r.id;
      q.session = r.session;
      q.slo = static_cast<std::uint64_t>(r.slo);
      q.batch = batch_id;
      obs::emit(obs::TraceLevel::kServe, q);
    }
    obs::SpanRecord f;
    f.t_begin_ns = to_ns(batch.front().enqueued);
    f.t_end_ns = to_ns(t_dispatch);
    f.name = "form";
    f.cat = obs::SpanCat::kBatch;
    f.rid = batch.front().id;
    f.session = session;
    f.slo = head_slo;
    f.batch = batch_id;
    f.value = n;
    obs::emit(obs::TraceLevel::kServe, f);
  }

  // Keep rider inputs intact when any of them still has retry budget: a
  // failed attempt re-queues the rider, input and all.
  const auto budget = [&](const Request& r) {
    return cfg_.router.retry_limit[static_cast<std::size_t>(r.slo)];
  };
  bool may_retry = false;
  for (const Request& r : batch)
    if (r.attempt < budget(r)) may_retry = true;

  std::vector<nn::Tensor> inputs;
  inputs.reserve(n);
  for (auto& r : batch)
    inputs.push_back(may_retry ? r.input : std::move(r.input));

  // A batch is cancellable only when *every* rider carries a deadline:
  // one deadline-free request means someone always wants the result.
  Clock::time_point latest_deadline = Clock::time_point::min();
  bool cancellable = cfg_.slo.expire_doomed;
  for (const Request& r : batch) {
    if (!r.has_deadline()) {
      cancellable = false;
      break;
    }
    latest_deadline = std::max(latest_deadline, r.deadline);
  }

  // The Router picks the replica (consistent hash on the head rider's id —
  // stable across retries, so `avoid` meaningfully dodges the replica the
  // last attempt failed on), hedges interactive batches, and records
  // health outcomes. While this worker waits, sibling workers keep their
  // own micro-batches in flight.
  metrics_->on_batch_dispatch(session, n);
  obs::Span dispatch_sp(obs::TraceLevel::kServe, obs::SpanCat::kDispatch,
                        "dispatch");
  dispatch_sp.rid(batch.front().id)
      .session(session)
      .slo(head_slo)
      .batch(batch_id)
      .value(n);
  Router::Attempt a = router_->run(
      sessions_.replicas(session), batch.front().id, batch.front().slo,
      std::move(inputs),
      batch.front().attempt > 0 ? batch.front().last_replica : kNoReplica,
      latest_deadline, cancellable, batch_id);
  if (a.replica != kNoReplica) dispatch_sp.replica(a.replica);
  dispatch_sp.finish();
  metrics_->on_batch_complete(session);
  if (a.hedged) metrics_->on_hedge(a.hedge_won, a.hedge_wasted);

  const Clock::time_point t_done = clock_->now();
  const bool cancelled = a.cancelled;
  std::exception_ptr batch_error = a.error;
  if (!a.ok && batch_error == nullptr)
    batch_error = std::make_exception_ptr(
        Error("serve: batch cancelled at deadline"));

  const auto deliver = [&](Request& req, std::exception_ptr err,
                           nn::Tensor logits) {
    Response resp;
    resp.id = req.id;
    resp.session = session;
    resp.slo = req.slo;
    resp.downgraded = req.downgraded;
    resp.had_deadline = req.has_deadline();
    resp.expired = cancelled;
    resp.batch_size = n;
    resp.queue_seconds = seconds_between(req.enqueued, t_dispatch);
    resp.total_seconds = seconds_between(req.enqueued, t_done);
    if (req.has_deadline())
      resp.slack_seconds = seconds_between(t_done, req.deadline);
    if (err != nullptr)
      resp.error = err;
    else
      resp.logits = std::move(logits);
    {
      obs::SpanRecord c;
      c.rid = req.id;
      c.session = session;
      c.slo = static_cast<std::uint64_t>(req.slo);
      if (a.replica != kNoReplica) c.replica = a.replica;
      c.batch = batch_id;
      obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kComplete,
                   err != nullptr ? (cancelled ? "cancelled" : "error")
                                  : "ok",
                   c);
    }
    metrics_->on_response(resp);
    if (req.on_done) {
      try {
        req.on_done(std::move(resp));
      } catch (...) {
        // A throwing completion callback must not take down the worker;
        // the request still counts as answered.
      }
    }
    count_answered();
  };

  if (a.ok) {
    for (std::size_t i = 0; i < n; ++i) {
      Request& req = batch[i];
      if (req.attempt > 0 && a.replica != req.last_replica)
        metrics_->on_failover();
      deliver(req, nullptr, std::move(a.outputs[i]));
    }
    return;
  }

  if (cancelled) {
    for (Request& req : batch) deliver(req, batch_error, nn::Tensor{});
    return;
  }

  // Failure: riders with retry budget left go back into the queue for
  // another attempt on a surviving replica; the rest get the error.
  std::vector<Request> to_retry;
  for (Request& req : batch) {
    if (req.attempt < budget(req)) {
      req.attempt += 1;
      req.last_replica = a.replica;
      to_retry.push_back(std::move(req));
    } else {
      deliver(req, batch_error, nn::Tensor{});
    }
  }
  if (to_retry.empty()) return;

  // One jittered exponential backoff per failed batch (attempt was just
  // bumped, so attempt-1 prior failures), slept through the clock so a
  // VirtualClock paces retries deterministically.
  const Clock::duration pause =
      router_->backoff(to_retry.front().attempt - 1, to_retry.front().id);
  if (pause > Clock::duration::zero()) {
    obs::Span backoff_sp(obs::TraceLevel::kServe, obs::SpanCat::kRetry,
                         "backoff");
    backoff_sp.rid(to_retry.front().id)
        .session(session)
        .batch(batch_id)
        .value(to_retry.front().attempt);
    clock_->sleep_until(clock_->now() + pause);
  }
  for (Request& req : to_retry) {
    metrics_->on_retry();
    {
      obs::SpanRecord tr;
      tr.rid = req.id;
      tr.session = session;
      tr.slo = static_cast<std::uint64_t>(req.slo);
      if (a.replica != kNoReplica) tr.replica = a.replica;
      tr.batch = batch_id;
      tr.value = req.attempt;
      obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kRetry, "requeue",
                   tr);
    }
    if (!queue_.push_retry(std::move(req))) {
      // Queue closed mid-retry: the rider is nowhere a batcher could find
      // it, so it must be answered — with a terminal error, not dropped —
      // to keep the exactly-once contract (and drain()) honest.
      deliver(req,
              std::make_exception_ptr(Error(
                  "serve: server stopped before retry could run")),
              nn::Tensor{});
    }
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] { return answered_ == accepted_; });
}

bool Server::pump() {
  DEEPCAM_CHECK_MSG(cfg_.manual_dispatch,
                    "pump() requires ServerConfig::manual_dispatch");
  DEEPCAM_CHECK_MSG(pump_batcher_ != nullptr, "pump() requires start()");
  // Same per-iteration preamble as worker_loop: fire due chaos events and
  // sleep out a pending worker stall through the (virtual) clock.
  injector_->poll(clock_->now(), sessions_);
  const Clock::duration stall = injector_->take_stall();
  if (stall > Clock::duration::zero())
    clock_->sleep_until(clock_->now() + stall);
  MicroBatch mb = pump_batcher_->try_next();
  if (mb.empty()) return false;
  dispatch(std::move(mb));
  return true;
}

void Server::stop() {
  // exchange makes concurrent stop() calls (destructor vs explicit) safe.
  if (!running_.exchange(false)) return;  // also rejects new admissions
  queue_.close();    // flushes partial micro-batches; drains pending
  if (pump_batcher_ != nullptr) {
    // Manual dispatch: no workers to drain the closed queue — pump it dry
    // inline (terminal errors for retries that can no longer requeue).
    while (pump()) {
    }
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lk(done_mu_);
  t_stop_ = clock_->now();
  stopped_ = true;
}

const ServerMetrics& Server::metrics() const {
  DEEPCAM_CHECK_MSG(metrics_ != nullptr, "metrics exist once start() ran");
  return *metrics_;
}

double Server::elapsed_seconds() const {
  if (t_start_ == Clock::time_point{}) return 0.0;
  std::lock_guard<std::mutex> lk(done_mu_);
  return seconds_between(t_start_, stopped_ ? t_stop_ : clock_->now());
}

ServerSummary Server::summary() const {
  DEEPCAM_CHECK_MSG(metrics_ != nullptr, "summary exists once start() ran");
  ServerSummary s;
  s.elapsed_seconds = elapsed_seconds();
  s.workers = cfg_.num_workers;
  s.queue_capacity = cfg_.queue_capacity;
  s.max_queue_depth = queue_.max_depth();
  s.queue_depth_p50 = metrics_->queue_depth_percentile(
      ServerMetrics::DepthStream::kAdmission, 50.0);
  s.queue_depth_p99 = metrics_->queue_depth_percentile(
      ServerMetrics::DepthStream::kAdmission, 99.0);
  s.queue_depth_extract_p50 = metrics_->queue_depth_percentile(
      ServerMetrics::DepthStream::kExtract, 50.0);
  s.queue_depth_extract_p99 = metrics_->queue_depth_percentile(
      ServerMetrics::DepthStream::kExtract, 99.0);
  s.max_in_flight_batches = metrics_->max_in_flight_batches();
  s.unknown_session_rejected = metrics_->unknown_session_rejections();
  s.total_retries = metrics_->retries();
  s.total_failovers = metrics_->failovers();
  s.total_hedges = metrics_->hedges();
  s.total_hedges_won = metrics_->hedges_won();
  s.total_hedges_wasted = metrics_->hedges_wasted();
  s.sessions = metrics_->snapshot(sessions_.names(), s.elapsed_seconds);
  s.classes = metrics_->class_snapshot(s.elapsed_seconds);
  Clock::time_point snap;
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    snap = stopped_ ? t_stop_ : clock_->now();
  }
  for (std::size_t i = 0; i < sessions_.count(); ++i) {
    std::vector<ReplicaSummary> rows = sessions_.replicas(i).summarize(snap);
    for (ReplicaSummary& r : rows) {
      r.session = sessions_.name(i);
      s.replicas.push_back(std::move(r));
    }
  }
  return s;
}

}  // namespace deepcam::serve
