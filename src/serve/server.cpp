#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "common/error.hpp"

namespace deepcam::serve {

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      clock_(cfg.clock != nullptr ? cfg.clock : &ClockSource::steady()),
      queue_(cfg.queue_capacity, cfg.slo.admission, clock_) {
  DEEPCAM_CHECK_MSG(cfg.num_workers >= 1, "server needs >= 1 worker");
}

Server::~Server() { stop(); }

void Server::start() {
  DEEPCAM_CHECK_MSG(!running_ && !stopped_, "server already started");
  DEEPCAM_CHECK_MSG(sessions_.count() >= 1,
                    "register at least one session before start()");
  metrics_ = std::make_unique<ServerMetrics>(sessions_.count());
  t_start_ = clock_->now();
  running_ = true;
  workers_.reserve(cfg_.num_workers);
  try {
    for (std::size_t i = 0; i < cfg_.num_workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    queue_.close();
    for (auto& w : workers_) w.join();
    workers_.clear();
    running_ = false;
    throw;
  }
}

bool Server::prepare(const std::string& session, SloClass slo, Request& req,
                     bool& downgraded_out) {
  const auto idx = sessions_.find(session);
  if (!idx.has_value()) return false;
  std::size_t target = *idx;
  downgraded_out = false;
  // Quality dial: under queue pressure, reroute to the lower-k fallback
  // tier — a cheaper search that keeps latency bounded at a small accuracy
  // cost (the paper's variable hash length as a live serving control).
  if (cfg_.slo.downgrade_fraction < 1.0 &&
      queue_.pressured(cfg_.slo.downgrade_fraction)) {
    const auto fb = sessions_.fallback(target);
    if (fb.has_value()) {
      target = *fb;
      downgraded_out = true;
    }
  }
  req.session = target;
  req.slo = slo;
  req.downgraded = downgraded_out;
  const Clock::duration d =
      cfg_.slo.deadline[static_cast<std::size_t>(slo)];
  if (d > Clock::duration::zero()) req.deadline = clock_->now() + d;
  return true;
}

Admission Server::submit(const std::string& session, nn::Tensor input,
                         std::function<void(Response&&)> on_done,
                         SloClass slo) {
  if (!running_) return Admission::kRejectedClosed;
  Request req;
  bool downgraded = false;
  if (!prepare(session, slo, req, downgraded)) {
    metrics_->on_unknown_session();
    return Admission::kRejectedUnknownSession;
  }
  const std::size_t idx = req.session;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.input = std::move(input);
  req.on_done = std::move(on_done);
  // Count the admission *before* the push: once the request is visible to a
  // batcher it can be answered, and drain() must never see answered_ >
  // accepted_.
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++accepted_;
  }
  const Admission verdict = queue_.try_push(std::move(req));
  if (verdict != Admission::kAccepted) {
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      --accepted_;
    }
    done_cv_.notify_all();
  }
  metrics_->on_admission(idx, verdict, slo);
  if (verdict == Admission::kAccepted) {
    if (downgraded) metrics_->on_downgrade(idx, slo);
    metrics_->on_queue_depth(queue_.depth());
  }
  return verdict;
}

Response Server::run(const std::string& session, nn::Tensor input,
                     SloClass slo) {
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };
  auto slot = std::make_shared<Slot>();

  auto fail = [&](const std::string& why) {
    Response r;
    r.slo = slo;
    r.error = std::make_exception_ptr(Error("serve: " + why));
    return r;
  };
  if (!running_) return fail("server not running");
  Request req;
  bool downgraded = false;
  if (!prepare(session, slo, req, downgraded)) {
    metrics_->on_unknown_session();
    return fail("unknown session: " + session);
  }
  const std::size_t idx = req.session;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.input = std::move(input);
  req.on_done = [slot](Response&& r) {
    {
      std::lock_guard<std::mutex> lk(slot->mu);
      slot->response = std::move(r);
      slot->done = true;
    }
    slot->cv.notify_one();
  };
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++accepted_;
  }
  if (!queue_.push(std::move(req))) {  // blocking admission
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      --accepted_;
    }
    done_cv_.notify_all();
    metrics_->on_admission(idx, Admission::kRejectedClosed, slo);
    return fail("server stopped while waiting for queue space");
  }
  metrics_->on_admission(idx, Admission::kAccepted, slo);
  if (downgraded) metrics_->on_downgrade(idx, slo);
  metrics_->on_queue_depth(queue_.depth());

  std::unique_lock<std::mutex> lk(slot->mu);
  slot->cv.wait(lk, [&] { return slot->done; });
  return std::move(slot->response);
}

void Server::worker_loop() {
  DynamicBatcher batcher(queue_, cfg_.batch, cfg_.slo.expire_doomed);
  for (;;) {
    MicroBatch mb = batcher.next();
    if (mb.empty()) return;  // queue closed and drained
    dispatch(std::move(mb));
  }
}

void Server::count_answered() {
  {
    std::lock_guard<std::mutex> lk(done_mu_);
    ++answered_;
  }
  done_cv_.notify_all();
}

void Server::answer_expired(Request&& req) {
  const Clock::time_point now = clock_->now();
  Response resp;
  resp.id = req.id;
  resp.session = req.session;
  resp.slo = req.slo;
  resp.expired = true;
  resp.downgraded = req.downgraded;
  resp.had_deadline = req.has_deadline();
  resp.slack_seconds =
      req.has_deadline() ? seconds_between(now, req.deadline) : 0.0;
  resp.queue_seconds = seconds_between(req.enqueued, now);
  resp.total_seconds = resp.queue_seconds;
  resp.batch_size = 0;
  resp.error = std::make_exception_ptr(
      Error("serve: deadline expired before dispatch"));
  metrics_->on_response(resp);
  if (req.on_done) {
    try {
      req.on_done(std::move(resp));
    } catch (...) {
      // A throwing completion callback must not take down the worker.
    }
  }
  count_answered();
}

void Server::dispatch(MicroBatch&& mb) {
  // Deadline-lapsed requests are answered first — their answers are
  // already overdue and they never touch the engine.
  for (Request& req : mb.expired) answer_expired(std::move(req));
  std::vector<Request>& batch = mb.run;
  if (batch.empty()) return;

  const std::size_t session = batch.front().session;
  const std::size_t n = batch.size();
  const Clock::time_point t_dispatch = clock_->now();

  std::vector<nn::Tensor> inputs;
  inputs.reserve(n);
  for (auto& r : batch) inputs.push_back(std::move(r.input));

  // A batch is cancellable only when *every* rider carries a deadline:
  // one deadline-free request means someone always wants the result.
  Clock::time_point latest_deadline = Clock::time_point::min();
  bool cancellable = cfg_.slo.expire_doomed;
  for (const Request& r : batch) {
    if (!r.has_deadline()) {
      cancellable = false;
      break;
    }
    latest_deadline = std::max(latest_deadline, r.deadline);
  }

  metrics_->on_batch_dispatch(session, n);
  std::vector<nn::Tensor> outputs;
  std::exception_ptr batch_error;
  bool cancelled = false;
  try {
    // Non-blocking submit + per-batch completion state: while this worker
    // waits, sibling workers keep their own micro-batches in flight.
    core::BatchFuture future =
        sessions_.engine(session).submit(std::move(inputs));
    if (cancellable) {
      // Request-timeout loop: if the whole batch's deadlines lapse while
      // it is still queued behind other batches, cancel it through the
      // future instead of running doomed work. cancel() refuses once
      // execution started, so partial results are never torn down.
      while (!future.wait_for(std::chrono::microseconds(500))) {
        if (clock_->now() >= latest_deadline && future.cancel()) {
          cancelled = true;
          break;
        }
      }
    }
    outputs = future.get();
  } catch (...) {
    // The engine surfaces the lowest-index failing sample and discards the
    // batch's outputs, so every rider of this micro-batch shares the error.
    batch_error = std::current_exception();
  }
  metrics_->on_batch_complete(session);

  const Clock::time_point t_done = clock_->now();
  for (std::size_t i = 0; i < n; ++i) {
    Request& req = batch[i];
    Response resp;
    resp.id = req.id;
    resp.session = session;
    resp.slo = req.slo;
    resp.downgraded = req.downgraded;
    resp.had_deadline = req.has_deadline();
    resp.expired = cancelled;
    resp.batch_size = n;
    resp.queue_seconds = seconds_between(req.enqueued, t_dispatch);
    resp.total_seconds = seconds_between(req.enqueued, t_done);
    if (req.has_deadline())
      resp.slack_seconds = seconds_between(t_done, req.deadline);
    if (batch_error != nullptr)
      resp.error = batch_error;
    else
      resp.logits = std::move(outputs[i]);
    metrics_->on_response(resp);
    if (req.on_done) {
      try {
        req.on_done(std::move(resp));
      } catch (...) {
        // A throwing completion callback must not take down the worker;
        // the request still counts as answered.
      }
    }
    count_answered();
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] { return answered_ == accepted_; });
}

void Server::stop() {
  // exchange makes concurrent stop() calls (destructor vs explicit) safe.
  if (!running_.exchange(false)) return;  // also rejects new admissions
  queue_.close();    // flushes partial micro-batches; drains pending
  for (auto& w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lk(done_mu_);
  t_stop_ = clock_->now();
  stopped_ = true;
}

const ServerMetrics& Server::metrics() const {
  DEEPCAM_CHECK_MSG(metrics_ != nullptr, "metrics exist once start() ran");
  return *metrics_;
}

double Server::elapsed_seconds() const {
  if (t_start_ == Clock::time_point{}) return 0.0;
  std::lock_guard<std::mutex> lk(done_mu_);
  return seconds_between(t_start_, stopped_ ? t_stop_ : clock_->now());
}

ServerSummary Server::summary() const {
  DEEPCAM_CHECK_MSG(metrics_ != nullptr, "summary exists once start() ran");
  ServerSummary s;
  s.elapsed_seconds = elapsed_seconds();
  s.workers = cfg_.num_workers;
  s.queue_capacity = cfg_.queue_capacity;
  s.max_queue_depth = queue_.max_depth();
  s.queue_depth_p50 = metrics_->queue_depth_percentile(50.0);
  s.queue_depth_p99 = metrics_->queue_depth_percentile(99.0);
  s.max_in_flight_batches = metrics_->max_in_flight_batches();
  s.unknown_session_rejected = metrics_->unknown_session_rejections();
  s.sessions = metrics_->snapshot(sessions_.names(), s.elapsed_seconds);
  s.classes = metrics_->class_snapshot(s.elapsed_seconds);
  return s;
}

}  // namespace deepcam::serve
