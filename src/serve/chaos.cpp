#include "serve/chaos.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "serve/session.hpp"

namespace deepcam::serve {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Tiny deterministic stream over mix64 — no <random>, so the script is
/// identical across standard libraries.
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return mix64(state_++); }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

Clock::duration from_seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kReplicaCrash: return "crash";
    case FaultKind::kReplicaHeal: return "heal";
    case FaultKind::kWorkerStall: return "stall";
    case FaultKind::kPoisonBatch: return "poison";
    case FaultKind::kSlowReplica: return "slow";
  }
  return "?";
}

bool fault_kind_from_string(const std::string& s, FaultKind* out) {
  if (s == "crash") *out = FaultKind::kReplicaCrash;
  else if (s == "heal") *out = FaultKind::kReplicaHeal;
  else if (s == "stall") *out = FaultKind::kWorkerStall;
  else if (s == "poison") *out = FaultKind::kPoisonBatch;
  else if (s == "slow") *out = FaultKind::kSlowReplica;
  else return false;
  return true;
}

ChaosScript make_chaos_script(const ChaosScriptConfig& cfg) {
  DEEPCAM_CHECK_MSG(cfg.replicas >= 1, "chaos script needs >= 1 replica");
  DEEPCAM_CHECK_MSG(cfg.duration_seconds > 0.0,
                    "chaos script needs a positive window");
  ChaosRng rng(cfg.seed);
  ChaosScript script;
  const double T = cfg.duration_seconds;
  for (std::size_t i = 0; i < cfg.crashes; ++i) {
    // Crash lands in the first half so the paired heal (a quarter of the
    // window later) still leaves room to observe the recovery.
    const double t = T * (0.1 + 0.4 * rng.uniform());
    const std::size_t r = rng.next() % cfg.replicas;
    script.push_back({t, FaultKind::kReplicaCrash, r, 0.0});
    script.push_back({t + 0.25 * T, FaultKind::kReplicaHeal, r, 0.0});
  }
  for (std::size_t i = 0; i < cfg.stalls; ++i)
    script.push_back({T * rng.uniform(), FaultKind::kWorkerStall, 0,
                      T * (0.01 + 0.04 * rng.uniform())});
  for (std::size_t i = 0; i < cfg.poisons; ++i)
    script.push_back({T * rng.uniform(), FaultKind::kPoisonBatch,
                      rng.next() % cfg.replicas,
                      static_cast<double>(1 + rng.next() % 3)});
  for (std::size_t i = 0; i < cfg.slows; ++i) {
    const double t = T * 0.8 * rng.uniform();
    const std::size_t r = rng.next() % cfg.replicas;
    script.push_back({t, FaultKind::kSlowReplica, r,
                      T * (0.005 + 0.02 * rng.uniform())});
    script.push_back({t + 0.2 * T, FaultKind::kSlowReplica, r, 0.0});
  }
  std::stable_sort(script.begin(), script.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return script;
}

FaultInjector::FaultInjector(ChaosScript script)
    : script_(std::move(script)) {
  std::stable_sort(script_.begin(), script_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  for (const FaultEvent& e : script_)
    DEEPCAM_CHECK_MSG(e.at_seconds >= 0.0 && e.param >= 0.0,
                      "chaos events need non-negative time and param");
}

void FaultInjector::arm(Clock::time_point t0) {
  std::lock_guard<std::mutex> lk(mu_);
  t0_ = t0;
  armed_ = true;
  next_ = 0;
  applied_ = 0;
  pending_stalls_.clear();
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return armed_;
}

void FaultInjector::poll(Clock::time_point now, SessionManager& sessions) {
  // Collect due events under the lock, apply them outside it (Replica
  // chaos hooks take the replica's own mutex).
  std::vector<FaultEvent> due;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!armed_) return;
    while (next_ < script_.size() &&
           t0_ + from_seconds(script_[next_].at_seconds) <= now) {
      const FaultEvent& e = script_[next_++];
      ++applied_;
      {
        obs::SpanRecord tr;
        tr.replica = e.replica;
        tr.value = static_cast<std::uint64_t>(e.param * 1e6);  // param in µs
        obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kChaos,
                     to_string(e.kind), tr);
      }
      if (e.kind == FaultKind::kWorkerStall)
        pending_stalls_.push_back(from_seconds(e.param));
      else
        due.push_back(e);
    }
  }
  for (const FaultEvent& e : due) {
    for (std::size_t s = 0; s < sessions.count(); ++s) {
      ReplicaSet& set = sessions.replicas(s);
      if (e.replica >= set.size()) continue;
      Replica& rep = set.replica(e.replica);
      switch (e.kind) {
        case FaultKind::kReplicaCrash: rep.chaos_crash(); break;
        case FaultKind::kReplicaHeal: rep.chaos_heal(); break;
        case FaultKind::kSlowReplica:
          rep.chaos_slow(from_seconds(e.param));
          break;
        case FaultKind::kPoisonBatch:
          rep.chaos_poison(static_cast<std::size_t>(e.param));
          break;
        case FaultKind::kWorkerStall: break;  // handled via take_stall()
      }
    }
  }
}

Clock::duration FaultInjector::take_stall() {
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_stalls_.empty()) return Clock::duration::zero();
  const Clock::duration d = pending_stalls_.back();
  pending_stalls_.pop_back();
  return d;
}

std::size_t FaultInjector::applied() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_;
}

}  // namespace deepcam::serve
