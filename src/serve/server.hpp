// Server: online multi-tenant serving front-end over InferenceEngine.
//
//   clients ──submit()──▶ RequestQueue ──DynamicBatcher──▶ worker threads
//                         (bounded,      (max batch /       │ one micro-batch
//                          backpressure)  max delay)        ▼ each, pipelined
//                                              InferenceEngine::submit()
//                                              per session (SessionManager)
//
// Each of the N server workers loops: form a micro-batch (one session),
// submit it to that session's engine, wait for completion, deliver the
// responses. With N >= 2 workers, micro-batches are concurrently in flight
// — the engine's per-batch completion state (core/engine.hpp) is what makes
// that legal; the old engine-global single-flight path would have
// serialized them.
//
// Lifecycle: construct -> sessions().add_session(...) -> start() ->
// submit()/run() -> stop() (close + drain + join; also run by the
// destructor). Every accepted request is answered exactly once, even when
// stop() races new submissions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/session.hpp"

namespace deepcam::serve {

struct ServerConfig {
  std::size_t num_workers = 2;      // batcher/dispatch threads
  std::size_t queue_capacity = 256; // admission-control bound
  BatchPolicy batch;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Session registry; register every model before start().
  SessionManager& sessions() { return sessions_; }
  const SessionManager& session_manager() const { return sessions_; }
  const ServerConfig& config() const { return cfg_; }

  /// Spawns the worker threads. Requires >= 1 registered session.
  void start();

  /// Non-blocking admission of one single-sample request for `session`.
  /// On kAccepted, `on_done` fires exactly once from a worker thread;
  /// on any rejection it never fires (the input is returned untouched in
  /// the sense that no side effects happened). Thread-safe.
  Admission submit(const std::string& session, nn::Tensor input,
                   std::function<void(Response&&)> on_done);

  /// Blocking closed-loop convenience: admits (waiting for queue space if
  /// needed) and returns the response. Unknown sessions / closed server
  /// yield an error response rather than throwing.
  Response run(const std::string& session, nn::Tensor input);

  /// Blocks until every accepted request has been answered.
  void drain();

  /// Closes admission, drains pending requests, joins the workers.
  /// Idempotent.
  void stop();

  bool running() const { return running_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerMetrics& metrics() const;

  /// Frozen whole-server statistics (valid while running or after stop()).
  ServerSummary summary() const;

 private:
  void worker_loop();
  void dispatch(std::vector<Request>&& batch);
  double elapsed_seconds() const;

  ServerConfig cfg_;
  SessionManager sessions_;
  RequestQueue queue_;
  std::unique_ptr<ServerMetrics> metrics_;  // sized at start()
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<bool> running_{false};

  // accepted/answered bookkeeping for drain(), guarded by done_mu_.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint64_t accepted_ = 0;
  std::uint64_t answered_ = 0;

  Clock::time_point t_start_{};
  Clock::time_point t_stop_{};
  bool stopped_ = false;
};

}  // namespace deepcam::serve
