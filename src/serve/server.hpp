// Server: online multi-tenant serving front-end over InferenceEngine.
//
//   clients ──submit()──▶ RequestQueue ──DynamicBatcher──▶ worker threads
//                         (bounded, SLO    (max batch /     │ one micro-batch
//                          shed/downgrade)  max delay,      ▼ each, pipelined
//                                           deadline-aware)
//                                              InferenceEngine::submit()
//                                              per session (SessionManager)
//
// Each of the N server workers loops: form a micro-batch (one session),
// submit it to that session's engine, wait for completion, deliver the
// responses. With N >= 2 workers, micro-batches are concurrently in flight
// — the engine's per-batch completion state (core/engine.hpp) is what makes
// that legal; the old engine-global single-flight path would have
// serialized them.
//
// Overload behavior is SLO-aware (ServerConfig::slo): every request
// carries a class whose configured deadline is stamped at admission; the
// queue sheds lower classes first at depth/wait watermarks; pressured
// requests reroute to their session's lower-k fallback tier (the quality
// dial); requests whose deadline lapses in the queue are expired — and a
// whole batch whose deadlines all lapse while queued behind the engine is
// cancelled through its BatchFuture — instead of burning engine time on
// answers nobody can use. Every decision reads the injected ClockSource,
// so a VirtualClock makes the whole policy deterministic under test.
//
// Lifecycle: construct -> sessions().add_session(...) -> start() ->
// submit()/run() -> stop() (close + drain + join; also run by the
// destructor). Every accepted request is answered exactly once — with a
// completion, an error, or an expiry — even when stop() races new
// submissions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/chaos.hpp"
#include "serve/clock.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/router.hpp"
#include "serve/session.hpp"

namespace deepcam::serve {

/// SLO policy of one server: per-class deadlines, admission watermarks,
/// the downgrade dial, and the expiry switch. The defaults are a plain
/// FIFO server (no deadlines, no shedding, no downgrades) — existing
/// callers see unchanged behavior.
struct SloConfig {
  /// Relative completion deadline per class, stamped at admission;
  /// zero duration = the class carries no deadline.
  std::array<Clock::duration, kNumSloClasses> deadline{};
  /// Per-class shed watermarks enforced by the RequestQueue.
  AdmissionPolicy admission;
  /// Queue-depth fraction above which admissions reroute to the session's
  /// fallback tier (SessionManager::set_fallback); >= 1.0 disables.
  double downgrade_fraction = 1.0;
  /// Expire deadline-lapsed requests at batch formation (and cancel fully
  /// doomed batches through their BatchFuture) instead of running them.
  /// false = FIFO baseline: deadlines are recorded for goodput accounting
  /// but never enforced.
  bool expire_doomed = true;
};

struct ServerConfig {
  std::size_t num_workers = 2;      // batcher/dispatch threads
  std::size_t queue_capacity = 256; // admission-control bound
  BatchPolicy batch;
  SloConfig slo;
  /// Engine replicas per session (serve/replica.hpp). One replica keeps
  /// the pre-replica behavior; more buys failover capacity.
  std::size_t replicas = 1;
  /// Fault-tolerance policies: consistent-hash placement, retry backoff,
  /// hedging, and the per-replica health/breaker knobs (router.replica).
  RouterConfig router;
  /// Scripted faults injected while serving (serve/chaos.hpp); empty =
  /// no chaos. Armed at start(), applied by the workers.
  ChaosScript chaos;
  /// Time source for every scheduling decision; nullptr = the real
  /// steady clock. Tests inject a VirtualClock (serve/clock.hpp).
  ClockSource* clock = nullptr;
  /// Pump mode: start() spawns no worker threads; the owner drives batch
  /// formation + dispatch inline via pump(). Combined with a VirtualClock
  /// and LoadGenerator::replay_deterministic this makes an entire serve
  /// run single-threaded and replay-identical (byte-identical traces).
  bool manual_dispatch = false;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Session registry; register every model (and fallback links) before
  /// start().
  SessionManager& sessions() { return sessions_; }
  const SessionManager& session_manager() const { return sessions_; }
  const ServerConfig& config() const { return cfg_; }

  /// Spawns the worker threads. Requires >= 1 registered session.
  void start();

  /// Non-blocking admission of one single-sample request for `session` at
  /// SLO class `slo`. On kAccepted, `on_done` fires exactly once from a
  /// worker thread — with a completion, an error, or an expiry; on any
  /// rejection (including kRejectedShed) it never fires. Thread-safe.
  Admission submit(const std::string& session, nn::Tensor input,
                   std::function<void(Response&&)> on_done,
                   SloClass slo = SloClass::kStandard);

  /// Blocking closed-loop convenience: admits (waiting for queue space if
  /// needed; watermark shedding does not apply) and returns the response.
  /// Unknown sessions / closed server yield an error response rather than
  /// throwing.
  Response run(const std::string& session, nn::Tensor input,
               SloClass slo = SloClass::kStandard);

  /// Blocks until every accepted request has been answered.
  void drain();

  /// Manual-dispatch drive: polls the chaos injector, then forms and
  /// dispatches at most one due micro-batch inline on the calling thread.
  /// Returns true when a batch (or expiry sweep) was dispatched — callers
  /// loop `while (pump()) {}` to reach quiescence at the current virtual
  /// time. Only valid with ServerConfig::manual_dispatch, after start().
  bool pump();

  /// Closes admission, drains pending requests, joins the workers.
  /// Idempotent.
  void stop();

  bool running() const { return running_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerMetrics& metrics() const;
  /// The routing/fault-handling policy engine (tests read hedge_delay()).
  Router& router() { return *router_; }
  /// The chaos harness (tests read applied()).
  FaultInjector& injector() { return *injector_; }

  /// Frozen whole-server statistics (valid while running or after stop()).
  ServerSummary summary() const;

 private:
  void worker_loop();
  void dispatch(MicroBatch&& mb);
  /// Answers one request with a deadline-expired response (no engine run).
  void answer_expired(Request&& req);
  /// Builds the shared admission state of submit()/run(): resolves the
  /// session, applies the downgrade dial, stamps the deadline. Returns
  /// false when the session is unknown.
  bool prepare(const std::string& session, SloClass slo, Request& req,
               bool& downgraded_out);
  void count_answered();
  double elapsed_seconds() const;

  ServerConfig cfg_;
  ClockSource* clock_;
  SessionManager sessions_;
  RequestQueue queue_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ServerMetrics> metrics_;  // sized at start()
  std::vector<std::thread> workers_;
  std::unique_ptr<DynamicBatcher> pump_batcher_;  // manual-dispatch mode

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};  // trace span batch ids
  std::atomic<bool> running_{false};

  // accepted/answered bookkeeping for drain(), guarded by done_mu_.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint64_t accepted_ = 0;
  std::uint64_t answered_ = 0;

  Clock::time_point t_start_{};
  Clock::time_point t_stop_{};
  bool stopped_ = false;
};

}  // namespace deepcam::serve
