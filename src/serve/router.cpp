#include "serve/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace deepcam::serve {

namespace {

constexpr std::size_t kVirtualNodes = 64;

/// splitmix64: the deterministic mixer behind ring points and backoff
/// jitter. No global RNG — replays stay bit-identical.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

Clock::duration from_seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

Router::Router(RouterConfig cfg, ClockSource* clock)
    : cfg_(cfg), clock_(clock != nullptr ? clock : &ClockSource::steady()) {
  DEEPCAM_CHECK_MSG(cfg_.retry_backoff >= Clock::duration::zero() &&
                        cfg_.retry_backoff_max >= Clock::duration::zero(),
                    "retry backoff must be non-negative");
}

std::vector<std::size_t> Router::ring_order(std::size_t replicas,
                                            std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_replicas_ != replicas) {
    ring_.clear();
    ring_.reserve(replicas * kVirtualNodes);
    // Double-mix the ring points: replica 0's vnode ids are the raw
    // integers 0..63, the same inputs small request ids feed to mix64 —
    // single-mixed, every key < kVirtualNodes would land exactly on its
    // twin vnode and the whole head of the id space would own to
    // replica 0. The extra round domain-separates points from keys.
    for (std::size_t r = 0; r < replicas; ++r)
      for (std::size_t v = 0; v < kVirtualNodes; ++v)
        ring_.push_back(
            {mix64(mix64((static_cast<std::uint64_t>(r) << 32) | v)), r});
    std::sort(ring_.begin(), ring_.end(),
              [](const RingPoint& a, const RingPoint& b) {
                if (a.hash != b.hash) return a.hash < b.hash;
                return a.replica < b.replica;
              });
    ring_replicas_ = replicas;
  }
  // Owner = first point at/after the key's hash (wrapping); successors
  // follow in ring order, deduplicated.
  std::vector<std::size_t> order;
  order.reserve(replicas);
  const std::uint64_t h = mix64(key);
  std::size_t start = 0;
  while (start < ring_.size() && ring_[start].hash < h) ++start;
  for (std::size_t i = 0; i < ring_.size() && order.size() < replicas; ++i) {
    const std::size_t r = ring_[(start + i) % ring_.size()].replica;
    if (std::find(order.begin(), order.end(), r) == order.end())
      order.push_back(r);
  }
  return order;
}

std::optional<std::size_t> Router::pick(ReplicaSet& set, std::uint64_t key,
                                        SloClass slo, std::size_t avoid) {
  const std::vector<std::size_t> order = ring_order(set.size(), key);
  // Canary preemption: a recovering replica takes one probe at a time so
  // it can earn readmission even while healthy replicas could serve.
  // Interactive traffic is never used as a probe (its deadline is tight).
  if (slo != SloClass::kInteractive) {
    for (const std::size_t r : order)
      if (r != avoid && set.replica(r).try_acquire_canary()) return r;
  }
  // Probation trickle: when the ring owner is degraded, a deterministic
  // 1-in-8 slice of its keys still routes to it. A degraded replica that
  // is skipped entirely stops producing samples, so its error EWMA can
  // never decay and it is benched forever; the trickle lets it earn the
  // promotion back to healthy (or confirm it still fails).
  // Interactive traffic is exempt, same as canary probes: its deadline
  // is too tight to spend on a replica under suspicion.
  if (slo != SloClass::kInteractive && !order.empty() &&
      order.front() != avoid &&
      set.replica(order.front()).health() == ReplicaHealth::kDegraded &&
      (mix64(key ^ 0x70726f626174696full) & 7) == 0)
    return order.front();
  for (const std::size_t r : order)
    if (r != avoid && set.replica(r).health() == ReplicaHealth::kHealthy)
      return r;
  for (const std::size_t r : order)
    if (r != avoid && set.replica(r).health() == ReplicaHealth::kDegraded)
      return r;
  // Nothing else left: relax the avoid constraint before giving up.
  for (const std::size_t r : order) {
    const ReplicaHealth h = set.replica(r).health();
    if (h == ReplicaHealth::kHealthy || h == ReplicaHealth::kDegraded)
      return r;
  }
  for (const std::size_t r : order)
    if (set.replica(r).try_acquire_canary()) return r;
  return std::nullopt;
}

Clock::duration Router::backoff(std::size_t attempt,
                                std::uint64_t key) const {
  if (cfg_.retry_backoff <= Clock::duration::zero())
    return Clock::duration::zero();
  const std::size_t exp = std::min<std::size_t>(attempt, 16);
  Clock::duration base = cfg_.retry_backoff * (1ull << exp);
  if (cfg_.retry_backoff_max > Clock::duration::zero())
    base = std::min(base, cfg_.retry_backoff_max);
  // Deterministic jitter in [0.5, 1.0] x base, keyed by (seed, key,
  // attempt) so concurrent retries of different batches decorrelate.
  const std::uint64_t j =
      mix64(cfg_.jitter_seed ^ mix64(key) ^ (attempt * 0x2545f4914f6cdd1dull));
  const double u = static_cast<double>(j >> 11) * 0x1.0p-53;
  return std::chrono::duration_cast<Clock::duration>(base * (0.5 + 0.5 * u));
}

Clock::duration Router::hedge_delay() const {
  if (cfg_.hedge_delay > Clock::duration::zero()) return cfg_.hedge_delay;
  double p99;
  {
    std::lock_guard<std::mutex> lk(mu_);
    p99 = latency_.percentile(99.0);
  }
  return std::max(cfg_.hedge_floor, from_seconds(p99));
}

void Router::observe_latency(double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  latency_.add(seconds);
}

Router::Attempt Router::run(ReplicaSet& set, std::uint64_t key, SloClass slo,
                            std::vector<nn::Tensor>&& inputs,
                            std::size_t avoid,
                            Clock::time_point latest_deadline,
                            bool cancellable, std::uint64_t batch_id) {
  // One reusable template for this attempt's kRoute instants.
  obs::SpanRecord route_fields;
  route_fields.rid = key;
  route_fields.slo = static_cast<std::uint64_t>(slo);
  route_fields.batch = batch_id;

  Attempt a;
  const Clock::time_point t0 = clock_->now();
  set.refresh_health(t0);
  const auto choice = pick(set, key, slo, avoid);
  if (!choice.has_value()) {
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kRoute, "no_replica",
                 route_fields);
    a.error = std::make_exception_ptr(
        Error("serve: no replica available (all quarantined)"));
    return a;
  }
  const std::size_t primary = *choice;
  a.replica = primary;
  Replica& prep = set.replica(primary);
  route_fields.replica = primary;
  obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kRoute, "pick",
               route_fields);

  bool hedge_eligible = cfg_.hedge_interactive &&
                        slo == SloClass::kInteractive && set.size() > 1;
  std::vector<nn::Tensor> hedge_inputs;
  if (hedge_eligible) hedge_inputs = inputs;  // copy before the move below

  core::BatchFuture prim_future;
  try {
    prim_future = prep.submit(std::move(inputs), key);
  } catch (...) {
    // Instant submission failure (crashed / poisoned replica).
    prep.record_failure(clock_->now());
    a.error = std::current_exception();
    return a;
  }
  const Clock::duration prim_delay = prep.fault_delay();
  const Clock::duration hd = hedge_eligible ? hedge_delay()
                                            : Clock::duration::zero();

  bool prim_live = true;   // still waiting on the primary
  bool hedge_issued = false, hedge_live = false;
  std::size_t hedge_replica = kNoReplica;
  core::BatchFuture hedge_future;
  Clock::duration hedge_extra{};
  Clock::time_point t_hedge{};
  std::exception_ptr first_error;

  // Drains a finished-or-running loser future and records its outcome on
  // its replica (the "wasted" half of a hedge).
  const auto drain_loser = [&](core::BatchFuture& f, Replica& rep,
                               Clock::time_point started) {
    try {
      f.get();
      const Clock::time_point done = clock_->now();
      rep.record_success(seconds_between(started, done), done);
    } catch (...) {
      rep.record_failure(clock_->now());
    }
    a.hedge_wasted = true;
  };

  for (;;) {
    const Clock::time_point now = clock_->now();

    // Whole-batch deadline: cancel whatever has not started executing.
    if (cancellable && now >= latest_deadline) {
      if (prim_live && prim_future.cancel()) prim_live = false;
      if (hedge_live && hedge_future.cancel()) hedge_live = false;
      if (!prim_live && !hedge_live) {
        a.cancelled = true;
        a.hedged = hedge_issued;
        return a;
      }
    }

    // Hedge issue point: the primary has been silent past the delay. A
    // chaos-slow primary may hold a ready result that is not observable
    // until its fault delay lapses — that counts as silent too, so the
    // hedge doubles as failover around slow replicas, not just dead ones.
    if (hedge_eligible && !hedge_issued && prim_live && now >= t0 + hd &&
        !(prim_future.ready() && now >= t0 + prim_delay)) {
      const auto h = pick(set, mix64(key), slo, primary);
      if (h.has_value() && *h != primary) {
        Replica& hrep = set.replica(*h);
        try {
          hedge_future = hrep.submit(std::move(hedge_inputs), key);
          hedge_issued = hedge_live = true;
          hedge_replica = *h;
          hedge_extra = hrep.fault_delay();
          t_hedge = now;
          a.hedged = true;
          route_fields.replica = *h;
          obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kRoute,
                       "hedge_issue", route_fields);
        } catch (...) {
          hrep.record_failure(now);
          hedge_eligible = false;  // inputs consumed; no second try
        }
      } else {
        hedge_eligible = false;  // nobody to hedge onto
      }
    }

    // Primary completion (wins ties — the answers are bitwise identical).
    // A chaos-slow replica's result is not observable until its fault
    // delay lapses; meanwhile the hedge below stays in play.
    if (prim_live && prim_future.ready() && now >= t0 + prim_delay) {
      prim_live = false;
      std::vector<nn::Tensor> outs;
      bool ok = true;
      try {
        outs = prim_future.get();
      } catch (...) {
        ok = false;
        if (first_error == nullptr) first_error = std::current_exception();
      }
      const Clock::time_point done = clock_->now();
      if (ok) {
        const double lat = seconds_between(t0, done);
        prep.record_success(lat, done);
        observe_latency(lat);
        if (hedge_live) {
          if (hedge_future.cancel())
            hedge_live = false;
          else
            drain_loser(hedge_future, set.replica(hedge_replica), t_hedge);
        }
        a.ok = true;
        a.outputs = std::move(outs);
        a.replica = primary;
        return a;
      }
      prep.record_failure(done);
      if (!hedge_live) {
        a.error = first_error;
        a.replica = primary;
        return a;
      }
      continue;  // the hedge is now the only hope
    }

    // Hedge completion (first-wins).
    if (hedge_live && hedge_future.ready() && now >= t_hedge + hedge_extra) {
      hedge_live = false;
      Replica& hrep = set.replica(hedge_replica);
      std::vector<nn::Tensor> outs;
      bool ok = true;
      try {
        outs = hedge_future.get();
      } catch (...) {
        ok = false;
        if (first_error == nullptr) first_error = std::current_exception();
      }
      const Clock::time_point done = clock_->now();
      if (ok) {
        const double lat = seconds_between(t_hedge, done);
        hrep.record_success(lat, done);
        observe_latency(lat);
        if (prim_live) {
          if (prim_future.cancel())
            prim_live = false;
          else
            drain_loser(prim_future, prep, t0);
        }
        a.ok = true;
        a.outputs = std::move(outs);
        a.replica = hedge_replica;
        a.hedge_won = true;
        route_fields.replica = hedge_replica;
        obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kRoute,
                     "hedge_win", route_fields);
        return a;
      }
      hrep.record_failure(done);
      if (!prim_live) {
        a.error = first_error;
        a.replica = primary;
        return a;
      }
      continue;  // back to waiting on the primary
    }

    if (!prim_live && !hedge_live) {
      // Both sides resolved without a result (e.g. one cancelled at the
      // deadline, the other failed).
      if (first_error != nullptr) {
        a.error = first_error;
      } else {
        a.cancelled = true;
        a.hedged = hedge_issued;
      }
      return a;
    }

    // Nothing is observable yet. If a result exists but is held behind a
    // slow-fault delay, sleep toward its observation point through the
    // clock (a VirtualClock advances instead of parking).
    Clock::time_point next_observable = Clock::time_point::max();
    if (prim_live && prim_future.ready())
      next_observable = std::min(next_observable, t0 + prim_delay);
    if (hedge_live && hedge_future.ready())
      next_observable = std::min(next_observable, t_hedge + hedge_extra);
    if (next_observable != Clock::time_point::max()) {
      clock_->sleep_until(std::min(
          next_observable, now + std::chrono::microseconds(500)));
      continue;
    }
    // Otherwise park on a live future. Only a pending decision point — a
    // cancellable deadline, an unissued hedge, or a second live future —
    // forces a bounded poll; with none of those this is a plain blocking
    // wait, which keeps the fault-free single-replica path poll-free
    // (and as fast as the pre-replica serving tier).
    const bool must_poll =
        cancellable || (hedge_eligible && !hedge_issued && prim_live) ||
        (prim_live && hedge_live);
    if (!must_poll) {
      if (prim_live)
        prim_future.wait();
      else
        hedge_future.wait();
    } else if (prim_live) {
      prim_future.wait_for(std::chrono::microseconds(500));
    } else {
      hedge_future.wait_for(std::chrono::microseconds(500));
    }
  }
}

}  // namespace deepcam::serve
