// Injectable time source for the serving subsystem.
//
// Every scheduling decision in src/serve — micro-batch delay bounds,
// request deadlines, expiry, queue-wait accounting — is a function of
// "now". Reading std::chrono::steady_clock directly would make those
// decisions untestable: a scheduler test would have to sleep real
// milliseconds and hope the thread scheduler cooperates. ClockSource is
// the seam: production code uses the process-wide SteadyClockSource
// (ClockSource::steady(), a zero-overhead passthrough to steady_clock),
// tests inject a VirtualClock whose time only moves when the test calls
// advance(). A crafted arrival timeline then produces exactly one
// shed/expire/downgrade decision sequence, replayed identically on every
// run — the determinism contract of tests/test_serve.cpp's scheduler
// tables.
//
// Timed waits go through wait_until() instead of cv.wait_until so a
// virtual deadline can never park a thread on the real clock: the virtual
// implementation re-checks virtual time at a bounded real-time cadence and
// observes producer notifications on the same condition_variable, so
// *decisions* stay a pure function of the virtual timeline even when the
// host's wall-clock timing varies.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "serve/request.hpp"

namespace deepcam::serve {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  virtual Clock::time_point now() const = 0;

  /// Timed wait on `cv` (whose mutex `lk` holds) until notified or the
  /// clock reaches `deadline`. Returns true when the deadline passed
  /// (timeout), false on a (possibly spurious) wakeup before it — same
  /// contract as cv.wait_until's cv_status, so callers keep their usual
  /// re-check loops.
  virtual bool wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lk,
                          Clock::time_point deadline) = 0;

  /// Blocks the calling thread until the clock reaches `t` (open-loop
  /// replay pacing). The virtual clock advances itself instead of
  /// sleeping, so trace replays run at full host speed.
  virtual void sleep_until(Clock::time_point t) = 0;

  /// The process-wide real clock (steady_clock passthrough).
  static ClockSource& steady();
};

/// Production clock: steady_clock reads, real condition-variable waits.
class SteadyClockSource final : public ClockSource {
 public:
  Clock::time_point now() const override { return Clock::now(); }

  bool wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk,
                  Clock::time_point deadline) override {
    return cv.wait_until(lk, deadline) == std::cv_status::timeout;
  }

  void sleep_until(Clock::time_point t) override {
    std::this_thread::sleep_until(t);
  }
};

/// Test clock: time is a variable. now() never moves on its own; advance()
/// moves it forward. Starts one hour past the epoch so subtracting
/// plausible deltas can never underflow the (unsigned-rep) time_point.
class VirtualClock final : public ClockSource {
 public:
  VirtualClock() : now_(Clock::time_point{} + std::chrono::hours(1)) {}
  explicit VirtualClock(Clock::time_point start) : now_(start) {}

  Clock::time_point now() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return now_;
  }

  void advance(Clock::duration d) {
    std::lock_guard<std::mutex> lk(mu_);
    now_ += d;
  }

  void advance_to(Clock::time_point t) {
    std::lock_guard<std::mutex> lk(mu_);
    if (t > now_) now_ = t;
  }

  bool wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk,
                  Clock::time_point deadline) override {
    if (now() >= deadline) return true;
    // Cannot park on the real clock: the virtual deadline may already be
    // decades of wall time away. Wait for a producer notification but cap
    // the park at 1ms real so an advance() from another thread (which
    // cannot take `lk`'s mutex to notify safely) is observed promptly.
    cv.wait_for(lk, std::chrono::milliseconds(1));
    return now() >= deadline;
  }

  void sleep_until(Clock::time_point t) override { advance_to(t); }

 private:
  mutable std::mutex mu_;
  Clock::time_point now_;
};

}  // namespace deepcam::serve
