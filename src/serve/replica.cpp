#include "serve/replica.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace deepcam::serve {

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Replica::Replica(std::shared_ptr<const core::CompiledModel> compiled,
                 std::size_t engine_threads, ReplicaConfig cfg,
                 ClockSource* clock)
    : cfg_(cfg),
      clock_(clock != nullptr ? clock : &ClockSource::steady()),
      engine_(std::make_unique<core::InferenceEngine>(std::move(compiled),
                                                      engine_threads)) {
  DEEPCAM_CHECK_MSG(cfg_.breaker_failures >= 1,
                    "circuit breaker needs >= 1 failure");
  DEEPCAM_CHECK_MSG(cfg_.canary_successes >= 1,
                    "readmission needs >= 1 canary success");
  DEEPCAM_CHECK_MSG(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                    "ewma_alpha must be in (0, 1]");
}

core::BatchFuture Replica::submit(std::vector<nn::Tensor> inputs,
                                  std::uint64_t trace_tag) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) throw Error("replica crashed (chaos fault)");
    if (poison_pending_ > 0) {
      --poison_pending_;
      throw Error("poisoned micro-batch (chaos fault)");
    }
  }
  return engine_->submit(std::move(inputs), trace_tag);
}

Clock::duration Replica::fault_delay() const {
  std::lock_guard<std::mutex> lk(mu_);
  return slow_delay_;
}

void Replica::transition(ReplicaHealth to, Clock::time_point now) {
  if (health_ == to) return;
  if (health_ == ReplicaHealth::kQuarantined)
    quarantine_seconds_ += seconds_between(quarantined_since_, now);
  if (to == ReplicaHealth::kQuarantined) quarantined_since_ = now;
  health_ = to;
  ++transitions_;
}

void Replica::observe(double error, double latency_seconds) {
  if (!has_samples_) {
    error_ewma_ = error;
    latency_ewma_ = latency_seconds;
    has_samples_ = true;
    return;
  }
  const double a = cfg_.ewma_alpha;
  error_ewma_ = a * error + (1.0 - a) * error_ewma_;
  latency_ewma_ = a * latency_seconds + (1.0 - a) * latency_ewma_;
}

void Replica::record_success(double latency_seconds, Clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  consecutive_failures_ = 0;
  canary_in_flight_ = false;
  observe(0.0, latency_seconds);
  if (health_ == ReplicaHealth::kRecovering) {
    if (++canary_ok_ >= cfg_.canary_successes) {
      transition(ReplicaHealth::kHealthy, now);
      // Readmission is a clean slate: the canaries proved current health,
      // and a stale quarantine-era error EWMA would otherwise bounce the
      // replica straight back to degraded.
      error_ewma_ = 0.0;
    }
  }
}

void Replica::record_failure(Clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  ++failures_;
  ++consecutive_failures_;
  canary_in_flight_ = false;
  observe(1.0, latency_ewma_);  // a failure carries no latency sample
  if (health_ == ReplicaHealth::kRecovering) {
    // A failed canary re-opens the breaker and restarts the backoff.
    canary_ok_ = 0;
    transition(ReplicaHealth::kQuarantined, now);
  } else if (health_ != ReplicaHealth::kQuarantined &&
             consecutive_failures_ >= cfg_.breaker_failures) {
    canary_ok_ = 0;
    transition(ReplicaHealth::kQuarantined, now);
  }
}

ReplicaHealth Replica::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  return health_;
}

bool Replica::try_acquire_canary() {
  std::lock_guard<std::mutex> lk(mu_);
  if (health_ != ReplicaHealth::kRecovering || canary_in_flight_)
    return false;
  canary_in_flight_ = true;
  ++canary_probes_;
  return true;
}

void Replica::chaos_crash() {
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = true;
}

void Replica::chaos_heal() {
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = false;
  slow_delay_ = Clock::duration{};
  poison_pending_ = 0;
}

void Replica::chaos_slow(Clock::duration delay) {
  std::lock_guard<std::mutex> lk(mu_);
  slow_delay_ = delay;
}

void Replica::chaos_poison(std::size_t batches) {
  std::lock_guard<std::mutex> lk(mu_);
  poison_pending_ += batches;
}

bool Replica::crashed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crashed_;
}

ReplicaSummary Replica::summarize(Clock::time_point now) const {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicaSummary s;
  s.health = to_string(health_);
  s.batches = batches_;
  s.failures = failures_;
  s.transitions = transitions_;
  s.canary_probes = canary_probes_;
  s.quarantine_seconds = quarantine_seconds_;
  if (health_ == ReplicaHealth::kQuarantined)
    s.quarantine_seconds += seconds_between(quarantined_since_, now);
  s.error_ewma = error_ewma_;
  s.latency_ewma_ms = latency_ewma_ * 1e3;
  return s;
}

ReplicaSet::ReplicaSet(std::shared_ptr<const core::CompiledModel> compiled,
                       std::size_t replicas, std::size_t engine_threads,
                       ReplicaConfig cfg, ClockSource* clock)
    : cfg_(cfg) {
  DEEPCAM_CHECK_MSG(replicas >= 1, "a session needs >= 1 replica");
  DEEPCAM_CHECK_MSG(compiled != nullptr, "replicas need a compiled model");
  replicas_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r)
    replicas_.push_back(
        std::make_unique<Replica>(compiled, engine_threads, cfg, clock));
}

Replica& ReplicaSet::replica(std::size_t r) {
  DEEPCAM_CHECK(r < replicas_.size());
  return *replicas_[r];
}

const Replica& ReplicaSet::replica(std::size_t r) const {
  DEEPCAM_CHECK(r < replicas_.size());
  return *replicas_[r];
}

void ReplicaSet::refresh_health(Clock::time_point now) {
  // Best (lowest) latency EWMA across replicas still taking traffic — the
  // baseline the slow-replica signal compares against.
  double best_latency = std::numeric_limits<double>::infinity();
  for (const auto& rp : replicas_) {
    std::lock_guard<std::mutex> lk(rp->mu_);
    if (!rp->has_samples_) continue;
    if (rp->health_ == ReplicaHealth::kHealthy ||
        rp->health_ == ReplicaHealth::kDegraded)
      best_latency = std::min(best_latency, rp->latency_ewma_);
  }
  for (const auto& rp : replicas_) {
    std::lock_guard<std::mutex> lk(rp->mu_);
    switch (rp->health_) {
      case ReplicaHealth::kQuarantined:
        if (now - rp->quarantined_since_ >= cfg_.quarantine_backoff) {
          rp->canary_ok_ = 0;
          rp->transition(ReplicaHealth::kRecovering, now);
        }
        break;
      case ReplicaHealth::kHealthy:
      case ReplicaHealth::kDegraded: {
        if (!rp->has_samples_) break;
        const bool errors_bad = rp->error_ewma_ > cfg_.degrade_error_rate;
        const bool latency_bad =
            std::isfinite(best_latency) && best_latency > 0.0 &&
            rp->latency_ewma_ > cfg_.degrade_latency_factor * best_latency;
        if (rp->health_ == ReplicaHealth::kHealthy &&
            (errors_bad || latency_bad))
          rp->transition(ReplicaHealth::kDegraded, now);
        else if (rp->health_ == ReplicaHealth::kDegraded && !errors_bad &&
                 !latency_bad)
          rp->transition(ReplicaHealth::kHealthy, now);
        break;
      }
      case ReplicaHealth::kRecovering:
        break;
    }
  }
}

std::size_t ReplicaSet::available() const {
  std::size_t n = 0;
  for (const auto& rp : replicas_) {
    const ReplicaHealth h = rp->health();
    if (h == ReplicaHealth::kHealthy || h == ReplicaHealth::kDegraded) ++n;
  }
  return n;
}

std::vector<ReplicaSummary> ReplicaSet::summarize(
    Clock::time_point now) const {
  std::vector<ReplicaSummary> out;
  out.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    ReplicaSummary s = replicas_[r]->summarize(now);
    s.replica = r;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace deepcam::serve
