// Replica + ReplicaSet: N engine replicas per session with health tracking.
//
// A production DeepCAM deployment cannot let one stalled or poisoned engine
// take a whole session down — the serving tier needs the same graceful
// degradation story the paper claims for CAM bit faults, but at the system
// level. Each session therefore owns a ReplicaSet of N identical
// InferenceEngines over the session's shared CompiledModel (replicas are
// bitwise-interchangeable: a sample's logits depend only on
// (CompiledModel, input), so failover never changes an answer).
//
// Every replica carries a health state machine driven by error-rate and
// latency EWMAs:
//
//   healthy ──EWMA over threshold──▶ degraded      (routed around, still
//      ▲  ◀──EWMA recovers────────────┘             eligible as a backup)
//      │
//      │ canary successes          K consecutive failures (circuit breaker)
//      │                                   │
//   recovering ◀──quarantine backoff── quarantined  (never routed)
//      │ canary failure                    ▲
//      └───────────────────────────────────┘
//
// Recovering replicas are readmitted through canary probes: the Router
// sends at most one live micro-batch at a time to a recovering replica,
// and only promotes it back to healthy after `canary_successes` clean
// probes. All timestamps come from the injected ClockSource, so the whole
// state machine is deterministic under a VirtualClock.
//
// Chaos hooks (chaos_*) are the FaultInjector's surface (serve/chaos.hpp):
// crash makes every submit fail instantly, slow delays completion
// observation by a fixed penalty through the clock (a slow replica, not a
// dead one), poison fails the next N submitted batches. They model the
// failure, the health machinery reacts to it — nothing is special-cased.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/clock.hpp"

namespace deepcam::serve {

/// "No replica" sentinel (routing's avoid parameter, Request::last_replica).
inline constexpr std::size_t kNoReplica = static_cast<std::size_t>(-1);

enum class ReplicaHealth : std::size_t {
  kHealthy = 0,
  kDegraded = 1,     // suspicious EWMAs: deprioritized, not excluded
  kQuarantined = 2,  // circuit broken: receives no traffic
  kRecovering = 3,   // half-open: canary probes only
};

inline const char* to_string(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kQuarantined: return "quarantined";
    case ReplicaHealth::kRecovering: return "recovering";
  }
  return "?";
}

/// Health/breaker policy of every replica in a set.
struct ReplicaConfig {
  /// EWMA smoothing for the error-rate and latency trackers.
  double ewma_alpha = 0.2;
  /// Error-rate EWMA above this marks a replica degraded.
  double degrade_error_rate = 0.5;
  /// Latency EWMA above this multiple of the set's best replica marks a
  /// replica degraded (the slow-replica signal).
  double degrade_latency_factor = 4.0;
  /// Circuit breaker: consecutive failures before quarantine.
  std::size_t breaker_failures = 3;
  /// Clean canary probes required to readmit a recovering replica.
  std::size_t canary_successes = 2;
  /// Time a quarantined replica sits out before canary probing starts.
  Clock::duration quarantine_backoff = std::chrono::milliseconds(20);
};

/// Frozen per-replica statistics (serialized by serve/report_io).
struct ReplicaSummary {
  std::string session;
  std::size_t replica = 0;
  std::string health;            // state at snapshot time
  std::uint64_t batches = 0;     // successfully served micro-batches
  std::uint64_t failures = 0;    // failed submissions/executions
  std::uint64_t transitions = 0; // health-state changes
  std::uint64_t canary_probes = 0;
  double quarantine_seconds = 0.0;  // total time spent quarantined
  double error_ewma = 0.0;
  double latency_ewma_ms = 0.0;
};

/// One engine replica plus its health state machine. Thread-safe: the
/// internal mutex guards health state only; engine submission is the
/// engine's own concern.
class Replica {
 public:
  Replica(std::shared_ptr<const core::CompiledModel> compiled,
          std::size_t engine_threads, ReplicaConfig cfg, ClockSource* clock);

  /// Submits one micro-batch. Throws (an instant failure the Router turns
  /// into a retry) when the replica is chaos-crashed or the next batch is
  /// chaos-poisoned. `trace_tag` is the request identity forwarded to the
  /// engine's trace spans (obs::kNoId = untraced).
  core::BatchFuture submit(std::vector<nn::Tensor> inputs,
                           std::uint64_t trace_tag = obs::kNoId);

  /// Completion-observation delay of this replica (chaos slow fault);
  /// zero normally. The Router sleeps this out through the ClockSource, so
  /// a virtual clock models the slowdown deterministically.
  Clock::duration fault_delay() const;

  /// Records a successful batch: resets the breaker, feeds the EWMAs,
  /// advances recovering -> healthy after enough clean canaries.
  void record_success(double latency_seconds, Clock::time_point now);
  /// Records a failed batch: feeds the EWMAs, trips the breaker after K
  /// consecutive failures, throws a recovering replica back to quarantine.
  void record_failure(Clock::time_point now);

  /// Current health (no lazy promotion — ReplicaSet::refresh_health does
  /// the time-driven quarantined -> recovering step).
  ReplicaHealth health() const;
  /// True when the replica may receive a canary probe right now; marks one
  /// in flight on success (released by the next record_*).
  bool try_acquire_canary();

  // -- chaos surface (serve/chaos.hpp) ------------------------------------
  void chaos_crash();
  void chaos_heal();  // clears crash, slow, and poison faults
  void chaos_slow(Clock::duration delay);
  void chaos_poison(std::size_t batches);
  bool crashed() const;

  core::InferenceEngine& engine() { return *engine_; }
  ReplicaSummary summarize(Clock::time_point now) const;

 private:
  friend class ReplicaSet;

  /// mu_ held. Counts the transition and accounts quarantine time.
  void transition(ReplicaHealth to, Clock::time_point now);
  void observe(double error, double latency_seconds);  // mu_ held

  const ReplicaConfig cfg_;
  ClockSource* clock_;
  std::unique_ptr<core::InferenceEngine> engine_;

  mutable std::mutex mu_;
  ReplicaHealth health_ = ReplicaHealth::kHealthy;
  std::size_t consecutive_failures_ = 0;
  std::size_t canary_ok_ = 0;
  bool canary_in_flight_ = false;
  bool has_samples_ = false;
  double error_ewma_ = 0.0;
  double latency_ewma_ = 0.0;  // seconds
  Clock::time_point quarantined_since_{};
  double quarantine_seconds_ = 0.0;
  std::uint64_t batches_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t canary_probes_ = 0;
  // chaos faults
  bool crashed_ = false;
  Clock::duration slow_delay_{};
  std::size_t poison_pending_ = 0;
};

/// The N replicas of one session. Replicas are registered at construction
/// and immutable afterwards (the vector never changes; each Replica is
/// internally synchronized).
class ReplicaSet {
 public:
  ReplicaSet(std::shared_ptr<const core::CompiledModel> compiled,
             std::size_t replicas, std::size_t engine_threads,
             ReplicaConfig cfg, ClockSource* clock);

  std::size_t size() const { return replicas_.size(); }
  Replica& replica(std::size_t r);
  const Replica& replica(std::size_t r) const;

  /// Time- and set-driven health maintenance: promotes quarantined
  /// replicas to recovering once their backoff elapsed, and toggles
  /// healthy <-> degraded from the error-rate EWMA and the latency EWMA
  /// relative to the set's best replica. Called by the Router before every
  /// pick; cheap and idempotent.
  void refresh_health(Clock::time_point now);

  /// Replicas currently eligible for regular traffic (healthy/degraded).
  std::size_t available() const;

  std::vector<ReplicaSummary> summarize(Clock::time_point now) const;

 private:
  const ReplicaConfig cfg_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace deepcam::serve
