// ServerMetrics: per-session and per-SLO-class serving counters.
//
// Tracks, per named session: admission counters (including sheds and
// downgrades), completed/error/expired counts, end-to-end latency and
// queue-wait histograms (p50/p95/p99/p99.9 via common/histogram.hpp),
// micro-batch size distribution, and the number of concurrently in-flight
// micro-batches. Per SLO class it additionally tracks goodput — responses
// that met their deadline — plus deadline-slack histograms (spare margin
// of met requests / lateness of missed ones), the overload-visibility
// signal the SLO tier is judged by.
//
// Updates come from several server worker threads; one mutex guards the
// whole object (all updates are O(1)-ish and off the engine's inner loop).
// The object never reads a clock: callers pass durations they computed
// with the server's injected ClockSource, so metrics inherit the virtual
// clock's determinism in tests. snapshot()/class_snapshot() freeze
// everything into the plain-data summaries that serve/report_io
// serializes.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "serve/replica.hpp"
#include "serve/request.hpp"

namespace deepcam::serve {

/// Frozen per-session statistics (all latencies in milliseconds).
struct SessionSummary {
  std::string name;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   // backpressure + closed + shed (resolved)
  std::uint64_t shed = 0;       // subset of rejected: watermark sheds
  std::uint64_t completed = 0;  // responses delivered, incl errors+expired
  std::uint64_t errors = 0;
  std::uint64_t expired = 0;    // answered without running (deadline passed)
  std::uint64_t downgraded = 0; // rerouted here from a higher tier
  std::uint64_t batches = 0;    // micro-batches dispatched
  double mean_batch_size = 0.0;
  double batch_size_p50 = 0.0;
  std::uint64_t max_batch_size = 0;
  std::uint64_t max_in_flight_batches = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double throughput_rps = 0.0;  // completed / elapsed
};

/// Frozen per-SLO-class statistics across all sessions.
struct SloClassSummary {
  std::string name;             // interactive | standard | batch
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;       // admission-time watermark rejections
  std::uint64_t completed = 0;  // responses delivered, incl errors+expired
  std::uint64_t errors = 0;
  std::uint64_t expired = 0;
  std::uint64_t downgraded = 0; // served by a fallback tier
  std::uint64_t slo_met = 0;    // ok and within deadline (goodput numerator)
  double goodput_rps = 0.0;     // slo_met / elapsed
  double slack_p50_ms = 0.0;    // spare margin of deadline-met responses
  double slack_p99_ms = 0.0;
  double overrun_p50_ms = 0.0;  // lateness of deadline-missed responses
  double overrun_max_ms = 0.0;
};

/// Frozen whole-server statistics.
struct ServerSummary {
  double elapsed_seconds = 0.0;
  std::size_t workers = 0;         // batcher threads
  std::size_t queue_capacity = 0;
  std::uint64_t max_queue_depth = 0;
  double queue_depth_p50 = 0.0;    // depth observed at each admission
  double queue_depth_p99 = 0.0;
  // Depth sampled inside the queue at micro-batch extraction (what the
  // batcher saw), the second stream next to admission-time sampling.
  double queue_depth_extract_p50 = 0.0;
  double queue_depth_extract_p99 = 0.0;
  std::uint64_t max_in_flight_batches = 0;  // across all sessions
  // Rejections that never resolved to a session (mistyped session name);
  // they have no SessionSummary row to live in.
  std::uint64_t unknown_session_rejected = 0;
  // Fault-tolerance counters (serve/router.hpp). Retries count re-queued
  // riders; failovers are the subset whose retry succeeded on a different
  // replica; hedges split into won (the duplicate's answer was used) and
  // wasted (the loser executed anyway).
  std::uint64_t total_retries = 0;
  std::uint64_t total_failovers = 0;
  std::uint64_t total_hedges = 0;
  std::uint64_t total_hedges_won = 0;
  std::uint64_t total_hedges_wasted = 0;
  std::vector<SessionSummary> sessions;
  /// One row per (session, replica): health at snapshot time, breaker and
  /// canary activity, quarantine time.
  std::vector<ReplicaSummary> replicas;
  /// One row per SLO class, in priority order (interactive first).
  std::vector<SloClassSummary> classes;

  std::uint64_t total_completed() const;
  /// Per-session rejections plus unknown_session_rejected.
  std::uint64_t total_rejected() const;
  std::uint64_t total_shed() const;
  std::uint64_t total_expired() const;
  std::uint64_t total_downgraded() const;
  std::uint64_t total_slo_met() const;
  /// Completed requests per second across all sessions.
  double throughput_rps() const;
  /// SLO-met responses per second across all classes.
  double goodput_rps() const;
};

class ServerMetrics {
 public:
  /// Queue-depth sampling points: right after an accepted admission
  /// (producer view) vs. at micro-batch extraction (consumer view). The
  /// two distributions diverge under bursts — admission samples cluster
  /// at the spike, extraction samples show what the batcher drained.
  enum class DepthStream { kAdmission = 0, kExtract = 1 };

  explicit ServerMetrics(std::size_t num_sessions);

  void on_admission(std::size_t session, Admission verdict, SloClass slo);
  /// A request named a session that does not exist.
  void on_unknown_session();
  std::uint64_t unknown_session_rejections() const;
  /// A pressured request was rerouted from `session` to its fallback tier.
  void on_downgrade(std::size_t session, SloClass slo);
  /// Queue depth observed at one of the two sampling points.
  void on_queue_depth(DepthStream stream, std::size_t depth);
  /// A micro-batch of `batch_size` requests entered the engine; `session`'s
  /// in-flight gauge rises until the matching on_batch_complete.
  void on_batch_dispatch(std::size_t session, std::size_t batch_size);
  void on_batch_complete(std::size_t session);
  /// A response was delivered (completed, failed, or expired).
  void on_response(const Response& response);

  /// A failed rider was re-queued onto the surviving replicas.
  void on_retry();
  /// A retried rider later succeeded on a different replica.
  void on_failover();
  /// A hedged micro-batch resolved; `won` = the duplicate's answer was
  /// used, `wasted` = the losing submission executed anyway.
  void on_hedge(bool won, bool wasted);
  std::uint64_t retries() const;
  std::uint64_t failovers() const;
  std::uint64_t hedges() const;
  std::uint64_t hedges_won() const;
  std::uint64_t hedges_wasted() const;

  std::uint64_t in_flight_batches() const;
  std::uint64_t max_in_flight_batches() const;

  /// Freezes per-session stats. `names[i]` labels session i; `elapsed`
  /// converts completion counts into throughput.
  std::vector<SessionSummary> snapshot(const std::vector<std::string>& names,
                                       double elapsed_seconds) const;
  /// Freezes per-class stats, in priority order.
  std::vector<SloClassSummary> class_snapshot(double elapsed_seconds) const;
  /// Percentile of one queue-depth distribution.
  double queue_depth_percentile(DepthStream stream, double p) const;

  // Histogram copies for the Prometheus mirror (serve/report_io): bucket
  // counts scrape straight into _bucket series without re-deriving edges.
  Histogram session_latency_histogram(std::size_t session) const;
  Histogram session_queue_wait_histogram(std::size_t session) const;
  Histogram queue_depth_histogram(DepthStream stream) const;

 private:
  struct SessionCounters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t expired = 0;
    std::uint64_t downgraded = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    std::uint64_t max_batch_size = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t max_in_flight = 0;
    Histogram latency{1e-6, 1e3, 96, 65536};     // seconds
    Histogram queue_wait{1e-6, 1e3, 96, 65536};  // seconds
    Histogram batch_sizes{0.5, 4096.0, 64, 65536};
  };

  struct ClassCounters {
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::uint64_t expired = 0;
    std::uint64_t downgraded = 0;
    std::uint64_t slo_met = 0;
    // Deadline slack is signed; histograms are positive-domain, so the
    // margin of met responses and the lateness of missed ones live apart.
    Histogram slack{1e-6, 1e3, 96, 65536};    // seconds, deadline met
    Histogram overrun{1e-6, 1e3, 96, 65536};  // seconds, deadline missed
  };

  mutable std::mutex mu_;
  std::vector<SessionCounters> sessions_;
  std::array<ClassCounters, kNumSloClasses> classes_;
  Histogram queue_depths_{0.5, 1 << 20, 64, 65536};          // admission
  Histogram queue_depths_extract_{0.5, 1 << 20, 64, 65536};  // extraction
  std::uint64_t unknown_session_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t hedges_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t hedges_wasted_ = 0;
};

}  // namespace deepcam::serve
