#include "serve/report_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/format.hpp"
#include "serve/server.hpp"

namespace deepcam::serve {

void load_report_json(JsonWriter& json, const LoadReport& load) {
  json.begin_object();
  json.kv("sent", load.sent);
  json.kv("rejected", load.rejected);
  json.kv("shed", load.shed);
  json.kv("errors", load.errors);
  json.kv("expired", load.expired);
  json.kv("slo_met", load.slo_met);
  json.kv("duration_seconds", load.duration_seconds);
  json.kv("offered_rps", load.offered_rps);
  json.kv("achieved_rps", load.achieved_rps);
  json.kv("goodput_rps", load.goodput_rps);
  json.kv("latency_p50_ms", load.percentile_ms(50));
  json.kv("latency_p95_ms", load.percentile_ms(95));
  json.kv("latency_p99_ms", load.percentile_ms(99));
  json.kv("latency_p999_ms", load.percentile_ms(99.9));
  json.kv("latency_max_ms", load.latency.max() * 1e3);
  json.end_object();
}

void server_summary_json(JsonWriter& json, const ServerSummary& s) {
  json.begin_object();
  json.kv("elapsed_seconds", s.elapsed_seconds);
  json.kv("workers", s.workers);
  json.kv("queue_capacity", s.queue_capacity);
  json.kv("max_queue_depth", s.max_queue_depth);
  json.kv("queue_depth_p50", s.queue_depth_p50);
  json.kv("queue_depth_p99", s.queue_depth_p99);
  json.kv("queue_depth_extract_p50", s.queue_depth_extract_p50);
  json.kv("queue_depth_extract_p99", s.queue_depth_extract_p99);
  json.kv("max_in_flight_batches", s.max_in_flight_batches);
  json.kv("unknown_session_rejected", s.unknown_session_rejected);
  json.kv("total_completed", s.total_completed());
  json.kv("total_rejected", s.total_rejected());
  json.kv("total_shed", s.total_shed());
  json.kv("total_expired", s.total_expired());
  json.kv("total_downgraded", s.total_downgraded());
  json.kv("total_slo_met", s.total_slo_met());
  json.kv("total_retries", s.total_retries);
  json.kv("total_failovers", s.total_failovers);
  json.kv("total_hedges", s.total_hedges);
  json.kv("total_hedges_won", s.total_hedges_won);
  json.kv("total_hedges_wasted", s.total_hedges_wasted);
  json.kv("throughput_rps", s.throughput_rps());
  json.kv("goodput_rps", s.goodput_rps());
  json.key("sessions").begin_array();
  for (const auto& sess : s.sessions) {
    json.begin_object();
    json.kv("name", sess.name);
    json.kv("accepted", sess.accepted);
    json.kv("rejected", sess.rejected);
    json.kv("shed", sess.shed);
    json.kv("completed", sess.completed);
    json.kv("errors", sess.errors);
    json.kv("expired", sess.expired);
    json.kv("downgraded", sess.downgraded);
    json.kv("batches", sess.batches);
    json.kv("mean_batch_size", sess.mean_batch_size);
    json.kv("batch_size_p50", sess.batch_size_p50);
    json.kv("max_batch_size", sess.max_batch_size);
    json.kv("max_in_flight_batches", sess.max_in_flight_batches);
    json.kv("latency_p50_ms", sess.latency_p50_ms);
    json.kv("latency_p95_ms", sess.latency_p95_ms);
    json.kv("latency_p99_ms", sess.latency_p99_ms);
    json.kv("latency_mean_ms", sess.latency_mean_ms);
    json.kv("latency_max_ms", sess.latency_max_ms);
    json.kv("queue_wait_p50_ms", sess.queue_wait_p50_ms);
    json.kv("queue_wait_p99_ms", sess.queue_wait_p99_ms);
    json.kv("throughput_rps", sess.throughput_rps);
    json.end_object();
  }
  json.end_array();
  json.key("replicas").begin_array();
  for (const auto& r : s.replicas) {
    json.begin_object();
    json.kv("session", r.session);
    json.kv("replica", r.replica);
    json.kv("health", r.health);
    json.kv("batches", r.batches);
    json.kv("failures", r.failures);
    json.kv("transitions", r.transitions);
    json.kv("canary_probes", r.canary_probes);
    json.kv("quarantine_seconds", r.quarantine_seconds);
    json.kv("error_ewma", r.error_ewma);
    json.kv("latency_ewma_ms", r.latency_ewma_ms);
    json.end_object();
  }
  json.end_array();
  json.key("classes").begin_array();
  for (const auto& c : s.classes) {
    json.begin_object();
    json.kv("name", c.name);
    json.kv("accepted", c.accepted);
    json.kv("shed", c.shed);
    json.kv("completed", c.completed);
    json.kv("errors", c.errors);
    json.kv("expired", c.expired);
    json.kv("downgraded", c.downgraded);
    json.kv("slo_met", c.slo_met);
    json.kv("goodput_rps", c.goodput_rps);
    json.kv("slack_p50_ms", c.slack_p50_ms);
    json.kv("slack_p99_ms", c.slack_p99_ms);
    json.kv("overrun_p50_ms", c.overrun_p50_ms);
    json.kv("overrun_max_ms", c.overrun_max_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string server_summary_to_json(const ServerSummary& summary) {
  JsonWriter json;
  server_summary_json(json, summary);
  return json.str();
}

std::string server_summary_text(const ServerSummary& s) {
  std::ostringstream os;
  char buf[320];
  // Float conversions go through format.hpp (locale-proof); snprintf only
  // assembles integers and pre-formatted strings.
  std::snprintf(buf, sizeof buf,
                "Server: %zu workers, queue %zu (max depth %llu, "
                "p99 %s admit / %s extract), "
                "%llu completed, %llu rejected in %s s (%s req/s, "
                "max %llu batches in flight)\n",
                s.workers, s.queue_capacity,
                static_cast<unsigned long long>(s.max_queue_depth),
                format_fixed(s.queue_depth_p99, 1).c_str(),
                format_fixed(s.queue_depth_extract_p99, 1).c_str(),
                static_cast<unsigned long long>(s.total_completed()),
                static_cast<unsigned long long>(s.total_rejected()),
                format_fixed(s.elapsed_seconds, 3).c_str(),
                format_fixed(s.throughput_rps(), 1).c_str(),
                static_cast<unsigned long long>(s.max_in_flight_batches));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "SLO: %llu met (%s goodput req/s), %llu shed, "
                "%llu expired, %llu downgraded\n",
                static_cast<unsigned long long>(s.total_slo_met()),
                format_fixed(s.goodput_rps(), 1).c_str(),
                static_cast<unsigned long long>(s.total_shed()),
                static_cast<unsigned long long>(s.total_expired()),
                static_cast<unsigned long long>(s.total_downgraded()));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "Faults: %llu retries (%llu failovers), %llu hedges "
                "(%llu won, %llu wasted)\n",
                static_cast<unsigned long long>(s.total_retries),
                static_cast<unsigned long long>(s.total_failovers),
                static_cast<unsigned long long>(s.total_hedges),
                static_cast<unsigned long long>(s.total_hedges_won),
                static_cast<unsigned long long>(s.total_hedges_wasted));
  os << buf;
  for (const auto& sess : s.sessions) {
    std::snprintf(
        buf, sizeof buf,
        "  %-14s %6llu ok %4llu err %4llu rej %4llu exp  batches=%-5llu "
        "(mean %s, max %llu)  p50=%s p95=%s p99=%s ms  %s req/s\n",
        sess.name.c_str(),
        static_cast<unsigned long long>(sess.completed - sess.errors -
                                        sess.expired),
        static_cast<unsigned long long>(sess.errors),
        static_cast<unsigned long long>(sess.rejected),
        static_cast<unsigned long long>(sess.expired),
        static_cast<unsigned long long>(sess.batches),
        format_fixed(sess.mean_batch_size, 2).c_str(),
        static_cast<unsigned long long>(sess.max_batch_size),
        format_fixed(sess.latency_p50_ms, 3).c_str(),
        format_fixed(sess.latency_p95_ms, 3).c_str(),
        format_fixed(sess.latency_p99_ms, 3).c_str(),
        format_fixed(sess.throughput_rps, 1).c_str());
    os << buf;
  }
  // Per-replica health lines only once the replica tier is actually
  // multi-replica — single-replica summaries keep the compact layout.
  if (s.replicas.size() > s.sessions.size()) {
    for (const auto& r : s.replicas) {
      std::snprintf(
          buf, sizeof buf,
          "  replica %-12s#%zu %-11s %6llu ok %4llu fail  "
          "transitions=%llu canaries=%llu quarantine=%s s\n",
          r.session.c_str(), r.replica, r.health.c_str(),
          static_cast<unsigned long long>(r.batches),
          static_cast<unsigned long long>(r.failures),
          static_cast<unsigned long long>(r.transitions),
          static_cast<unsigned long long>(r.canary_probes),
          format_fixed(r.quarantine_seconds, 3).c_str());
      os << buf;
    }
  }
  for (const auto& c : s.classes) {
    std::snprintf(
        buf, sizeof buf,
        "  class %-11s %6llu acc %4llu shed %4llu exp %4llu down  "
        "met=%-6llu (%s req/s)  slack p50=%s p99=%s ms\n",
        c.name.c_str(), static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.shed),
        static_cast<unsigned long long>(c.expired),
        static_cast<unsigned long long>(c.downgraded),
        static_cast<unsigned long long>(c.slo_met),
        format_fixed(c.goodput_rps, 1).c_str(),
        format_fixed(c.slack_p50_ms, 3).c_str(),
        format_fixed(c.slack_p99_ms, 3).c_str());
    os << buf;
  }
  return os.str();
}

void register_prometheus_collector(obs::MetricsRegistry& registry,
                                   const Server& server) {
  registry.add_collector([&server](obs::MetricsRegistry& reg) {
    const ServerSummary s = server.summary();
    const ServerMetrics& m = server.metrics();

    reg.set_gauge("deepcam_server_elapsed_seconds",
                  "Wall/virtual seconds since start()", {},
                  s.elapsed_seconds);
    reg.set_gauge("deepcam_server_workers", "Batcher/dispatch threads", {},
                  static_cast<double>(s.workers));
    reg.set_gauge("deepcam_queue_capacity", "Admission-control bound", {},
                  static_cast<double>(s.queue_capacity));
    reg.set_gauge("deepcam_queue_depth", "Current request-queue depth", {},
                  static_cast<double>(server.queue_depth()));
    reg.set_gauge("deepcam_queue_depth_max", "Peak request-queue depth", {},
                  static_cast<double>(s.max_queue_depth));
    reg.set_gauge("deepcam_batches_in_flight_max",
                  "Peak concurrently in-flight micro-batches", {},
                  static_cast<double>(s.max_in_flight_batches));
    reg.set_counter("deepcam_requests_rejected_unknown_session_total",
                    "Rejections that resolved to no session", {},
                    static_cast<double>(s.unknown_session_rejected));
    reg.set_counter("deepcam_retries_total", "Re-queued failed riders", {},
                    static_cast<double>(s.total_retries));
    reg.set_counter("deepcam_failovers_total",
                    "Retries that succeeded on another replica", {},
                    static_cast<double>(s.total_failovers));
    reg.set_counter("deepcam_hedges_total", "Hedged micro-batches", {},
                    static_cast<double>(s.total_hedges));
    reg.set_counter("deepcam_hedges_won_total",
                    "Hedges whose duplicate answer was used", {},
                    static_cast<double>(s.total_hedges_won));
    reg.set_counter("deepcam_hedges_wasted_total",
                    "Hedges whose loser executed anyway", {},
                    static_cast<double>(s.total_hedges_wasted));

    // The two queue-depth sampling streams, labeled by sampling point.
    reg.set_histogram("deepcam_queue_depth_samples",
                      "Queue depth by sampling point",
                      {{"stream", "admission"}},
                      m.queue_depth_histogram(
                          ServerMetrics::DepthStream::kAdmission));
    reg.set_histogram("deepcam_queue_depth_samples",
                      "Queue depth by sampling point",
                      {{"stream", "extract"}},
                      m.queue_depth_histogram(
                          ServerMetrics::DepthStream::kExtract));

    for (std::size_t i = 0; i < s.sessions.size(); ++i) {
      const SessionSummary& sess = s.sessions[i];
      const obs::MetricLabels labels{{"session", sess.name}};
      auto counter = [&](const char* name, const char* help,
                         std::uint64_t v) {
        reg.set_counter(name, help, labels, static_cast<double>(v));
      };
      counter("deepcam_requests_accepted_total", "Admitted requests",
              sess.accepted);
      counter("deepcam_requests_rejected_total",
              "Admission rejections (backpressure + closed + shed)",
              sess.rejected);
      counter("deepcam_requests_shed_total",
              "Watermark sheds (subset of rejected)", sess.shed);
      counter("deepcam_requests_completed_total",
              "Responses delivered (incl errors + expired)", sess.completed);
      counter("deepcam_requests_errors_total", "Engine failures",
              sess.errors);
      counter("deepcam_requests_expired_total",
              "Answered without running (deadline lapsed)", sess.expired);
      counter("deepcam_requests_downgraded_total",
              "Rerouted to a fallback tier", sess.downgraded);
      counter("deepcam_batches_dispatched_total",
              "Micro-batches dispatched", sess.batches);
      reg.set_histogram("deepcam_request_latency_seconds",
                        "End-to-end request latency", labels,
                        m.session_latency_histogram(i));
      reg.set_histogram("deepcam_request_queue_wait_seconds",
                        "Admission-to-dispatch queue wait", labels,
                        m.session_queue_wait_histogram(i));
    }

    for (const SloClassSummary& c : s.classes) {
      const obs::MetricLabels labels{{"slo_class", c.name}};
      reg.set_counter("deepcam_slo_met_total",
                      "Responses completed within their deadline", labels,
                      static_cast<double>(c.slo_met));
      reg.set_gauge("deepcam_goodput_rps",
                    "SLO-met responses per second", labels, c.goodput_rps);
    }

    for (const ReplicaSummary& r : s.replicas) {
      const obs::MetricLabels labels{
          {"session", r.session},
          {"replica", std::to_string(r.replica)},
          {"health", r.health}};
      reg.set_gauge("deepcam_replica_up",
                    "1 when the replica is healthy (label carries the "
                    "exact health state)",
                    labels, r.health == "healthy" ? 1.0 : 0.0);
      reg.set_counter("deepcam_replica_batches_total",
                      "Micro-batches served by this replica", labels,
                      static_cast<double>(r.batches));
      reg.set_counter("deepcam_replica_failures_total",
                      "Failed micro-batches on this replica", labels,
                      static_cast<double>(r.failures));
    }
  });
}

}  // namespace deepcam::serve
