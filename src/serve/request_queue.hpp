// Bounded MPMC request queue with SLO-aware admission control.
//
// Producers are client threads (Server::submit / LoadGenerator); consumers
// are the server's batcher workers pulling micro-batches. The queue is the
// admission-control point: try_push() rejects instead of blocking when the
// queue is at capacity (open-loop backpressure) and *sheds* lower-priority
// classes earlier — per-class depth watermarks plus an optional
// estimated-queue-wait bound (depth / est_service_rps vs the class's wait
// budget) — push() blocks for space (closed-loop clients), and close()
// flushes: pending requests still drain through pop_micro_batch(), which
// returns empty only when closed AND drained.
//
// Micro-batch formation lives here (under the queue's one mutex) because it
// must be atomic with head selection: a batcher picks the most urgent
// pending request (priority class, then admission order), then collects
// same-session requests — possibly waiting for late arrivals — without
// another batcher stealing its head. Requests whose deadline already
// passed at extraction are diverted to the caller's expired sink instead
// of wasting a batch slot (deadline-aware batching). DynamicBatcher
// (serve/batcher.hpp) owns the policy; the queue owns the mechanism.
//
// All time reads and timed waits go through the injected ClockSource so a
// VirtualClock makes every shed/expire decision a deterministic function
// of a crafted arrival timeline (serve/clock.hpp).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/clock.hpp"
#include "serve/request.hpp"

namespace deepcam::serve {

/// Micro-batching policy: dispatch when `max_batch_size` same-session
/// requests are pending, or when the oldest of them has waited
/// `max_queue_delay`, whichever happens first. The coalescing wait is
/// additionally capped by the earliest deadline among collected requests,
/// so waiting for company never expires a rider.
struct BatchPolicy {
  std::size_t max_batch_size = 8;
  std::chrono::microseconds max_queue_delay{2000};
};

/// Per-class load-shedding watermarks. A class-c request is shed
/// (kRejectedShed) when the queue depth has crossed
/// shed_depth_fraction[c] * capacity, or — when est_service_rps is set —
/// when the estimated queue wait depth/est_service_rps exceeds
/// max_wait[c]. Defaults shed nothing before the hard capacity bound.
struct AdmissionPolicy {
  std::array<double, kNumSloClasses> shed_depth_fraction{1.0, 1.0, 1.0};
  /// Server-wide service-rate estimate (requests/s) used to turn depth
  /// into an expected queue wait; 0 disables wait-based shedding.
  double est_service_rps = 0.0;
  /// Per-class queue-wait budget; zero duration = no bound.
  std::array<Clock::duration, kNumSloClasses> max_wait{};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity, AdmissionPolicy admission = {},
                        ClockSource* clock = nullptr);

  /// Non-blocking admission: stamps `r.enqueued`/`r.seq` and accepts, or
  /// rejects when at capacity (kRejectedFull) / shed watermark crossed
  /// (kRejectedShed) / closed (kRejectedClosed). `r` is untouched on
  /// rejection.
  Admission try_push(Request&& r);

  /// Blocking admission: waits for space (watermarks don't apply — the
  /// closed-loop caller self-limits). Returns false (request dropped)
  /// only when the queue is closed while waiting.
  bool push(Request&& r);

  /// Re-queues a request the retry path pulled out of a failed micro-batch.
  /// The request was already admitted once, so capacity and shed
  /// watermarks do not apply (rejecting it here would double-count it) and
  /// its original `enqueued`/`seq` stamps are kept — latency accounting
  /// spans all attempts and head selection keeps admission order. Returns
  /// false only when the queue is closed; the caller MUST then answer the
  /// request with a terminal error itself (it is no longer anywhere a
  /// batcher could find it).
  bool push_retry(Request&& r);

  /// Waits until at least one request is pending, then collects up to
  /// `policy.max_batch_size` requests of the head request's session — the
  /// head being the highest-priority class's earliest admission — waiting
  /// for late same-session arrivals until the head has been queued for
  /// `policy.max_queue_delay` (capped by the earliest collected deadline).
  /// Requests of other sessions keep their relative order.
  ///
  /// With a non-null `expired` sink, collected requests whose deadline
  /// already passed are moved there instead of into the batch (the caller
  /// must answer them); with a null sink expiry is disabled and they ride
  /// in the batch. Returns an empty vector only when the queue is closed
  /// and fully drained (the sink may still receive requests then).
  std::vector<Request> pop_micro_batch(const BatchPolicy& policy,
                                       std::vector<Request>* expired = nullptr);

  /// Non-blocking variant for manual-dispatch pumping: forms a batch only
  /// when one is *due* right now — the queue is closed, a same-session
  /// rider of the head has already expired, enough riders are pending to
  /// fill the batch, or the head has aged past `max_queue_delay` — and
  /// returns empty otherwise (no coalescing wait, never blocks).
  std::vector<Request> try_pop_micro_batch(
      const BatchPolicy& policy, std::vector<Request>* expired = nullptr);

  /// Observer invoked (under the queue mutex) with the pre-extraction
  /// depth each time a batcher starts extracting a micro-batch — the
  /// second depth stream next to admission-time sampling. Set before
  /// consumers run; not synchronized against in-flight pops.
  void set_depth_observer(std::function<void(std::size_t)> observer);

  /// Rejects future pushes and wakes every waiter; pending requests still
  /// drain through pop_micro_batch.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  const AdmissionPolicy& admission() const { return admission_; }
  /// Highest depth() ever observed after a push.
  std::size_t max_depth() const;
  /// Depth has crossed `fraction` * capacity — the pressure signal the
  /// server's downgrade dial reads before admission.
  bool pressured(double fraction) const;

 private:
  /// Shed verdict for class `c` at depth `depth` (mu_ held).
  bool should_shed(SloClass c, std::size_t depth) const;

  const std::size_t capacity_;
  const AdmissionPolicy admission_;
  ClockSource* clock_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // producers wait for capacity
  std::condition_variable data_cv_;   // batchers wait for requests
  std::deque<Request> q_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
  std::function<void(std::size_t)> depth_observer_;
};

}  // namespace deepcam::serve
