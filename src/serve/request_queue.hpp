// Bounded MPMC request queue with admission control and backpressure.
//
// Producers are client threads (Server::submit / LoadGenerator); consumers
// are the server's batcher workers pulling micro-batches. The queue is the
// admission-control point: try_push() rejects instead of blocking when the
// queue is at capacity (open-loop backpressure), push() blocks for space
// (closed-loop clients), and close() flushes — pending requests still drain
// through pop_micro_batch(), which returns empty only when closed AND
// drained.
//
// Micro-batch formation lives here (under the queue's one mutex) because it
// must be atomic with head selection: a batcher picks the oldest request,
// then collects same-session requests — possibly waiting for late arrivals
// — without another batcher stealing its head. DynamicBatcher
// (serve/batcher.hpp) owns the policy; the queue owns the mechanism.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace deepcam::serve {

/// Micro-batching policy: dispatch when `max_batch_size` same-session
/// requests are pending, or when the oldest of them has waited
/// `max_queue_delay`, whichever happens first.
struct BatchPolicy {
  std::size_t max_batch_size = 8;
  std::chrono::microseconds max_queue_delay{2000};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission: stamps `r.enqueued` and accepts, or rejects
  /// when at capacity (kRejectedFull) / closed (kRejectedClosed). `r` is
  /// untouched on rejection.
  Admission try_push(Request&& r);

  /// Blocking admission: waits for space. Returns false (request dropped)
  /// only when the queue is closed while waiting.
  bool push(Request&& r);

  /// Waits until at least one request is pending, then collects up to
  /// `policy.max_batch_size` requests of the oldest request's session —
  /// waiting for late same-session arrivals until the oldest collected
  /// request has been queued for `policy.max_queue_delay`. Requests of
  /// other sessions keep their relative order. Returns an empty vector
  /// only when the queue is closed and fully drained.
  std::vector<Request> pop_micro_batch(const BatchPolicy& policy);

  /// Rejects future pushes and wakes every waiter; pending requests still
  /// drain through pop_micro_batch.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  /// Highest depth() ever observed after a push.
  std::size_t max_depth() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // producers wait for capacity
  std::condition_variable data_cv_;   // batchers wait for requests
  std::deque<Request> q_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace deepcam::serve
