// DynamicBatcher: micro-batch formation policy over a RequestQueue.
//
// Coalesces pending single-sample requests of one session into a
// micro-batch, dispatching when either the batch is full
// (policy.max_batch_size) or the oldest pending request has waited
// policy.max_queue_delay — the classic throughput/latency knob of online
// serving: larger batches amortize per-dispatch overhead and fill the
// engine's worker pool; the delay bound caps the queueing latency a lone
// request can accrue waiting for company.
//
// The batcher is deadline-aware: requests whose deadline already passed at
// formation time come back in MicroBatch::expired instead of the runnable
// batch — running them would spend engine time producing answers nobody
// can use, the head-of-line waste that collapses FIFO goodput under
// overload. The dispatch loop answers them with expiry responses.
//
// The extraction itself runs inside RequestQueue::pop_micro_batch (it must
// be atomic with head selection — see request_queue.hpp); DynamicBatcher
// owns the policy and gives each server worker its dispatch loop. Several
// DynamicBatchers can drain one queue concurrently: that is what lets
// micro-batches of different (or the same) session be in flight at once.
#pragma once

#include "serve/request_queue.hpp"

namespace deepcam::serve {

/// One formation round: `run` is the single-session batch to execute
/// (possibly empty when everything due had expired); `expired` are the
/// requests whose deadline passed while queued — answer, don't run.
struct MicroBatch {
  std::vector<Request> run;
  std::vector<Request> expired;

  bool empty() const { return run.empty() && expired.empty(); }
};

class DynamicBatcher {
 public:
  /// `queue` must outlive the batcher. With expire_doomed=false the
  /// batcher never expires (the FIFO baseline bench/serve_throughput
  /// compares against): deadline-carrying requests always run.
  DynamicBatcher(RequestQueue& queue, BatchPolicy policy,
                 bool expire_doomed = true)
      : queue_(&queue), policy_(policy), expire_doomed_(expire_doomed) {
    DEEPCAM_CHECK_MSG(policy.max_batch_size >= 1,
                      "batch policy needs max_batch_size >= 1");
  }

  const BatchPolicy& policy() const { return policy_; }

  /// Blocks for the next micro-batch (all runnable requests share one
  /// session). An empty() result means the queue is closed and drained —
  /// the dispatch loop should exit.
  MicroBatch next() {
    MicroBatch mb;
    mb.run = queue_->pop_micro_batch(policy_,
                                     expire_doomed_ ? &mb.expired : nullptr);
    return mb;
  }

  /// Non-blocking variant for Server::pump(): forms a batch only when one
  /// is due at the current (virtual) time; empty() otherwise. Never waits,
  /// so a single thread can interleave arrivals, clock steps and dispatch.
  MicroBatch try_next() {
    MicroBatch mb;
    mb.run = queue_->try_pop_micro_batch(
        policy_, expire_doomed_ ? &mb.expired : nullptr);
    return mb;
  }

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
  bool expire_doomed_;
};

}  // namespace deepcam::serve
