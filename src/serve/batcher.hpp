// DynamicBatcher: micro-batch formation policy over a RequestQueue.
//
// Coalesces pending single-sample requests of one session into a
// micro-batch, dispatching when either the batch is full
// (policy.max_batch_size) or the oldest pending request has waited
// policy.max_queue_delay — the classic throughput/latency knob of online
// serving: larger batches amortize per-dispatch overhead and fill the
// engine's worker pool; the delay bound caps the queueing latency a lone
// request can accrue waiting for company.
//
// The extraction itself runs inside RequestQueue::pop_micro_batch (it must
// be atomic with head selection — see request_queue.hpp); DynamicBatcher
// owns the policy and gives each server worker its dispatch loop. Several
// DynamicBatchers can drain one queue concurrently: that is what lets
// micro-batches of different (or the same) session be in flight at once.
#pragma once

#include "serve/request_queue.hpp"

namespace deepcam::serve {

class DynamicBatcher {
 public:
  /// `queue` must outlive the batcher.
  DynamicBatcher(RequestQueue& queue, BatchPolicy policy)
      : queue_(&queue), policy_(policy) {
    DEEPCAM_CHECK_MSG(policy.max_batch_size >= 1,
                      "batch policy needs max_batch_size >= 1");
  }

  const BatchPolicy& policy() const { return policy_; }

  /// Blocks for the next micro-batch (all requests share one session).
  /// Empty result means the queue is closed and drained — the dispatch
  /// loop should exit.
  std::vector<Request> next() { return queue_->pop_micro_batch(policy_); }

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
};

}  // namespace deepcam::serve
