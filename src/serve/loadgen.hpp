// Trace-driven load generator for the serving subsystem.
//
// Reproducible load experiments need the *workload* separated from the
// *replay*: make_trace() expands a seeded TraceConfig into an explicit
// arrival trace (timestamps, session picks, SLO classes, per-request input
// seeds — a pure function of the config), and LoadGenerator::replay()
// drives a running Server with it:
//
//  * open-loop  — requests fire at the trace's arrival times regardless of
//    completions (offered load is held; overload shows up as queue growth,
//    backpressure rejections, sheds, expiries and p99 inflation), with
//    Poisson, on/off-bursty, diurnal (sinusoidal rate) or flash-crowd
//    (baseline + one spike window) arrivals;
//  * closed-loop — K concurrent clients each keep exactly one request
//    outstanding (classic saturation measurement; arrival times ignored).
//
// Per-request inputs are synthesized deterministically from the trace's
// input_seed, so a trace replayed against any server configuration (worker
// count, batch policy) yields bitwise-identical per-request logits — the
// serving determinism contract tested in tests/test_serve.cpp. Replay
// pacing reads the injected ClockSource: with a VirtualClock, sleep_until
// advances virtual time instead of parking the thread, so overload
// scenarios replay at full host speed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "nn/tensor.hpp"
#include "serve/server.hpp"

namespace deepcam::serve {

struct TraceEvent {
  double t_seconds = 0.0;       // arrival offset from trace start
  std::size_t session = 0;      // index into Trace::sessions
  SloClass slo = SloClass::kStandard;
  std::uint64_t input_seed = 0; // seeds the synthetic input tensor
};

struct Trace {
  std::vector<std::string> sessions;  // session names, uniformly sampled
  std::vector<TraceEvent> events;     // sorted by t_seconds

  /// Arrival time of the last event (0 for empty traces).
  double duration_seconds() const {
    return events.empty() ? 0.0 : events.back().t_seconds;
  }
};

enum class ArrivalProcess {
  kPoisson,  // stationary Poisson at rate_rps
  kBursty,   // on/off-modulated Poisson: burst_rate_rps for the first
             // burst_fraction of every period_seconds, rate_rps after
  kDiurnal,  // sinusoidal rate: rate_rps * (1 + diurnal_amplitude *
             // sin(2*pi*t / period_seconds)) — a day compressed to one
             // period
  kFlash,    // flash crowd: rate_rps baseline, flash_rate_rps inside the
             // [flash_start, flash_start + flash_duration) window
};

struct TraceConfig {
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double rate_rps = 200.0;
  double burst_rate_rps = 2000.0;
  double burst_fraction = 0.25;
  double period_seconds = 0.2;
  double diurnal_amplitude = 0.8;     // in [0, 1): rate never reaches 0
  double flash_rate_rps = 2000.0;     // spike height
  double flash_start_seconds = 0.05;  // spike window start
  double flash_duration_seconds = 0.1;
  std::size_t requests = 128;
  std::vector<std::string> sessions;  // at least one name
  /// Relative SLO-class sampling weights {interactive, standard, batch};
  /// all-standard by default so legacy traces are unchanged in behavior.
  std::array<double, kNumSloClasses> class_weights{0.0, 1.0, 0.0};
  std::uint64_t seed = 1;
};

/// Expands `cfg` into an explicit trace. Deterministic in `cfg`.
Trace make_trace(const TraceConfig& cfg);

/// Outcome of one trace event after a replay.
struct RequestRecord {
  std::size_t event = 0;  // index into Trace::events
  std::size_t session = 0;
  SloClass slo = SloClass::kStandard;
  Admission admission = Admission::kAccepted;
  bool completed = false;
  Response response;  // valid iff completed
};

struct LoadReport {
  std::size_t sent = 0;      // admitted requests
  std::size_t rejected = 0;  // admission-control rejections (all kinds)
  std::size_t shed = 0;      // subset of rejected: watermark sheds
  std::size_t errors = 0;    // admitted but failed (engine errors)
  std::size_t expired = 0;   // admitted but expired (deadline lapsed)
  std::size_t slo_met = 0;   // admitted, completed within deadline
  double duration_seconds = 0.0;  // first submit -> last response
  double offered_rps = 0.0;       // trace arrival rate (after time_scale)
  double achieved_rps = 0.0;      // completions / duration
  double goodput_rps = 0.0;       // SLO-met completions / duration
  Histogram latency{1e-6, 1e3, 96, 65536};  // end-to-end seconds
  std::vector<RequestRecord> records;       // one per trace event, in order

  double percentile_ms(double p) const { return latency.percentile(p) * 1e3; }
};

struct ReplayOptions {
  enum class Mode { kOpenLoop, kClosedLoop };
  Mode mode = Mode::kOpenLoop;
  std::size_t closed_loop_clients = 4;
  /// Open-loop speedup: arrival times are divided by this (2 = replay the
  /// trace twice as fast).
  double time_scale = 1.0;
  /// Pacing clock; nullptr = the real steady clock. With a VirtualClock,
  /// open-loop pacing advances virtual time instead of sleeping, and the
  /// completion wait keeps nudging time forward so partially-filled
  /// batches (and queued deadlines) still flush deterministically.
  ClockSource* clock = nullptr;
};

class LoadGenerator {
 public:
  /// `server` must be start()ed and outlive the generator;
  /// `input_shapes[i]` is the input geometry for Trace::sessions[i].
  LoadGenerator(Server& server, std::vector<nn::Shape> input_shapes);

  /// Deterministic synthetic sample: i.i.d. standard-normal pixels from
  /// `seed` (the per-event input the determinism contract is built on).
  static nn::Tensor make_input(const nn::Shape& shape, std::uint64_t seed);

  /// Drives the server with `trace`; blocks until every admitted request
  /// completed. Thread-safe against concurrent server traffic from other
  /// sources (their stats simply don't appear in the returned report).
  LoadReport replay(const Trace& trace, const ReplayOptions& opts = {});

  /// Fully deterministic single-threaded replay: requires a server built
  /// with ServerConfig::manual_dispatch on `clock` (the same VirtualClock).
  /// Arrivals, chaos events, batching, dispatch and completions all happen
  /// on the calling thread — virtual time advances in `step` increments
  /// with the server pumped to quiescence between steps, so two replays of
  /// the same trace produce identical responses, metrics AND byte-identical
  /// trace-span streams (the golden-pinnable profile the obs layer exports).
  LoadReport replay_deterministic(
      const Trace& trace, VirtualClock& clock,
      Clock::duration step = std::chrono::microseconds(250),
      double time_scale = 1.0);

 private:
  Server* server_;
  std::vector<nn::Shape> input_shapes_;
};

}  // namespace deepcam::serve
