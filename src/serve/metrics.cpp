#include "serve/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace deepcam::serve {

std::uint64_t ServerSummary::total_completed() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.completed;
  return n;
}

std::uint64_t ServerSummary::total_rejected() const {
  std::uint64_t n = unknown_session_rejected;
  for (const auto& s : sessions) n += s.rejected;
  return n;
}

std::uint64_t ServerSummary::total_shed() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.shed;
  return n;
}

std::uint64_t ServerSummary::total_expired() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.expired;
  return n;
}

std::uint64_t ServerSummary::total_downgraded() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.downgraded;
  return n;
}

std::uint64_t ServerSummary::total_slo_met() const {
  std::uint64_t n = 0;
  for (const auto& c : classes) n += c.slo_met;
  return n;
}

double ServerSummary::throughput_rps() const {
  return elapsed_seconds > 0.0
             ? static_cast<double>(total_completed()) / elapsed_seconds
             : 0.0;
}

double ServerSummary::goodput_rps() const {
  return elapsed_seconds > 0.0
             ? static_cast<double>(total_slo_met()) / elapsed_seconds
             : 0.0;
}

ServerMetrics::ServerMetrics(std::size_t num_sessions)
    : sessions_(num_sessions) {}

void ServerMetrics::on_admission(std::size_t session, Admission verdict,
                                 SloClass slo) {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  ClassCounters& c = classes_[static_cast<std::size_t>(slo)];
  if (verdict == Admission::kAccepted) {
    ++sessions_[session].accepted;
    ++c.accepted;
  } else {
    ++sessions_[session].rejected;
    if (verdict == Admission::kRejectedShed) {
      ++sessions_[session].shed;
      ++c.shed;
    }
  }
}

void ServerMetrics::on_unknown_session() {
  std::lock_guard<std::mutex> lk(mu_);
  ++unknown_session_;
}

std::uint64_t ServerMetrics::unknown_session_rejections() const {
  std::lock_guard<std::mutex> lk(mu_);
  return unknown_session_;
}

void ServerMetrics::on_downgrade(std::size_t session, SloClass slo) {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  ++sessions_[session].downgraded;
  ++classes_[static_cast<std::size_t>(slo)].downgraded;
}

void ServerMetrics::on_queue_depth(DepthStream stream, std::size_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  (stream == DepthStream::kAdmission ? queue_depths_
                                     : queue_depths_extract_)
      .add(static_cast<double>(depth));
}

double ServerMetrics::queue_depth_percentile(DepthStream stream,
                                             double p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return (stream == DepthStream::kAdmission ? queue_depths_
                                            : queue_depths_extract_)
      .percentile(p);
}

Histogram ServerMetrics::session_latency_histogram(
    std::size_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  return sessions_[session].latency;
}

Histogram ServerMetrics::session_queue_wait_histogram(
    std::size_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  return sessions_[session].queue_wait;
}

Histogram ServerMetrics::queue_depth_histogram(DepthStream stream) const {
  std::lock_guard<std::mutex> lk(mu_);
  return stream == DepthStream::kAdmission ? queue_depths_
                                           : queue_depths_extract_;
}

void ServerMetrics::on_batch_dispatch(std::size_t session,
                                      std::size_t batch_size) {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  SessionCounters& s = sessions_[session];
  ++s.batches;
  s.batched_requests += batch_size;
  s.batch_sizes.add(static_cast<double>(batch_size));
  s.max_batch_size = std::max<std::uint64_t>(s.max_batch_size, batch_size);
  ++s.in_flight;
  s.max_in_flight = std::max(s.max_in_flight, s.in_flight);
  ++in_flight_;
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
}

void ServerMetrics::on_batch_complete(std::size_t session) {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(session < sessions_.size());
  DEEPCAM_CHECK(sessions_[session].in_flight > 0 && in_flight_ > 0);
  --sessions_[session].in_flight;
  --in_flight_;
}

void ServerMetrics::on_response(const Response& response) {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK(response.session < sessions_.size());
  SessionCounters& s = sessions_[response.session];
  ClassCounters& c = classes_[static_cast<std::size_t>(response.slo)];
  ++s.completed;
  ++c.completed;
  if (response.expired) {
    ++s.expired;
    ++c.expired;
  } else if (!response.ok()) {
    ++s.errors;
    ++c.errors;
  }
  if (response.slo_met()) ++c.slo_met;
  if (response.had_deadline && !response.expired && response.ok()) {
    if (response.slack_seconds >= 0.0)
      c.slack.add(std::max(response.slack_seconds, 1e-9));
    else
      c.overrun.add(std::max(-response.slack_seconds, 1e-9));
  }
  s.latency.add(response.total_seconds);
  s.queue_wait.add(response.queue_seconds);
}

void ServerMetrics::on_retry() {
  std::lock_guard<std::mutex> lk(mu_);
  ++retries_;
}

void ServerMetrics::on_failover() {
  std::lock_guard<std::mutex> lk(mu_);
  ++failovers_;
}

void ServerMetrics::on_hedge(bool won, bool wasted) {
  std::lock_guard<std::mutex> lk(mu_);
  ++hedges_;
  if (won) ++hedges_won_;
  if (wasted) ++hedges_wasted_;
}

std::uint64_t ServerMetrics::retries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retries_;
}

std::uint64_t ServerMetrics::failovers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failovers_;
}

std::uint64_t ServerMetrics::hedges() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hedges_;
}

std::uint64_t ServerMetrics::hedges_won() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hedges_won_;
}

std::uint64_t ServerMetrics::hedges_wasted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hedges_wasted_;
}

std::uint64_t ServerMetrics::in_flight_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

std::uint64_t ServerMetrics::max_in_flight_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_in_flight_;
}

std::vector<SessionSummary> ServerMetrics::snapshot(
    const std::vector<std::string>& names, double elapsed_seconds) const {
  std::lock_guard<std::mutex> lk(mu_);
  DEEPCAM_CHECK_MSG(names.size() == sessions_.size(),
                    "one name per session required");
  std::vector<SessionSummary> out(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const SessionCounters& c = sessions_[i];
    SessionSummary& s = out[i];
    s.name = names[i];
    s.accepted = c.accepted;
    s.rejected = c.rejected;
    s.shed = c.shed;
    s.completed = c.completed;
    s.errors = c.errors;
    s.expired = c.expired;
    s.downgraded = c.downgraded;
    s.batches = c.batches;
    s.mean_batch_size =
        c.batches > 0 ? static_cast<double>(c.batched_requests) /
                            static_cast<double>(c.batches)
                      : 0.0;
    s.batch_size_p50 = c.batch_sizes.percentile(50.0);
    s.max_batch_size = c.max_batch_size;
    s.max_in_flight_batches = c.max_in_flight;
    s.latency_p50_ms = c.latency.percentile(50.0) * 1e3;
    s.latency_p95_ms = c.latency.percentile(95.0) * 1e3;
    s.latency_p99_ms = c.latency.percentile(99.0) * 1e3;
    s.latency_mean_ms = c.latency.mean() * 1e3;
    s.latency_max_ms = c.latency.max() * 1e3;
    s.queue_wait_p50_ms = c.queue_wait.percentile(50.0) * 1e3;
    s.queue_wait_p99_ms = c.queue_wait.percentile(99.0) * 1e3;
    s.throughput_rps =
        elapsed_seconds > 0.0
            ? static_cast<double>(c.completed) / elapsed_seconds
            : 0.0;
  }
  return out;
}

std::vector<SloClassSummary> ServerMetrics::class_snapshot(
    double elapsed_seconds) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SloClassSummary> out(kNumSloClasses);
  for (std::size_t i = 0; i < kNumSloClasses; ++i) {
    const ClassCounters& c = classes_[i];
    SloClassSummary& s = out[i];
    s.name = to_string(static_cast<SloClass>(i));
    s.accepted = c.accepted;
    s.shed = c.shed;
    s.completed = c.completed;
    s.errors = c.errors;
    s.expired = c.expired;
    s.downgraded = c.downgraded;
    s.slo_met = c.slo_met;
    s.goodput_rps = elapsed_seconds > 0.0
                        ? static_cast<double>(c.slo_met) / elapsed_seconds
                        : 0.0;
    s.slack_p50_ms = c.slack.percentile(50.0) * 1e3;
    s.slack_p99_ms = c.slack.percentile(99.0) * 1e3;
    s.overrun_p50_ms = c.overrun.percentile(50.0) * 1e3;
    s.overrun_max_ms = c.overrun.max() * 1e3;
  }
  return out;
}

}  // namespace deepcam::serve
