// Deterministic chaos harness: scripted faults on the replica tier.
//
// A ChaosScript is a time-sorted list of FaultEvents, each an offset from
// the moment the server starts. The FaultInjector is armed at start() and
// polled by the serving workers: every due event is applied exactly once
// to the replica sets (crash/heal/slow/poison via the Replica chaos hooks)
// or handed to the polling worker itself (a worker stall is a sleep the
// worker serves through the ClockSource). Because event times are offsets
// on the injected clock and scripts are either hand-written or generated
// by the seeded make_chaos_script(), a chaos run on a VirtualClock replays
// bit-identically: same script + same trace => same outcome, byte for
// byte.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/clock.hpp"

namespace deepcam::serve {

class SessionManager;

enum class FaultKind : std::size_t {
  kReplicaCrash = 0,  // every submit on the replica fails until healed
  kReplicaHeal = 1,   // clears crash, slow, and poison faults
  kWorkerStall = 2,   // the polling worker sleeps `param` seconds
  kPoisonBatch = 3,   // the replica's next `param` batches fail
  kSlowReplica = 4,   // completion observation delayed `param` seconds
};

const char* to_string(FaultKind k);
/// Parses the spec-file spelling ("crash", "heal", "stall", "poison",
/// "slow"). Returns false on an unknown kind.
bool fault_kind_from_string(const std::string& s, FaultKind* out);

struct FaultEvent {
  double at_seconds = 0.0;  // offset from FaultInjector::arm()
  FaultKind kind = FaultKind::kReplicaCrash;
  std::size_t replica = 0;  // ignored for kWorkerStall
  double param = 0.0;       // seconds (stall/slow) or batch count (poison)
};

/// Time-sorted fault schedule.
using ChaosScript = std::vector<FaultEvent>;

/// Knobs of the seeded script generator (property tests, bench).
struct ChaosScriptConfig {
  std::uint64_t seed = 1;
  double duration_seconds = 1.0;  // window the events land in
  std::size_t replicas = 1;
  std::size_t crashes = 0;  // crash + paired heal at ~25% of the window later
  std::size_t stalls = 0;
  std::size_t poisons = 0;
  std::size_t slows = 0;
};

/// Deterministic script from a seed: same config => same script.
ChaosScript make_chaos_script(const ChaosScriptConfig& cfg);

/// Applies a ChaosScript to the live server. Thread-safe; every event
/// fires exactly once no matter how many workers poll.
class FaultInjector {
 public:
  explicit FaultInjector(ChaosScript script);

  /// Starts the clock on the script; events are offsets from `t0`.
  void arm(Clock::time_point t0);
  bool armed() const;

  /// Fires every event due at `now` into the sessions' replica sets;
  /// worker stalls are queued for take_stall(). No-op before arm().
  void poll(Clock::time_point now, SessionManager& sessions);

  /// Consumes one pending worker stall: the caller should sleep the
  /// returned duration through its ClockSource. Zero when none pending.
  Clock::duration take_stall();

  std::size_t applied() const;
  std::size_t total() const { return script_.size(); }

 private:
  ChaosScript script_;  // sorted by at_seconds on construction

  mutable std::mutex mu_;
  bool armed_ = false;
  Clock::time_point t0_{};
  std::size_t next_ = 0;     // first unapplied event
  std::size_t applied_ = 0;  // events fired so far
  std::vector<Clock::duration> pending_stalls_;
};

}  // namespace deepcam::serve
