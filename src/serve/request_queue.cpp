#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace deepcam::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  DEEPCAM_CHECK_MSG(capacity >= 1, "request queue needs capacity >= 1");
}

Admission RequestQueue::try_push(Request&& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Admission::kRejectedClosed;
    if (q_.size() >= capacity_) return Admission::kRejectedFull;
    r.enqueued = Clock::now();
    q_.push_back(std::move(r));
    max_depth_ = std::max(max_depth_, q_.size());
  }
  data_cv_.notify_all();
  return Admission::kAccepted;
}

bool RequestQueue::push(Request&& r) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    space_cv_.wait(lk, [this] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    r.enqueued = Clock::now();
    q_.push_back(std::move(r));
    max_depth_ = std::max(max_depth_, q_.size());
  }
  data_cv_.notify_all();
  return true;
}

std::vector<Request> RequestQueue::pop_micro_batch(const BatchPolicy& policy) {
  const std::size_t max_n = std::max<std::size_t>(policy.max_batch_size, 1);
  std::vector<Request> batch;
  std::unique_lock<std::mutex> lk(mu_);
  data_cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return batch;  // closed and drained

  // Head selection and first extraction are atomic (we hold the lock), so
  // concurrent batchers always leave with a non-empty batch.
  const std::size_t session = q_.front().session;
  const Clock::time_point deadline = q_.front().enqueued +
                                     policy.max_queue_delay;
  auto extract = [&] {
    for (auto it = q_.begin(); it != q_.end() && batch.size() < max_n;) {
      if (it->session == session) {
        batch.push_back(std::move(*it));
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
  };
  extract();
  space_cv_.notify_all();

  // Coalesce late same-session arrivals until the batch is full or the
  // oldest collected request hits its delay bound. close() flushes early.
  while (batch.size() < max_n && !closed_) {
    if (data_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    extract();
    space_cv_.notify_all();
  }
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  data_cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

std::size_t RequestQueue::max_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_depth_;
}

}  // namespace deepcam::serve
