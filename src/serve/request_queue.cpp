#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace deepcam::serve {

RequestQueue::RequestQueue(std::size_t capacity, AdmissionPolicy admission,
                           ClockSource* clock)
    : capacity_(capacity),
      admission_(admission),
      clock_(clock != nullptr ? clock : &ClockSource::steady()) {
  DEEPCAM_CHECK_MSG(capacity >= 1, "request queue needs capacity >= 1");
  for (const double f : admission_.shed_depth_fraction)
    DEEPCAM_CHECK_MSG(f >= 0.0 && f <= 1.0,
                      "shed_depth_fraction must be within [0, 1]");
}

bool RequestQueue::should_shed(SloClass c, std::size_t depth) const {
  const std::size_t idx = static_cast<std::size_t>(c);
  const double frac = admission_.shed_depth_fraction[idx];
  if (frac < 1.0 &&
      static_cast<double>(depth) >= frac * static_cast<double>(capacity_))
    return true;
  if (admission_.est_service_rps > 0.0 &&
      admission_.max_wait[idx] > Clock::duration::zero()) {
    const double est_wait_s =
        static_cast<double>(depth) / admission_.est_service_rps;
    const double budget_s =
        std::chrono::duration<double>(admission_.max_wait[idx]).count();
    if (est_wait_s > budget_s) return true;
  }
  return false;
}

Admission RequestQueue::try_push(Request&& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Admission::kRejectedClosed;
    if (q_.size() >= capacity_) return Admission::kRejectedFull;
    if (should_shed(r.slo, q_.size())) return Admission::kRejectedShed;
    r.enqueued = clock_->now();
    r.seq = next_seq_++;
    q_.push_back(std::move(r));
    max_depth_ = std::max(max_depth_, q_.size());
  }
  data_cv_.notify_all();
  return Admission::kAccepted;
}

bool RequestQueue::push(Request&& r) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    space_cv_.wait(lk, [this] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    r.enqueued = clock_->now();
    r.seq = next_seq_++;
    q_.push_back(std::move(r));
    max_depth_ = std::max(max_depth_, q_.size());
  }
  data_cv_.notify_all();
  return true;
}

bool RequestQueue::push_retry(Request&& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Closed-during-retry edge: the request must bounce back to the caller
    // for a terminal error answer — parking it in a closed queue would
    // leak an accepted-but-never-answered request past drain().
    if (closed_) return false;
    q_.push_back(std::move(r));  // keeps original enqueued/seq stamps
    max_depth_ = std::max(max_depth_, q_.size());
  }
  data_cv_.notify_all();
  return true;
}

std::vector<Request> RequestQueue::pop_micro_batch(
    const BatchPolicy& policy, std::vector<Request>* expired) {
  const std::size_t max_n = std::max<std::size_t>(policy.max_batch_size, 1);
  std::vector<Request> batch;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    data_cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return batch;  // closed and drained

    // Head selection: most urgent class first, admission order within it.
    // Selection and first extraction are atomic (we hold the lock), so
    // concurrent batchers always leave with distinct heads.
    const auto more_urgent = [](const Request& a, const Request& b) {
      if (a.slo != b.slo) return a.slo < b.slo;
      return a.seq < b.seq;
    };
    const Request* head = &q_.front();
    for (const Request& r : q_)
      if (more_urgent(r, *head)) head = &r;
    const std::size_t session = head->session;
    Clock::time_point deadline = head->enqueued + policy.max_queue_delay;
    if (depth_observer_) depth_observer_(q_.size());

    auto extract = [&] {
      for (auto it = q_.begin(); it != q_.end() && batch.size() < max_n;) {
        if (it->session != session) {
          ++it;
          continue;
        }
        if (expired != nullptr && it->has_deadline() &&
            it->deadline <= clock_->now()) {
          // Deadline already missed: answering it with an expiry beats
          // burning a batch slot on an answer nobody can use.
          expired->push_back(std::move(*it));
          it = q_.erase(it);
          continue;
        }
        // Don't let coalescing-for-company expire a collected rider: the
        // earliest deadline on board caps the wait.
        if (it->has_deadline() && it->deadline < deadline)
          deadline = it->deadline;
        batch.push_back(std::move(*it));
        it = q_.erase(it);
      }
    };
    extract();
    space_cv_.notify_all();

    if (batch.empty()) {
      // Every extracted request had already expired: hand them to the
      // caller right away (their answers are overdue) rather than waiting
      // out the coalescing window. The caller distinguishes this from
      // "closed and drained" by the non-empty sink.
      if (expired != nullptr && !expired->empty()) return batch;
      continue;  // nothing extractable this round; re-wait
    }

    // Coalesce late same-session arrivals until the batch is full or the
    // head hits its delay/deadline bound. close() flushes early.
    while (batch.size() < max_n && !closed_) {
      if (clock_->wait_until(data_cv_, lk, deadline)) break;
      extract();
      space_cv_.notify_all();
    }
    return batch;
  }
}

std::vector<Request> RequestQueue::try_pop_micro_batch(
    const BatchPolicy& policy, std::vector<Request>* expired) {
  const std::size_t max_n = std::max<std::size_t>(policy.max_batch_size, 1);
  std::vector<Request> batch;
  std::lock_guard<std::mutex> lk(mu_);
  if (q_.empty()) return batch;

  // Same head selection as pop_micro_batch: most urgent class, admission
  // order within it.
  const auto more_urgent = [](const Request& a, const Request& b) {
    if (a.slo != b.slo) return a.slo < b.slo;
    return a.seq < b.seq;
  };
  const Request* head = &q_.front();
  for (const Request& r : q_)
    if (more_urgent(r, *head)) head = &r;
  const std::size_t session = head->session;
  const Clock::time_point now = clock_->now();

  // Due-ness: release only when a blocking batcher would stop waiting at
  // the current (virtual) time — closed queue flush, an already-expired
  // same-session rider (its answer is overdue), a full batch's worth of
  // riders, or the head aging past the coalescing window.
  bool due = closed_ || now >= head->enqueued + policy.max_queue_delay;
  if (!due) {
    std::size_t extractable = 0;
    for (const Request& r : q_) {
      if (r.session != session) continue;
      if (expired != nullptr && r.has_deadline() && r.deadline <= now) {
        due = true;
        break;
      }
      ++extractable;
    }
    if (extractable >= max_n) due = true;
  }
  if (!due) return batch;

  if (depth_observer_) depth_observer_(q_.size());
  for (auto it = q_.begin(); it != q_.end() && batch.size() < max_n;) {
    if (it->session != session) {
      ++it;
      continue;
    }
    if (expired != nullptr && it->has_deadline() && it->deadline <= now) {
      expired->push_back(std::move(*it));
      it = q_.erase(it);
      continue;
    }
    batch.push_back(std::move(*it));
    it = q_.erase(it);
  }
  space_cv_.notify_all();
  return batch;
}

void RequestQueue::set_depth_observer(
    std::function<void(std::size_t)> observer) {
  std::lock_guard<std::mutex> lk(mu_);
  depth_observer_ = std::move(observer);
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  data_cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

std::size_t RequestQueue::max_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_depth_;
}

bool RequestQueue::pressured(double fraction) const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<double>(q_.size()) >=
         fraction * static_cast<double>(capacity_);
}

}  // namespace deepcam::serve
