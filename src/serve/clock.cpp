#include "serve/clock.hpp"

namespace deepcam::serve {

ClockSource& ClockSource::steady() {
  static SteadyClockSource instance;
  return instance;
}

}  // namespace deepcam::serve
