// Router: consistent-hash replica selection + failure-handling policies.
//
// The Server hands every micro-batch to the Router, which owns the three
// fault-tolerance policies of the serving tier:
//
//  * Placement — a consistent-hash ring (64 virtual nodes per replica)
//    maps the batch's routing key to an owner replica; keys only move when
//    their owner is unavailable (quarantined/crashed), and then walk the
//    ring to the next surviving replica, so a replica failure reshuffles
//    only that replica's keys. Recovering replicas preempt the ring for at
//    most one non-interactive canary probe at a time (readmission).
//
//  * Hedging — for the interactive SLO class, if the owner has not
//    answered within a p99-derived delay (observed batch-latency
//    distribution; RouterConfig::hedge_floor bounds it from below), the
//    batch is duplicated onto a second replica. First result wins; the
//    loser is cancelled through its BatchFuture (cancel succeeds iff it
//    never started — wasted work is counted, never torn down). The hedge
//    also doubles as instant failover when the owner dies mid-batch.
//
//  * Retry pacing — the Server re-queues failed riders; the Router decides
//    the exponential backoff with deterministic jitter (seeded splitmix64
//    of the routing key, not a global RNG, so chaos replays stay
//    bit-identical).
//
// The Router never answers requests and never counts them: it returns one
// Attempt per run() and the Server keeps the exactly-once accounting.
#pragma once

#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <vector>

#include "common/histogram.hpp"
#include "serve/replica.hpp"
#include "serve/request.hpp"

namespace deepcam::serve {

/// Failure-handling policy knobs (per server).
struct RouterConfig {
  /// Per-class re-queue budget: how many times a failed rider may be
  /// retried onto surviving replicas. Interactive retries least (its
  /// deadline is tight), batch most.
  std::array<std::size_t, kNumSloClasses> retry_limit{1, 2, 3};
  /// Exponential backoff base for retry re-queues (doubles per attempt,
  /// jittered, capped by retry_backoff_max).
  Clock::duration retry_backoff = std::chrono::microseconds(200);
  Clock::duration retry_backoff_max = std::chrono::milliseconds(50);
  /// Seed of the deterministic backoff jitter.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Duplicate interactive batches onto a second replica after the hedge
  /// delay (first result wins, loser cancelled).
  bool hedge_interactive = false;
  /// Fixed hedge delay; zero derives it from the observed p99 batch
  /// latency instead (never below hedge_floor).
  Clock::duration hedge_delay{};
  Clock::duration hedge_floor = std::chrono::microseconds(500);
  /// Health state machine / circuit breaker of every replica.
  ReplicaConfig replica;
};

class Router {
 public:
  explicit Router(RouterConfig cfg, ClockSource* clock);

  /// Outcome of one routed micro-batch execution.
  struct Attempt {
    bool ok = false;
    std::vector<nn::Tensor> outputs;   // valid iff ok
    std::exception_ptr error;          // valid iff !ok && !cancelled
    bool cancelled = false;            // whole batch cancelled at deadline
    std::size_t replica = kNoReplica;  // replica that produced the outcome
    bool hedged = false;               // a hedge submission was issued
    bool hedge_won = false;            // the hedge's result was used
    bool hedge_wasted = false;         // loser executed anyway
  };

  /// Routes `inputs` for `key`, submits, optionally hedges, and waits —
  /// cancelling through the BatchFuture once `latest_deadline` passes (if
  /// `cancellable`). `avoid` (kNoReplica = none) is the replica the
  /// previous attempt failed on. Health outcomes are recorded on the set.
  /// `batch_id` labels this attempt's route trace spans (obs::kNoId =
  /// untraced). Never throws: failures come back as !ok Attempts.
  Attempt run(ReplicaSet& set, std::uint64_t key, SloClass slo,
              std::vector<nn::Tensor>&& inputs, std::size_t avoid,
              Clock::time_point latest_deadline, bool cancellable,
              std::uint64_t batch_id = obs::kNoId);

  /// Consistent-hash pick for `key`: the ring owner when eligible, else
  /// the next surviving replica along the ring; recovering replicas
  /// preempt for one canary probe (non-interactive traffic only). nullopt
  /// when no replica can take traffic right now.
  std::optional<std::size_t> pick(ReplicaSet& set, std::uint64_t key,
                                  SloClass slo, std::size_t avoid);

  /// Deterministically jittered exponential backoff before re-queueing a
  /// rider that failed `attempt` times (attempt counts from 0).
  Clock::duration backoff(std::size_t attempt, std::uint64_t key) const;

  /// Effective hedge delay: configured, or p99-derived from observed batch
  /// latencies, floored by hedge_floor.
  Clock::duration hedge_delay() const;

  const RouterConfig& config() const { return cfg_; }

 private:
  struct RingPoint {
    std::uint64_t hash;
    std::size_t replica;
  };

  /// Ring order of replicas for `key`: owner first, then successors,
  /// deduplicated. Rebuilt (cached) when the set size changes.
  std::vector<std::size_t> ring_order(std::size_t replicas,
                                      std::uint64_t key);
  void observe_latency(double seconds);

  const RouterConfig cfg_;
  ClockSource* clock_;

  mutable std::mutex mu_;
  std::vector<RingPoint> ring_;      // sorted by hash
  std::size_t ring_replicas_ = 0;    // set size the ring was built for
  Histogram latency_{1e-6, 1e3, 96, 65536};  // seconds, successful batches
};

}  // namespace deepcam::serve
