#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace deepcam::serve {

Trace make_trace(const TraceConfig& cfg) {
  DEEPCAM_CHECK_MSG(!cfg.sessions.empty(), "trace needs >= 1 session");
  DEEPCAM_CHECK_MSG(cfg.rate_rps > 0.0, "trace needs a positive rate");
  if (cfg.arrivals == ArrivalProcess::kBursty)
    DEEPCAM_CHECK_MSG(cfg.burst_rate_rps > 0.0,
                      "bursty trace needs a positive burst rate");
  Trace trace;
  trace.sessions = cfg.sessions;
  trace.events.reserve(cfg.requests);
  Rng rng(cfg.seed);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double rate = cfg.rate_rps;
    if (cfg.arrivals == ArrivalProcess::kBursty && cfg.period_seconds > 0.0) {
      // On/off modulation: the burst window covers the first burst_fraction
      // of every period. The gap is drawn at the rate active at the current
      // time — a standard (approximate) piecewise-Poisson thinning.
      const double phase = std::fmod(t, cfg.period_seconds);
      if (phase < cfg.burst_fraction * cfg.period_seconds)
        rate = cfg.burst_rate_rps;
    }
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();  // guard log(0)
    t += -std::log(u) / rate;            // Exp(rate) inter-arrival gap
    TraceEvent e;
    e.t_seconds = t;
    e.session = static_cast<std::size_t>(
        rng.uniform_index(cfg.sessions.size()));
    e.input_seed = rng.next();
    trace.events.push_back(e);
  }
  return trace;
}

LoadGenerator::LoadGenerator(Server& server,
                             std::vector<nn::Shape> input_shapes)
    : server_(&server), input_shapes_(std::move(input_shapes)) {}

nn::Tensor LoadGenerator::make_input(const nn::Shape& shape,
                                     std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  return t;
}

namespace {

/// Shared completion state of one replay: counts outstanding requests and
/// publishes each worker-thread record write to the replaying thread.
struct ReplaySync {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
};

}  // namespace

LoadReport LoadGenerator::replay(const Trace& trace,
                                 const ReplayOptions& opts) {
  DEEPCAM_CHECK_MSG(input_shapes_.size() == trace.sessions.size(),
                    "one input shape per trace session required");
  DEEPCAM_CHECK_MSG(opts.time_scale > 0.0, "time_scale must be positive");
  LoadReport report;
  report.records.resize(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    report.records[i].event = i;
    report.records[i].session = trace.events[i].session;
  }
  if (trace.events.empty()) return report;

  ReplaySync sync;
  const Clock::time_point t0 = Clock::now();

  if (opts.mode == ReplayOptions::Mode::kOpenLoop) {
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      const TraceEvent& e = trace.events[i];
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(e.t_seconds /
                                                 opts.time_scale)));
      RequestRecord& rec = report.records[i];
      {
        std::lock_guard<std::mutex> lk(sync.mu);
        ++sync.outstanding;
      }
      const Admission verdict = server_->submit(
          trace.sessions[e.session],
          make_input(input_shapes_[e.session], e.input_seed),
          [&sync, &rec](Response&& resp) {
            // Notify *under* the lock: sync lives on the replaying thread's
            // stack, and replay() returns (destroying it) as soon as the
            // waiter observes outstanding == 0 — an unlocked notify could
            // touch a dead condition_variable.
            std::lock_guard<std::mutex> lk(sync.mu);
            rec.response = std::move(resp);
            rec.completed = true;
            --sync.outstanding;
            sync.cv.notify_one();
          });
      rec.admission = verdict;
      if (verdict != Admission::kAccepted) {
        std::lock_guard<std::mutex> lk(sync.mu);
        --sync.outstanding;
      }
    }
    std::unique_lock<std::mutex> lk(sync.mu);
    sync.cv.wait(lk, [&sync] { return sync.outstanding == 0; });
  } else {
    // Closed loop: each client keeps one request outstanding; trace arrival
    // times are ignored, ordering comes from the shared event cursor.
    std::atomic<std::size_t> cursor{0};
    const std::size_t clients =
        std::max<std::size_t>(1, opts.closed_loop_clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= trace.events.size()) return;
          const TraceEvent& e = trace.events[i];
          Response resp = server_->run(
              trace.sessions[e.session],
              make_input(input_shapes_[e.session], e.input_seed));
          std::lock_guard<std::mutex> lk(sync.mu);
          RequestRecord& rec = report.records[i];
          rec.response = std::move(resp);
          rec.completed = true;
          // run() reports failed admission as an error response.
          rec.admission = rec.response.ok() || rec.response.batch_size > 0
                              ? Admission::kAccepted
                              : Admission::kRejectedClosed;
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  report.duration_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const RequestRecord& rec : report.records) {
    if (!rec.completed) {
      ++report.rejected;
      continue;
    }
    if (rec.admission != Admission::kAccepted) {
      ++report.rejected;
      continue;
    }
    ++report.sent;
    if (!rec.response.ok())
      ++report.errors;
    else
      report.latency.add(rec.response.total_seconds);
  }
  const double span = trace.duration_seconds();
  report.offered_rps =
      span > 0.0 ? static_cast<double>(trace.events.size()) /
                       (span / opts.time_scale)
                 : 0.0;
  report.achieved_rps =
      report.duration_seconds > 0.0
          ? static_cast<double>(report.sent - report.errors) /
                report.duration_seconds
          : 0.0;
  return report;
}

}  // namespace deepcam::serve
