#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace deepcam::serve {

namespace {

/// Instantaneous arrival rate of `cfg` at trace time `t`. The generator
/// draws each Exp gap at the rate active when the previous event landed —
/// a standard (approximate) piecewise-Poisson thinning that keeps the
/// trace a single forward pass over one RNG stream.
double rate_at(const TraceConfig& cfg, double t) {
  switch (cfg.arrivals) {
    case ArrivalProcess::kPoisson:
      return cfg.rate_rps;
    case ArrivalProcess::kBursty: {
      if (cfg.period_seconds <= 0.0) return cfg.rate_rps;
      // On/off modulation: the burst window covers the first burst_fraction
      // of every period.
      const double phase = std::fmod(t, cfg.period_seconds);
      return phase < cfg.burst_fraction * cfg.period_seconds
                 ? cfg.burst_rate_rps
                 : cfg.rate_rps;
    }
    case ArrivalProcess::kDiurnal: {
      if (cfg.period_seconds <= 0.0) return cfg.rate_rps;
      constexpr double kTau = 6.283185307179586;
      const double r =
          cfg.rate_rps *
          (1.0 + cfg.diurnal_amplitude *
                     std::sin(kTau * t / cfg.period_seconds));
      return std::max(r, 1e-6 * cfg.rate_rps);  // amplitude ~1 guard
    }
    case ArrivalProcess::kFlash:
      return (t >= cfg.flash_start_seconds &&
              t < cfg.flash_start_seconds + cfg.flash_duration_seconds)
                 ? cfg.flash_rate_rps
                 : cfg.rate_rps;
  }
  return cfg.rate_rps;
}

SloClass sample_class(const std::array<double, kNumSloClasses>& weights,
                      double u) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return SloClass::kStandard;
  double x = u * total;
  for (std::size_t i = 0; i < kNumSloClasses; ++i) {
    x -= weights[i];
    if (x < 0.0) return static_cast<SloClass>(i);
  }
  return static_cast<SloClass>(kNumSloClasses - 1);
}

}  // namespace

Trace make_trace(const TraceConfig& cfg) {
  DEEPCAM_CHECK_MSG(!cfg.sessions.empty(), "trace needs >= 1 session");
  DEEPCAM_CHECK_MSG(cfg.rate_rps > 0.0, "trace needs a positive rate");
  if (cfg.arrivals == ArrivalProcess::kBursty)
    DEEPCAM_CHECK_MSG(cfg.burst_rate_rps > 0.0,
                      "bursty trace needs a positive burst rate");
  if (cfg.arrivals == ArrivalProcess::kFlash)
    DEEPCAM_CHECK_MSG(cfg.flash_rate_rps > 0.0 &&
                          cfg.flash_duration_seconds > 0.0,
                      "flash trace needs a positive spike rate and window");
  if (cfg.arrivals == ArrivalProcess::kDiurnal)
    DEEPCAM_CHECK_MSG(
        cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude <= 1.0,
        "diurnal amplitude must be in [0, 1]");
  for (double w : cfg.class_weights)
    DEEPCAM_CHECK_MSG(w >= 0.0, "class weights must be non-negative");
  Trace trace;
  trace.sessions = cfg.sessions;
  trace.events.reserve(cfg.requests);
  Rng rng(cfg.seed);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    const double rate = rate_at(cfg, t);
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();  // guard log(0)
    t += -std::log(u) / rate;            // Exp(rate) inter-arrival gap
    TraceEvent e;
    e.t_seconds = t;
    e.session = static_cast<std::size_t>(
        rng.uniform_index(cfg.sessions.size()));
    e.slo = sample_class(cfg.class_weights, rng.uniform());
    e.input_seed = rng.next();
    trace.events.push_back(e);
  }
  return trace;
}

LoadGenerator::LoadGenerator(Server& server,
                             std::vector<nn::Shape> input_shapes)
    : server_(&server), input_shapes_(std::move(input_shapes)) {}

nn::Tensor LoadGenerator::make_input(const nn::Shape& shape,
                                     std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  return t;
}

namespace {

/// Shared completion state of one replay: counts outstanding requests and
/// publishes each worker-thread record write to the replaying thread.
struct ReplaySync {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
};

/// Aggregates the per-record outcomes into the report's counters and rates
/// (shared by replay() and replay_deterministic()).
void finalize_report(LoadReport& report, const Trace& trace,
                     double time_scale, double duration_seconds) {
  report.duration_seconds = duration_seconds;
  for (const RequestRecord& rec : report.records) {
    if (!rec.completed || rec.admission != Admission::kAccepted) {
      ++report.rejected;
      if (rec.admission == Admission::kRejectedShed) ++report.shed;
      continue;
    }
    ++report.sent;
    if (rec.response.expired) {
      ++report.expired;
    } else if (!rec.response.ok()) {
      ++report.errors;
    } else {
      report.latency.add(rec.response.total_seconds);
    }
    if (rec.response.slo_met()) ++report.slo_met;
  }
  const double span = trace.duration_seconds();
  report.offered_rps =
      span > 0.0 ? static_cast<double>(trace.events.size()) /
                       (span / time_scale)
                 : 0.0;
  if (report.duration_seconds > 0.0) {
    report.achieved_rps =
        static_cast<double>(report.sent - report.errors - report.expired) /
        report.duration_seconds;
    report.goodput_rps =
        static_cast<double>(report.slo_met) / report.duration_seconds;
  }
}

}  // namespace

LoadReport LoadGenerator::replay(const Trace& trace,
                                 const ReplayOptions& opts) {
  DEEPCAM_CHECK_MSG(input_shapes_.size() == trace.sessions.size(),
                    "one input shape per trace session required");
  DEEPCAM_CHECK_MSG(opts.time_scale > 0.0, "time_scale must be positive");
  ClockSource& clock =
      opts.clock != nullptr ? *opts.clock : ClockSource::steady();
  LoadReport report;
  report.records.resize(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    report.records[i].event = i;
    report.records[i].session = trace.events[i].session;
    report.records[i].slo = trace.events[i].slo;
  }
  if (trace.events.empty()) return report;

  ReplaySync sync;
  const Clock::time_point t0 = clock.now();

  if (opts.mode == ReplayOptions::Mode::kOpenLoop) {
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      const TraceEvent& e = trace.events[i];
      clock.sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(e.t_seconds /
                                                 opts.time_scale)));
      RequestRecord& rec = report.records[i];
      {
        std::lock_guard<std::mutex> lk(sync.mu);
        ++sync.outstanding;
      }
      const Admission verdict = server_->submit(
          trace.sessions[e.session],
          make_input(input_shapes_[e.session], e.input_seed),
          [&sync, &rec](Response&& resp) {
            // Notify *under* the lock: sync lives on the replaying thread's
            // stack, and replay() returns (destroying it) as soon as the
            // waiter observes outstanding == 0 — an unlocked notify could
            // touch a dead condition_variable.
            std::lock_guard<std::mutex> lk(sync.mu);
            rec.response = std::move(resp);
            rec.completed = true;
            --sync.outstanding;
            sync.cv.notify_one();
          },
          e.slo);
      rec.admission = verdict;
      if (verdict != Admission::kAccepted) {
        std::lock_guard<std::mutex> lk(sync.mu);
        --sync.outstanding;
      }
    }
    if (opts.clock == nullptr) {
      std::unique_lock<std::mutex> lk(sync.mu);
      sync.cv.wait(lk, [&sync] { return sync.outstanding == 0; });
    } else {
      // Injected (possibly virtual) clock: nobody else advances time once
      // the trace is exhausted, so partially-filled micro-batches would
      // wait out their coalescing window — and queued deadlines would
      // never lapse — forever. Keep nudging the clock forward until every
      // outstanding request is answered.
      std::unique_lock<std::mutex> lk(sync.mu);
      while (sync.outstanding != 0) {
        sync.cv.wait_for(lk, std::chrono::milliseconds(1));
        if (sync.outstanding == 0) break;
        lk.unlock();
        clock.sleep_until(clock.now() + std::chrono::milliseconds(1));
        lk.lock();
      }
    }
  } else {
    // Closed loop: each client keeps one request outstanding; trace arrival
    // times are ignored, ordering comes from the shared event cursor.
    std::atomic<std::size_t> cursor{0};
    const std::size_t clients =
        std::max<std::size_t>(1, opts.closed_loop_clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= trace.events.size()) return;
          const TraceEvent& e = trace.events[i];
          Response resp = server_->run(
              trace.sessions[e.session],
              make_input(input_shapes_[e.session], e.input_seed), e.slo);
          std::lock_guard<std::mutex> lk(sync.mu);
          RequestRecord& rec = report.records[i];
          rec.response = std::move(resp);
          rec.completed = true;
          // run() reports failed admission as an error response.
          rec.admission = rec.response.ok() || rec.response.batch_size > 0
                              ? Admission::kAccepted
                              : Admission::kRejectedClosed;
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  finalize_report(report, trace, opts.time_scale,
                  std::chrono::duration<double>(clock.now() - t0).count());
  return report;
}

LoadReport LoadGenerator::replay_deterministic(const Trace& trace,
                                               VirtualClock& clock,
                                               Clock::duration step,
                                               double time_scale) {
  DEEPCAM_CHECK_MSG(input_shapes_.size() == trace.sessions.size(),
                    "one input shape per trace session required");
  DEEPCAM_CHECK_MSG(time_scale > 0.0, "time_scale must be positive");
  DEEPCAM_CHECK_MSG(step > Clock::duration::zero(),
                    "replay step must be positive");
  DEEPCAM_CHECK_MSG(
      server_->config().manual_dispatch,
      "replay_deterministic needs a ServerConfig::manual_dispatch server");

  LoadReport report;
  report.records.resize(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    report.records[i].event = i;
    report.records[i].session = trace.events[i].session;
    report.records[i].slo = trace.events[i].slo;
  }
  if (trace.events.empty()) return report;

  // Single thread end to end: completion callbacks fire inside pump(), so
  // a plain counter replaces ReplaySync.
  std::size_t outstanding = 0;
  const Clock::time_point t0 = clock.now();
  const auto pump_all = [&] {
    while (server_->pump()) {
    }
  };

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    const Clock::time_point target =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(e.t_seconds / time_scale));
    // Step virtual time to the arrival, pumping at every step so batch
    // coalescing windows, deadlines and chaos events fire at (quantized)
    // deterministic times.
    while (clock.now() < target) {
      clock.advance_to(std::min(target, clock.now() + step));
      pump_all();
    }
    RequestRecord& rec = report.records[i];
    ++outstanding;
    const Admission verdict = server_->submit(
        trace.sessions[e.session],
        make_input(input_shapes_[e.session], e.input_seed),
        [&outstanding, &rec](Response&& resp) {
          rec.response = std::move(resp);
          rec.completed = true;
          --outstanding;
        },
        e.slo);
    rec.admission = verdict;
    if (verdict != Admission::kAccepted) --outstanding;
    pump_all();
  }

  // Drain: keep stepping until every admitted request is answered. The
  // guard turns a logic bug (a request no pump can ever answer) into a
  // loud failure instead of an endless loop.
  std::size_t stalls = 0;
  while (outstanding != 0) {
    clock.advance(step);
    pump_all();
    DEEPCAM_CHECK_MSG(++stalls < 10'000'000,
                      "deterministic replay failed to drain");
  }

  finalize_report(report, trace, time_scale,
                  std::chrono::duration<double>(clock.now() - t0).count());
  return report;
}

}  // namespace deepcam::serve
