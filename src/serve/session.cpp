#include "serve/session.hpp"

#include <utility>

#include "common/error.hpp"

namespace deepcam::serve {

void SessionManager::set_replica_config(std::size_t replicas,
                                        ReplicaConfig cfg,
                                        ClockSource* clock) {
  DEEPCAM_CHECK_MSG(replicas >= 1, "sessions need >= 1 replica");
  DEEPCAM_CHECK_MSG(sessions_.empty(),
                    "set_replica_config must precede add_session");
  default_replicas_ = replicas;
  replica_cfg_ = cfg;
  replica_clock_ = clock;
}

std::size_t SessionManager::add_session(
    std::string name, std::shared_ptr<const core::CompiledModel> compiled,
    std::size_t engine_threads) {
  DEEPCAM_CHECK_MSG(!name.empty(), "session name must be non-empty");
  DEEPCAM_CHECK_MSG(compiled != nullptr, "session needs a compiled model");
  DEEPCAM_CHECK_MSG(!find(name).has_value(),
                    "duplicate session name: " + name);
  Session s;
  s.name = std::move(name);
  s.replicas = std::make_unique<ReplicaSet>(
      compiled, default_replicas_, engine_threads, replica_cfg_,
      replica_clock_);
  s.compiled = std::move(compiled);
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

const std::string& SessionManager::name(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return sessions_[idx].name;
}

std::vector<std::string> SessionManager::names() const {
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.name);
  return out;
}

void SessionManager::set_fallback(const std::string& from,
                                  const std::string& to) {
  const auto f = find(from), t = find(to);
  DEEPCAM_CHECK_MSG(f.has_value(), "unknown fallback source: " + from);
  DEEPCAM_CHECK_MSG(t.has_value(), "unknown fallback target: " + to);
  DEEPCAM_CHECK_MSG(*f != *t, "session cannot fall back to itself: " + from);
  sessions_[*f].fallback = *t;
}

std::optional<std::size_t> SessionManager::fallback(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return sessions_[idx].fallback;
}

std::optional<std::size_t> SessionManager::find(
    const std::string& name) const {
  for (std::size_t i = 0; i < sessions_.size(); ++i)
    if (sessions_[i].name == name) return i;
  return std::nullopt;
}

ReplicaSet& SessionManager::replicas(std::size_t idx) {
  DEEPCAM_CHECK(idx < sessions_.size());
  return *sessions_[idx].replicas;
}

const ReplicaSet& SessionManager::replicas(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return *sessions_[idx].replicas;
}

core::InferenceEngine& SessionManager::engine(std::size_t idx) {
  DEEPCAM_CHECK(idx < sessions_.size());
  return sessions_[idx].replicas->replica(0).engine();
}

const core::CompiledModel& SessionManager::model(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return *sessions_[idx].compiled;
}

}  // namespace deepcam::serve
