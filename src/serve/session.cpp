#include "serve/session.hpp"

#include <utility>

#include "common/error.hpp"

namespace deepcam::serve {

std::size_t SessionManager::add_session(
    std::string name, std::shared_ptr<const core::CompiledModel> compiled,
    std::size_t engine_threads) {
  DEEPCAM_CHECK_MSG(!name.empty(), "session name must be non-empty");
  DEEPCAM_CHECK_MSG(compiled != nullptr, "session needs a compiled model");
  DEEPCAM_CHECK_MSG(!find(name).has_value(),
                    "duplicate session name: " + name);
  Session s;
  s.name = std::move(name);
  s.engine =
      std::make_unique<core::InferenceEngine>(compiled, engine_threads);
  s.compiled = std::move(compiled);
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

const std::string& SessionManager::name(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return sessions_[idx].name;
}

std::vector<std::string> SessionManager::names() const {
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.name);
  return out;
}

void SessionManager::set_fallback(const std::string& from,
                                  const std::string& to) {
  const auto f = find(from), t = find(to);
  DEEPCAM_CHECK_MSG(f.has_value(), "unknown fallback source: " + from);
  DEEPCAM_CHECK_MSG(t.has_value(), "unknown fallback target: " + to);
  DEEPCAM_CHECK_MSG(*f != *t, "session cannot fall back to itself: " + from);
  sessions_[*f].fallback = *t;
}

std::optional<std::size_t> SessionManager::fallback(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return sessions_[idx].fallback;
}

std::optional<std::size_t> SessionManager::find(
    const std::string& name) const {
  for (std::size_t i = 0; i < sessions_.size(); ++i)
    if (sessions_[i].name == name) return i;
  return std::nullopt;
}

core::InferenceEngine& SessionManager::engine(std::size_t idx) {
  DEEPCAM_CHECK(idx < sessions_.size());
  return *sessions_[idx].engine;
}

const core::CompiledModel& SessionManager::model(std::size_t idx) const {
  DEEPCAM_CHECK(idx < sessions_.size());
  return *sessions_[idx].compiled;
}

}  // namespace deepcam::serve
