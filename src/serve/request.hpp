// Online serving request/response types.
//
// The serving subsystem (src/serve) turns the batched InferenceEngine into
// an online, multi-tenant service: single-sample requests arrive at a
// bounded RequestQueue, a DynamicBatcher coalesces them into micro-batches
// per session, and Server workers pipeline those micro-batches through the
// engine's non-blocking submit() path. These are the plain-data types that
// flow through that pipeline.
//
// Every request carries an SLO class (deadline + priority): interactive
// traffic preempts standard, standard preempts batch, and each class maps
// to a relative deadline the server stamps at admission. Under overload
// the tier reacts per class — shed at admission, expire at batch
// formation, downgrade to a lower-k session — instead of treating every
// request identically (the saturation cliff BENCH_pr4 measured).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>

#include "nn/tensor.hpp"

namespace deepcam::serve {

using Clock = std::chrono::steady_clock;

/// Priority classes, highest first: the batcher always serves the most
/// urgent pending class, admission sheds the least urgent first, and each
/// class carries its own deadline. The numeric value is the array index
/// used by every per-class table (deadlines, watermarks, metrics).
enum class SloClass : std::size_t {
  kInteractive = 0,  // user-facing: tight deadline, shed last
  kStandard = 1,     // default tier
  kBatch = 2,        // throughput traffic: no/loose deadline, shed first
};

inline constexpr std::size_t kNumSloClasses = 3;

inline const char* to_string(SloClass c) {
  switch (c) {
    case SloClass::kInteractive: return "interactive";
    case SloClass::kStandard: return "standard";
    case SloClass::kBatch: return "batch";
  }
  return "?";
}

/// All SLO classes, in priority order, for table-driven iteration.
inline constexpr std::array<SloClass, kNumSloClasses> kAllSloClasses = {
    SloClass::kInteractive, SloClass::kStandard, SloClass::kBatch};

struct Response;

/// One single-sample inference request. `session` is the index the
/// SessionManager resolved from the session name; `on_done` is invoked
/// exactly once, from a server worker thread, after the micro-batch the
/// request rode in completed (or failed, expired, or the server shut down
/// first).
struct Request {
  std::uint64_t id = 0;
  std::size_t session = 0;
  nn::Tensor input;
  SloClass slo = SloClass::kStandard;
  /// Absolute completion deadline; time_point{} (the default) = none.
  /// Stamped by Server::submit from the class's configured deadline.
  Clock::time_point deadline{};
  bool downgraded = false;  // rerouted to a fallback (lower-k) session
  Clock::time_point enqueued{};
  std::uint64_t seq = 0;  // queue admission order (stamped by the queue)
  /// Failure-retry bookkeeping (serve/router.hpp): how many times this
  /// request has been re-queued after a replica failure, and the replica
  /// the last attempt failed on (kNoReplica sentinel when none).
  std::size_t attempt = 0;
  std::size_t last_replica = static_cast<std::size_t>(-1);
  std::function<void(Response&&)> on_done;

  bool has_deadline() const { return deadline != Clock::time_point{}; }
};

/// Completion record handed to Request::on_done.
struct Response {
  std::uint64_t id = 0;
  std::size_t session = 0;
  nn::Tensor logits;           // valid iff error == nullptr
  std::exception_ptr error;    // per-sample failure (or shutdown/expiry)
  SloClass slo = SloClass::kStandard;
  bool expired = false;        // answered without running: deadline passed
  bool downgraded = false;     // served by the fallback (lower-k) session
  bool had_deadline = false;
  /// deadline - completion time, seconds: positive slack = met with margin,
  /// negative = completed late. 0 when no deadline was set.
  double slack_seconds = 0.0;
  double queue_seconds = 0.0;  // enqueue -> micro-batch dispatch
  double total_seconds = 0.0;  // enqueue -> completion
  std::size_t batch_size = 0;  // size of the micro-batch it rode in

  bool ok() const { return error == nullptr; }
  /// Goodput criterion: answered successfully and within its deadline
  /// (trivially met when the request carried none).
  bool slo_met() const {
    return ok() && !expired && (!had_deadline || slack_seconds >= 0.0);
  }
};

/// Admission-control verdict of Server::submit / RequestQueue::try_push.
enum class Admission {
  kAccepted,
  kRejectedFull,           // backpressure: queue at capacity
  kRejectedClosed,         // server stopping
  kRejectedUnknownSession, // no session with that name
  kRejectedShed,           // load shedding: class watermark crossed
};

inline const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedFull: return "rejected-full";
    case Admission::kRejectedClosed: return "rejected-closed";
    case Admission::kRejectedUnknownSession: return "rejected-unknown-session";
    case Admission::kRejectedShed: return "rejected-shed";
  }
  return "?";
}

}  // namespace deepcam::serve
