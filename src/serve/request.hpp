// Online serving request/response types.
//
// The serving subsystem (src/serve) turns the batched InferenceEngine into
// an online, multi-tenant service: single-sample requests arrive at a
// bounded RequestQueue, a DynamicBatcher coalesces them into micro-batches
// per session, and Server workers pipeline those micro-batches through the
// engine's non-blocking submit() path. These are the plain-data types that
// flow through that pipeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>

#include "nn/tensor.hpp"

namespace deepcam::serve {

using Clock = std::chrono::steady_clock;

struct Response;

/// One single-sample inference request. `session` is the index the
/// SessionManager resolved from the session name; `on_done` is invoked
/// exactly once, from a server worker thread, after the micro-batch the
/// request rode in completed (or failed, or the server shut down first).
struct Request {
  std::uint64_t id = 0;
  std::size_t session = 0;
  nn::Tensor input;
  Clock::time_point enqueued{};
  std::function<void(Response&&)> on_done;
};

/// Completion record handed to Request::on_done.
struct Response {
  std::uint64_t id = 0;
  std::size_t session = 0;
  nn::Tensor logits;           // valid iff error == nullptr
  std::exception_ptr error;    // per-sample failure (or shutdown)
  double queue_seconds = 0.0;  // enqueue -> micro-batch dispatch
  double total_seconds = 0.0;  // enqueue -> completion
  std::size_t batch_size = 0;  // size of the micro-batch it rode in

  bool ok() const { return error == nullptr; }
};

/// Admission-control verdict of Server::submit / RequestQueue::try_push.
enum class Admission {
  kAccepted,
  kRejectedFull,           // backpressure: queue at capacity
  kRejectedClosed,         // server stopping
  kRejectedUnknownSession, // no session with that name
};

inline const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedFull: return "rejected-full";
    case Admission::kRejectedClosed: return "rejected-closed";
    case Admission::kRejectedUnknownSession: return "rejected-unknown-session";
  }
  return "?";
}

}  // namespace deepcam::serve
