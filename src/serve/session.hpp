// SessionManager: multiple CompiledModels behind named sessions.
//
// A production DeepCAM deployment hosts several models at once (the paper's
// Table I workloads: LeNet5, VGG11/16, ResNet18 — or the same topology
// compiled at different hash lengths as quality/latency tiers). Each
// session owns its shared-immutable CompiledModel plus a ReplicaSet of N
// InferenceEngines (serve/replica.hpp) whose worker pools simulate that
// model's CAM pipelines; the Server's Router picks the replica each
// micro-batch runs on from the batch's routing key and the replicas'
// health.
//
// Sessions are registered before Server::start() and immutable afterwards
// (lookups are then lock-free reads; per-replica health state is
// internally synchronized).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "serve/replica.hpp"

namespace deepcam::serve {

class SessionManager {
 public:
  /// Configures the replica tier of sessions registered *after* this call:
  /// `replicas` engines per session, health policy `cfg`, timestamps from
  /// `clock` (nullptr = real steady clock). The Server calls this from its
  /// constructor, before any add_session. Default: one replica.
  void set_replica_config(std::size_t replicas, ReplicaConfig cfg,
                          ClockSource* clock);

  /// Registers `name` -> a ReplicaSet over `compiled`, each replica an
  /// engine with `engine_threads` simulated CAM pipelines (0 = hardware
  /// concurrency). Returns the session index. Names must be unique and
  /// non-empty.
  std::size_t add_session(std::string name,
                          std::shared_ptr<const core::CompiledModel> compiled,
                          std::size_t engine_threads = 0);

  std::size_t count() const { return sessions_.size(); }
  const std::string& name(std::size_t idx) const;
  std::vector<std::string> names() const;
  /// Index of session `name`, or nullopt.
  std::optional<std::size_t> find(const std::string& name) const;

  /// Declares `to` the quality-fallback tier of `from`: under queue
  /// pressure the server reroutes from-requests to `to` — DeepCAM's
  /// variable hash length as a live latency/accuracy dial (the canonical
  /// link is "<model>-k1024" -> "<model>-k256", a ~4x cheaper search).
  /// Both sessions must already be registered; self-links are rejected.
  void set_fallback(const std::string& from, const std::string& to);
  /// Fallback tier of session `idx`, or nullopt when none was declared.
  std::optional<std::size_t> fallback(std::size_t idx) const;

  ReplicaSet& replicas(std::size_t idx);
  const ReplicaSet& replicas(std::size_t idx) const;
  /// Engine of replica 0 — the pre-replica single-engine view, kept for
  /// offline callers and tests that bypass the Router.
  core::InferenceEngine& engine(std::size_t idx);
  const core::CompiledModel& model(std::size_t idx) const;

 private:
  struct Session {
    std::string name;
    std::shared_ptr<const core::CompiledModel> compiled;
    std::unique_ptr<ReplicaSet> replicas;
    std::optional<std::size_t> fallback;
  };

  std::size_t default_replicas_ = 1;
  ReplicaConfig replica_cfg_{};
  ClockSource* replica_clock_ = nullptr;
  std::vector<Session> sessions_;
};

}  // namespace deepcam::serve
