// SessionManager: multiple CompiledModels behind named sessions.
//
// A production DeepCAM deployment hosts several models at once (the paper's
// Table I workloads: LeNet5, VGG11/16, ResNet18 — or the same topology
// compiled at different hash lengths as quality/latency tiers). Each
// session owns its shared-immutable CompiledModel plus one InferenceEngine
// whose worker pool simulates that model's CAM pipelines; the Server routes
// micro-batches to the engine of the batch's session.
//
// Sessions are registered before Server::start() and immutable afterwards
// (lookups are then lock-free reads).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace deepcam::serve {

class SessionManager {
 public:
  /// Registers `name` -> engine over `compiled` with `engine_threads`
  /// simulated CAM pipelines (0 = hardware concurrency). Returns the
  /// session index. Names must be unique and non-empty.
  std::size_t add_session(std::string name,
                          std::shared_ptr<const core::CompiledModel> compiled,
                          std::size_t engine_threads = 0);

  std::size_t count() const { return sessions_.size(); }
  const std::string& name(std::size_t idx) const;
  std::vector<std::string> names() const;
  /// Index of session `name`, or nullopt.
  std::optional<std::size_t> find(const std::string& name) const;

  /// Declares `to` the quality-fallback tier of `from`: under queue
  /// pressure the server reroutes from-requests to `to` — DeepCAM's
  /// variable hash length as a live latency/accuracy dial (the canonical
  /// link is "<model>-k1024" -> "<model>-k256", a ~4x cheaper search).
  /// Both sessions must already be registered; self-links are rejected.
  void set_fallback(const std::string& from, const std::string& to);
  /// Fallback tier of session `idx`, or nullopt when none was declared.
  std::optional<std::size_t> fallback(std::size_t idx) const;

  core::InferenceEngine& engine(std::size_t idx);
  const core::CompiledModel& model(std::size_t idx) const;

 private:
  struct Session {
    std::string name;
    std::shared_ptr<const core::CompiledModel> compiled;
    std::unique_ptr<core::InferenceEngine> engine;
    std::optional<std::size_t> fallback;
  };

  std::vector<Session> sessions_;
};

}  // namespace deepcam::serve
