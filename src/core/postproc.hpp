// Post-processing & transformation unit model (paper §III-C, Fig. 7).
//
// Two sub-modules:
//  1. Post-processing: converts a CAM Hamming distance into the final
//     approximate dot-product — PWL cosine (eq. 5), two minifloat-norm
//     multiplies, bias add — and applies the digital peripheral ops
//     (ReLU / pooling / batchnorm).
//  2. Online activation-context generation: adder-tree + digital-sqrt L2
//     norm, and the NVM crossbar hasher (random matrix C as synaptic
//     weights, sign sensed by SAs instead of ADCs).
//
// The functional math lives in hash/; this class is the *cost* model: every
// method returns the value and accumulates energy/cycle statistics.
#pragma once

#include <cstddef>

#include "core/context.hpp"
#include "hash/cosine_approx.hpp"

namespace deepcam::core {

/// Energy/cycle tallies of the digital unit.
struct PostProcStats {
  double energy = 0.0;          // joules, post-processing datapath
  double ctxgen_energy = 0.0;   // joules, online context generator
  std::size_t ctxgen_cycles = 0;
  std::size_t dot_products = 0;
  std::size_t peripheral_ops = 0;  // ReLU/pool/BN element ops

  PostProcStats& operator+=(const PostProcStats& o) {
    energy += o.energy;
    ctxgen_energy += o.ctxgen_energy;
    ctxgen_cycles += o.ctxgen_cycles;
    dot_products += o.dot_products;
    peripheral_ops += o.peripheral_ops;
    return *this;
  }
};

class PostProcessingUnit {
 public:
  struct Options {
    bool use_pwl_cosine = true;   // eq. 5 vs exact cosf (ablation)
    bool minifloat_norms = true;  // 8-bit minifloat vs fp32 norms (ablation)
  };

  PostProcessingUnit() = default;
  explicit PostProcessingUnit(const Options& opts) : opts_(opts) {}

  const Options& options() const { return opts_; }
  const PostProcStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Final approximate dot-product from a measured Hamming distance.
  /// Charges: cosine unit + 2 minifloat multiplies + bias add.
  double finish_dot_product(const Context& weight, const Context& activation,
                            std::size_t hamming, std::size_t hash_len,
                            float bias);

  /// ContextBatch-view overload for the allocation-free engine path; same
  /// math and energy charges as the Context overload.
  double finish_dot_product(const ContextRef& weight,
                            const ContextRef& activation, std::size_t hamming,
                            std::size_t hash_len, float bias);

  /// Charges the peripheral digital cost of `elems` ReLU/pool/BN elements.
  void charge_peripheral(std::size_t elems);

  /// Charges one online activation-context generation: a patch of length n
  /// hashed to `hash_len` bits plus its L2 norm.
  /// Cost: (n-1)-node adder tree + 16-iteration sqrt + n*hash_len crossbar
  /// cells + hash_len sense amps; latency kXbarInputBits cycles (pipelined).
  void charge_context_generation(std::size_t n, std::size_t hash_len);

 private:
  Options opts_ = {};
  PostProcStats stats_;
};

}  // namespace deepcam::core
