#include "core/postproc.hpp"

#include "common/digital_sqrt.hpp"
#include "common/tech.hpp"

namespace deepcam::core {

double PostProcessingUnit::finish_dot_product(const Context& weight,
                                              const Context& activation,
                                              std::size_t hamming,
                                              std::size_t hash_len,
                                              float bias) {
  return finish_dot_product(
      ContextRef{weight.bits.data(), weight.norm_code, weight.exact_norm},
      ContextRef{activation.bits.data(), activation.norm_code,
                 activation.exact_norm},
      hamming, hash_len, bias);
}

double PostProcessingUnit::finish_dot_product(const ContextRef& weight,
                                              const ContextRef& activation,
                                              std::size_t hamming,
                                              std::size_t hash_len,
                                              float bias) {
  const double nw = opts_.minifloat_norms ? weight.norm() : weight.exact_norm;
  const double na =
      opts_.minifloat_norms ? activation.norm() : activation.exact_norm;
  const double dot = hash::approx_dot(nw, na, hamming, hash_len,
                                      opts_.use_pwl_cosine) +
                     static_cast<double>(bias);
  stats_.energy += tech::kCosineUnitEnergy + 2.0 * tech::kMiniFloatMulEnergy +
                   tech::kAdd8Energy + tech::kPipeRegEnergy;
  ++stats_.dot_products;
  return dot;
}

void PostProcessingUnit::charge_peripheral(std::size_t elems) {
  stats_.energy += static_cast<double>(elems) *
                   (tech::kAdd8Energy + tech::kPipeRegEnergy);
  stats_.peripheral_ops += elems;
}

void PostProcessingUnit::charge_context_generation(std::size_t n,
                                                   std::size_t hash_len) {
  // L2 norm: n squarings (int8 multiplies) + (n-1) adder-tree adds + sqrt.
  const double norm_energy =
      static_cast<double>(n) * tech::kMul8Energy +
      static_cast<double>(n > 0 ? n - 1 : 0) * tech::kAdd16Energy +
      static_cast<double>(kCyclesPerSqrt32) * tech::kSqrtIterEnergy;
  // Crossbar hash: n*hash_len cells active over the bit-serial input, plus
  // one sign sense-amp per output column.
  const double hash_energy =
      static_cast<double>(n) * static_cast<double>(hash_len) *
          tech::kXbarCellEnergy +
      static_cast<double>(hash_len) * tech::kXbarSenseAmpEnergy;
  stats_.ctxgen_energy += norm_energy + hash_energy;
  stats_.ctxgen_cycles += static_cast<std::size_t>(tech::kXbarInputBits);
}

}  // namespace deepcam::core
