// DeepCAM accelerator: full functional + cycle + energy simulation.
//
// Executes a CNN by replacing every Conv2D/Linear dot-product with the
// CAM-based approximate geometric dot-product pipeline:
//
//   contexts -> DynamicCam search (Hamming distances, O(1) per search)
//            -> PostProcessingUnit (PWL cosine x minifloat norms + bias)
//            -> digital peripherals (ReLU/pool/BN run exactly, costs charged)
//            -> online activation-context generation for the next CAM layer
//
// The simulation is *functional*: the tensor it returns is what the hardware
// would compute (including minifloat norm quantization, PWL cosine error and
// sense-amp quantization if enabled), so classification accuracy can be
// measured directly. Cycle/energy reports come from the same run.
//
// Two cycle presets (DESIGN.md §5, EXPERIMENTS.md):
//  * kConservative — engineering-estimate latencies from tech.hpp
//    (multi-cycle search window, FeFET write, pipeline drains, bit-serial
//    context generation);
//  * kIdealized — the paper's abstraction: 1-cycle O(1) search, writes and
//    context generation fully hidden behind the search pipeline.
//
// Since the engine split (see core/compiled_model.hpp), this class is a thin
// single-sample facade: it compiles the model into an immutable CompiledModel
// and runs every call through one embedded Worker. Batched / multi-threaded
// execution lives in core/engine.hpp (InferenceEngine) and can share the
// facade's CompiledModel via compiled().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_model.hpp"
#include "core/engine.hpp"

namespace deepcam::core {

class DeepCamAccelerator {
 public:
  /// Prepares the accelerator for `model`: builds one ContextGenerator per
  /// CAM-mapped layer and pre-hashes all weight contexts (the paper's
  /// offline software step). `model` must outlive the accelerator; it is
  /// only ever read.
  DeepCamAccelerator(const nn::Model& model, DeepCamConfig cfg);
  /// A temporary Model would dangle (the compilation stores a pointer to
  /// it) — reject it at compile time.
  DeepCamAccelerator(nn::Model&&, DeepCamConfig) = delete;

  const DeepCamConfig& config() const { return compiled_->config(); }

  /// The shared-immutable compilation backing this facade. Hand it to an
  /// InferenceEngine to run the same model batched across threads.
  const std::shared_ptr<const CompiledModel>& compiled() const {
    return compiled_;
  }

  /// Number of CAM-mapped (Conv2D/Linear) layers.
  std::size_t cam_layer_count() const { return compiled_->cam_layer_count(); }
  /// Names of the CAM-mapped layers, in execution order.
  std::vector<std::string> cam_layer_names() const {
    return compiled_->cam_layer_names();
  }
  /// Context length n of CAM layer `i`.
  std::size_t context_len(std::size_t i) const {
    return compiled_->context_len(i);
  }

  /// Runs one input (batch size must be 1). Returns the hardware-functional
  /// output logits; fills `report` if non-null.
  nn::Tensor run(const nn::Tensor& input, RunReport* report = nullptr) {
    return worker_.run(input, report);
  }

 private:
  std::shared_ptr<const CompiledModel> compiled_;
  Worker worker_;
};

}  // namespace deepcam::core
