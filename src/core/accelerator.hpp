// DeepCAM accelerator: full functional + cycle + energy simulation.
//
// Executes a CNN by replacing every Conv2D/Linear dot-product with the
// CAM-based approximate geometric dot-product pipeline:
//
//   contexts -> DynamicCam search (Hamming distances, O(1) per search)
//            -> PostProcessingUnit (PWL cosine x minifloat norms + bias)
//            -> digital peripherals (ReLU/pool/BN run exactly, costs charged)
//            -> online activation-context generation for the next CAM layer
//
// The simulation is *functional*: the tensor it returns is what the hardware
// would compute (including minifloat norm quantization, PWL cosine error and
// sense-amp quantization if enabled), so classification accuracy can be
// measured directly. Cycle/energy reports come from the same run.
//
// Two cycle presets (DESIGN.md §5, EXPERIMENTS.md):
//  * kConservative — engineering-estimate latencies from tech.hpp
//    (multi-cycle search window, FeFET write, pipeline drains, bit-serial
//    context generation);
//  * kIdealized — the paper's abstraction: 1-cycle O(1) search, writes and
//    context generation fully hidden behind the search pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cam/dynamic_cam.hpp"
#include "core/context.hpp"
#include "core/mapping.hpp"
#include "core/postproc.hpp"
#include "nn/model.hpp"

namespace deepcam::core {

enum class CyclePreset { kConservative, kIdealized };

struct DeepCamConfig {
  std::size_t cam_rows = 64;
  Dataflow dataflow = Dataflow::kActivationStationary;
  CyclePreset preset = CyclePreset::kConservative;
  cam::CellTech tech = cam::CellTech::kFeFET;
  cam::SenseAmpConfig sense = {};
  PostProcessingUnit::Options postproc = {};
  /// Hash length per CAM layer (bits, multiples of 256 up to 1024). Empty =
  /// homogeneous `default_hash_bits`.
  std::vector<std::size_t> layer_hash_bits = {};
  std::size_t default_hash_bits = hash::kMaxHashBits;
  std::uint64_t hash_seed = 42;
};

/// Per-CAM-layer simulation report.
struct LayerReport {
  std::string name;
  std::size_t patches = 0;       // P
  std::size_t kernels = 0;       // K
  std::size_t context_len = 0;   // n
  std::size_t hash_bits = 0;     // k
  MappingPlan plan;
  std::size_t cycles = 0;        // per chosen preset
  double cam_energy = 0.0;       // joules (search + write)
  double postproc_energy = 0.0;  // joules (cosine/mult/bias + peripherals)
  double ctxgen_energy = 0.0;    // joules (online context generation)

  double total_energy() const {
    return cam_energy + postproc_energy + ctxgen_energy;
  }
};

struct RunReport {
  std::vector<LayerReport> layers;
  std::size_t peripheral_cycles = 0;  // non-CAM layers (pool/ReLU/BN)

  std::size_t total_cycles() const;
  double total_energy() const;
  std::size_t total_searches() const;
  std::size_t total_dot_products() const;
  double mean_utilization() const;
  double time_seconds() const;  // at the 300 MHz system clock
  double cam_area_um2 = 0.0;
};

class DeepCamAccelerator {
 public:
  /// Prepares the accelerator for `model`: builds one ContextGenerator per
  /// CAM-mapped layer and pre-hashes all weight contexts (the paper's
  /// offline software step). `model` must outlive the accelerator.
  DeepCamAccelerator(nn::Model& model, DeepCamConfig cfg);

  const DeepCamConfig& config() const { return cfg_; }

  /// Number of CAM-mapped (Conv2D/Linear) layers.
  std::size_t cam_layer_count() const { return cam_layers_.size(); }
  /// Names of the CAM-mapped layers, in execution order.
  std::vector<std::string> cam_layer_names() const;
  /// Context length n of CAM layer `i`.
  std::size_t context_len(std::size_t i) const;

  /// Runs one input (batch size must be 1). Returns the hardware-functional
  /// output logits; fills `report` if non-null.
  nn::Tensor run(const nn::Tensor& input, RunReport* report = nullptr);

 private:
  struct CamLayer {
    std::size_t node_index;  // in the model graph
    std::unique_ptr<ContextGenerator> ctxgen;
    std::vector<Context> weight_ctx;  // pre-hashed kernels
  };

  std::size_t hash_bits_for(std::size_t cam_layer_idx) const;
  std::size_t search_cycles_for(std::size_t hash_bits) const;

  /// Simulates one CAM layer; writes dot-products into `out_flat` laid out
  /// as [kernel][patch]. Returns the layer report.
  LayerReport simulate_cam_layer(std::size_t cam_idx,
                                 const std::vector<Context>& act_ctx,
                                 const std::vector<float>& bias,
                                 bool online_ctxgen,
                                 std::vector<double>& out_flat);

  nn::Model& model_;
  DeepCamConfig cfg_;
  std::vector<CamLayer> cam_layers_;
  cam::DynamicCam cam_;
  PostProcessingUnit postproc_;
};

}  // namespace deepcam::core
