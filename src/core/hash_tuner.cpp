#include "core/hash_tuner.hpp"

#include <cmath>

#include "codelet/codelet.hpp"
#include "hash/cosine_approx.hpp"
#include "nn/pointwise.hpp"

namespace deepcam::core {

namespace {

/// CAM-mapped node indices of a model, in execution order.
std::vector<std::size_t> cam_nodes(const nn::Model& model) {
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const auto kind = model.layer(i).kind();
    if (kind == nn::LayerKind::kConv2D || kind == nn::LayerKind::kLinear)
      nodes.push_back(i);
  }
  return nodes;
}

/// Approximate outputs [K][P] of one CAM layer from pre-hashed contexts at
/// hash length k (software evaluation — identical math to the hardware).
std::vector<double> approx_layer_out(const ContextBatch& w_ctx,
                                     const ContextBatch& a_ctx,
                                     const std::vector<float>& bias,
                                     std::size_t k, const TunerConfig& cfg) {
  const std::size_t K = w_ctx.size();
  const std::size_t P = a_ctx.size();
  std::vector<double> out(K * P);
  // Row-blocked Hamming codelet over the activation batch's contiguous
  // signature arena: one dispatched call per weight context instead of P
  // per-pair hamming_prefix_words calls.
  std::vector<std::uint16_t> hd(P);
  for (std::size_t kk = 0; kk < K; ++kk) {
    const ContextRef w = w_ctx[kk];
    const double nw = cfg.minifloat_norms ? w.norm() : w.exact_norm;
    if (P > 0)
      codelet::kernels().hamming_many(w.sig, a_ctx.sig(0),
                                      a_ctx.words_per_sig(), P, k, hd.data());
    for (std::size_t p = 0; p < P; ++p) {
      const ContextRef a = a_ctx[p];
      const double na = cfg.minifloat_norms ? a.norm() : a.exact_norm;
      out[kk * P + p] = hash::approx_dot(nw, na, hd[p], k,
                                         cfg.use_pwl_cosine) +
                        static_cast<double>(bias[kk]);
    }
  }
  return out;
}

/// Re-evaluates graph nodes (from+1 .. end) after outs[from] was replaced.
nn::Tensor recompute_suffix(const nn::Model& model, const nn::Tensor& input,
                            std::vector<nn::Tensor>& outs, std::size_t from) {
  for (std::size_t i = from + 1; i < model.node_count(); ++i) {
    const auto& inputs = model.inputs_of(i);
    auto fetch = [&](int idx) -> const nn::Tensor& {
      return idx == nn::kModelInput ? input
                                    : outs[static_cast<std::size_t>(idx)];
    };
    if (inputs.size() == 2) {
      const auto* add = dynamic_cast<const nn::Add*>(&model.layer(i));
      DEEPCAM_CHECK(add != nullptr);
      outs[i] = add->forward2(fetch(inputs[0]), fetch(inputs[1]));
    } else {
      outs[i] = model.layer(i).infer(fetch(inputs[0]));
    }
  }
  return outs.back();
}

struct LayerContexts {
  ContextBatch weights;
  std::vector<ContextBatch> activations;  // per probe
  std::vector<float> bias;
  std::vector<const nn::Tensor*> exact_out;  // per probe (borrowed)
  nn::Shape out_shape;
};

}  // namespace

double TuneResult::mean_hash_bits() const {
  if (hash_bits.empty()) return 0.0;
  double s = 0.0;
  for (auto k : hash_bits) s += static_cast<double>(k);
  return s / static_cast<double>(hash_bits.size());
}

TuneResult tune_hash_lengths(const nn::Model& model,
                             const std::vector<nn::Tensor>& probes,
                             const TunerConfig& cfg) {
  DEEPCAM_CHECK_MSG(!probes.empty(), "tuner needs probe inputs");
  const auto nodes = cam_nodes(model);

  // Exact forward activations per probe (shared by all layers/modes).
  std::vector<std::vector<nn::Tensor>> exact;
  exact.reserve(probes.size());
  for (const auto& p : probes) exact.push_back(model.infer_all(p));

  TuneResult result;
  for (std::size_t li = 0; li < nodes.size(); ++li) {
    const std::size_t node = nodes[li];
    const nn::Layer& layer = model.layer(node);
    const int in_node = model.inputs_of(node)[0];

    // Build contexts once per probe; every candidate k reuses the prefixes.
    LayerContexts lc;
    std::unique_ptr<ContextGenerator> gen;
    if (layer.kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      gen = std::make_unique<ContextGenerator>(
          conv.spec().patch_len(), layer_hash_seed(cfg.hash_seed, node));
      lc.weights = gen->weight_context_batch(conv);
      lc.bias = conv.bias();
      for (std::size_t pi = 0; pi < probes.size(); ++pi) {
        const nn::Tensor& in = in_node == nn::kModelInput
                                   ? probes[pi]
                                   : exact[pi][static_cast<std::size_t>(in_node)];
        ContextBatch acts;
        gen->activation_contexts_into(in, conv.spec(), acts);
        acts.release_scratch();  // cached for the whole k sweep
        lc.activations.push_back(std::move(acts));
        lc.exact_out.push_back(&exact[pi][node]);
      }
    } else {
      const auto& fc = static_cast<const nn::Linear&>(layer);
      gen = std::make_unique<ContextGenerator>(
          fc.in_features(), layer_hash_seed(cfg.hash_seed, node));
      lc.weights = gen->weight_context_batch(fc);
      lc.bias = fc.bias();
      for (std::size_t pi = 0; pi < probes.size(); ++pi) {
        const nn::Tensor& in = in_node == nn::kModelInput
                                   ? probes[pi]
                                   : exact[pi][static_cast<std::size_t>(in_node)];
        ContextBatch acts;
        gen->activation_context_flat_into(in, acts);
        acts.release_scratch();
        lc.activations.push_back(std::move(acts));
        lc.exact_out.push_back(&exact[pi][node]);
      }
    }

    LayerSensitivity sens;
    sens.layer_name = layer.name();
    sens.context_len = gen->input_dim();
    sens.chosen_bits = hash::kMaxHashBits;

    bool chosen = false;
    for (int ki = 0; ki < hash::kNumHashLengths; ++ki) {
      const std::size_t k = static_cast<std::size_t>(hash::kHashLengths[ki]);
      double metric;
      if (cfg.mode == TunerMode::kLayerLocal) {
        // Mean relative L2 error over probes.
        double err_sum = 0.0;
        for (std::size_t pi = 0; pi < probes.size(); ++pi) {
          const auto approx = approx_layer_out(lc.weights, lc.activations[pi],
                                               lc.bias, k, cfg);
          const nn::Tensor& ref = *lc.exact_out[pi];
          DEEPCAM_CHECK(ref.numel() == approx.size());
          double num = 0.0, den = 0.0;
          for (std::size_t i = 0; i < approx.size(); ++i) {
            const double d = approx[i] - static_cast<double>(ref[i]);
            num += d * d;
            den += static_cast<double>(ref[i]) * ref[i];
          }
          err_sum += std::sqrt(num / (den + 1e-30));
        }
        metric = err_sum / static_cast<double>(probes.size());
        if (!chosen && metric <= cfg.max_rel_error) {
          sens.chosen_bits = k;
          chosen = true;
        }
      } else {
        // End-to-end Top-1 agreement with only this layer approximated.
        std::size_t agree = 0;
        for (std::size_t pi = 0; pi < probes.size(); ++pi) {
          const auto approx = approx_layer_out(lc.weights, lc.activations[pi],
                                               lc.bias, k, cfg);
          std::vector<nn::Tensor> outs = exact[pi];
          nn::Tensor spliced(lc.exact_out[pi]->shape());
          for (std::size_t i = 0; i < spliced.numel(); ++i)
            spliced[i] = static_cast<float>(approx[i]);
          outs[node] = std::move(spliced);
          const nn::Tensor final_out =
              recompute_suffix(model, probes[pi], outs, node);
          if (nn::argmax_class(final_out) ==
              nn::argmax_class(exact[pi].back()))
            ++agree;
        }
        metric = static_cast<double>(agree) /
                 static_cast<double>(probes.size());
        if (!chosen && metric >= cfg.min_agreement) {
          sens.chosen_bits = k;
          chosen = true;
        }
      }
      sens.metric.push_back(metric);
    }
    result.hash_bits.push_back(sens.chosen_bits);
    result.layers.push_back(std::move(sens));
  }

  if (cfg.joint_refine) {
    // Greedy repair: per-layer choices compound, so validate the joint
    // configuration and lengthen the weakest layer until the end-to-end
    // agreement target is met (or everything is maxed out).
    DeepCamConfig dc;
    dc.hash_seed = cfg.hash_seed;
    dc.postproc.use_pwl_cosine = cfg.use_pwl_cosine;
    dc.postproc.minifloat_norms = cfg.minifloat_norms;
    for (int iter = 0; iter < 4 * static_cast<int>(nodes.size()); ++iter) {
      dc.layer_hash_bits = result.hash_bits;
      if (deepcam_agreement(model, probes, dc) >= cfg.min_agreement) break;
      // Most sensitive layer = worst metric at its current hash level,
      // among layers that can still grow.
      std::size_t worst = result.hash_bits.size();
      double worst_metric = 0.0;
      for (std::size_t i = 0; i < result.hash_bits.size(); ++i) {
        if (result.hash_bits[i] >= hash::kMaxHashBits) continue;
        const std::size_t level = result.hash_bits[i] / 256 - 1;
        const double m = result.layers[i].metric[level];
        // kLayerLocal: high error = sensitive. kEndToEnd: low agreement =
        // sensitive. Normalize to "badness".
        const double badness =
            cfg.mode == TunerMode::kLayerLocal ? m : 1.0 - m;
        if (worst == result.hash_bits.size() || badness > worst_metric) {
          worst = i;
          worst_metric = badness;
        }
      }
      if (worst == result.hash_bits.size()) break;  // all maxed
      result.hash_bits[worst] += 256;
      result.layers[worst].chosen_bits = result.hash_bits[worst];
    }
  }
  return result;
}

double deepcam_agreement(const nn::Model& model,
                         const std::vector<nn::Tensor>& probes,
                         const DeepCamConfig& cfg) {
  DEEPCAM_CHECK(!probes.empty());
  DeepCamAccelerator acc(model, cfg);
  std::size_t agree = 0;
  for (const auto& p : probes) {
    const nn::Tensor ref = model.infer(p);
    const nn::Tensor dc = acc.run(p);
    if (nn::argmax_class(ref) == nn::argmax_class(dc)) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(probes.size());
}

}  // namespace deepcam::core
