// Report serialization: CSV and human-readable summaries of RunReport.
//
// The accelerator's RunReport is the interface between simulation and
// analysis; these helpers export it for spreadsheets/plotting pipelines
// (CSV) and for log files (summary). Both are pure functions of the report.
#pragma once

#include <string>

#include "core/accelerator.hpp"

namespace deepcam::core {

/// Per-layer CSV with header:
/// layer,patches,kernels,context_len,hash_bits,passes,searches,rows_written,
/// utilization,dot_products,cycles,cam_energy_j,postproc_energy_j,
/// ctxgen_energy_j
std::string report_to_csv(const RunReport& report);

/// Multi-line human-readable summary (totals + per-layer one-liners).
std::string report_summary(const RunReport& report);

}  // namespace deepcam::core
