// Report serialization: CSV and human-readable summaries of RunReport.
//
// The accelerator's RunReport is the interface between simulation and
// analysis; these helpers export it for spreadsheets/plotting pipelines
// (CSV) and for log files (summary). Both are pure functions of the report.
#pragma once

#include <string>

#include "common/json.hpp"
#include "core/accelerator.hpp"
#include "core/hash_tuner.hpp"

namespace deepcam::core {

/// Per-layer CSV with header:
/// layer,patches,kernels,context_len,hash_bits,passes,searches,rows_written,
/// utilization,dot_products,cycles,cam_energy_j,postproc_energy_j,
/// ctxgen_energy_j
std::string report_to_csv(const RunReport& report);

/// Multi-line human-readable summary (totals + per-layer one-liners).
std::string report_summary(const RunReport& report);

/// Appends one JSON object for `report` (totals + per-layer array) to an
/// in-progress JsonWriter — the shared building block for every artifact
/// that embeds a run report (server summaries, BENCH_pr4.json).
void run_report_json(JsonWriter& json, const RunReport& report);

/// Appends one JSON object for a VHL TuneResult: mean hash bits, the chosen
/// per-layer lengths and each layer's sensitivity metrics — what the
/// compare/tune outcomes embed.
void tune_result_json(JsonWriter& json, const TuneResult& result);

/// Appends the BatchReport object (samples/threads/wall seconds, host +
/// simulated throughput, aggregate and optionally per-sample reports) to an
/// in-progress writer — embeddable into larger artifacts (the facade's
/// Outcome JSON).
void batch_report_json(JsonWriter& json, const BatchReport& report,
                       bool include_per_sample = false);

/// One self-contained JSON object for a BatchReport: samples/threads/wall
/// seconds, host + simulated throughput, the aggregate run report and
/// (optionally) the per-sample reports. Locale-proof, byte-stable.
std::string batch_report_to_json(const BatchReport& report,
                                 bool include_per_sample = false);

}  // namespace deepcam::core
