// Dataflow mapping arithmetic (paper §IV-B).
//
// A CAM-mapped layer is characterized by P (activation patches), K (weight
// kernels) and the CAM row count R. The two dataflows are:
//
//  * weight-stationary (WS): kernels live in CAM rows, patches are search
//    keys. passes = ceil(K/R); searches = P per pass; rows used = K spread
//    over the passes. Utilization suffers when K << R (the paper's 9.4%
//    LeNet example).
//
//  * activation-stationary (AS): patches live in rows, kernels are keys.
//    passes = ceil(P/R); searches = K per pass. Utilization ~100% whenever
//    P >> R, which is why AS wins on convolutions.
//
// These closed forms drive both the cycle accounting and the Fig. 9
// utilization plot, and are unit-tested against brute-force enumeration.
#pragma once

#include <cstddef>

namespace deepcam::core {

enum class Dataflow { kWeightStationary, kActivationStationary };

const char* dataflow_name(Dataflow df);

/// Shape of one CAM-layer workload.
struct LayerWork {
  std::size_t patches = 0;  // P: activation contexts
  std::size_t kernels = 0;  // K: weight contexts
};

/// Result of mapping a LayerWork onto a CAM with `rows` rows.
struct MappingPlan {
  std::size_t passes = 0;        // CAM reload generations
  std::size_t searches = 0;      // total search operations
  std::size_t rows_written = 0;  // total CAM row programs
  double utilization = 0.0;      // mean fraction of rows doing useful work
  /// Dot-products produced (always P*K — sanity invariant).
  std::size_t dot_products = 0;
};

/// Computes the mapping plan for a dataflow.
MappingPlan plan_mapping(const LayerWork& work, std::size_t rows, Dataflow df);

}  // namespace deepcam::core
