#include "core/report_io.hpp"

#include <cstdio>
#include <sstream>

namespace deepcam::core {

std::string report_to_csv(const RunReport& report) {
  std::ostringstream os;
  os << "layer,patches,kernels,context_len,hash_bits,passes,searches,"
        "rows_written,utilization,dot_products,cycles,cam_energy_j,"
        "postproc_energy_j,ctxgen_energy_j\n";
  char buf[128];
  for (const auto& l : report.layers) {
    os << l.name << ',' << l.patches << ',' << l.kernels << ','
       << l.context_len << ',' << l.hash_bits << ',' << l.plan.passes << ','
       << l.plan.searches << ',' << l.plan.rows_written << ',';
    std::snprintf(buf, sizeof buf, "%.6f", l.plan.utilization);
    os << buf << ',' << l.plan.dot_products << ',' << l.cycles << ',';
    std::snprintf(buf, sizeof buf, "%.6e,%.6e,%.6e", l.cam_energy,
                  l.postproc_energy, l.ctxgen_energy);
    os << buf << '\n';
  }
  return os.str();
}

std::string report_summary(const RunReport& report) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "DeepCAM run: %zu CAM layers, %zu searches, %zu dot-products"
                "\n  cycles: %zu (%.3f us @300 MHz)  energy: %.3f uJ  "
                "mean utilization: %.1f%%  CAM area: %.0f um^2\n",
                report.layers.size(), report.total_searches(),
                report.total_dot_products(), report.total_cycles(),
                report.time_seconds() * 1e6, report.total_energy() * 1e6,
                100.0 * report.mean_utilization(), report.cam_area_um2);
  os << buf;
  for (const auto& l : report.layers) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s P=%-5zu K=%-5zu n=%-5zu k=%-4zu util=%5.1f%% "
                  "cycles=%-8zu energy=%.3e J\n",
                  l.name.c_str(), l.patches, l.kernels, l.context_len,
                  l.hash_bits, 100.0 * l.plan.utilization, l.cycles,
                  l.total_energy());
    os << buf;
  }
  return os.str();
}

}  // namespace deepcam::core
