#include "core/report_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/format.hpp"

namespace deepcam::core {

std::string report_to_csv(const RunReport& report) {
  std::ostringstream os;
  os << "layer,patches,kernels,context_len,hash_bits,passes,searches,"
        "rows_written,utilization,dot_products,cycles,cam_energy_j,"
        "postproc_energy_j,ctxgen_energy_j\n";
  for (const auto& l : report.layers) {
    os << l.name << ',' << l.patches << ',' << l.kernels << ','
       << l.context_len << ',' << l.hash_bits << ',' << l.plan.passes << ','
       << l.plan.searches << ',' << l.plan.rows_written << ','
       << format_fixed(l.plan.utilization, 6) << ',' << l.plan.dot_products
       << ',' << l.cycles << ',' << format_sci(l.cam_energy, 6) << ','
       << format_sci(l.postproc_energy, 6) << ','
       << format_sci(l.ctxgen_energy, 6) << '\n';
  }
  return os.str();
}

std::string report_summary(const RunReport& report) {
  std::ostringstream os;
  char buf[256];
  // Float conversions go through format.hpp (locale-proof); snprintf only
  // assembles integers and pre-formatted strings.
  std::snprintf(buf, sizeof buf,
                "DeepCAM run: %zu CAM layers, %zu searches, %zu dot-products"
                "\n  cycles: %zu (%s us @300 MHz)  energy: %s uJ  "
                "mean utilization: %s%%  CAM area: %s um^2\n",
                report.layers.size(), report.total_searches(),
                report.total_dot_products(), report.total_cycles(),
                format_fixed(report.time_seconds() * 1e6, 3).c_str(),
                format_fixed(report.total_energy() * 1e6, 3).c_str(),
                format_fixed(100.0 * report.mean_utilization(), 1).c_str(),
                format_fixed(report.cam_area_um2, 0).c_str());
  os << buf;
  for (const auto& l : report.layers) {
    std::snprintf(
        buf, sizeof buf,
        "  %-12s P=%-5zu K=%-5zu n=%-5zu k=%-4zu util=%s%% "
        "cycles=%-8zu energy=%s J\n",
        l.name.c_str(), l.patches, l.kernels, l.context_len, l.hash_bits,
        pad_left(format_fixed(100.0 * l.plan.utilization, 1), 5).c_str(),
        l.cycles, format_sci(l.total_energy(), 3).c_str());
    os << buf;
  }
  return os.str();
}

void run_report_json(JsonWriter& json, const RunReport& report) {
  json.begin_object();
  json.kv("total_cycles", report.total_cycles());
  json.kv("peripheral_cycles", report.peripheral_cycles);
  json.kv("total_energy_j", report.total_energy());
  json.kv("total_searches", report.total_searches());
  json.kv("total_dot_products", report.total_dot_products());
  json.kv("mean_utilization", report.mean_utilization());
  json.kv("time_seconds", report.time_seconds());
  json.kv("cam_area_um2", report.cam_area_um2);
  json.key("layers").begin_array();
  for (const auto& l : report.layers) {
    json.begin_object();
    json.kv("name", l.name);
    json.kv("patches", l.patches);
    json.kv("kernels", l.kernels);
    json.kv("context_len", l.context_len);
    json.kv("hash_bits", l.hash_bits);
    json.kv("passes", l.plan.passes);
    json.kv("searches", l.plan.searches);
    json.kv("rows_written", l.plan.rows_written);
    json.kv("utilization", l.plan.utilization);
    json.kv("dot_products", l.plan.dot_products);
    json.kv("cycles", l.cycles);
    json.kv("cam_energy_j", l.cam_energy);
    json.kv("postproc_energy_j", l.postproc_energy);
    json.kv("ctxgen_energy_j", l.ctxgen_energy);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void tune_result_json(JsonWriter& json, const TuneResult& result) {
  json.begin_object();
  json.kv("mean_hash_bits", result.mean_hash_bits());
  json.key("hash_bits").begin_array();
  for (const std::size_t k : result.hash_bits) json.value(k);
  json.end_array();
  json.key("layers").begin_array();
  for (const auto& l : result.layers) {
    json.begin_object();
    json.kv("layer", l.layer_name);
    json.kv("context_len", l.context_len);
    json.kv("chosen_bits", l.chosen_bits);
    json.key("metric").begin_array();
    for (const double m : l.metric) json.value(m);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void batch_report_json(JsonWriter& json, const BatchReport& report,
                       bool include_per_sample) {
  json.begin_object();
  json.kv("samples", report.samples);
  json.kv("threads", report.threads);
  json.kv("wall_seconds", report.wall_seconds);
  json.kv("samples_per_second", report.throughput());
  json.kv("simulated_samples_per_second", report.simulated_throughput());
  json.key("aggregate");
  run_report_json(json, report.aggregate);
  if (include_per_sample) {
    json.key("per_sample").begin_array();
    for (const auto& r : report.per_sample) run_report_json(json, r);
    json.end_array();
  }
  json.end_object();
}

std::string batch_report_to_json(const BatchReport& report,
                                 bool include_per_sample) {
  JsonWriter json;
  batch_report_json(json, report, include_per_sample);
  return json.str();
}

}  // namespace deepcam::core
