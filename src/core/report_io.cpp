#include "core/report_io.hpp"

#include <cstdio>
#include <sstream>

#include "common/format.hpp"

namespace deepcam::core {

std::string report_to_csv(const RunReport& report) {
  std::ostringstream os;
  os << "layer,patches,kernels,context_len,hash_bits,passes,searches,"
        "rows_written,utilization,dot_products,cycles,cam_energy_j,"
        "postproc_energy_j,ctxgen_energy_j\n";
  for (const auto& l : report.layers) {
    os << l.name << ',' << l.patches << ',' << l.kernels << ','
       << l.context_len << ',' << l.hash_bits << ',' << l.plan.passes << ','
       << l.plan.searches << ',' << l.plan.rows_written << ','
       << format_fixed(l.plan.utilization, 6) << ',' << l.plan.dot_products
       << ',' << l.cycles << ',' << format_sci(l.cam_energy, 6) << ','
       << format_sci(l.postproc_energy, 6) << ','
       << format_sci(l.ctxgen_energy, 6) << '\n';
  }
  return os.str();
}

std::string report_summary(const RunReport& report) {
  std::ostringstream os;
  char buf[256];
  // Float conversions go through format.hpp (locale-proof); snprintf only
  // assembles integers and pre-formatted strings.
  std::snprintf(buf, sizeof buf,
                "DeepCAM run: %zu CAM layers, %zu searches, %zu dot-products"
                "\n  cycles: %zu (%s us @300 MHz)  energy: %s uJ  "
                "mean utilization: %s%%  CAM area: %s um^2\n",
                report.layers.size(), report.total_searches(),
                report.total_dot_products(), report.total_cycles(),
                format_fixed(report.time_seconds() * 1e6, 3).c_str(),
                format_fixed(report.total_energy() * 1e6, 3).c_str(),
                format_fixed(100.0 * report.mean_utilization(), 1).c_str(),
                format_fixed(report.cam_area_um2, 0).c_str());
  os << buf;
  for (const auto& l : report.layers) {
    std::snprintf(
        buf, sizeof buf,
        "  %-12s P=%-5zu K=%-5zu n=%-5zu k=%-4zu util=%s%% "
        "cycles=%-8zu energy=%s J\n",
        l.name.c_str(), l.patches, l.kernels, l.context_len, l.hash_bits,
        pad_left(format_fixed(100.0 * l.plan.utilization, 1), 5).c_str(),
        l.cycles, format_sci(l.total_energy(), 3).c_str());
    os << buf;
  }
  return os.str();
}

}  // namespace deepcam::core
