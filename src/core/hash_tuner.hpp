// Variable hash length (VHL) tuner (paper §III-A, Fig. 5).
//
// "Each CNN layer requires a certain minimum hash length to maintain the
// overall classification accuracy... Some layers are sensitive to a smaller
// hash length, while others are very robust." The tuner finds, per CAM
// layer, the smallest k in {256, 512, 768, 1024} whose approximation error
// is acceptable. Two modes:
//
//  * kLayerLocal — sensitivity measured as the relative L2 error between the
//    layer's approximate and exact outputs on probe inputs (cheap; one hash
//    pass per layer per probe — signatures are hashed once at 1024 bits and
//    every k is evaluated from prefixes).
//  * kEndToEnd — sensitivity measured as Top-1 agreement with the FP32 model
//    when ONLY this layer is approximated (the paper's criterion; costs a
//    model forward per (layer, k, probe), so use it on LeNet-scale nets).
//
// The result is the per-layer hash map consumed by DeepCamConfig.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "nn/model.hpp"

namespace deepcam::core {

enum class TunerMode { kLayerLocal, kEndToEnd };

struct TunerConfig {
  TunerMode mode = TunerMode::kLayerLocal;
  /// Max acceptable relative L2 output error (kLayerLocal mode).
  double max_rel_error = 0.25;
  /// Min acceptable Top-1 agreement with FP32 (kEndToEnd mode).
  double min_agreement = 0.95;
  /// Greedy joint refinement: per-layer criteria ignore error compounding
  /// across layers, so after the per-layer pass the full VHL configuration
  /// is validated end-to-end on the probes; while agreement stays below
  /// `min_agreement`, the most sensitive non-maxed layer is bumped one hash
  /// level. Costs a few full DeepCAM runs; recommended for kEndToEnd.
  bool joint_refine = false;
  std::uint64_t hash_seed = 42;
  bool use_pwl_cosine = true;
  bool minifloat_norms = true;
};

struct LayerSensitivity {
  std::string layer_name;
  std::size_t context_len = 0;
  /// Metric per candidate hash length (rel. error or agreement).
  std::vector<double> metric;
  std::size_t chosen_bits = hash::kMaxHashBits;
};

struct TuneResult {
  std::vector<LayerSensitivity> layers;
  /// Per-CAM-layer hash lengths, ready for DeepCamConfig::layer_hash_bits.
  std::vector<std::size_t> hash_bits;

  double mean_hash_bits() const;
};

/// Runs the tuner over `probes` (each a {1,C,H,W} input). The model is only
/// read (const inference + weight hashing): planning never perturbs weights.
TuneResult tune_hash_lengths(const nn::Model& model,
                             const std::vector<nn::Tensor>& probes,
                             const TunerConfig& cfg);

/// Top-1 agreement between the FP32 model and its DeepCAM execution over
/// `probes` — the Fig. 5 "BL vs DC" fidelity metric for untrained nets.
double deepcam_agreement(const nn::Model& model,
                         const std::vector<nn::Tensor>& probes,
                         const DeepCamConfig& cfg);

}  // namespace deepcam::core
