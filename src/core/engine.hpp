// Batched multi-threaded DeepCAM inference engine.
//
// Worker owns the per-run mutable half of the simulator state — a DynamicCam
// instance, a PostProcessingUnit, and reusable search/scratch buffers — and
// executes single samples against a shared-immutable CompiledModel (see
// core/compiled_model.hpp for the architecture overview).
//
// InferenceEngine owns a std::thread pool with one Worker per thread and a
// FIFO of in-flight batches. submit() enqueues a batch without blocking and
// returns a BatchFuture; each batch carries its own completion state, so any
// number of batches can be in flight concurrently and their samples drain
// through the same pool in submission order (the online serving layer in
// src/serve pipelines micro-batches through exactly this path). run_batch()
// is a thin submit()+get() wrapper.
//
// Determinism contract: a sample's logits and its RunReport depend only on
// (CompiledModel, input) — Workers reset their hardware counters at the
// start of every run, all randomness is seeded at compile time, and the
// per-sample reports are merged into the BatchReport in sample order — so
// run_batch() is bitwise-reproducible for any thread count and any number of
// concurrently in-flight batches, and identical to running the samples
// sequentially through DeepCamAccelerator::run.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cam/dynamic_cam.hpp"
#include "core/compiled_model.hpp"
#include "core/postproc.hpp"
#include "obs/trace.hpp"

namespace deepcam::core {

/// Per-run mutable execution state: one CAM array, one post-processing unit
/// and the scratch buffers a single in-flight sample needs. NOT thread-safe
/// itself — the engine gives each thread its own Worker; sharing is done at
/// the CompiledModel level.
class Worker {
 public:
  /// `compiled` must outlive the worker.
  explicit Worker(const CompiledModel& compiled);

  const CompiledModel& compiled() const { return *compiled_; }

  /// Runs one input (batch size must be 1). Returns the hardware-functional
  /// output logits; fills `report` if non-null. Deterministic: the result
  /// and report depend only on (CompiledModel, input), never on what this
  /// worker executed before.
  nn::Tensor run(const nn::Tensor& input, RunReport* report = nullptr);

 private:
  /// Simulates one CAM layer; writes dot-products into `flat_` laid out as
  /// [kernel][patch]. Returns the layer report.
  LayerReport simulate_cam_layer(std::size_t cam_idx,
                                 const ContextBatch& act_ctx,
                                 bool online_ctxgen);

  const CompiledModel* compiled_;
  cam::DynamicCam cam_;
  PostProcessingUnit postproc_;
  // Reusable scratch (per-run buffers; avoid per-search/per-layer heap
  // allocation on the hot path). act_ctx_ is the SoA arena the online
  // context generator fills layer after layer, sample after sample; flat_
  // grows monotonically and is fully overwritten each layer, so it is never
  // zero-filled.
  ContextBatch act_ctx_;
  cam::DynamicCam::FlatSearchResult search_buf_;
  std::vector<double> flat_;
  std::vector<nn::Tensor> outs_;
};

/// Aggregated result of one run_batch() / BatchFuture::get() call.
struct BatchReport {
  /// Per-sample reports, in input order.
  std::vector<RunReport> per_sample;
  /// Deterministic sample-order merge of `per_sample`: layer reports carry
  /// summed cycles/energy/plan totals across the batch and peripheral
  /// cycles accumulate; cam_area_um2 stays the (shared) array's area, not
  /// a sum.
  RunReport aggregate;
  std::size_t samples = 0;
  std::size_t threads = 0;      // pool size used
  double wall_seconds = 0.0;    // host wall-clock, submit to completion

  /// Host throughput in samples per second.
  double throughput() const {
    return wall_seconds > 0.0
               ? static_cast<double>(samples) / wall_seconds
               : 0.0;
  }
  /// Simulated-hardware throughput assuming one CAM pipeline per thread.
  double simulated_throughput() const;
};

namespace detail {

/// Completion state of one in-flight batch. Owned jointly by the engine's
/// FIFO (until all samples are dispatched) and the BatchFuture; every field
/// is guarded by the engine's mutex.
struct BatchState {
  // Either the batch owns its inputs (submit) or borrows the caller's
  // vector, which must stay alive until completion (run_batch wrapper).
  std::vector<nn::Tensor> owned_inputs;
  const std::vector<nn::Tensor>* inputs = nullptr;
  std::vector<nn::Tensor> outputs;
  std::vector<RunReport> reports;
  std::size_t next_sample = 0;    // first undispatched sample
  std::size_t pending = 0;        // dispatched or undispatched samples left
  // Error of the lowest-index failing sample, so which exception get()
  // rethrows does not depend on thread-completion order.
  std::exception_ptr error;
  std::size_t error_sample = 0;
  bool done = false;
  std::chrono::steady_clock::time_point t_submit;
  double wall_seconds = 0.0;
  // Trace identity the submitting scope attached (obs::kNoId = untraced);
  // worker threads re-install it via ScopedTraceTag per sample.
  std::uint64_t trace_tag = obs::kNoId;
};

}  // namespace detail

class InferenceEngine;

/// Handle to one submitted batch. get() blocks until every sample of the
/// batch completed, rethrows the lowest-index failing sample's error, and
/// returns the logits in input order (one-shot: the future is empty
/// afterwards). Futures must be consumed before the engine is destroyed.
class BatchFuture {
 public:
  BatchFuture() = default;

  /// True while a result (or error) can still be collected.
  bool valid() const { return state_ != nullptr; }
  /// True once every sample of the batch completed (never blocks).
  bool ready() const;
  /// Blocks until the batch completed (does not consume the result).
  void wait() const;
  /// Bounded wait: true once the batch completed, false on timeout. The
  /// serving layer's request-timeout loop polls this instead of wait() so
  /// it can cancel() a batch whose deadlines lapsed while queued.
  bool wait_for(std::chrono::nanoseconds timeout) const;
  /// Cancels the batch iff no sample of it has been dispatched yet:
  /// removes it from the engine FIFO and completes it with an Error
  /// ("batch cancelled"), which get() will rethrow. Returns false — and
  /// does nothing — once execution started (or finished): partial results
  /// are never torn down. The future stays valid either way.
  bool cancel();
  /// Blocks, then returns the logits in input order; fills `report` if
  /// non-null. Rethrows the lowest-index failing sample's exception.
  std::vector<nn::Tensor> get(BatchReport* report = nullptr);

 private:
  friend class InferenceEngine;
  BatchFuture(InferenceEngine* engine,
              std::shared_ptr<detail::BatchState> state)
      : engine_(engine), state_(std::move(state)) {}

  InferenceEngine* engine_ = nullptr;
  std::shared_ptr<detail::BatchState> state_;
};

/// Thread-pooled batch runner over one shared CompiledModel.
class InferenceEngine {
 public:
  /// `compiled` is shared (kept alive) by the engine. `num_threads` = 0
  /// selects std::thread::hardware_concurrency().
  explicit InferenceEngine(std::shared_ptr<const CompiledModel> compiled,
                           std::size_t num_threads = 0);
  /// Drains every still-in-flight batch, then joins the pool. Outstanding
  /// BatchFutures keep their shared state alive but must not be touched
  /// after the engine is gone.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  std::size_t thread_count() const { return threads_.size(); }
  const CompiledModel& compiled() const { return *compiled_; }

  /// Enqueues `inputs` (each a batch-1 tensor) as one batch and returns
  /// immediately. Batches dispatch FIFO, but samples of later batches start
  /// as soon as workers free up — multiple batches overlap in flight.
  /// `trace_tag` labels the batch's engine/kernel spans with the caller's
  /// request identity (obs::kNoId = untraced).
  BatchFuture submit(std::vector<nn::Tensor> inputs,
                     std::uint64_t trace_tag = obs::kNoId);

  /// Batches currently submitted but not yet completed.
  std::size_t in_flight_batches() const;

  /// Runs every input (each a batch-1 tensor) through the worker pool and
  /// waits. Returns the logits in input order; fills `report` if non-null.
  /// Equivalent to submit(inputs).get(report) minus the input copy; safe to
  /// call from any number of threads concurrently.
  std::vector<nn::Tensor> run_batch(const std::vector<nn::Tensor>& inputs,
                                    BatchReport* report = nullptr);

  /// Convenience overload: splits a batched {N,C,H,W} tensor into N samples.
  std::vector<nn::Tensor> run_batch(const nn::Tensor& batched,
                                    BatchReport* report = nullptr);

 private:
  friend class BatchFuture;

  void worker_loop(std::size_t worker_idx);
  /// Enqueues a prepared BatchState (lock taken inside).
  void enqueue(const std::shared_ptr<detail::BatchState>& state);
  /// Blocks until `state->done`, then rethrows its recorded error (if any)
  /// and fills `report`/returns outputs exactly like the old run_batch.
  std::vector<nn::Tensor> collect(detail::BatchState& state,
                                  BatchReport* report);

  std::shared_ptr<const CompiledModel> compiled_;
  std::vector<std::unique_ptr<Worker>> workers_;  // one per thread
  std::vector<std::thread> threads_;

  // Batch FIFO + completion state, guarded by mu_. queue_ holds batches
  // with undispatched samples; in_flight_ counts submitted-but-not-done
  // batches (so it can exceed queue_.size() while tails are executing).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for queued samples
  std::condition_variable done_cv_;   // futures wait for their batch
  std::deque<std::shared_ptr<detail::BatchState>> queue_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace deepcam::core
