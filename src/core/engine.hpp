// Batched multi-threaded DeepCAM inference engine.
//
// Worker owns the per-run mutable half of the simulator state — a DynamicCam
// instance, a PostProcessingUnit, and reusable search/scratch buffers — and
// executes single samples against a shared-immutable CompiledModel (see
// core/compiled_model.hpp for the architecture overview).
//
// InferenceEngine owns a std::thread pool with one Worker per thread and
// dispatches the samples of run_batch() to whichever worker is free.
// Determinism contract: a sample's logits and its RunReport depend only on
// (CompiledModel, input) — Workers reset their hardware counters at the
// start of every run, all randomness is seeded at compile time, and the
// per-sample reports are merged into the BatchReport in sample order — so
// run_batch() is bitwise-reproducible for any thread count, and identical
// to running the samples sequentially through DeepCamAccelerator::run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cam/dynamic_cam.hpp"
#include "core/compiled_model.hpp"
#include "core/postproc.hpp"

namespace deepcam::core {

/// Per-run mutable execution state: one CAM array, one post-processing unit
/// and the scratch buffers a single in-flight sample needs. NOT thread-safe
/// itself — the engine gives each thread its own Worker; sharing is done at
/// the CompiledModel level.
class Worker {
 public:
  /// `compiled` must outlive the worker.
  explicit Worker(const CompiledModel& compiled);

  const CompiledModel& compiled() const { return *compiled_; }

  /// Runs one input (batch size must be 1). Returns the hardware-functional
  /// output logits; fills `report` if non-null. Deterministic: the result
  /// and report depend only on (CompiledModel, input), never on what this
  /// worker executed before.
  nn::Tensor run(const nn::Tensor& input, RunReport* report = nullptr);

 private:
  /// Simulates one CAM layer; writes dot-products into `flat_` laid out as
  /// [kernel][patch]. Returns the layer report.
  LayerReport simulate_cam_layer(std::size_t cam_idx,
                                 const ContextBatch& act_ctx,
                                 bool online_ctxgen);

  const CompiledModel* compiled_;
  cam::DynamicCam cam_;
  PostProcessingUnit postproc_;
  // Reusable scratch (per-run buffers; avoid per-search/per-layer heap
  // allocation on the hot path). act_ctx_ is the SoA arena the online
  // context generator fills layer after layer, sample after sample; flat_
  // grows monotonically and is fully overwritten each layer, so it is never
  // zero-filled.
  ContextBatch act_ctx_;
  cam::DynamicCam::FlatSearchResult search_buf_;
  std::vector<double> flat_;
  std::vector<nn::Tensor> outs_;
};

/// Aggregated result of one run_batch() call.
struct BatchReport {
  /// Per-sample reports, in input order.
  std::vector<RunReport> per_sample;
  /// Deterministic sample-order merge of `per_sample`: layer reports carry
  /// summed cycles/energy/plan totals across the batch and peripheral
  /// cycles accumulate; cam_area_um2 stays the (shared) array's area, not
  /// a sum.
  RunReport aggregate;
  std::size_t samples = 0;
  std::size_t threads = 0;      // pool size used
  double wall_seconds = 0.0;    // host wall-clock of the batch

  /// Host throughput in samples per second.
  double throughput() const {
    return wall_seconds > 0.0
               ? static_cast<double>(samples) / wall_seconds
               : 0.0;
  }
  /// Simulated-hardware throughput assuming one CAM pipeline per thread.
  double simulated_throughput() const;
};

/// Thread-pooled batch runner over one shared CompiledModel.
class InferenceEngine {
 public:
  /// `compiled` is shared (kept alive) by the engine. `num_threads` = 0
  /// selects std::thread::hardware_concurrency().
  explicit InferenceEngine(std::shared_ptr<const CompiledModel> compiled,
                           std::size_t num_threads = 0);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  std::size_t thread_count() const { return threads_.size(); }
  const CompiledModel& compiled() const { return *compiled_; }

  /// Runs every input (each a batch-1 tensor) through the worker pool.
  /// Returns the logits in input order; fills `report` if non-null.
  std::vector<nn::Tensor> run_batch(const std::vector<nn::Tensor>& inputs,
                                    BatchReport* report = nullptr);

  /// Convenience overload: splits a batched {N,C,H,W} tensor into N samples.
  std::vector<nn::Tensor> run_batch(const nn::Tensor& batched,
                                    BatchReport* report = nullptr);

 private:
  void worker_loop(std::size_t worker_idx);

  std::shared_ptr<const CompiledModel> compiled_;
  std::vector<std::unique_ptr<Worker>> workers_;  // one per thread
  std::vector<std::thread> threads_;

  // Serializes run_batch() callers; one batch is in flight at a time.
  std::mutex submit_mu_;

  // Batch dispatch state, guarded by mu_.
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // run_batch waits for completion
  const std::vector<nn::Tensor>* batch_inputs_ = nullptr;
  std::vector<nn::Tensor>* batch_outputs_ = nullptr;
  std::vector<RunReport>* batch_reports_ = nullptr;
  std::size_t next_sample_ = 0;
  std::size_t pending_samples_ = 0;
  // Error of the lowest-index failing sample, so which exception run_batch
  // rethrows does not depend on thread-completion order.
  std::exception_ptr batch_error_;
  std::size_t batch_error_sample_ = 0;
  bool shutdown_ = false;
};

}  // namespace deepcam::core
