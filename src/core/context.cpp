#include "core/context.hpp"

#include "common/error.hpp"

namespace deepcam::core {

std::uint64_t layer_hash_seed(std::uint64_t base, std::size_t node_index) {
  return base * 0x9E3779B97F4A7C15ULL +
         node_index * 0xD1B54A32D192ED03ULL + 1;
}

ContextGenerator::ContextGenerator(std::size_t input_dim, std::uint64_t seed)
    : hasher_(input_dim, seed) {}

Context ContextGenerator::make_context(std::span<const float> v) const {
  DEEPCAM_CHECK(v.size() == hasher_.input_dim());
  hash::Signature sig = hasher_.hash(v);
  Context ctx;
  ctx.bits = std::move(sig.bits);
  ctx.exact_norm = sig.norm;
  ctx.norm_code = MiniFloat::encode(static_cast<float>(sig.norm));
  return ctx;
}

std::vector<Context> ContextGenerator::weight_contexts(
    const nn::Conv2D& conv) const {
  const nn::ConvSpec& spec = conv.spec();
  const std::size_t plen = spec.patch_len();
  DEEPCAM_CHECK(plen == hasher_.input_dim());
  std::vector<Context> out;
  out.reserve(spec.out_channels);
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    std::span<const float> kernel(&conv.weights()[oc * plen], plen);
    out.push_back(make_context(kernel));
  }
  return out;
}

std::vector<Context> ContextGenerator::weight_contexts(
    const nn::Linear& fc) const {
  const std::size_t in = fc.in_features();
  DEEPCAM_CHECK(in == hasher_.input_dim());
  std::vector<Context> out;
  out.reserve(fc.out_features());
  for (std::size_t o = 0; o < fc.out_features(); ++o) {
    std::span<const float> row(&fc.weights()[o * in], in);
    out.push_back(make_context(row));
  }
  return out;
}

std::vector<Context> ContextGenerator::activation_contexts(
    const nn::Tensor& input, const nn::ConvSpec& spec, std::size_t n) const {
  const nn::Shape& s = input.shape();
  DEEPCAM_CHECK(s.c == spec.in_channels);
  const std::size_t oh = spec.out_h(s.h);
  const std::size_t ow = spec.out_w(s.w);
  const std::size_t plen = spec.patch_len();
  DEEPCAM_CHECK(plen == hasher_.input_dim());
  std::vector<float> patch(plen);
  std::vector<Context> out;
  out.reserve(oh * ow);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      nn::extract_patch(input, n, oy, ox, spec.kernel_h, spec.kernel_w,
                        spec.stride, spec.pad, patch);
      out.push_back(make_context(patch));
    }
  }
  return out;
}

void ContextGenerator::contexts_into(const float* xs, std::size_t count,
                                     ContextBatch& out,
                                     std::size_t hash_bits) const {
  const std::size_t dim = hasher_.input_dim();
  const hash::RandomProjection& proj = hasher_.projection();
  const std::size_t k = hash_bits == 0 ? proj.hash_bits() : hash_bits;
  out.reset(count, k);
  proj.sign_hash_batch(xs, count, k, out.words_.data(), out.proj_scratch_);
  for (std::size_t p = 0; p < count; ++p) {
    const double norm = hash::l2_norm(std::span<const float>(xs + p * dim, dim));
    out.exact_norm_[p] = norm;
    out.norm_code_[p] = MiniFloat::encode(static_cast<float>(norm));
  }
}

void ContextGenerator::activation_contexts_into(const nn::Tensor& input,
                                                const nn::ConvSpec& spec,
                                                ContextBatch& out,
                                                std::size_t n,
                                                std::size_t hash_bits) const {
  const nn::Shape& s = input.shape();
  DEEPCAM_CHECK(s.c == spec.in_channels);
  const std::size_t oh = spec.out_h(s.h);
  const std::size_t ow = spec.out_w(s.w);
  const std::size_t plen = spec.patch_len();
  DEEPCAM_CHECK(plen == hasher_.input_dim());
  const std::size_t patches = oh * ow;
  std::vector<float>& mat = out.patch_scratch_;
  if (mat.size() < patches * plen) mat.resize(patches * plen);
  std::size_t p = 0;
  for (std::size_t oy = 0; oy < oh; ++oy)
    for (std::size_t ox = 0; ox < ow; ++ox, ++p)
      nn::extract_patch(input, n, oy, ox, spec.kernel_h, spec.kernel_w,
                        spec.stride, spec.pad,
                        std::span<float>(&mat[p * plen], plen));
  contexts_into(mat.data(), patches, out, hash_bits);
}

void ContextGenerator::activation_context_flat_into(const nn::Tensor& input,
                                                    ContextBatch& out,
                                                    std::size_t n,
                                                    std::size_t hash_bits) const {
  const nn::Shape& s = input.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK(feat == hasher_.input_dim());
  contexts_into(input.data() + n * feat, 1, out, hash_bits);
}

ContextBatch ContextGenerator::weight_context_batch(
    const nn::Conv2D& conv) const {
  const nn::ConvSpec& spec = conv.spec();
  DEEPCAM_CHECK(spec.patch_len() == hasher_.input_dim());
  ContextBatch out;
  contexts_into(conv.weights().data(), spec.out_channels, out);
  out.release_scratch();  // weight batches live as long as the model
  return out;
}

ContextBatch ContextGenerator::weight_context_batch(
    const nn::Linear& fc) const {
  DEEPCAM_CHECK(fc.in_features() == hasher_.input_dim());
  ContextBatch out;
  contexts_into(fc.weights().data(), fc.out_features(), out);
  out.release_scratch();
  return out;
}

Context ContextGenerator::activation_context_flat(const nn::Tensor& input,
                                                  std::size_t n) const {
  const nn::Shape& s = input.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK(feat == hasher_.input_dim());
  std::span<const float> v(input.data() + n * feat, feat);
  return make_context(v);
}

}  // namespace deepcam::core
