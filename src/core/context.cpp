#include "core/context.hpp"

#include "common/error.hpp"

namespace deepcam::core {

std::uint64_t layer_hash_seed(std::uint64_t base, std::size_t node_index) {
  return base * 0x9E3779B97F4A7C15ULL +
         node_index * 0xD1B54A32D192ED03ULL + 1;
}

ContextGenerator::ContextGenerator(std::size_t input_dim, std::uint64_t seed)
    : hasher_(input_dim, seed) {}

Context ContextGenerator::make_context(std::span<const float> v) const {
  DEEPCAM_CHECK(v.size() == hasher_.input_dim());
  hash::Signature sig = hasher_.hash(v);
  Context ctx;
  ctx.bits = std::move(sig.bits);
  ctx.exact_norm = sig.norm;
  ctx.norm_code = MiniFloat::encode(static_cast<float>(sig.norm));
  return ctx;
}

std::vector<Context> ContextGenerator::weight_contexts(
    const nn::Conv2D& conv) const {
  const nn::ConvSpec& spec = conv.spec();
  const std::size_t plen = spec.patch_len();
  DEEPCAM_CHECK(plen == hasher_.input_dim());
  std::vector<Context> out;
  out.reserve(spec.out_channels);
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    std::span<const float> kernel(&conv.weights()[oc * plen], plen);
    out.push_back(make_context(kernel));
  }
  return out;
}

std::vector<Context> ContextGenerator::weight_contexts(
    const nn::Linear& fc) const {
  const std::size_t in = fc.in_features();
  DEEPCAM_CHECK(in == hasher_.input_dim());
  std::vector<Context> out;
  out.reserve(fc.out_features());
  for (std::size_t o = 0; o < fc.out_features(); ++o) {
    std::span<const float> row(&fc.weights()[o * in], in);
    out.push_back(make_context(row));
  }
  return out;
}

std::vector<Context> ContextGenerator::activation_contexts(
    const nn::Tensor& input, const nn::ConvSpec& spec, std::size_t n) const {
  const nn::Shape& s = input.shape();
  DEEPCAM_CHECK(s.c == spec.in_channels);
  const std::size_t oh = spec.out_h(s.h);
  const std::size_t ow = spec.out_w(s.w);
  const std::size_t plen = spec.patch_len();
  DEEPCAM_CHECK(plen == hasher_.input_dim());
  std::vector<float> patch(plen);
  std::vector<Context> out;
  out.reserve(oh * ow);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      nn::extract_patch(input, n, oy, ox, spec.kernel_h, spec.kernel_w,
                        spec.stride, spec.pad, patch);
      out.push_back(make_context(patch));
    }
  }
  return out;
}

Context ContextGenerator::activation_context_flat(const nn::Tensor& input,
                                                  std::size_t n) const {
  const nn::Shape& s = input.shape();
  const std::size_t feat = s.c * s.h * s.w;
  DEEPCAM_CHECK(feat == hasher_.input_dim());
  std::span<const float> v(input.data() + n * feat, feat);
  return make_context(v);
}

}  // namespace deepcam::core
