// Context generation (paper §III-A, Fig. 4).
//
// A "context" is what DeepCAM stores/searches: the SimHash signature of a
// reshaped weight kernel or activation patch, plus its L2 norm in 8-bit
// minifloat. One ContextGenerator exists per CAM-mapped layer and owns that
// layer's random projection matrix C (weights and activations MUST be hashed
// with the same C, or the Hamming distance is meaningless).
//
// Weight contexts are generated offline (pre-processing software); the first
// layer's activation contexts likewise. Intermediate activations are hashed
// by the online transformation unit, whose costs the accelerator charges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/minifloat.hpp"
#include "hash/simhash.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/tensor.hpp"

namespace deepcam::core {

/// Derives the projection-matrix seed of the CAM layer at graph node
/// `node_index`. Shared by the accelerator and the hash-length tuner so both
/// always use identical projection matrices.
std::uint64_t layer_hash_seed(std::uint64_t base, std::size_t node_index);

/// One CAM-resident entry: signature bits + minifloat-coded L2 norm.
struct Context {
  BitVec bits;             ///< full-length (1024-bit) signature
  std::uint8_t norm_code;  ///< L2 norm, 8-bit minifloat (paper's format)
  double exact_norm;       ///< reference value kept for ablations/tests

  /// The norm as hardware would decode it.
  double norm() const { return MiniFloat::decode(norm_code); }
};

/// Borrowed view of one context stored in a ContextBatch: a pointer into the
/// batch's signature word arena plus the two norm encodings. Cheap to copy;
/// valid only while the owning batch is alive and unmodified.
struct ContextRef {
  const std::uint64_t* sig = nullptr;  ///< words_per_sig() packed words
  std::uint8_t norm_code = 0;
  double exact_norm = 0.0;

  /// The norm as hardware would decode it.
  double norm() const { return MiniFloat::decode(norm_code); }
};

/// Structure-of-arrays arena of contexts: one contiguous word buffer for all
/// signatures plus flat norm-code / exact-norm arrays. This replaces
/// std::vector<Context> on the execution hot path — reset() never shrinks
/// capacity, so a Worker that reuses one batch across layers and samples
/// performs no steady-state heap allocation (the builder scratch for the
/// im2col patch matrix and the projection tile lives here too, for the same
/// reason). Accessors are unchecked, like indexing the vector they replace.
class ContextBatch {
 public:
  /// Prepares the arena for `count` contexts of `sig_bits` signature bits.
  /// Contents become unspecified; capacity only grows.
  void reset(std::size_t count, std::size_t sig_bits) {
    count_ = count;
    sig_bits_ = sig_bits;
    wps_ = (sig_bits + 63) / 64;
    if (words_.size() < count * wps_) words_.resize(count * wps_);
    if (norm_code_.size() < count) norm_code_.resize(count);
    if (exact_norm_.size() < count) exact_norm_.resize(count);
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t sig_bits() const { return sig_bits_; }
  std::size_t words_per_sig() const { return wps_; }

  const std::uint64_t* sig(std::size_t i) const {
    return words_.data() + i * wps_;
  }
  std::uint64_t* sig(std::size_t i) { return words_.data() + i * wps_; }
  std::span<const std::uint64_t> sig_span(std::size_t i) const {
    return {sig(i), wps_};
  }

  std::uint8_t norm_code(std::size_t i) const { return norm_code_[i]; }
  double exact_norm(std::size_t i) const { return exact_norm_[i]; }

  ContextRef operator[](std::size_t i) const {
    return ContextRef{sig(i), norm_code_[i], exact_norm_[i]};
  }

  /// Frees the builder scratch (im2col matrix + projection tile) while
  /// keeping the contexts. Call on batches that outlive their construction
  /// (pre-hashed weight contexts, tuner probe caches) — a Worker's reused
  /// arena should keep its scratch, that is the point of the arena.
  void release_scratch() {
    patch_scratch_ = {};
    proj_scratch_ = {};
  }

 private:
  friend class ContextGenerator;  // builders fill the arrays + use scratch

  std::size_t count_ = 0;
  std::size_t sig_bits_ = 0;
  std::size_t wps_ = 0;
  std::vector<std::uint64_t> words_;      // count × wps_
  std::vector<std::uint8_t> norm_code_;   // count
  std::vector<double> exact_norm_;        // count
  std::vector<float> patch_scratch_;      // im2col patch matrix (P × n)
  std::vector<float> proj_scratch_;       // projection tile of the hash GEMM
};

class ContextGenerator {
 public:
  /// `input_dim` = context vector length n (C·kh·kw for conv, in_features
  /// for linear); `seed` determines the projection matrix.
  ContextGenerator(std::size_t input_dim, std::uint64_t seed);

  std::size_t input_dim() const { return hasher_.input_dim(); }
  const hash::SimHasher& hasher() const { return hasher_; }

  /// Context of a single raw vector.
  Context make_context(std::span<const float> v) const;

  /// Contexts of all kernels of a convolution (one per output channel).
  std::vector<Context> weight_contexts(const nn::Conv2D& conv) const;

  /// Contexts of all rows of a linear layer's weight matrix.
  std::vector<Context> weight_contexts(const nn::Linear& fc) const;

  /// Contexts of every im2col patch of `input` (batch image `n`), in
  /// (oy, ox) row-major order — the dot-product order the output map needs.
  std::vector<Context> activation_contexts(const nn::Tensor& input,
                                           const nn::ConvSpec& spec,
                                           std::size_t n = 0) const;

  /// Context of a flattened activation vector (for linear layers).
  Context activation_context_flat(const nn::Tensor& input,
                                  std::size_t n = 0) const;

  // ---- allocation-free SoA batch pipeline -------------------------------
  // The *_into builders are the execution hot path: one blocked batch-GEMM
  // hash over a contiguous patch matrix instead of a GEMV + BitVec per
  // patch. Outputs are bitwise identical to the per-Context methods above
  // (which stay as the reference implementation and test oracle).

  /// Hashes `count` contiguous row-major vectors (count × input_dim) into
  /// `out`, with `hash_bits` signature bits (0 = full width). Signatures are
  /// prefixes of i.i.d. columns, so hashing straight to a layer's resolved
  /// hash length k is bitwise identical to hashing full-width and reading
  /// the first k bits — at k/1024 of the GEMM work. Bitwise identical to
  /// `count` make_context() calls (truncated to hash_bits).
  void contexts_into(const float* xs, std::size_t count, ContextBatch& out,
                     std::size_t hash_bits = 0) const;

  /// Batch equivalent of activation_contexts(): contexts of every im2col
  /// patch in (oy, ox) row-major order, built from a patch matrix assembled
  /// once per layer in `out`'s reusable scratch.
  void activation_contexts_into(const nn::Tensor& input,
                                const nn::ConvSpec& spec, ContextBatch& out,
                                std::size_t n = 0,
                                std::size_t hash_bits = 0) const;

  /// Batch equivalent of activation_context_flat(): a one-context batch.
  void activation_context_flat_into(const nn::Tensor& input, ContextBatch& out,
                                    std::size_t n = 0,
                                    std::size_t hash_bits = 0) const;

  /// Batch equivalents of weight_contexts() (kernels are already stored as
  /// contiguous rows, so these are a single contexts_into call).
  ContextBatch weight_context_batch(const nn::Conv2D& conv) const;
  ContextBatch weight_context_batch(const nn::Linear& fc) const;

 private:
  hash::SimHasher hasher_;
};

}  // namespace deepcam::core
