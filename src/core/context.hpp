// Context generation (paper §III-A, Fig. 4).
//
// A "context" is what DeepCAM stores/searches: the SimHash signature of a
// reshaped weight kernel or activation patch, plus its L2 norm in 8-bit
// minifloat. One ContextGenerator exists per CAM-mapped layer and owns that
// layer's random projection matrix C (weights and activations MUST be hashed
// with the same C, or the Hamming distance is meaningless).
//
// Weight contexts are generated offline (pre-processing software); the first
// layer's activation contexts likewise. Intermediate activations are hashed
// by the online transformation unit, whose costs the accelerator charges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/minifloat.hpp"
#include "hash/simhash.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/tensor.hpp"

namespace deepcam::core {

/// Derives the projection-matrix seed of the CAM layer at graph node
/// `node_index`. Shared by the accelerator and the hash-length tuner so both
/// always use identical projection matrices.
std::uint64_t layer_hash_seed(std::uint64_t base, std::size_t node_index);

/// One CAM-resident entry: signature bits + minifloat-coded L2 norm.
struct Context {
  BitVec bits;             ///< full-length (1024-bit) signature
  std::uint8_t norm_code;  ///< L2 norm, 8-bit minifloat (paper's format)
  double exact_norm;       ///< reference value kept for ablations/tests

  /// The norm as hardware would decode it.
  double norm() const { return MiniFloat::decode(norm_code); }
};

class ContextGenerator {
 public:
  /// `input_dim` = context vector length n (C·kh·kw for conv, in_features
  /// for linear); `seed` determines the projection matrix.
  ContextGenerator(std::size_t input_dim, std::uint64_t seed);

  std::size_t input_dim() const { return hasher_.input_dim(); }
  const hash::SimHasher& hasher() const { return hasher_; }

  /// Context of a single raw vector.
  Context make_context(std::span<const float> v) const;

  /// Contexts of all kernels of a convolution (one per output channel).
  std::vector<Context> weight_contexts(const nn::Conv2D& conv) const;

  /// Contexts of all rows of a linear layer's weight matrix.
  std::vector<Context> weight_contexts(const nn::Linear& fc) const;

  /// Contexts of every im2col patch of `input` (batch image `n`), in
  /// (oy, ox) row-major order — the dot-product order the output map needs.
  std::vector<Context> activation_contexts(const nn::Tensor& input,
                                           const nn::ConvSpec& spec,
                                           std::size_t n = 0) const;

  /// Context of a flattened activation vector (for linear layers).
  Context activation_context_flat(const nn::Tensor& input,
                                  std::size_t n = 0) const;

 private:
  hash::SimHasher hasher_;
};

}  // namespace deepcam::core
