#include "core/compiled_model.hpp"

#include "common/tech.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace deepcam::core {

std::size_t RunReport::total_cycles() const {
  std::size_t c = peripheral_cycles;
  for (const auto& l : layers) c += l.cycles;
  return c;
}

double RunReport::total_energy() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.total_energy();
  return e;
}

std::size_t RunReport::total_searches() const {
  std::size_t s = 0;
  for (const auto& l : layers) s += l.plan.searches;
  return s;
}

std::size_t RunReport::total_dot_products() const {
  std::size_t s = 0;
  for (const auto& l : layers) s += l.plan.dot_products;
  return s;
}

double RunReport::mean_utilization() const {
  if (layers.empty()) return 0.0;
  // Weight utilization by passes so reload-heavy layers dominate, matching
  // how hardware occupancy over time would be measured.
  double util = 0.0, weight = 0.0;
  for (const auto& l : layers) {
    util += l.plan.utilization * static_cast<double>(l.plan.passes);
    weight += static_cast<double>(l.plan.passes);
  }
  return weight == 0.0 ? 0.0 : util / weight;
}

double RunReport::time_seconds() const {
  return static_cast<double>(total_cycles()) * tech::kCycleSeconds;
}

CompiledModel::CompiledModel(const nn::Model& model, DeepCamConfig cfg)
    : model_(&model), cfg_(std::move(cfg)) {
  DEEPCAM_CHECK_MSG(cfg_.cam_rows > 0, "CAM needs rows");
  // Enumerate CAM-mapped layers and pre-hash their weights (the paper's
  // offline software step).
  for (std::size_t i = 0; i < model_->node_count(); ++i) {
    const nn::Layer& layer = model_->layer(i);
    if (layer.kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      CamLayer cl;
      cl.node_index = i;
      cl.ctxgen = std::make_unique<ContextGenerator>(
          conv.spec().patch_len(), layer_hash_seed(cfg_.hash_seed, i));
      cl.weight_ctx = cl.ctxgen->weight_context_batch(conv);
      cl.bias = conv.bias();
      cam_layers_.push_back(std::move(cl));
    } else if (layer.kind() == nn::LayerKind::kLinear) {
      const auto& fc = static_cast<const nn::Linear&>(layer);
      CamLayer cl;
      cl.node_index = i;
      cl.ctxgen = std::make_unique<ContextGenerator>(
          fc.in_features(), layer_hash_seed(cfg_.hash_seed, i));
      cl.weight_ctx = cl.ctxgen->weight_context_batch(fc);
      cl.bias = fc.bias();
      cam_layers_.push_back(std::move(cl));
    }
  }
  if (!cfg_.layer_hash_bits.empty()) {
    DEEPCAM_CHECK_MSG(cfg_.layer_hash_bits.size() == cam_layers_.size(),
                      "layer_hash_bits arity != CAM layer count");
  }
  for (std::size_t i = 0; i < cam_layers_.size(); ++i) {
    const std::size_t k = cfg_.layer_hash_bits.empty()
                              ? cfg_.default_hash_bits
                              : cfg_.layer_hash_bits[i];
    DEEPCAM_CHECK_MSG(k >= 1 && k <= hash::kMaxHashBits,
                      "hash length out of range");
    cam_layers_[i].hash_bits = k;
  }
}

std::vector<std::string> CompiledModel::cam_layer_names() const {
  std::vector<std::string> names;
  names.reserve(cam_layers_.size());
  for (const auto& cl : cam_layers_)
    names.push_back(model_->layer(cl.node_index).name());
  return names;
}

std::size_t CompiledModel::context_len(std::size_t i) const {
  return cam_layer(i).ctxgen->input_dim();
}

std::size_t CompiledModel::search_cycles_for(std::size_t hash_bits) const {
  if (cfg_.preset == CyclePreset::kIdealized) return 1;
  const std::size_t chunks = (hash_bits + 255) / 256;
  return static_cast<std::size_t>(tech::kCamSearchBaseCycles) +
         static_cast<std::size_t>(tech::kCamSearchCyclesPerChunk) * chunks;
}

}  // namespace deepcam::core
