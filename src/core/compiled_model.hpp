// CompiledModel: the shared-immutable half of the DeepCAM execution engine.
//
// The engine splits the simulator state the way poplibs-style
// estimator/engine designs do:
//
//   CompiledModel  — everything derivable from (model, config) alone:
//                    CAM-layer enumeration, per-layer ContextGenerators,
//                    pre-hashed weight contexts (the paper's offline
//                    software step), resolved hash lengths and bias copies.
//                    Built once, immutable afterwards, shareable across any
//                    number of threads without synchronization.
//
//   Worker         — the per-run mutable state (a DynamicCam instance, a
//                    PostProcessingUnit, reusable scratch buffers). One per
//                    thread. See core/engine.hpp.
//
//   InferenceEngine— a std::thread pool of Workers executing batches
//                    against one CompiledModel. See core/engine.hpp.
//
// DeepCamAccelerator (core/accelerator.hpp) remains as a thin single-sample
// facade over CompiledModel + one Worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cam/config.hpp"
#include "cam/sense_amp.hpp"
#include "core/context.hpp"
#include "core/mapping.hpp"
#include "core/postproc.hpp"
#include "nn/model.hpp"

namespace deepcam::core {

enum class CyclePreset { kConservative, kIdealized };

struct DeepCamConfig {
  std::size_t cam_rows = 64;
  Dataflow dataflow = Dataflow::kActivationStationary;
  CyclePreset preset = CyclePreset::kConservative;
  cam::CellTech tech = cam::CellTech::kFeFET;
  cam::SenseAmpConfig sense = {};
  PostProcessingUnit::Options postproc = {};
  /// Hash length per CAM layer (bits, multiples of 256 up to 1024). Empty =
  /// homogeneous `default_hash_bits`.
  std::vector<std::size_t> layer_hash_bits = {};
  std::size_t default_hash_bits = hash::kMaxHashBits;
  std::uint64_t hash_seed = 42;
};

/// Per-CAM-layer simulation report.
struct LayerReport {
  std::string name;
  std::size_t patches = 0;       // P
  std::size_t kernels = 0;       // K
  std::size_t context_len = 0;   // n
  std::size_t hash_bits = 0;     // k
  MappingPlan plan;
  std::size_t cycles = 0;        // per chosen preset
  double cam_energy = 0.0;       // joules (search + write)
  double postproc_energy = 0.0;  // joules (cosine/mult/bias + peripherals)
  double ctxgen_energy = 0.0;    // joules (online context generation)

  double total_energy() const {
    return cam_energy + postproc_energy + ctxgen_energy;
  }
};

struct RunReport {
  std::vector<LayerReport> layers;
  std::size_t peripheral_cycles = 0;  // non-CAM layers (pool/ReLU/BN)

  std::size_t total_cycles() const;
  double total_energy() const;
  std::size_t total_searches() const;
  std::size_t total_dot_products() const;
  double mean_utilization() const;
  double time_seconds() const;  // at the 300 MHz system clock
  double cam_area_um2 = 0.0;
};

/// Immutable compilation of a model for DeepCAM execution. Holds the
/// pre-hashed weight contexts and per-layer geometry; never mutated after
/// construction, so one instance can back any number of concurrent Workers.
/// The model must outlive the CompiledModel; it is only read (const) here
/// and at run time.
class CompiledModel {
 public:
  /// One CAM-mapped (Conv2D/Linear) layer, fully prepared for execution.
  struct CamLayer {
    std::size_t node_index;  // in the model graph
    std::unique_ptr<ContextGenerator> ctxgen;
    ContextBatch weight_ctx;   // pre-hashed kernels, SoA arena
    std::vector<float> bias;   // copy of the layer's bias vector
    std::size_t hash_bits = 0; // resolved hash length k
  };

  CompiledModel(const nn::Model& model, DeepCamConfig cfg);
  /// A temporary Model would dangle (only a pointer is stored) — reject it
  /// at compile time.
  CompiledModel(nn::Model&&, DeepCamConfig) = delete;

  const nn::Model& model() const { return *model_; }
  const DeepCamConfig& config() const { return cfg_; }

  /// Geometry of the CAM array every Worker instantiates.
  cam::CamConfig cam_config() const {
    return cam::CamConfig{cfg_.cam_rows, 256, 4, cfg_.tech};
  }

  /// Number of CAM-mapped (Conv2D/Linear) layers.
  std::size_t cam_layer_count() const { return cam_layers_.size(); }
  const CamLayer& cam_layer(std::size_t i) const {
    DEEPCAM_CHECK(i < cam_layers_.size());
    return cam_layers_[i];
  }
  /// Names of the CAM-mapped layers, in execution order.
  std::vector<std::string> cam_layer_names() const;
  /// Context length n of CAM layer `i`.
  std::size_t context_len(std::size_t i) const;
  /// Resolved hash length k of CAM layer `i`.
  std::size_t hash_bits_for(std::size_t i) const {
    return cam_layer(i).hash_bits;
  }
  /// Search latency (cycles) at hash length `hash_bits` under the preset.
  std::size_t search_cycles_for(std::size_t hash_bits) const;

 private:
  const nn::Model* model_;
  DeepCamConfig cfg_;
  std::vector<CamLayer> cam_layers_;
};

}  // namespace deepcam::core
