#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/tech.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"

namespace deepcam::core {

Worker::Worker(const CompiledModel& compiled)
    : compiled_(&compiled),
      cam_(compiled.cam_config(), compiled.config().sense),
      postproc_(compiled.config().postproc) {}

namespace {

/// kFull kernel-stage span carrying the inherited request identity plus the
/// CAM layer index in `value`. Inactive (free) below kFull.
obs::Span kernel_span(const char* name, std::size_t cam_idx) {
  obs::Span sp(obs::TraceLevel::kFull, obs::SpanCat::kKernel, name);
  const obs::TraceTag tag = obs::current_trace_tag();
  sp.rid(tag.tag).batch(tag.sample).value(cam_idx);
  return sp;
}

}  // namespace

LayerReport Worker::simulate_cam_layer(std::size_t cam_idx,
                                       const ContextBatch& act_ctx,
                                       bool online_ctxgen) {
  const DeepCamConfig& cfg = compiled_->config();
  const CompiledModel::CamLayer& cl = compiled_->cam_layer(cam_idx);
  const ContextBatch& w_ctx = cl.weight_ctx;
  const std::size_t P = act_ctx.size();
  const std::size_t K = w_ctx.size();
  const std::size_t k_bits = cl.hash_bits;
  const std::size_t R = cfg.cam_rows;

  LayerReport rep;
  rep.name = compiled_->model().layer(cl.node_index).name();
  rep.patches = P;
  rep.kernels = K;
  rep.context_len = cl.ctxgen->input_dim();
  rep.hash_bits = k_bits;
  rep.plan = plan_mapping({P, K}, R, cfg.dataflow);

  const bool ws = cfg.dataflow == Dataflow::kWeightStationary;
  const ContextBatch& stationary = ws ? w_ctx : act_ctx;
  const ContextBatch& streamed = ws ? act_ctx : w_ctx;

  const double cam_e0 = cam_.stats().total_energy();
  const auto pp0 = postproc_.stats();

  cam_.set_hash_length(k_bits);
  // Resize-only scratch: every [kernel][patch] cell is written by the pass
  // loop below, so a zero-fill would be pure overhead.
  if (flat_.size() < K * P) flat_.resize(K * P);

  // kFull stage profiling: accumulate per-stage wall time across the
  // interleaved pass loop with predicted branches (the loop itself is not
  // restructured), then emit the three stages as back-to-back packed spans
  // from the loop's start time. `tracing` is hoisted so the disabled path
  // pays one atomic load, not one per iteration.
  auto& trec = obs::TraceRecorder::instance();
  const bool tracing = trec.enabled(obs::TraceLevel::kFull);
  std::uint64_t write_ns = 0, search_ns = 0, post_ns = 0;
  std::uint64_t t_stage = tracing ? trec.now_ns() : 0;
  const std::uint64_t t_pass0 = t_stage;
  auto checkpoint = [&](std::uint64_t& bucket) {
    const std::uint64_t t = trec.now_ns();
    bucket += t - t_stage;
    t_stage = t;
  };

  std::size_t base = 0;
  while (base < stationary.size()) {
    const std::size_t count = std::min(R, stationary.size() - base);
    cam_.clear();
    for (std::size_t r = 0; r < count; ++r)
      cam_.write_row(r, stationary.sig_span(base + r));
    if (tracing) checkpoint(write_ns);
    for (std::size_t sidx = 0; sidx < streamed.size(); ++sidx) {
      cam_.search_flat(streamed.sig_span(sidx), search_buf_);
      if (tracing) checkpoint(search_ns);
      const std::uint16_t* hd = search_buf_.row_hd.data();
      for (std::size_t r = 0; r < count; ++r) {
        const std::size_t kernel = ws ? (base + r) : sidx;
        const std::size_t patch = ws ? sidx : (base + r);
        flat_[kernel * P + patch] = postproc_.finish_dot_product(
            w_ctx[kernel], act_ctx[patch], hd[r], k_bits, cl.bias[kernel]);
      }
      if (tracing) checkpoint(post_ns);
    }
    base += count;
  }

  if (tracing) {
    const obs::TraceTag tag = obs::current_trace_tag();
    std::uint64_t cursor = t_pass0;
    auto emit_stage = [&](const char* name, std::uint64_t dur) {
      obs::SpanRecord r;
      r.t_begin_ns = cursor;
      r.t_end_ns = cursor + dur;
      r.name = name;
      r.cat = obs::SpanCat::kKernel;
      r.rid = tag.tag;
      r.batch = tag.sample;
      r.value = cam_idx;
      trec.record(r);
      cursor += dur;
    };
    emit_stage("cam_write", write_ns);
    emit_stage("cam_search", search_ns);
    emit_stage("postproc", post_ns);
  }

  // Online context generation cost for this layer's activation contexts.
  if (online_ctxgen) {
    for (std::size_t p = 0; p < P; ++p)
      postproc_.charge_context_generation(rep.context_len, k_bits);
  }

  // Cycle accounting under the chosen preset.
  const std::size_t t_search = compiled_->search_cycles_for(k_bits);
  std::size_t cycles = rep.plan.searches * t_search;
  if (cfg.preset == CyclePreset::kConservative) {
    cycles += rep.plan.rows_written *
              static_cast<std::size_t>(tech::kCamWriteCyclesPerRow);
    cycles += rep.plan.passes *
              static_cast<std::size_t>(tech::kCamPassDrainCycles);
    if (online_ctxgen)
      cycles += P * static_cast<std::size_t>(tech::kXbarInputBits);
  }
  rep.cycles = cycles;

  rep.cam_energy = cam_.stats().total_energy() - cam_e0;
  const auto pp1 = postproc_.stats();
  rep.postproc_energy = pp1.energy - pp0.energy;
  rep.ctxgen_energy = pp1.ctxgen_energy - pp0.ctxgen_energy;
  return rep;
}

nn::Tensor Worker::run(const nn::Tensor& input, RunReport* report) {
  DEEPCAM_CHECK_MSG(input.shape().n == 1,
                    "accelerator simulates batch size 1");
  // Reset the hardware counters so every report (and its floating-point
  // energy sums) is a pure function of (CompiledModel, input) — the
  // determinism the batched engine needs to match sequential runs bitwise.
  cam_.reset_stats();
  postproc_.reset_stats();

  RunReport local_report;
  RunReport& rep = report != nullptr ? *report : local_report;
  rep = {};
  rep.cam_area_um2 = cam_.area_um2();

  const nn::Model& model = compiled_->model();
  const DeepCamConfig& cfg = compiled_->config();
  outs_.clear();
  outs_.reserve(model.node_count());
  std::size_t cam_idx = 0;
  bool first_cam_layer = true;

  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const nn::Layer& layer = model.layer(i);
    const auto& inputs = model.inputs_of(i);
    auto fetch = [&](int idx) -> const nn::Tensor& {
      return idx == nn::kModelInput ? input
                                    : outs_[static_cast<std::size_t>(idx)];
    };
    const nn::Tensor& in = fetch(inputs[0]);

    if (layer.kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(layer);
      const nn::ConvSpec& spec = conv.spec();
      const CompiledModel::CamLayer& cl = compiled_->cam_layer(cam_idx);
      DEEPCAM_CHECK(cl.node_index == i);
      // Hash straight to this layer's resolved length: prefix-of-iid-columns
      // makes the k-bit signature bitwise identical to the first k bits of
      // the full hash, at k/1024 of the GEMM cost.
      {
        obs::Span hash_sp = kernel_span("hash", cam_idx);
        cl.ctxgen->activation_contexts_into(in, spec, act_ctx_, 0,
                                            cl.hash_bits);
      }
      LayerReport lrep =
          simulate_cam_layer(cam_idx, act_ctx_, !first_cam_layer);
      const std::size_t oh = spec.out_h(in.shape().h);
      const std::size_t ow = spec.out_w(in.shape().w);
      nn::Tensor out({1, spec.out_channels, oh, ow});
      for (std::size_t oc = 0; oc < spec.out_channels; ++oc)
        for (std::size_t p = 0; p < oh * ow; ++p)
          out[oc * oh * ow + p] =
              static_cast<float>(flat_[oc * oh * ow + p]);
      outs_.push_back(std::move(out));
      rep.layers.push_back(std::move(lrep));
      first_cam_layer = false;
      ++cam_idx;
    } else if (layer.kind() == nn::LayerKind::kLinear) {
      const auto& fc = static_cast<const nn::Linear&>(layer);
      const CompiledModel::CamLayer& cl = compiled_->cam_layer(cam_idx);
      DEEPCAM_CHECK(cl.node_index == i);
      {
        obs::Span hash_sp = kernel_span("hash", cam_idx);
        cl.ctxgen->activation_context_flat_into(in, act_ctx_, 0,
                                                cl.hash_bits);
      }
      LayerReport lrep =
          simulate_cam_layer(cam_idx, act_ctx_, !first_cam_layer);
      nn::Tensor out({1, fc.out_features(), 1, 1});
      for (std::size_t o = 0; o < fc.out_features(); ++o)
        out[o] = static_cast<float>(flat_[o]);
      outs_.push_back(std::move(out));
      rep.layers.push_back(std::move(lrep));
      first_cam_layer = false;
      ++cam_idx;
    } else if (inputs.size() == 2) {
      const auto* add = dynamic_cast<const nn::Add*>(&layer);
      DEEPCAM_CHECK(add != nullptr);
      nn::Tensor out = add->forward2(fetch(inputs[0]), fetch(inputs[1]));
      postproc_.charge_peripheral(out.numel());
      outs_.push_back(std::move(out));
    } else {
      nn::Tensor out = layer.infer(in);
      // Peripheral digital ops run one element per lane-cycle; charged as
      // energy plus (conservative preset) elements/16 cycles.
      postproc_.charge_peripheral(out.numel());
      if (cfg.preset == CyclePreset::kConservative)
        rep.peripheral_cycles += (out.numel() + 15) / 16;
      outs_.push_back(std::move(out));
    }
  }
  nn::Tensor result = std::move(outs_.back());
  outs_.clear();
  return result;
}

namespace {

/// Sample-order merge of per-sample reports into batch totals. Geometry
/// fields (name, context_len, hash_bits, kernels, cam_area_um2) stay
/// constants; work/cost fields (patches, plan counters, cycles, energies)
/// accumulate. The caller seeds `agg` with the first sample's report.
void merge_report(RunReport& agg, const RunReport& r) {
  DEEPCAM_CHECK_MSG(agg.layers.size() == r.layers.size(),
                    "cannot merge reports of different layer structure");
  agg.peripheral_cycles += r.peripheral_cycles;
  for (std::size_t l = 0; l < agg.layers.size(); ++l) {
    LayerReport& a = agg.layers[l];
    const LayerReport& b = r.layers[l];
    DEEPCAM_CHECK_MSG(a.name == b.name && a.hash_bits == b.hash_bits,
                      "cannot merge reports of different layers");
    a.patches += b.patches;
    a.cycles += b.cycles;
    a.cam_energy += b.cam_energy;
    a.postproc_energy += b.postproc_energy;
    a.ctxgen_energy += b.ctxgen_energy;
    // Passes-weighted utilization keeps RunReport::mean_utilization()
    // meaningful on the aggregate.
    const double wa = static_cast<double>(a.plan.passes);
    const double wb = static_cast<double>(b.plan.passes);
    if (wa + wb > 0.0)
      a.plan.utilization =
          (a.plan.utilization * wa + b.plan.utilization * wb) / (wa + wb);
    a.plan.passes += b.plan.passes;
    a.plan.searches += b.plan.searches;
    a.plan.rows_written += b.plan.rows_written;
    a.plan.dot_products += b.plan.dot_products;
  }
}

}  // namespace

double BatchReport::simulated_throughput() const {
  const double total_s = aggregate.time_seconds();
  if (total_s <= 0.0 || threads == 0) return 0.0;
  // Independent CAM pipelines drain the batch in parallel, but no more of
  // them can be busy than there are samples.
  const double pipelines =
      static_cast<double>(std::min(threads, std::max<std::size_t>(samples, 1)));
  return static_cast<double>(samples) * pipelines / total_s;
}

bool BatchFuture::ready() const {
  DEEPCAM_CHECK_MSG(valid(), "BatchFuture already consumed (or empty)");
  std::lock_guard<std::mutex> lk(engine_->mu_);
  return state_->done;
}

void BatchFuture::wait() const {
  DEEPCAM_CHECK_MSG(valid(), "BatchFuture already consumed (or empty)");
  std::unique_lock<std::mutex> lk(engine_->mu_);
  engine_->done_cv_.wait(lk, [this] { return state_->done; });
}

bool BatchFuture::wait_for(std::chrono::nanoseconds timeout) const {
  DEEPCAM_CHECK_MSG(valid(), "BatchFuture already consumed (or empty)");
  std::unique_lock<std::mutex> lk(engine_->mu_);
  return engine_->done_cv_.wait_for(lk, timeout,
                                    [this] { return state_->done; });
}

bool BatchFuture::cancel() {
  DEEPCAM_CHECK_MSG(valid(), "BatchFuture already consumed (or empty)");
  std::unique_lock<std::mutex> lk(engine_->mu_);
  if (state_->done || state_->next_sample > 0) return false;
  // Undispatched: still sitting whole in the FIFO. Pull it out and complete
  // it with a cancellation error so get() rethrows instead of hanging.
  for (auto it = engine_->queue_.begin(); it != engine_->queue_.end(); ++it) {
    if (it->get() == state_.get()) {
      engine_->queue_.erase(it);
      break;
    }
  }
  state_->error = std::make_exception_ptr(Error("batch cancelled"));
  state_->error_sample = 0;
  state_->pending = 0;
  state_->done = true;
  state_->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state_->t_submit)
          .count();
  --engine_->in_flight_;
  lk.unlock();
  engine_->done_cv_.notify_all();
  return true;
}

std::vector<nn::Tensor> BatchFuture::get(BatchReport* report) {
  DEEPCAM_CHECK_MSG(valid(), "BatchFuture already consumed (or empty)");
  InferenceEngine* engine = engine_;
  std::shared_ptr<detail::BatchState> state = std::move(state_);
  engine_ = nullptr;
  return engine->collect(*state, report);
}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const CompiledModel> compiled, std::size_t num_threads)
    : compiled_(std::move(compiled)) {
  DEEPCAM_CHECK_MSG(compiled_ != nullptr, "engine needs a compiled model");
  std::size_t n = num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>(*compiled_));
  threads_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
  } catch (...) {
    // Spawn failed partway: shut down the threads that did start before the
    // vector of joinable threads is destroyed (which would std::terminate).
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
    throw;
  }
}

InferenceEngine::~InferenceEngine() {
  // shutdown_ means "no new submissions; exit once the FIFO is drained" —
  // workers finish every already-submitted batch so outstanding futures
  // complete instead of hanging.
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void InferenceEngine::worker_loop(std::size_t worker_idx) {
  Worker& worker = *workers_[worker_idx];
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // FIFO dispatch: drain the front batch's samples first; a later batch
    // only starts once every sample of the earlier ones is dispatched (its
    // execution still overlaps the earlier batches' in-flight tails).
    std::shared_ptr<detail::BatchState> state = queue_.front();
    const std::size_t s = state->next_sample++;
    if (state->next_sample >= state->inputs->size()) queue_.pop_front();
    lk.unlock();
    std::exception_ptr error;
    try {
      // Inherit the submitting request's identity for kernel-stage spans;
      // trace_tag is immutable after enqueue, safe to read unlocked.
      obs::ScopedTraceTag tag_scope({state->trace_tag, s});
      obs::Span sample_sp(obs::TraceLevel::kFull, obs::SpanCat::kEngine,
                          "sample");
      sample_sp.rid(state->trace_tag).batch(s);
      state->outputs[s] = worker.run((*state->inputs)[s], &state->reports[s]);
    } catch (...) {
      error = std::current_exception();
    }
    lk.lock();
    if (error != nullptr &&
        (state->error == nullptr || s < state->error_sample)) {
      state->error = error;
      state->error_sample = s;
    }
    if (--state->pending == 0) {
      state->done = true;
      state->wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                state->t_submit)
                                .count();
      --in_flight_;
      done_cv_.notify_all();
    }
  }
}

void InferenceEngine::enqueue(
    const std::shared_ptr<detail::BatchState>& state) {
  const std::size_t n = state->inputs->size();
  {
    obs::SpanRecord r;
    r.rid = state->trace_tag;
    r.value = n;
    obs::instant(obs::TraceLevel::kServe, obs::SpanCat::kEngine, "submit", r);
  }
  state->outputs.resize(n);
  state->reports.resize(n);
  state->pending = n;
  state->t_submit = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    DEEPCAM_CHECK_MSG(!shutdown_, "submit on a shutting-down engine");
    ++in_flight_;
    if (n == 0) {
      // Nothing to dispatch: complete inline so get() does not hang.
      state->done = true;
      --in_flight_;
      return;
    }
    queue_.push_back(state);
  }
  if (n == 1)
    work_cv_.notify_one();
  else
    work_cv_.notify_all();
}

BatchFuture InferenceEngine::submit(std::vector<nn::Tensor> inputs,
                                    std::uint64_t trace_tag) {
  auto state = std::make_shared<detail::BatchState>();
  state->owned_inputs = std::move(inputs);
  state->inputs = &state->owned_inputs;
  state->trace_tag = trace_tag;
  enqueue(state);
  return BatchFuture(this, std::move(state));
}

std::size_t InferenceEngine::in_flight_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

std::vector<nn::Tensor> InferenceEngine::collect(detail::BatchState& state,
                                                 BatchReport* report) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&state] { return state.done; });
  }
  // Past this point the workers are finished with `state`; its fields are
  // plain data owned by this thread (the unlock/lock pair above published
  // them).
  if (state.error != nullptr) std::rethrow_exception(state.error);
  if (report != nullptr) {
    *report = {};
    report->samples = state.reports.size();
    report->threads = thread_count();
    report->wall_seconds = state.wall_seconds;
    for (std::size_t i = 0; i < state.reports.size(); ++i) {
      if (i == 0)
        report->aggregate = state.reports[i];
      else
        merge_report(report->aggregate, state.reports[i]);
    }
    report->per_sample = std::move(state.reports);
  }
  return std::move(state.outputs);
}

std::vector<nn::Tensor> InferenceEngine::run_batch(
    const std::vector<nn::Tensor>& inputs, BatchReport* report) {
  // Thin wrapper over the submit/collect path; borrows the caller's inputs
  // (they outlive the wait below) instead of copying them.
  auto state = std::make_shared<detail::BatchState>();
  state->inputs = &inputs;
  enqueue(state);
  return collect(*state, report);
}

std::vector<nn::Tensor> InferenceEngine::run_batch(const nn::Tensor& batched,
                                                   BatchReport* report) {
  std::vector<nn::Tensor> inputs;
  inputs.reserve(batched.shape().n);
  for (std::size_t n = 0; n < batched.shape().n; ++n)
    inputs.push_back(batched.slice_sample(n));
  return run_batch(inputs, report);
}

}  // namespace deepcam::core
