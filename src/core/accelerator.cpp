#include "core/accelerator.hpp"

#include <algorithm>

#include "common/tech.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"

namespace deepcam::core {

std::size_t RunReport::total_cycles() const {
  std::size_t c = peripheral_cycles;
  for (const auto& l : layers) c += l.cycles;
  return c;
}

double RunReport::total_energy() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.total_energy();
  return e;
}

std::size_t RunReport::total_searches() const {
  std::size_t s = 0;
  for (const auto& l : layers) s += l.plan.searches;
  return s;
}

std::size_t RunReport::total_dot_products() const {
  std::size_t s = 0;
  for (const auto& l : layers) s += l.plan.dot_products;
  return s;
}

double RunReport::mean_utilization() const {
  if (layers.empty()) return 0.0;
  // Weight utilization by passes so reload-heavy layers dominate, matching
  // how hardware occupancy over time would be measured.
  double util = 0.0, weight = 0.0;
  for (const auto& l : layers) {
    util += l.plan.utilization * static_cast<double>(l.plan.passes);
    weight += static_cast<double>(l.plan.passes);
  }
  return weight == 0.0 ? 0.0 : util / weight;
}

double RunReport::time_seconds() const {
  return static_cast<double>(total_cycles()) * tech::kCycleSeconds;
}

DeepCamAccelerator::DeepCamAccelerator(nn::Model& model, DeepCamConfig cfg)
    : model_(model),
      cfg_(cfg),
      cam_(cam::CamConfig{cfg.cam_rows, 256, 4, cfg.tech}, cfg.sense),
      postproc_(cfg.postproc) {
  DEEPCAM_CHECK_MSG(cfg_.cam_rows > 0, "CAM needs rows");
  // Enumerate CAM-mapped layers and pre-hash their weights.
  for (std::size_t i = 0; i < model_.node_count(); ++i) {
    nn::Layer& layer = model_.layer(i);
    if (layer.kind() == nn::LayerKind::kConv2D) {
      auto& conv = static_cast<nn::Conv2D&>(layer);
      CamLayer cl;
      cl.node_index = i;
      cl.ctxgen = std::make_unique<ContextGenerator>(
          conv.spec().patch_len(), layer_hash_seed(cfg_.hash_seed, i));
      cl.weight_ctx = cl.ctxgen->weight_contexts(conv);
      cam_layers_.push_back(std::move(cl));
    } else if (layer.kind() == nn::LayerKind::kLinear) {
      auto& fc = static_cast<nn::Linear&>(layer);
      CamLayer cl;
      cl.node_index = i;
      cl.ctxgen = std::make_unique<ContextGenerator>(
          fc.in_features(), layer_hash_seed(cfg_.hash_seed, i));
      cl.weight_ctx = cl.ctxgen->weight_contexts(fc);
      cam_layers_.push_back(std::move(cl));
    }
  }
  if (!cfg_.layer_hash_bits.empty()) {
    DEEPCAM_CHECK_MSG(cfg_.layer_hash_bits.size() == cam_layers_.size(),
                      "layer_hash_bits arity != CAM layer count");
  }
}

std::vector<std::string> DeepCamAccelerator::cam_layer_names() const {
  std::vector<std::string> names;
  names.reserve(cam_layers_.size());
  for (const auto& cl : cam_layers_)
    names.push_back(model_.layer(cl.node_index).name());
  return names;
}

std::size_t DeepCamAccelerator::context_len(std::size_t i) const {
  DEEPCAM_CHECK(i < cam_layers_.size());
  return cam_layers_[i].ctxgen->input_dim();
}

std::size_t DeepCamAccelerator::hash_bits_for(std::size_t idx) const {
  const std::size_t k = cfg_.layer_hash_bits.empty()
                            ? cfg_.default_hash_bits
                            : cfg_.layer_hash_bits[idx];
  DEEPCAM_CHECK_MSG(k >= 1 && k <= hash::kMaxHashBits,
                    "hash length out of range");
  return k;
}

std::size_t DeepCamAccelerator::search_cycles_for(
    std::size_t hash_bits) const {
  if (cfg_.preset == CyclePreset::kIdealized) return 1;
  const std::size_t chunks = (hash_bits + 255) / 256;
  return static_cast<std::size_t>(tech::kCamSearchBaseCycles) +
         static_cast<std::size_t>(tech::kCamSearchCyclesPerChunk) * chunks;
}

LayerReport DeepCamAccelerator::simulate_cam_layer(
    std::size_t cam_idx, const std::vector<Context>& act_ctx,
    const std::vector<float>& bias, bool online_ctxgen,
    std::vector<double>& out_flat) {
  CamLayer& cl = cam_layers_[cam_idx];
  const std::vector<Context>& w_ctx = cl.weight_ctx;
  const std::size_t P = act_ctx.size();
  const std::size_t K = w_ctx.size();
  const std::size_t k_bits = hash_bits_for(cam_idx);
  const std::size_t R = cfg_.cam_rows;

  LayerReport rep;
  rep.name = model_.layer(cl.node_index).name();
  rep.patches = P;
  rep.kernels = K;
  rep.context_len = cl.ctxgen->input_dim();
  rep.hash_bits = k_bits;
  rep.plan = plan_mapping({P, K}, R, cfg_.dataflow);

  const bool ws = cfg_.dataflow == Dataflow::kWeightStationary;
  const std::vector<Context>& stationary = ws ? w_ctx : act_ctx;
  const std::vector<Context>& streamed = ws ? act_ctx : w_ctx;

  const double cam_e0 = cam_.stats().total_energy();
  const auto pp0 = postproc_.stats();

  cam_.set_hash_length(k_bits);
  out_flat.assign(K * P, 0.0);

  std::size_t base = 0;
  while (base < stationary.size()) {
    const std::size_t count = std::min(R, stationary.size() - base);
    cam_.clear();
    for (std::size_t r = 0; r < count; ++r)
      cam_.write_row(r, stationary[base + r].bits);
    for (std::size_t sidx = 0; sidx < streamed.size(); ++sidx) {
      const auto result = cam_.search(streamed[sidx].bits);
      for (std::size_t r = 0; r < count; ++r) {
        DEEPCAM_CHECK(result.row_hd[r].has_value());
        const std::size_t hd = *result.row_hd[r];
        const std::size_t kernel = ws ? (base + r) : sidx;
        const std::size_t patch = ws ? sidx : (base + r);
        out_flat[kernel * P + patch] = postproc_.finish_dot_product(
            w_ctx[kernel], act_ctx[patch], hd, k_bits, bias[kernel]);
      }
    }
    base += count;
  }

  // Online context generation cost for this layer's activation contexts.
  if (online_ctxgen) {
    for (std::size_t p = 0; p < P; ++p)
      postproc_.charge_context_generation(rep.context_len, k_bits);
  }

  // Cycle accounting under the chosen preset.
  const std::size_t t_search = search_cycles_for(k_bits);
  std::size_t cycles = rep.plan.searches * t_search;
  if (cfg_.preset == CyclePreset::kConservative) {
    cycles += rep.plan.rows_written *
              static_cast<std::size_t>(tech::kCamWriteCyclesPerRow);
    cycles += rep.plan.passes *
              static_cast<std::size_t>(tech::kCamPassDrainCycles);
    if (online_ctxgen)
      cycles += P * static_cast<std::size_t>(tech::kXbarInputBits);
  }
  rep.cycles = cycles;

  rep.cam_energy = cam_.stats().total_energy() - cam_e0;
  const auto pp1 = postproc_.stats();
  rep.postproc_energy = pp1.energy - pp0.energy;
  rep.ctxgen_energy = pp1.ctxgen_energy - pp0.ctxgen_energy;
  return rep;
}

nn::Tensor DeepCamAccelerator::run(const nn::Tensor& input,
                                   RunReport* report) {
  DEEPCAM_CHECK_MSG(input.shape().n == 1,
                    "accelerator simulates batch size 1");
  RunReport local_report;
  RunReport& rep = report != nullptr ? *report : local_report;
  rep = {};
  rep.cam_area_um2 = cam_.area_um2();

  std::vector<nn::Tensor> outs;
  outs.reserve(model_.node_count());
  std::size_t cam_idx = 0;
  bool first_cam_layer = true;

  for (std::size_t i = 0; i < model_.node_count(); ++i) {
    nn::Layer& layer = model_.layer(i);
    const auto& inputs = model_.inputs_of(i);
    auto fetch = [&](int idx) -> const nn::Tensor& {
      return idx == nn::kModelInput ? input
                                    : outs[static_cast<std::size_t>(idx)];
    };
    const nn::Tensor& in = fetch(inputs[0]);

    if (layer.kind() == nn::LayerKind::kConv2D) {
      auto& conv = static_cast<nn::Conv2D&>(layer);
      const nn::ConvSpec& spec = conv.spec();
      CamLayer& cl = cam_layers_[cam_idx];
      DEEPCAM_CHECK(cl.node_index == i);
      const auto act_ctx = cl.ctxgen->activation_contexts(in, spec);
      std::vector<double> flat;
      LayerReport lrep = simulate_cam_layer(cam_idx, act_ctx, conv.bias(),
                                            !first_cam_layer, flat);
      const std::size_t oh = spec.out_h(in.shape().h);
      const std::size_t ow = spec.out_w(in.shape().w);
      nn::Tensor out({1, spec.out_channels, oh, ow});
      for (std::size_t oc = 0; oc < spec.out_channels; ++oc)
        for (std::size_t p = 0; p < oh * ow; ++p)
          out[oc * oh * ow + p] = static_cast<float>(flat[oc * oh * ow + p]);
      outs.push_back(std::move(out));
      rep.layers.push_back(std::move(lrep));
      first_cam_layer = false;
      ++cam_idx;
    } else if (layer.kind() == nn::LayerKind::kLinear) {
      auto& fc = static_cast<nn::Linear&>(layer);
      CamLayer& cl = cam_layers_[cam_idx];
      DEEPCAM_CHECK(cl.node_index == i);
      std::vector<Context> act_ctx;
      act_ctx.push_back(cl.ctxgen->activation_context_flat(in));
      std::vector<double> flat;
      LayerReport lrep = simulate_cam_layer(cam_idx, act_ctx, fc.bias(),
                                            !first_cam_layer, flat);
      nn::Tensor out({1, fc.out_features(), 1, 1});
      for (std::size_t o = 0; o < fc.out_features(); ++o)
        out[o] = static_cast<float>(flat[o]);
      outs.push_back(std::move(out));
      rep.layers.push_back(std::move(lrep));
      first_cam_layer = false;
      ++cam_idx;
    } else if (inputs.size() == 2) {
      auto* add = dynamic_cast<nn::Add*>(&layer);
      DEEPCAM_CHECK(add != nullptr);
      nn::Tensor out = add->forward2(fetch(inputs[0]), fetch(inputs[1]));
      postproc_.charge_peripheral(out.numel());
      outs.push_back(std::move(out));
    } else {
      nn::Tensor out = layer.forward(in, false);
      // Peripheral digital ops run one element per lane-cycle; charged as
      // energy plus (conservative preset) elements/16 cycles.
      postproc_.charge_peripheral(out.numel());
      if (cfg_.preset == CyclePreset::kConservative)
        rep.peripheral_cycles += (out.numel() + 15) / 16;
      outs.push_back(std::move(out));
    }
  }
  return outs.back();
}

}  // namespace deepcam::core
