#include "core/accelerator.hpp"

namespace deepcam::core {

DeepCamAccelerator::DeepCamAccelerator(const nn::Model& model,
                                       DeepCamConfig cfg)
    : compiled_(std::make_shared<CompiledModel>(model, std::move(cfg))),
      worker_(*compiled_) {}

}  // namespace deepcam::core
