#include "core/mapping.hpp"

#include "common/error.hpp"

namespace deepcam::core {

const char* dataflow_name(Dataflow df) {
  return df == Dataflow::kWeightStationary ? "weight-stationary"
                                           : "activation-stationary";
}

namespace {

/// ceil(a/b) for positive integers.
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

MappingPlan plan_mapping(const LayerWork& work, std::size_t rows,
                         Dataflow df) {
  DEEPCAM_CHECK(rows > 0);
  DEEPCAM_CHECK(work.patches > 0 && work.kernels > 0);
  const std::size_t stationary =
      (df == Dataflow::kWeightStationary) ? work.kernels : work.patches;
  const std::size_t streamed =
      (df == Dataflow::kWeightStationary) ? work.patches : work.kernels;

  MappingPlan plan;
  plan.passes = ceil_div(stationary, rows);
  plan.searches = plan.passes == 0 ? 0 : 0;
  plan.rows_written = stationary;  // each stationary context programmed once
  plan.dot_products = work.patches * work.kernels;

  // Per-pass searches: every streamed context is searched once per pass.
  plan.searches = plan.passes * streamed;

  // Utilization: rows occupied per pass / rows, averaged over passes. The
  // last pass may be partially filled.
  double util_sum = 0.0;
  std::size_t remaining = stationary;
  for (std::size_t p = 0; p < plan.passes; ++p) {
    const std::size_t used = remaining >= rows ? rows : remaining;
    util_sum += static_cast<double>(used) / static_cast<double>(rows);
    remaining -= used;
  }
  plan.utilization = plan.passes == 0 ? 0.0 : util_sum / double(plan.passes);
  return plan;
}

}  // namespace deepcam::core
