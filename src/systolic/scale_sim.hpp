// SCALE-Sim-style analytic systolic-array simulator.
//
// The paper's Eyeriss baseline is produced by running SCALE-Sim (Samajdar et
// al.) with Eyeriss's 14x12 array and an INT8 datapath. We implement the
// same analytic model SCALE-Sim uses for weight-stationary mapping of a
// GEMM-shaped layer (M output pixels, N filters, K reduction):
//
//   * K maps onto the array's rows, N onto its columns;
//   * the work folds into ceil(K/rows) x ceil(N/cols) tiles;
//   * each fold costs  rows_used (weight fill) + M (stream) + cols_used - 1
//     (drain) cycles;
//   * utilization is the MAC-weighted fraction of busy PEs.
//
// A double-buffered memory system bounds each layer by DRAM bandwidth when
// its traffic exceeds the global buffer (SCALE-Sim's stall model,
// simplified): cycles = max(compute, dram_bytes / bytes_per_cycle).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/workload.hpp"

namespace deepcam::systolic {

struct ArrayConfig {
  std::size_t rows = 14;          // Eyeriss PE rows
  std::size_t cols = 12;          // Eyeriss PE columns
  std::size_t bytes_per_elem = 1; // INT8
  bool model_memory = true;       // include DRAM-bandwidth stalls
};

struct LayerResult {
  std::string layer_name;
  std::size_t macs = 0;
  std::size_t compute_cycles = 0;
  std::size_t stall_cycles = 0;   // extra cycles waiting on DRAM
  double utilization = 0.0;       // busy-PE fraction during compute
  std::size_t sram_accesses = 0;  // operand + partial-sum accesses
  std::size_t dram_bytes = 0;

  std::size_t total_cycles() const { return compute_cycles + stall_cycles; }
  /// Dynamic energy (J) of this layer: MACs + SRAM + DRAM at the tech.hpp
  /// cost ratios. ModelResult::total_energy() is the sum of these.
  double energy() const;
};

struct ModelResult {
  std::vector<LayerResult> layers;

  std::size_t total_cycles() const;
  std::size_t total_macs() const;
  double mean_utilization() const;  // MAC-weighted
  /// Dynamic energy (J): MACs + SRAM + DRAM at the tech.hpp cost ratios.
  double total_energy() const;
};

/// Simulates one GEMM-shaped layer.
LayerResult simulate_layer(const nn::GemmDims& dims, const ArrayConfig& cfg);

/// Simulates every Conv2D/Linear layer of a model.
ModelResult simulate_model(const nn::Model& model, nn::Shape input_shape,
                           const ArrayConfig& cfg);

}  // namespace deepcam::systolic
