#include "systolic/scale_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/tech.hpp"

namespace deepcam::systolic {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

LayerResult simulate_layer(const nn::GemmDims& dims, const ArrayConfig& cfg) {
  DEEPCAM_CHECK(cfg.rows > 0 && cfg.cols > 0);
  LayerResult r;
  r.layer_name = dims.layer_name;
  r.macs = dims.macs();

  const std::size_t folds_k = ceil_div(dims.k, cfg.rows);
  const std::size_t folds_n = ceil_div(dims.n, cfg.cols);

  std::size_t cycles = 0;
  double busy_pe_cycles = 0.0;
  for (std::size_t fk = 0; fk < folds_k; ++fk) {
    const std::size_t rows_used =
        (fk + 1 < folds_k) ? cfg.rows : dims.k - fk * cfg.rows;
    for (std::size_t fn = 0; fn < folds_n; ++fn) {
      const std::size_t cols_used =
          (fn + 1 < folds_n) ? cfg.cols : dims.n - fn * cfg.cols;
      // SCALE-Sim WS fold cost: weight fill + ifmap stream + ofmap drain.
      const std::size_t fold_cycles = rows_used + dims.m + cols_used - 1;
      cycles += fold_cycles;
      busy_pe_cycles += static_cast<double>(rows_used * cols_used) *
                        static_cast<double>(dims.m);
    }
  }
  r.compute_cycles = cycles;
  const double total_pe_cycles =
      static_cast<double>(cycles) * static_cast<double>(cfg.rows * cfg.cols);
  r.utilization = total_pe_cycles == 0.0 ? 0.0
                                         : busy_pe_cycles / total_pe_cycles;

  // SRAM traffic: every MAC pulls one ifmap and one weight operand from the
  // scratchpads, and each output accumulates across K-folds (read+write per
  // partial sum per fold beyond the first, plus the final write).
  const std::size_t psum_accesses =
      dims.m * dims.n * (folds_k > 1 ? 2 * (folds_k - 1) + 1 : 1);
  r.sram_accesses = 2 * r.macs + psum_accesses;

  // DRAM traffic: ifmap + weights + ofmap, re-fetched when the working set
  // exceeds the global buffer (fold-group reload, SCALE-Sim's simplification).
  const std::size_t ifmap_bytes = dims.m * dims.k * cfg.bytes_per_elem;
  const std::size_t weight_bytes = dims.k * dims.n * cfg.bytes_per_elem;
  const std::size_t ofmap_bytes = dims.m * dims.n * cfg.bytes_per_elem;
  const std::size_t working_set = ifmap_bytes + weight_bytes + ofmap_bytes;
  std::size_t dram_bytes = working_set;
  if (working_set >
      static_cast<std::size_t>(tech::kEyerissGlobalBufferBytes)) {
    // Ifmap must be re-streamed once per column-fold group.
    dram_bytes = ifmap_bytes * folds_n + weight_bytes + ofmap_bytes;
  }
  r.dram_bytes = dram_bytes;

  if (cfg.model_memory) {
    const std::size_t dram_cycles = static_cast<std::size_t>(
        static_cast<double>(dram_bytes) / tech::kDramBytesPerCycle);
    r.stall_cycles =
        dram_cycles > r.compute_cycles ? dram_cycles - r.compute_cycles : 0;
  }
  return r;
}

ModelResult simulate_model(const nn::Model& model, nn::Shape input_shape,
                           const ArrayConfig& cfg) {
  ModelResult result;
  for (const auto& dims : nn::extract_gemm_workload(model, input_shape))
    result.layers.push_back(simulate_layer(dims, cfg));
  return result;
}

std::size_t ModelResult::total_cycles() const {
  std::size_t c = 0;
  for (const auto& l : layers) c += l.total_cycles();
  return c;
}

std::size_t ModelResult::total_macs() const {
  std::size_t m = 0;
  for (const auto& l : layers) m += l.macs;
  return m;
}

double ModelResult::mean_utilization() const {
  double num = 0.0, den = 0.0;
  for (const auto& l : layers) {
    num += l.utilization * static_cast<double>(l.macs);
    den += static_cast<double>(l.macs);
  }
  return den == 0.0 ? 0.0 : num / den;
}

double LayerResult::energy() const {
  return static_cast<double>(macs) * tech::kMacInt8Energy +
         static_cast<double>(sram_accesses) * tech::kSramAccessFactor *
             tech::kMacInt8Energy +
         static_cast<double>(dram_bytes) * tech::kDramAccessFactor *
             tech::kMacInt8Energy;
}

double ModelResult::total_energy() const {
  double e = 0.0;
  for (const auto& l : layers) e += l.energy();
  return e;
}

}  // namespace deepcam::systolic
