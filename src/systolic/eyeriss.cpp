#include "systolic/eyeriss.hpp"

#include "common/tech.hpp"

namespace deepcam::systolic {

ArrayConfig eyeriss_config() {
  ArrayConfig cfg;
  cfg.rows = static_cast<std::size_t>(tech::kEyerissRows);
  cfg.cols = static_cast<std::size_t>(tech::kEyerissCols);
  cfg.bytes_per_elem = 1;  // INT8 (paper switches Eyeriss to INT8)
  cfg.model_memory = true;
  return cfg;
}

ModelResult simulate_eyeriss(const nn::Model& model, nn::Shape input_shape) {
  return simulate_model(model, input_shape, eyeriss_config());
}

}  // namespace deepcam::systolic
