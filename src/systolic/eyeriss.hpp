// Eyeriss baseline: the paper's configuration of the systolic model —
// 14x12 PE array, INT8 datapath, DRAM-bandwidth-aware (paper Table I).
#pragma once

#include "systolic/scale_sim.hpp"

namespace deepcam::systolic {

/// The paper's Eyeriss configuration.
ArrayConfig eyeriss_config();

/// Convenience: full-model Eyeriss simulation.
ModelResult simulate_eyeriss(const nn::Model& model, nn::Shape input_shape);

}  // namespace deepcam::systolic
