// Fig. 8 reproduction: CAM hardware overhead (search energy and area) for
// every row size {64,128,256,512} x word length {256,512,768,1024} the
// dynamic-size CAM supports, for FeFET and CMOS cell technologies.
#include <cstdio>

#include "cam/energy_model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace deepcam;

int main() {
  std::printf("== Fig. 8: CAM overhead vs row/column size (EvaCAM-style "
              "model) ==\n\n");

  for (const auto tech : {cam::CellTech::kFeFET, cam::CellTech::kCmos}) {
    const char* tech_name =
        tech == cam::CellTech::kFeFET ? "FeFET (2T-2FeFET)" : "CMOS (16T)";
    std::printf("technology: %s\n", tech_name);
    Table t({"rows", "word bits", "search energy (pJ)", "area (um^2)",
             "energy/bit (fJ)"});
    for (std::size_t rows : {64u, 128u, 256u, 512u}) {
      for (std::size_t bits : {256u, 512u, 768u, 1024u}) {
        cam::CamConfig cfg{rows, 256, 4, tech};
        const double e = cam::CamCostModel::search_energy(cfg, bits);
        const double a = cam::CamCostModel::area_um2(cfg);
        t.add_row({std::to_string(rows), std::to_string(bits),
                   Table::num(to_pJ(e), 3), Table::num(a, 0),
                   Table::num(1e15 * e / double(rows * bits), 3)});
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf("Shape check: energy grows ~linearly along both axes; FeFET "
              "is ~2.4x cheaper per search and ~7.5x denser than CMOS "
              "(paper section II-A).\n");
  return 0;
}
