// Fig. 9 reproduction: inference computation cycles and hardware utilization
// for DeepCAM (weight- and activation-stationary, CAM rows 64..512) versus
// the Eyeriss systolic baseline and the Skylake CPU model, on all four
// topologies.
//
// DeepCAM cycles are reported under both cycle presets:
//   idealized    — the paper's O(1)-search abstraction (search=1 cycle,
//                  writes/context-generation hidden);
//   conservative — engineering-estimate latencies (tech.hpp).
// See EXPERIMENTS.md for how the paper's headline ratios map onto these.
#include <cstdio>

#include "common/table.hpp"
#include "common/tech.hpp"
#include "core/accelerator.hpp"
#include "core/mapping.hpp"
#include "cpu/cpu_model.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"
#include "systolic/eyeriss.hpp"

using namespace deepcam;

namespace {

/// Analytic DeepCAM cycle/utilization model from the mapping plans — no
/// functional simulation needed, so the full sweep is instant. Matches the
/// accelerator's accounting (test_integration pins them together).
struct DeepCamAnalytic {
  std::size_t cycles_ideal = 0;
  std::size_t cycles_conservative = 0;
  double mean_util = 0.0;
};

DeepCamAnalytic analyze(const nn::Model& model, nn::Shape input,
                        std::size_t rows, core::Dataflow df,
                        std::size_t hash_bits) {
  DeepCamAnalytic out;
  const std::size_t chunks = (hash_bits + 255) / 256;
  const std::size_t t_search =
      std::size_t(tech::kCamSearchBaseCycles) +
      std::size_t(tech::kCamSearchCyclesPerChunk) * chunks;
  double util = 0.0, wsum = 0.0;
  bool first = true;
  for (const auto& g : nn::extract_gemm_workload(model, input)) {
    const core::MappingPlan plan =
        core::plan_mapping({g.m, g.n}, rows, df);
    out.cycles_ideal += plan.searches;  // 1 cycle per O(1) search
    out.cycles_conservative +=
        plan.searches * t_search +
        plan.rows_written * std::size_t(tech::kCamWriteCyclesPerRow) +
        plan.passes * std::size_t(tech::kCamPassDrainCycles) +
        (first ? 0 : g.m * std::size_t(tech::kXbarInputBits));
    util += plan.utilization * double(plan.passes);
    wsum += double(plan.passes);
    first = false;
  }
  out.mean_util = wsum == 0.0 ? 0.0 : util / wsum;
  return out;
}

}  // namespace

int main() {
  std::printf("== Fig. 9: computational cycles & utilization ==\n\n");

  struct Workload {
    const char* model;
    const char* dataset;
    std::size_t hash_bits;  // representative VHL level (Fig. 5)
  };
  const Workload workloads[] = {{"lenet5", "MNIST-like", 256},
                                {"vgg11", "CIFAR10-like", 512},
                                {"vgg16", "CIFAR100-like", 768},
                                {"resnet18", "CIFAR100-like", 1024}};

  for (const auto& w : workloads) {
    auto model = nn::make_model(w.model, 1);
    const nn::InputSpec spec = nn::input_spec_for(w.model);
    const nn::Shape in{1, spec.channels, spec.height, spec.width};

    const auto eyeriss = systolic::simulate_eyeriss(*model, in);
    const auto cpu = cpu::simulate_cpu(*model, in);

    std::printf("-- %s (%s), hash length %zu --\n", w.model, w.dataset,
                w.hash_bits);
    std::printf("baselines: Eyeriss %zu cycles (util %.1f%%), CPU %.3e "
                "cycles (eff %.2f%% of peak)\n",
                eyeriss.total_cycles(), 100.0 * eyeriss.mean_utilization(),
                cpu.total_cycles(), 100.0 * cpu.mean_efficiency());

    Table t({"rows", "dataflow", "DC cycles (ideal)", "DC cycles (cons.)",
             "util", "vs Eyeriss (ideal)", "vs CPU (ideal)"});
    for (std::size_t rows : {64u, 128u, 256u, 512u}) {
      for (const auto df : {core::Dataflow::kWeightStationary,
                            core::Dataflow::kActivationStationary}) {
        const auto dc = analyze(*model, in, rows, df, w.hash_bits);
        t.add_row(
            {std::to_string(rows),
             df == core::Dataflow::kWeightStationary ? "WS" : "AS",
             Table::num(double(dc.cycles_ideal), 0),
             Table::num(double(dc.cycles_conservative), 0),
             Table::num(100.0 * dc.mean_util, 1) + "%",
             Table::ratio(double(eyeriss.total_cycles()) /
                          double(dc.cycles_ideal)),
             Table::ratio(cpu.total_cycles() / double(dc.cycles_ideal))});
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks (paper section IV-B): AS utilization >> WS on conv\n"
      "topologies; speedup vs Eyeriss grows with CAM rows; LeNet shows the\n"
      "largest CPU gap; DeepCAM < Eyeriss < CPU cycles everywhere.\n");
  return 0;
}
