// Table I reproduction: the evaluation setup — platforms, configurations,
// metrics and CNN/dataset pairs, as instantiated by this repository.
#include <cstdio>

#include "common/table.hpp"
#include "common/tech.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"
#include "systolic/eyeriss.hpp"

using namespace deepcam;

int main() {
  std::printf("== Table I: hardware evaluation setup ==\n\n");
  Table t({"category", "CPU", "systolic", "DeepCAM"});
  t.add_row({"configuration", "Skylake AVX-512 VNNI model",
             "Eyeriss 14x12, INT8 (SCALE-Sim-style)",
             "FeFET CAM, variable hash length"});
  t.add_row({"hw performance", "overall inference computation cycles",
             "overall inference computation cycles",
             "overall inference computation cycles"});
  t.add_row({"energy", "(excluded: CPU energy-hungry, as in paper)",
             "dynamic inference energy", "dynamic inference energy"});
  t.add_row({"clock", "CPU core clock", "300 MHz @ 45 nm", "300 MHz @ 45 nm"});
  t.print();

  std::printf("\nCNN & dataset pairs (paper: MNIST/CIFAR10/CIFAR100; here "
              "procedural stand-ins, see DESIGN.md):\n");
  Table m({"model", "input", "classes", "CAM layers", "MACs/inference"});
  for (const auto* name : {"lenet5", "vgg11", "vgg16", "resnet18"}) {
    const nn::InputSpec spec = nn::input_spec_for(name);
    auto model = nn::make_model(name, 1);
    const nn::Shape in{1, spec.channels, spec.height, spec.width};
    const auto work = nn::extract_gemm_workload(*model, in);
    char input_s[32];
    std::snprintf(input_s, sizeof input_s, "%zux%zux%zu", spec.channels,
                  spec.height, spec.width);
    m.add_row({name, input_s, std::to_string(spec.classes),
               std::to_string(work.size()),
               Table::num(double(nn::total_macs(*model, in)), 0)});
  }
  m.print();

  std::printf("\nDeepCAM CAM geometry: rows in {64,128,256,512}, word "
              "length in {256,512,768,1024} bits (4 chunks x 256).\n");
  std::printf("Tech constants (src/common/tech.hpp): CAM search %.3f "
              "fJ/bit, MAC(INT8) %.2f pJ, SRAM %.0fx MAC, DRAM %.0fx MAC.\n",
              tech::kCamSearchEnergyPerBit * 1e15,
              tech::kMacInt8Energy * 1e12, tech::kSramAccessFactor,
              tech::kDramAccessFactor);
  return 0;
}
