// Ablation bench for the design choices called out in DESIGN.md §5:
//
//  A1  PWL cosine (paper eq. 5) vs exact cosine
//  A2  8-bit minifloat norms vs fp32 norms
//  A3  prefix-derived hashes vs independently drawn projection matrices
//  A4  ideal sense amplifier vs TDC-quantized sensing (resolution sweep)
//  A5  noise-aware fine-tuning on vs off
//
// Each ablation reports LeNet5 DeepCAM accuracy (trained on the synthetic
// digits) so the contribution of every error source is visible in the same
// units the paper uses.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/topologies.hpp"
#include "nn/trainer.hpp"

using namespace deepcam;

namespace {

double accuracy(nn::Model& model, const nn::Dataset& data, std::size_t count,
                const core::DeepCamConfig& cfg) {
  core::DeepCamAccelerator acc(model, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& s = data.sample(i);
    if (nn::argmax_class(acc.run(s.image)) == s.label) ++correct;
  }
  return double(correct) / double(count);
}

}  // namespace

int main() {
  std::printf("== Ablation: contribution of each DeepCAM design choice ==\n"
              "(LeNet5, synthetic digits, k = 1024 unless swept)\n\n");

  // Train twice: plain, and with hash-noise-aware fine-tuning.
  nn::SyntheticDigits train(4000, 100, 0.2);
  nn::SyntheticDigits test(200, 101, 0.2);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 0.05f;

  auto plain = nn::make_lenet5(7);
  nn::train_sgd(*plain, train, tc);

  auto robust = nn::make_lenet5(7);
  nn::train_sgd(*robust, train, tc);
  nn::TrainConfig ft = tc;
  ft.epochs = 6;
  ft.lr = 0.01f;
  ft.noise_scale = 0.05f;
  nn::train_sgd(*robust, train, ft);
  nn::set_training_noise(*robust, 0.0f, 0);

  const double bl_plain = nn::evaluate_accuracy(*plain, test);
  const double bl_robust = nn::evaluate_accuracy(*robust, test);
  std::printf("software baselines: plain %.1f%%, noise-aware %.1f%%\n\n",
              100.0 * bl_plain, 100.0 * bl_robust);

  const std::size_t n_eval = 80;

  // --- A5 first (it defines which model the other ablations use). -------
  {
    Table t({"training", "DC acc @1024", "DC acc @512"});
    for (auto* entry : {&plain, &robust}) {
      core::DeepCamConfig k1024, k512;
      k1024.default_hash_bits = 1024;
      k512.default_hash_bits = 512;
      t.add_row({entry == &plain ? "plain" : "noise-aware fine-tune",
                 Table::num(100.0 * accuracy(**entry, test, n_eval, k1024), 1) + "%",
                 Table::num(100.0 * accuracy(**entry, test, n_eval, k512), 1) + "%"});
    }
    std::printf("A5: noise-aware fine-tuning (the extension that closes the "
                "paper's Fig. 5 gap)\n");
    t.print();
    std::printf("\n");
  }

  nn::Model& m = *robust;

  // --- A1/A2: cosine and norm precision. ---------------------------------
  {
    Table t({"cosine", "norms", "DC acc @1024"});
    for (bool pwl : {true, false}) {
      for (bool mf : {true, false}) {
        core::DeepCamConfig cfg;
        cfg.postproc.use_pwl_cosine = pwl;
        cfg.postproc.minifloat_norms = mf;
        t.add_row({pwl ? "PWL (eq. 5)" : "exact cosf",
                   mf ? "minifloat8" : "fp32",
                   Table::num(100.0 * accuracy(m, test, n_eval, cfg), 1) +
                       "%"});
      }
    }
    std::printf("A1/A2: PWL cosine and minifloat norms cost little once the "
                "network is noise-robust\n");
    t.print();
    std::printf("\n");
  }

  // --- A3: prefix hashes vs independent matrices. -------------------------
  {
    // Different hash_seed draws an entirely fresh set of projection
    // matrices; if the prefix trick biased anything, seeds would disagree
    // systematically with each other.
    Table t({"hash seed", "DC acc @512 (prefix of 1024-bit C)"});
    for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
      core::DeepCamConfig cfg;
      cfg.default_hash_bits = 512;
      cfg.hash_seed = seed;
      t.add_row({std::to_string(seed),
                 Table::num(100.0 * accuracy(m, test, n_eval, cfg), 1) + "%"});
    }
    std::printf("A3: prefix-derived 512-bit hashes behave identically "
                "across independent draws\n");
    t.print();
    std::printf("\n");
  }

  // --- A4: sense-amp TDC resolution sweep. --------------------------------
  {
    Table t({"sense amp", "tau (bins)", "DC acc @1024"});
    core::DeepCamConfig ideal;
    t.add_row({"ideal", "-",
               Table::num(100.0 * accuracy(m, test, n_eval, ideal), 1) + "%"});
    for (std::size_t tau : {256u, 1024u, 4096u, 16384u}) {
      core::DeepCamConfig cfg;
      cfg.sense.mode = cam::SenseMode::kQuantized;
      cfg.sense.tau_unit_bins = tau;
      t.add_row({"TDC-quantized", std::to_string(tau),
                 Table::num(100.0 * accuracy(m, test, n_eval, cfg), 1) + "%"});
    }
    std::printf("A4: the clocked SA's hyperbolic TDC loses mid-range HD "
                "resolution; accuracy recovers with finer time bins\n");
    t.print();
  }
  return 0;
}
