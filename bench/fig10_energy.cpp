// Fig. 10 reproduction: normalized inference energy of Eyeriss, DeepCAM
// with variable hash lengths (VHL), and "Max DeepCAM" (homogeneous
// 1024-bit), all normalized to the paper's baseline: DeepCAM with
// homogeneous 256-bit hashes. Swept over CAM row counts and both dataflows.
//
// DeepCAM energy is computed analytically from the mapping plans and the
// tech.hpp cost model (identical accounting to the accelerator's reports:
// CAM search + CAM write + post-processing + online context generation).
#include <cstdio>
#include <vector>

#include "cam/energy_model.hpp"
#include "common/table.hpp"
#include "common/tech.hpp"
#include "core/mapping.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"
#include "systolic/eyeriss.hpp"

using namespace deepcam;

namespace {

/// Representative VHL assignment: early layers (small contexts) need longer
/// hashes than their dimensionality suggests is unnecessary; deep layers
/// with large contexts need the full word. This mirrors the per-layer
/// choices the Fig. 5 tuner produces: scale hash length with context size.
std::size_t vhl_bits_for_context(std::size_t context_len) {
  if (context_len <= 64) return 256;
  if (context_len <= 512) return 512;
  if (context_len <= 2048) return 768;
  return 1024;
}

double deepcam_energy(const nn::Model& model, nn::Shape input,
                      std::size_t rows, core::Dataflow df,
                      std::size_t fixed_bits /* 0 = VHL */) {
  double energy = 0.0;
  bool first = true;
  const cam::CamConfig cam_cfg{rows, 256, 4, cam::CellTech::kFeFET};
  for (const auto& g : nn::extract_gemm_workload(model, input)) {
    const std::size_t k =
        fixed_bits == 0 ? vhl_bits_for_context(g.k) : fixed_bits;
    const core::MappingPlan plan = core::plan_mapping({g.m, g.n}, rows, df);
    // CAM: searches + row writes.
    energy += double(plan.searches) *
              cam::CamCostModel::search_energy(cam_cfg, k);
    energy += double(plan.rows_written) *
              cam::CamCostModel::write_energy(cam_cfg, k);
    // Post-processing: one cosine+2 minifloat muls+bias add per dot product.
    energy += double(plan.dot_products) *
              (tech::kCosineUnitEnergy + 2.0 * tech::kMiniFloatMulEnergy +
               tech::kAdd8Energy + tech::kPipeRegEnergy);
    // Online context generation for every layer after the first.
    if (!first) {
      energy += double(g.m) *
                (double(g.k) * tech::kMul8Energy +
                 double(g.k - 1) * tech::kAdd16Energy +
                 16.0 * tech::kSqrtIterEnergy +
                 double(g.k) * double(k) * tech::kXbarCellEnergy +
                 double(k) * tech::kXbarSenseAmpEnergy);
    }
    first = false;
  }
  return energy;
}

}  // namespace

int main() {
  std::printf("== Fig. 10: normalized energy (baseline = DeepCAM "
              "homogeneous 256-bit) ==\n\n");

  const char* models[] = {"lenet5", "vgg11", "vgg16", "resnet18"};
  for (const char* name : models) {
    auto model = nn::make_model(name, 1);
    const nn::InputSpec spec = nn::input_spec_for(name);
    const nn::Shape in{1, spec.channels, spec.height, spec.width};
    const double eyeriss_e = systolic::simulate_eyeriss(*model, in)
                                 .total_energy();

    std::printf("-- %s --\n", name);
    Table t({"rows", "dataflow", "Eyeriss", "VHL DeepCAM", "Max DeepCAM",
             "VHL saving vs Eyeriss"});
    for (std::size_t rows : {64u, 128u, 256u, 512u}) {
      for (const auto df : {core::Dataflow::kWeightStationary,
                            core::Dataflow::kActivationStationary}) {
        const double base = deepcam_energy(*model, in, rows, df, 256);
        const double vhl = deepcam_energy(*model, in, rows, df, 0);
        const double maxd = deepcam_energy(*model, in, rows, df, 1024);
        t.add_row({std::to_string(rows),
                   df == core::Dataflow::kWeightStationary ? "WS" : "AS",
                   Table::num(eyeriss_e / base, 1),
                   Table::num(vhl / base, 2), Table::num(maxd / base, 2),
                   Table::ratio(eyeriss_e / vhl, 1)});
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks (paper section IV-C): VHL sits between the 256-bit\n"
      "baseline (1.0) and Max DeepCAM; Eyeriss is orders of magnitude\n"
      "above all DeepCAM variants; savings vs Eyeriss are largest for\n"
      "LeNet and smallest for ResNet18 (paper: 109.4x down to 2.16x).\n");
  return 0;
}
