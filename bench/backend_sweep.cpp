// Batch-size sweep across every registered backend: how cycles/inference
// and simulated throughput scale with batch on each platform (the analytic
// baselines are exactly linear; DeepCAM is executed functionally and must
// land on the same line — the backend contract tests assert it).
#include <cstdio>

#include "codelet/codelet.hpp"
#include "common/table.hpp"
#include "sim/comparison.hpp"
#include "sim/report_io.hpp"

using namespace deepcam;

int main() {
  std::printf("== Backend batch sweep (lenet5) ==\n");
  // Same self-describing context pair micro_kernels reports through the
  // google-benchmark context: numbers are meaningless without the build
  // type, and the DeepCAM row's host speed rides on the dispatched ISA.
#ifdef NDEBUG
  std::printf("deepcam_build_type: release\n");
#else
  std::printf("deepcam_build_type: debug\n");
#endif
  std::printf("deepcam_codelet_isa: %s\n\n",
              codelet::isa_name(codelet::active_isa()));
  const sim::BackendRegistry registry = sim::default_registry();
  const sim::ComparisonRunner runner(registry);
  const sim::ComparisonReport report =
      runner.run({{"lenet5", /*seed=*/1, /*batch_sizes=*/{1, 2, 4, 8}}});

  Table t({"backend", "batch", "cycles/inf", "samples/s", "energy/inf (uJ)"});
  for (const auto& r : report.rows)
    t.add_row({r.backend, std::to_string(r.batch),
               Table::num(r.cycles_per_inference(), 1),
               Table::num(r.throughput(), 1),
               r.energy_modeled
                   ? Table::num(r.energy_per_inference_j() * 1e6, 4)
                   : "n/a"});
  t.print();
  return 0;
}
