// Serving throughput/latency bench: offered load vs p99, and saturation
// throughput vs the offline run_batch() upper bound.
//
// Five phases on one LeNet-5 session (k=256 operating point):
//
//  1. offline  — InferenceEngine::run_batch over a fixed batch, repeated;
//     best samples/s is the no-serving-overhead upper bound.
//  2. saturation — closed-loop replay (every client keeps one request
//     outstanding) through the full Server stack: RequestQueue ->
//     DynamicBatcher -> engine submit(). Reported as achieved req/s, the
//     ratio to offline, and the high-water mark of concurrently in-flight
//     micro-batches (>= 2 proves batches pipeline instead of serializing).
//  3. sweep — seeded open-loop Poisson traces at rising fractions of the
//     measured saturation rate; reports p50/p95/p99 end-to-end latency per
//     offered load (the paper-style latency/throughput operating curve).
//  4. flash crowd — one seeded trace whose spike offers >= 2x the measured
//     saturation rate, replayed twice: through a FIFO server (deadlines
//     recorded, never enforced) and through the SLO-aware server
//     (watermark shedding + deadline expiry). Compares goodput and p99.9.
//  5. replica failover — the same paced trace through a clean 3-replica
//     server and one whose replica 1 is crash+healed mid-run by a chaos
//     script. Gates deadline-met of the faulted run at >= 80% of the
//     clean run, zero lost requests, and canary readmission of the
//     crashed replica.
//
// Results print as a table and (with --json PATH) are written as one JSON
// artifact (BENCH_pr4.json in CI) through the shared locale-proof
// serializers. --check exits nonzero unless saturation >= 90% of offline
// with >= 2 concurrent in-flight micro-batches AND the flash-crowd SLO
// server strictly beats FIFO on deadline-met responses with every trace
// event accounted for; --quick shrinks every phase for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codelet/codelet.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/report_io.hpp"
#include "nn/topologies.hpp"
#include "serve/loadgen.hpp"
#include "serve/report_io.hpp"
#include "serve/server.hpp"

using namespace deepcam;

namespace {

struct SweepRow {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::size_t sent = 0;
  std::size_t rejected = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
};

/// Build configuration context mirrored into the printout and the JSON
/// artifact (micro_kernels.cpp reports the same pair through the
/// google-benchmark context) so every emitted artifact is self-describing.
const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, check = false;
  std::string json_path, baseline_path;
  cli::Flags flags("serve_throughput",
                   "offline vs saturation vs offered-load serving sweep");
  flags.flag("quick", &quick, "shrink every phase for CI smoke runs")
      .flag("check", &check, "gate saturation >= 90% of offline, >= 2 in "
                             "flight")
      .option("json", &json_path, "write the bench JSON artifact here")
      .option("baseline", &baseline_path,
              "prior artifact; with --check, gate saturation >= 99% of its "
              "saturation.achieved_rps");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  std::printf("deepcam_build_type: %s\ndeepcam_codelet_isa: %s\n",
              build_type(), codelet::isa_name(codelet::active_isa()));

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t offline_samples = quick ? 32 : 64;
  const std::size_t offline_reps = quick ? 3 : 5;
  const std::size_t saturation_reps = quick ? 2 : 3;
  const std::size_t saturation_requests = quick ? 96 : 256;
  const std::size_t sweep_requests = quick ? 48 : 128;
  const std::size_t num_workers = std::max<std::size_t>(2, hw);

  auto model = nn::make_lenet5(/*seed=*/7);
  core::DeepCamConfig dc;
  dc.default_hash_bits = 256;
  auto compiled = std::make_shared<const core::CompiledModel>(*model, dc);
  const nn::Shape input_shape = nn::input_spec_for("lenet5").shape();

  // --- phase 1: offline upper bound --------------------------------------
  double offline_rps = 0.0;
  core::BatchReport offline_report;
  {
    core::InferenceEngine engine(compiled, hw);
    std::vector<nn::Tensor> batch;
    batch.reserve(offline_samples);
    for (std::size_t i = 0; i < offline_samples; ++i)
      batch.push_back(
          serve::LoadGenerator::make_input(input_shape, 1000 + i));
    for (std::size_t rep = 0; rep < offline_reps; ++rep) {
      core::BatchReport br;
      engine.run_batch(batch, &br);
      if (br.throughput() > offline_rps) {
        offline_rps = br.throughput();
        offline_report = br;
      }
    }
  }
  std::printf("offline run_batch: %.1f samples/s (%zu samples, %zu engine "
              "threads, best of %zu)\n",
              offline_rps, offline_samples, hw, offline_reps);

  auto make_server = [&] {
    serve::ServerConfig cfg;
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 1024;
    cfg.batch.max_batch_size = 8;
    cfg.batch.max_queue_delay = std::chrono::microseconds(2000);
    auto server = std::make_unique<serve::Server>(cfg);
    server->sessions().add_session("lenet5-k256", compiled, hw);
    server->start();
    return server;
  };

  // --- phase 2: closed-loop saturation ------------------------------------
  // Best-of-N like the offline phase: an asymmetric single run would bias
  // the ratio gate downward under CI timing noise.
  double saturation_rps = 0.0;
  std::uint64_t max_in_flight = 0;
  serve::ServerSummary saturation_summary;
  for (std::size_t rep = 0; rep < saturation_reps; ++rep) {
    auto server = make_server();
    serve::TraceConfig tc;
    tc.requests = saturation_requests;
    tc.sessions = {"lenet5-k256"};
    tc.seed = 42 + rep;
    serve::ReplayOptions opts;
    opts.mode = serve::ReplayOptions::Mode::kClosedLoop;
    opts.closed_loop_clients = 2 * num_workers * 8;  // keep batches full
    serve::LoadGenerator loadgen(*server, {input_shape});
    const serve::LoadReport load =
        loadgen.replay(serve::make_trace(tc), opts);
    server->drain();
    server->stop();
    const serve::ServerSummary summary = server->summary();
    max_in_flight = std::max(max_in_flight, summary.max_in_flight_batches);
    if (load.achieved_rps > saturation_rps) {
      saturation_rps = load.achieved_rps;
      saturation_summary = summary;
    }
  }
  std::printf("saturation (closed loop): %.1f req/s = %.1f%% of offline, "
              "max %llu micro-batches in flight, mean batch %.2f "
              "(best of %zu)\n",
              saturation_rps, 100.0 * saturation_rps / offline_rps,
              static_cast<unsigned long long>(max_in_flight),
              saturation_summary.sessions[0].mean_batch_size,
              saturation_reps);

  // --- phase 3: offered-load sweep (open-loop Poisson) --------------------
  std::vector<SweepRow> sweep;
  const double fractions[] = {0.25, 0.5, 0.75, 0.9, 1.1};
  std::printf("\n%10s %10s %6s %6s %9s %9s %9s %7s\n", "offered", "achieved",
              "ok", "rej", "p50_ms", "p95_ms", "p99_ms", "batch");
  for (const double f : fractions) {
    auto server = make_server();
    serve::TraceConfig tc;
    tc.requests = sweep_requests;
    tc.rate_rps = std::max(1.0, f * saturation_rps);
    tc.sessions = {"lenet5-k256"};
    tc.seed = 7000 + static_cast<std::uint64_t>(100 * f);
    serve::LoadGenerator loadgen(*server, {input_shape});
    const serve::LoadReport load = loadgen.replay(serve::make_trace(tc));
    server->drain();
    server->stop();
    const serve::ServerSummary sum = server->summary();
    SweepRow row;
    row.offered_rps = load.offered_rps;
    row.achieved_rps = load.achieved_rps;
    row.sent = load.sent;
    row.rejected = load.rejected;
    row.p50_ms = load.percentile_ms(50);
    row.p95_ms = load.percentile_ms(95);
    row.p99_ms = load.percentile_ms(99);
    row.mean_batch = sum.sessions[0].mean_batch_size;
    sweep.push_back(row);
    std::printf("%10.1f %10.1f %6zu %6zu %9.3f %9.3f %9.3f %7.2f\n",
                row.offered_rps, row.achieved_rps, row.sent, row.rejected,
                row.p50_ms, row.p95_ms, row.p99_ms, row.mean_batch);
  }

  const double ratio = offline_rps > 0.0 ? saturation_rps / offline_rps : 0.0;

  // --- phase 4: flash crowd at >= 2x saturation — SLO-aware vs FIFO -------
  // Deadlines and trace rates scale with the OFFLINE rate, not the
  // measured saturation: serving throughput never exceeds offline, so a
  // 4x-offline spike is at least 4x the actual service rate on any host —
  // the overload severity does not ride on the noisier saturation
  // measurement. Absolute floors keep deadlines clear of the coalescing
  // delay on very fast machines.
  const double batch_service = offline_rps > 0.0 ? 8.0 / offline_rps : 1e-3;
  const auto slo_us = [](double seconds) {
    return std::chrono::microseconds(
        static_cast<long long>(seconds * 1e6));
  };
  auto make_crowd_server = [&](bool slo_aware) {
    serve::ServerConfig cfg;
    cfg.num_workers = num_workers;
    // Deep queue, tight deadlines: draining a full queue costs ~32 batch
    // services while the furthest deadline is 10 — so a FIFO server under
    // the spike burns most of its capacity completing hopeless (already
    // doomed) requests, which is exactly what expiry + shedding avoid.
    cfg.queue_capacity = 256;
    cfg.batch.max_batch_size = 8;
    cfg.batch.max_queue_delay = std::chrono::microseconds(2000);
    cfg.slo.deadline = {slo_us(std::max(2 * batch_service, 0.006)),
                        slo_us(std::max(5 * batch_service, 0.015)),
                        slo_us(std::max(10 * batch_service, 0.030))};
    if (slo_aware)
      cfg.slo.admission.shed_depth_fraction = {1.0, 0.75, 0.35};
    cfg.slo.expire_doomed = slo_aware;  // false = the FIFO baseline
    auto server = std::make_unique<serve::Server>(cfg);
    server->sessions().add_session("lenet5-k256", compiled, hw);
    server->start();
    return server;
  };
  serve::TraceConfig crowd;
  crowd.requests = 256;  // fixed: the spike needs mass to fill the queue
  crowd.rate_rps = std::max(1.0, 0.4 * offline_rps);
  crowd.arrivals = serve::ArrivalProcess::kFlash;
  crowd.flash_rate_rps = std::max(4.0, 4.0 * offline_rps);
  const double nominal_span = crowd.requests / crowd.rate_rps;
  crowd.flash_start_seconds = 0.1 * nominal_span;
  crowd.flash_duration_seconds = 0.6 * nominal_span;
  crowd.class_weights = {0.25, 0.5, 0.25};
  crowd.sessions = {"lenet5-k256"};
  crowd.seed = 99;
  const serve::Trace crowd_trace = serve::make_trace(crowd);

  auto run_crowd = [&](bool slo_aware) {
    auto server = make_crowd_server(slo_aware);
    serve::LoadGenerator loadgen(*server, {input_shape});
    const serve::LoadReport load = loadgen.replay(crowd_trace);
    server->drain();
    server->stop();
    return load;
  };
  // The gate aggregates identical-trace repeats so a single noisy run
  // (CPU frequency, scheduler) cannot flip a strict comparison.
  const std::size_t crowd_reps = quick ? 2 : 3;
  std::size_t fifo_met = 0, slo_met = 0;
  serve::LoadReport fifo_load, slo_load;  // last repeat, for the artifact
  bool none_lost = true;
  for (std::size_t rep = 0; rep < crowd_reps; ++rep) {
    fifo_load = run_crowd(false);
    slo_load = run_crowd(true);
    fifo_met += fifo_load.slo_met;
    slo_met += slo_load.slo_met;
    none_lost =
        none_lost &&
        fifo_load.sent + fifo_load.rejected == crowd_trace.events.size() &&
        slo_load.sent + slo_load.rejected == crowd_trace.events.size();
  }
  std::printf("\nflash crowd (%.0f -> %.0f req/s spike, %zu requests, "
              "%zu repeats):\n"
              "  FIFO      goodput %8.1f req/s  %4zu met  %4zu shed  "
              "%4zu expired  p99.9 %8.3f ms\n"
              "  SLO-aware goodput %8.1f req/s  %4zu met  %4zu shed  "
              "%4zu expired  p99.9 %8.3f ms  [%s]\n",
              crowd.rate_rps, crowd.flash_rate_rps,
              crowd_trace.events.size(), crowd_reps, fifo_load.goodput_rps,
              fifo_met, fifo_load.shed, fifo_load.expired,
              fifo_load.percentile_ms(99.9), slo_load.goodput_rps, slo_met,
              slo_load.shed, slo_load.expired,
              slo_load.percentile_ms(99.9),
              none_lost ? "none lost" : "LOST REQUESTS");

  // --- phase 5: replica failover — crash 1 of 3 mid-run --------------------
  // Same trace through two 3-replica servers: one clean, one with a
  // scripted crash+heal on replica 1. Instant failover (consistent-hash
  // reroute + retry) must keep the faulted run's deadline-met count at
  // >= 80% of the clean run's, the crashed replica must come back through
  // quarantine + canary probes, and nothing may be lost either way.
  auto make_replica_server = [&](bool with_chaos, double span) {
    serve::ServerConfig cfg;
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 256;
    cfg.batch.max_batch_size = 8;
    cfg.batch.max_queue_delay = std::chrono::microseconds(2000);
    cfg.slo.deadline = {slo_us(std::max(4 * batch_service, 0.010)),
                        slo_us(std::max(8 * batch_service, 0.025)),
                        slo_us(std::max(16 * batch_service, 0.050))};
    cfg.replicas = 3;
    cfg.router.retry_backoff = std::chrono::microseconds(100);
    cfg.router.replica.quarantine_backoff = std::chrono::milliseconds(5);
    if (with_chaos) {
      cfg.chaos.push_back({0.25 * span, serve::FaultKind::kReplicaCrash,
                           /*replica=*/1, 0.0});
      cfg.chaos.push_back({0.55 * span, serve::FaultKind::kReplicaHeal,
                           /*replica=*/1, 0.0});
    }
    auto server = std::make_unique<serve::Server>(cfg);
    server->sessions().add_session("lenet5-k256", compiled, hw);
    server->start();
    return server;
  };
  serve::TraceConfig ft;
  // Bounded rate: the chaos window must span real milliseconds (the
  // quarantine backoff and canary readmission take wall time), so the
  // trace is paced at most 2000 rps no matter how fast the host is.
  ft.rate_rps = std::max(1.0, std::min(0.5 * offline_rps, 2000.0));
  ft.requests = quick ? 256 : 512;
  ft.class_weights = {0.25, 0.5, 0.25};
  ft.sessions = {"lenet5-k256"};
  ft.seed = 123;
  const serve::Trace fault_trace = serve::make_trace(ft);
  const double fault_span = ft.requests / ft.rate_rps;

  const std::size_t failover_reps = quick ? 2 : 3;
  std::size_t nofault_met = 0, fault_met = 0;
  bool failover_none_lost = true;
  bool crashed_readmitted = true;
  serve::LoadReport nofault_load, fault_load;    // last repeat
  serve::ServerSummary fault_summary;            // last faulted repeat
  for (std::size_t rep = 0; rep < failover_reps; ++rep) {
    {
      auto server = make_replica_server(false, fault_span);
      serve::LoadGenerator loadgen(*server, {input_shape});
      nofault_load = loadgen.replay(fault_trace);
      server->drain();
      server->stop();
      nofault_met += nofault_load.slo_met;
      failover_none_lost =
          failover_none_lost && nofault_load.sent + nofault_load.rejected ==
                                    fault_trace.events.size();
    }
    {
      auto server = make_replica_server(true, fault_span);
      serve::LoadGenerator loadgen(*server, {input_shape});
      fault_load = loadgen.replay(fault_trace);
      server->drain();
      server->stop();
      fault_summary = server->summary();
      fault_met += fault_load.slo_met;
      failover_none_lost =
          failover_none_lost && fault_load.sent + fault_load.rejected ==
                                    fault_trace.events.size();
      const serve::ReplicaSummary& crashed = fault_summary.replicas[1];
      crashed_readmitted = crashed_readmitted && crashed.health == "healthy" &&
                           crashed.canary_probes >= 1 &&
                           crashed.quarantine_seconds > 0.0;
    }
  }
  const double recovered_fraction =
      nofault_met > 0 ? static_cast<double>(fault_met) / nofault_met : 0.0;
  std::printf("\nreplica failover (3 replicas, crash+heal replica 1, "
              "%zu requests at %.0f req/s, %zu repeats):\n"
              "  no-fault  goodput %8.1f req/s  %4zu met\n"
              "  faulted   goodput %8.1f req/s  %4zu met  "
              "%llu retries  %llu failovers  [%s, %s]\n"
              "  recovered goodput fraction: %.3f (gate 0.80)\n",
              ft.requests, ft.rate_rps, failover_reps,
              nofault_load.goodput_rps, nofault_met, fault_load.goodput_rps,
              fault_met,
              static_cast<unsigned long long>(fault_summary.total_retries),
              static_cast<unsigned long long>(fault_summary.total_failovers),
              failover_none_lost ? "none lost" : "LOST REQUESTS",
              crashed_readmitted ? "crashed replica readmitted"
                                 : "READMISSION FAILED",
              recovered_fraction);

  // --- artifact -----------------------------------------------------------
  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.kv("bench", "serve_throughput");
    json.kv("deepcam_build_type", build_type());
    json.kv("deepcam_codelet_isa", codelet::isa_name(codelet::active_isa()));
    json.kv("model", "lenet5");
    json.kv("hash_bits", 256);
    json.kv("engine_threads", hw);
    json.kv("server_workers", num_workers);
    json.kv("quick", quick);
    json.key("offline").begin_object();
    json.kv("samples_per_second", offline_rps);
    json.kv("samples", offline_samples);
    json.end_object();
    json.key("saturation").begin_object();
    json.kv("achieved_rps", saturation_rps);
    json.kv("fraction_of_offline", ratio);
    json.kv("max_in_flight_batches", max_in_flight);
    json.key("server");
    serve::server_summary_json(json, saturation_summary);
    json.end_object();
    json.key("sweep").begin_array();
    for (const SweepRow& row : sweep) {
      json.begin_object();
      json.kv("offered_rps", row.offered_rps);
      json.kv("achieved_rps", row.achieved_rps);
      json.kv("sent", row.sent);
      json.kv("rejected", row.rejected);
      json.kv("latency_p50_ms", row.p50_ms);
      json.kv("latency_p95_ms", row.p95_ms);
      json.kv("latency_p99_ms", row.p99_ms);
      json.kv("mean_batch_size", row.mean_batch);
      json.end_object();
    }
    json.end_array();
    json.key("flash_crowd").begin_object();
    json.kv("base_rps", crowd.rate_rps);
    json.kv("spike_rps", crowd.flash_rate_rps);
    json.kv("requests", crowd_trace.events.size());
    json.kv("repeats", crowd_reps);
    json.kv("fifo_met_total", fifo_met);
    json.kv("slo_aware_met_total", slo_met);
    const auto crowd_json = [&](const char* key,
                                const serve::LoadReport& load) {
      json.key(key).begin_object();
      json.kv("goodput_rps", load.goodput_rps);
      json.kv("slo_met", load.slo_met);
      json.kv("shed", load.shed);
      json.kv("expired", load.expired);
      json.kv("rejected", load.rejected);
      json.kv("latency_p999_ms", load.percentile_ms(99.9));
      json.end_object();
    };
    crowd_json("fifo", fifo_load);
    crowd_json("slo_aware", slo_load);
    json.end_object();
    json.key("failover").begin_object();
    json.kv("replicas", 3);
    json.kv("base_rps", ft.rate_rps);
    json.kv("requests", fault_trace.events.size());
    json.kv("repeats", failover_reps);
    json.kv("nofault_met_total", nofault_met);
    json.kv("fault_met_total", fault_met);
    json.kv("recovered_fraction", recovered_fraction);
    json.kv("nofault_goodput_rps", nofault_load.goodput_rps);
    json.kv("fault_goodput_rps", fault_load.goodput_rps);
    json.kv("retries", fault_summary.total_retries);
    json.kv("failovers", fault_summary.total_failovers);
    json.kv("none_lost", failover_none_lost);
    json.kv("crashed_readmitted", crashed_readmitted);
    json.key("crashed_replica").begin_object();
    json.kv("health", fault_summary.replicas[1].health);
    json.kv("transitions", fault_summary.replicas[1].transitions);
    json.kv("canary_probes", fault_summary.replicas[1].canary_probes);
    json.kv("quarantine_seconds",
            fault_summary.replicas[1].quarantine_seconds);
    json.end_object();
    json.end_object();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --- acceptance gate -----------------------------------------------------
  std::printf("\nsaturation/offline ratio: %.3f (gate 0.90), "
              "in-flight high-water: %llu (gate 2), flash-crowd SLO vs "
              "FIFO deadline-met: %zu vs %zu (gate: strictly more, none "
              "lost)\n",
              ratio, static_cast<unsigned long long>(max_in_flight),
              slo_met, fifo_met);
  if (check && (ratio < 0.90 || max_in_flight < 2)) {
    std::fprintf(stderr, "FAIL: serving gate not met\n");
    return 1;
  }
  if (check && (!none_lost || slo_met <= fifo_met)) {
    std::fprintf(stderr, "FAIL: flash-crowd SLO gate not met\n");
    return 1;
  }
  if (check && (recovered_fraction < 0.80 || !failover_none_lost ||
                !crashed_readmitted)) {
    std::fprintf(stderr, "FAIL: replica-failover gate not met\n");
    return 1;
  }

  // --- regression gate vs a committed artifact ----------------------------
  // Catches serving-path slowdowns (e.g. tracing hooks when disabled): the
  // measured saturation must stay within 1% of the baseline run's.
  if (!baseline_path.empty()) {
    const JsonValue baseline = parse_json_file(baseline_path);
    const double base_rps =
        baseline.at("saturation").at("achieved_rps").as_number();
    const double vs_base = base_rps > 0.0 ? saturation_rps / base_rps : 0.0;
    std::printf("saturation vs baseline %s: %.1f / %.1f req/s = %.3f "
                "(gate 0.99)\n",
                baseline_path.c_str(), saturation_rps, base_rps, vs_base);
    if (check && vs_base < 0.99) {
      std::fprintf(stderr, "FAIL: saturation regressed vs baseline\n");
      return 1;
    }
  }
  return 0;
}
