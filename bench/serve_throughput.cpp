// Serving throughput/latency bench: offered load vs p99, and saturation
// throughput vs the offline run_batch() upper bound.
//
// Three phases on one LeNet-5 session (k=256 operating point):
//
//  1. offline  — InferenceEngine::run_batch over a fixed batch, repeated;
//     best samples/s is the no-serving-overhead upper bound.
//  2. saturation — closed-loop replay (every client keeps one request
//     outstanding) through the full Server stack: RequestQueue ->
//     DynamicBatcher -> engine submit(). Reported as achieved req/s, the
//     ratio to offline, and the high-water mark of concurrently in-flight
//     micro-batches (>= 2 proves batches pipeline instead of serializing).
//  3. sweep — seeded open-loop Poisson traces at rising fractions of the
//     measured saturation rate; reports p50/p95/p99 end-to-end latency per
//     offered load (the paper-style latency/throughput operating curve).
//
// Results print as a table and (with --json PATH) are written as one JSON
// artifact (BENCH_pr4.json in CI) through the shared locale-proof
// serializers. --check exits nonzero unless saturation >= 90% of offline
// with >= 2 concurrent in-flight micro-batches; --quick shrinks every
// phase for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/report_io.hpp"
#include "nn/topologies.hpp"
#include "serve/loadgen.hpp"
#include "serve/report_io.hpp"
#include "serve/server.hpp"

using namespace deepcam;

namespace {

struct SweepRow {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::size_t sent = 0;
  std::size_t rejected = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, check = false;
  std::string json_path;
  cli::Flags flags("serve_throughput",
                   "offline vs saturation vs offered-load serving sweep");
  flags.flag("quick", &quick, "shrink every phase for CI smoke runs")
      .flag("check", &check, "gate saturation >= 90% of offline, >= 2 in "
                             "flight")
      .option("json", &json_path, "write the bench JSON artifact here");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t offline_samples = quick ? 32 : 64;
  const std::size_t offline_reps = quick ? 3 : 5;
  const std::size_t saturation_reps = quick ? 2 : 3;
  const std::size_t saturation_requests = quick ? 96 : 256;
  const std::size_t sweep_requests = quick ? 48 : 128;
  const std::size_t num_workers = std::max<std::size_t>(2, hw);

  auto model = nn::make_lenet5(/*seed=*/7);
  core::DeepCamConfig dc;
  dc.default_hash_bits = 256;
  auto compiled = std::make_shared<const core::CompiledModel>(*model, dc);
  const nn::Shape input_shape = nn::input_spec_for("lenet5").shape();

  // --- phase 1: offline upper bound --------------------------------------
  double offline_rps = 0.0;
  core::BatchReport offline_report;
  {
    core::InferenceEngine engine(compiled, hw);
    std::vector<nn::Tensor> batch;
    batch.reserve(offline_samples);
    for (std::size_t i = 0; i < offline_samples; ++i)
      batch.push_back(
          serve::LoadGenerator::make_input(input_shape, 1000 + i));
    for (std::size_t rep = 0; rep < offline_reps; ++rep) {
      core::BatchReport br;
      engine.run_batch(batch, &br);
      if (br.throughput() > offline_rps) {
        offline_rps = br.throughput();
        offline_report = br;
      }
    }
  }
  std::printf("offline run_batch: %.1f samples/s (%zu samples, %zu engine "
              "threads, best of %zu)\n",
              offline_rps, offline_samples, hw, offline_reps);

  auto make_server = [&] {
    serve::ServerConfig cfg;
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 1024;
    cfg.batch.max_batch_size = 8;
    cfg.batch.max_queue_delay = std::chrono::microseconds(2000);
    auto server = std::make_unique<serve::Server>(cfg);
    server->sessions().add_session("lenet5-k256", compiled, hw);
    server->start();
    return server;
  };

  // --- phase 2: closed-loop saturation ------------------------------------
  // Best-of-N like the offline phase: an asymmetric single run would bias
  // the ratio gate downward under CI timing noise.
  double saturation_rps = 0.0;
  std::uint64_t max_in_flight = 0;
  serve::ServerSummary saturation_summary;
  for (std::size_t rep = 0; rep < saturation_reps; ++rep) {
    auto server = make_server();
    serve::TraceConfig tc;
    tc.requests = saturation_requests;
    tc.sessions = {"lenet5-k256"};
    tc.seed = 42 + rep;
    serve::ReplayOptions opts;
    opts.mode = serve::ReplayOptions::Mode::kClosedLoop;
    opts.closed_loop_clients = 2 * num_workers * 8;  // keep batches full
    serve::LoadGenerator loadgen(*server, {input_shape});
    const serve::LoadReport load =
        loadgen.replay(serve::make_trace(tc), opts);
    server->drain();
    server->stop();
    const serve::ServerSummary summary = server->summary();
    max_in_flight = std::max(max_in_flight, summary.max_in_flight_batches);
    if (load.achieved_rps > saturation_rps) {
      saturation_rps = load.achieved_rps;
      saturation_summary = summary;
    }
  }
  std::printf("saturation (closed loop): %.1f req/s = %.1f%% of offline, "
              "max %llu micro-batches in flight, mean batch %.2f "
              "(best of %zu)\n",
              saturation_rps, 100.0 * saturation_rps / offline_rps,
              static_cast<unsigned long long>(max_in_flight),
              saturation_summary.sessions[0].mean_batch_size,
              saturation_reps);

  // --- phase 3: offered-load sweep (open-loop Poisson) --------------------
  std::vector<SweepRow> sweep;
  const double fractions[] = {0.25, 0.5, 0.75, 0.9, 1.1};
  std::printf("\n%10s %10s %6s %6s %9s %9s %9s %7s\n", "offered", "achieved",
              "ok", "rej", "p50_ms", "p95_ms", "p99_ms", "batch");
  for (const double f : fractions) {
    auto server = make_server();
    serve::TraceConfig tc;
    tc.requests = sweep_requests;
    tc.rate_rps = std::max(1.0, f * saturation_rps);
    tc.sessions = {"lenet5-k256"};
    tc.seed = 7000 + static_cast<std::uint64_t>(100 * f);
    serve::LoadGenerator loadgen(*server, {input_shape});
    const serve::LoadReport load = loadgen.replay(serve::make_trace(tc));
    server->drain();
    server->stop();
    const serve::ServerSummary sum = server->summary();
    SweepRow row;
    row.offered_rps = load.offered_rps;
    row.achieved_rps = load.achieved_rps;
    row.sent = load.sent;
    row.rejected = load.rejected;
    row.p50_ms = load.percentile_ms(50);
    row.p95_ms = load.percentile_ms(95);
    row.p99_ms = load.percentile_ms(99);
    row.mean_batch = sum.sessions[0].mean_batch_size;
    sweep.push_back(row);
    std::printf("%10.1f %10.1f %6zu %6zu %9.3f %9.3f %9.3f %7.2f\n",
                row.offered_rps, row.achieved_rps, row.sent, row.rejected,
                row.p50_ms, row.p95_ms, row.p99_ms, row.mean_batch);
  }

  const double ratio = offline_rps > 0.0 ? saturation_rps / offline_rps : 0.0;

  // --- artifact -----------------------------------------------------------
  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.kv("bench", "serve_throughput");
    json.kv("model", "lenet5");
    json.kv("hash_bits", 256);
    json.kv("engine_threads", hw);
    json.kv("server_workers", num_workers);
    json.kv("quick", quick);
    json.key("offline").begin_object();
    json.kv("samples_per_second", offline_rps);
    json.kv("samples", offline_samples);
    json.end_object();
    json.key("saturation").begin_object();
    json.kv("achieved_rps", saturation_rps);
    json.kv("fraction_of_offline", ratio);
    json.kv("max_in_flight_batches", max_in_flight);
    json.key("server");
    serve::server_summary_json(json, saturation_summary);
    json.end_object();
    json.key("sweep").begin_array();
    for (const SweepRow& row : sweep) {
      json.begin_object();
      json.kv("offered_rps", row.offered_rps);
      json.kv("achieved_rps", row.achieved_rps);
      json.kv("sent", row.sent);
      json.kv("rejected", row.rejected);
      json.kv("latency_p50_ms", row.p50_ms);
      json.kv("latency_p95_ms", row.p95_ms);
      json.kv("latency_p99_ms", row.p99_ms);
      json.kv("mean_batch_size", row.mean_batch);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --- acceptance gate -----------------------------------------------------
  std::printf("\nsaturation/offline ratio: %.3f (gate 0.90), "
              "in-flight high-water: %llu (gate 2)\n",
              ratio, static_cast<unsigned long long>(max_in_flight));
  if (check && (ratio < 0.90 || max_in_flight < 2)) {
    std::fprintf(stderr, "FAIL: serving gate not met\n");
    return 1;
  }
  return 0;
}
