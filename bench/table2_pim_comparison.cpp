// Table II reproduction: DeepCAM (VHL) vs previously published PIM engines
// on VGG11/CIFAR10 — energy per inference (uJ) and computation cycles per
// inference.
//
// Published values: NeuroSim RRAM 34.98 uJ / 5.74e5 cyc; Valavi SRAM
// 3.55 uJ / 2.56e5 cyc; DeepCAM 0.488 uJ / 2.652e5 cyc.
#include <cstdio>

#include "cam/energy_model.hpp"
#include "common/table.hpp"
#include "common/tech.hpp"
#include "common/units.hpp"
#include "core/mapping.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"
#include "pim/comparators.hpp"

using namespace deepcam;

namespace {

std::size_t vhl_bits_for_context(std::size_t context_len) {
  if (context_len <= 64) return 256;
  if (context_len <= 512) return 512;
  if (context_len <= 2048) return 768;
  return 1024;
}

struct DeepCamTotals {
  double energy = 0.0;
  std::size_t cycles = 0;
};

DeepCamTotals deepcam_vhl(const nn::Model& model, nn::Shape input,
                          std::size_t rows, core::Dataflow df) {
  DeepCamTotals out;
  const cam::CamConfig cam_cfg{rows, 256, 4, cam::CellTech::kFeFET};
  bool first = true;
  for (const auto& g : nn::extract_gemm_workload(model, input)) {
    const std::size_t k = vhl_bits_for_context(g.k);
    const std::size_t chunks = (k + 255) / 256;
    const core::MappingPlan plan = core::plan_mapping({g.m, g.n}, rows, df);
    out.energy += double(plan.searches) *
                      cam::CamCostModel::search_energy(cam_cfg, k) +
                  double(plan.rows_written) *
                      cam::CamCostModel::write_energy(cam_cfg, k) +
                  double(plan.dot_products) *
                      (tech::kCosineUnitEnergy +
                       2.0 * tech::kMiniFloatMulEnergy + tech::kAdd8Energy +
                       tech::kPipeRegEnergy);
    if (!first) {
      out.energy += double(g.m) *
                    (double(g.k) * tech::kMul8Energy +
                     double(g.k - 1) * tech::kAdd16Energy +
                     16.0 * tech::kSqrtIterEnergy +
                     double(g.k) * double(k) * tech::kXbarCellEnergy +
                     double(k) * tech::kXbarSenseAmpEnergy);
      out.cycles += g.m * std::size_t(tech::kXbarInputBits);
    }
    out.cycles += plan.searches * (std::size_t(tech::kCamSearchBaseCycles) +
                                   std::size_t(tech::kCamSearchCyclesPerChunk) *
                                       chunks) +
                  plan.rows_written *
                      std::size_t(tech::kCamWriteCyclesPerRow) +
                  plan.passes * std::size_t(tech::kCamPassDrainCycles);
    first = false;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Table II: comparison with previous PIM works "
              "(VGG11, CIFAR10-class input) ==\n\n");
  auto model = nn::make_vgg11(1, 10);
  const nn::Shape in{1, 3, 32, 32};

  const auto rram =
      pim::simulate_crossbar(*model, in, pim::neurosim_rram_config());
  const auto sram =
      pim::simulate_crossbar(*model, in, pim::valavi_sram_config());
  const auto dc = deepcam_vhl(*model, in, /*rows=*/64,
                              core::Dataflow::kActivationStationary);

  Table t({"work", "device", "dot-product", "energy/inf (uJ)",
           "cycles/inf (x1e5)", "paper energy", "paper cycles"});
  t.add_row({"NeuroSim [20]", "RRAM", "algebraic",
             Table::num(to_uJ(rram.total_energy()), 2),
             Table::num(rram.total_cycles() / 1e5, 2), "34.98", "5.74"});
  t.add_row({"Valavi et al. [24]", "SRAM", "algebraic",
             Table::num(to_uJ(sram.total_energy()), 2),
             Table::num(sram.total_cycles() / 1e5, 2), "3.55", "2.56"});
  t.add_row({"DeepCAM (VHL, ours)", "FeFET", "geometric",
             Table::num(to_uJ(dc.energy), 3),
             Table::num(dc.cycles / 1e5, 2), "0.488", "2.652"});
  t.print();

  std::printf("\nDerived ratios (paper: ~71.68x vs NeuroSim, ~7.27x vs "
              "Valavi in energy):\n");
  std::printf("  energy: DeepCAM is %.1fx below NeuroSim, %.1fx below "
              "Valavi\n", rram.total_energy() / dc.energy,
              sram.total_energy() / dc.energy);
  std::printf("  cycles: DeepCAM is %.2fx below NeuroSim, %.2fx vs Valavi "
              "(paper: slightly more cycles than Valavi)\n",
              double(rram.total_cycles()) / double(dc.cycles),
              double(sram.total_cycles()) / double(dc.cycles));
  return 0;
}
