// Fig. 5 reproduction: Top-1 accuracy of the software baseline (BL) versus
// DeepCAM (DC) with variable hash lengths, for all four topologies.
//
// Offline substitution (DESIGN.md §2): MNIST/CIFAR are replaced by
// procedural datasets. LeNet5 is *trained in-repo* so BL/DC are true
// accuracies; VGG11/VGG16/ResNet18 use deterministic synthetic weights and
// report Top-1 *agreement* between the FP32 model and its DeepCAM
// execution — the fidelity property that underlies accuracy preservation.
//
// For each model we print: per-layer tuned hash lengths (the VHL map), the
// BL and DC metrics at each homogeneous hash length, and the DC metric
// under the tuned VHL configuration.
//
// Runtime note: VGG16/ResNet18 functional simulation is expensive on one
// core, so their probe counts are small; pass any argument to run a
// reduced "smoke" sweep (LeNet only).
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/table.hpp"
#include "core/accelerator.hpp"
#include "core/hash_tuner.hpp"
#include "nn/dataset.hpp"
#include "nn/imprint.hpp"
#include "nn/topologies.hpp"
#include "nn/trainer.hpp"

using namespace deepcam;

namespace {

double deepcam_accuracy(nn::Model& model, const nn::Dataset& data,
                        std::size_t count, const core::DeepCamConfig& cfg) {
  core::DeepCamAccelerator acc(model, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& s = data.sample(i);
    if (nn::argmax_class(acc.run(s.image)) == s.label) ++correct;
  }
  return double(correct) / double(count);
}

void print_vhl(const core::TuneResult& tuned) {
  std::printf("  tuned per-layer hash lengths: ");
  for (std::size_t i = 0; i < tuned.hash_bits.size(); ++i)
    std::printf("%s%zu", i == 0 ? "" : "/", tuned.hash_bits[i]);
  std::printf("  (mean %.0f bits)\n", tuned.mean_hash_bits());
}

}  // namespace

int main(int argc, char**) {
  const bool smoke = argc > 1;
  std::printf("== Fig. 5: accuracy/agreement, baseline (BL) vs DeepCAM "
              "(DC) ==\n\n");

  // ---------------------------------------------------------- LeNet5 ----
  {
    std::printf("-- lenet5 on synthetic MNIST (trained in-repo; true "
                "accuracy) --\n");
    auto model = nn::make_lenet5(7);
    nn::SyntheticDigits train(4000, 100, 0.2);
    nn::SyntheticDigits test(200, 101, 0.2);
    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.lr = 0.05f;
    nn::train_sgd(*model, train, tc);
    const double bl_plain = nn::evaluate_accuracy(*model, test);
    // Hash-noise-aware fine-tuning (DESIGN.md §5): makes the network robust
    // to the approximate dot-product. The paper assumes pretrained CNNs
    // survive DeepCAM unchanged; our measurements (EXPERIMENTS.md) show the
    // fine-tuning step is what actually closes the BL-DC gap.
    nn::TrainConfig ft = tc;
    ft.epochs = 6;
    ft.lr = 0.01f;
    ft.noise_scale = 0.05f;
    nn::train_sgd(*model, train, ft);
    nn::set_training_noise(*model, 0.0f, 0);
    const double bl = nn::evaluate_accuracy(*model, test);
    std::printf("  BL accuracy: %.1f%% plain-trained, %.1f%% after "
                "noise-aware fine-tune\n", 100.0 * bl_plain, 100.0 * bl);

    // Tune per-layer hash lengths end-to-end on a probe subset.
    std::vector<nn::Tensor> probes;
    for (std::size_t i = 0; i < 16; ++i)
      probes.push_back(test.sample(i).image);
    core::TunerConfig tcfg;
    tcfg.mode = core::TunerMode::kEndToEnd;
    tcfg.min_agreement = 0.95;
    tcfg.joint_refine = true;
    const auto tuned = core::tune_hash_lengths(*model, probes, tcfg);
    print_vhl(tuned);

    const std::size_t eval_n = smoke ? 40 : 120;
    Table t({"config", "BL acc", "DC acc", "gap"});
    for (std::size_t k : {256u, 512u, 768u, 1024u}) {
      core::DeepCamConfig cfg;
      cfg.default_hash_bits = k;
      const double dc = deepcam_accuracy(*model, test, eval_n, cfg);
      t.add_row({"homogeneous " + std::to_string(k),
                 Table::num(100.0 * bl, 1) + "%",
                 Table::num(100.0 * dc, 1) + "%",
                 Table::num(100.0 * (bl - dc), 1) + "pt"});
    }
    core::DeepCamConfig vhl;
    vhl.layer_hash_bits = tuned.hash_bits;
    const double dc_vhl = deepcam_accuracy(*model, test, eval_n, vhl);
    t.add_row({"VHL (tuned)", Table::num(100.0 * bl, 1) + "%",
               Table::num(100.0 * dc_vhl, 1) + "%",
               Table::num(100.0 * (bl - dc_vhl), 1) + "pt"});
    t.print();
    std::printf("\n");
  }

  if (smoke) {
    std::printf("(smoke mode: skipping VGG11/VGG16/ResNet18 sweeps)\n");
    return 0;
  }

  // ------------------------------------------- VGG11/VGG16/ResNet18 ----
  // Training these in-repo is infeasible, so we build "synthetic
  // pretrained" networks by prototype imprinting (nn/imprint.hpp): the
  // random feature extractor plus an imprinted head is a nearest-prototype
  // classifier with real decision margins, which is what accuracy
  // preservation needs to be measurable.
  struct Big {
    const char* name;
    std::size_t eval_count;
  };
  const Big bigs[] = {{"vgg11", 16}, {"vgg16", 10}, {"resnet18", 10}};
  for (const auto& big : bigs) {
    std::printf("-- %s (imprinted classifier; true Top-1 accuracy) --\n",
                big.name);
    auto model = nn::make_model(big.name, 11);
    const nn::InputSpec spec = nn::input_spec_for(big.name);
    nn::GaussianTextures data(big.eval_count, spec.classes, 200,
                              /*noise=*/0.4);
    std::vector<nn::Tensor> protos;
    for (std::size_t c = 0; c < spec.classes; ++c)
      protos.push_back(data.prototype(c));
    nn::imprint_classifier(*model, protos);

    double bl = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (nn::argmax_class(model->forward(data.sample(i).image, false)) ==
          data.sample(i).label)
        bl += 1.0;
    bl /= double(data.size());

    // Layer-local tuner (cheap) for the VHL map.
    core::TunerConfig tcfg;
    tcfg.mode = core::TunerMode::kLayerLocal;
    tcfg.max_rel_error = 0.25;
    const auto tuned = core::tune_hash_lengths(
        *model, {data.sample(0).image}, tcfg);
    print_vhl(tuned);

    Table t({"config", "BL acc", "DC acc"});
    for (std::size_t k : {256u, 1024u}) {
      core::DeepCamConfig cfg;
      cfg.default_hash_bits = k;
      const double dc = deepcam_accuracy(*model, data, data.size(), cfg);
      t.add_row({"homogeneous " + std::to_string(k),
                 Table::num(100.0 * bl, 1) + "%",
                 Table::num(100.0 * dc, 1) + "%"});
    }
    core::DeepCamConfig vhl;
    vhl.layer_hash_bits = tuned.hash_bits;
    const double dc_vhl = deepcam_accuracy(*model, data, data.size(), vhl);
    t.add_row({"VHL (tuned)", Table::num(100.0 * bl, 1) + "%",
               Table::num(100.0 * dc_vhl, 1) + "%"});
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Shape checks (paper Fig. 5): DC approaches BL as hash length grows;\n"
      "the tuned VHL config preserves the metric while using shorter\n"
      "hashes on insensitive layers.\n");
  return 0;
}
