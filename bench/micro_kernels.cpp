// Host-side microbenchmarks (google-benchmark): the computational kernels
// the simulator spends its time in — SimHash projection, packed Hamming
// distance, CAM search simulation, context generation — plus the ablation
// kernels (prefix-hash vs fresh-hash, PWL cosine vs libm).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cam/dynamic_cam.hpp"
#include "codelet/codelet.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "core/engine.hpp"
#include "hash/cosine_approx.hpp"
#include "hash/simhash.hpp"
#include "nn/topologies.hpp"

using namespace deepcam;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

void BM_SimHashProjection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  hash::SimHasher hasher(n, 1);
  const auto v = random_vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.hash(v));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * 1024);
}
BENCHMARK(BM_SimHashProjection)->Arg(27)->Arg(256)->Arg(2304)->Arg(4608);

void BM_HammingPrefix(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  BitVec a(1024), b(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    a.set(i, rng.uniform() < 0.5);
    b.set(i, rng.uniform() < 0.5);
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.hamming_prefix(b, k));
}
BENCHMARK(BM_HammingPrefix)->Arg(63)->Arg(256)->Arg(512)->Arg(768)->Arg(1024);

void BM_CamSearch(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  cam::DynamicCam cam(cam::CamConfig{rows, 256, 4});
  Rng rng(4);
  for (std::size_t r = 0; r < rows; ++r) {
    BitVec v(1024);
    for (std::size_t i = 0; i < 1024; ++i) v.set(i, rng.uniform() < 0.5);
    cam.write_row(r, v);
  }
  BitVec key(1024);
  for (std::size_t i = 0; i < 1024; ++i) key.set(i, rng.uniform() < 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(cam.search(key));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_CamSearch)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_PwlCosine(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::pwl_cosine(t));
    t += 1e-4;
    if (t > 3.14) t = 0.0;
  }
}
BENCHMARK(BM_PwlCosine);

void BM_ContextGeneration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::ContextGenerator gen(n, 5);
  const auto v = random_vec(n, 6);
  for (auto _ : state) benchmark::DoNotOptimize(gen.make_context(v));
}
BENCHMARK(BM_ContextGeneration)->Arg(25)->Arg(150)->Arg(576)->Arg(4608);

// Ablation: deriving a 256-bit signature from a 1024-bit hash prefix versus
// hashing with a fresh 256-column matrix. The prefix approach reuses the
// wide hash (already needed for other layers), so the comparison shows the
// cost of NOT using the prefix trick during VHL sweeps.
void BM_PrefixVsFresh_Prefix(benchmark::State& state) {
  hash::SimHasher wide(512, 7, 1024);
  const auto v = random_vec(512, 8);
  const auto sig = wide.hash(v);
  for (auto _ : state) benchmark::DoNotOptimize(sig.bits.prefix(256));
}
BENCHMARK(BM_PrefixVsFresh_Prefix);

void BM_PrefixVsFresh_Fresh(benchmark::State& state) {
  hash::SimHasher narrow(512, 9, 256);
  const auto v = random_vec(512, 10);
  for (auto _ : state) benchmark::DoNotOptimize(narrow.hash(v));
}
BENCHMARK(BM_PrefixVsFresh_Fresh);

void BM_CamWriteRow(benchmark::State& state) {
  // The row-program hot path: word-copy via BitVec::assign_prefix.
  cam::DynamicCam cam(cam::CamConfig{64, 256, 4});
  Rng rng(11);
  BitVec v(1024);
  for (std::size_t i = 0; i < 1024; ++i) v.set(i, rng.uniform() < 0.5);
  std::size_t r = 0;
  for (auto _ : state) {
    cam.write_row(r, v);
    r = (r + 1) & 63;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CamWriteRow);

void BM_CamSearchInto(benchmark::State& state) {
  // Allocation-free steady-state search (reused SearchResult buffer).
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  cam::DynamicCam cam(cam::CamConfig{rows, 256, 4});
  Rng rng(12);
  for (std::size_t r = 0; r < rows; ++r) {
    BitVec v(1024);
    for (std::size_t i = 0; i < 1024; ++i) v.set(i, rng.uniform() < 0.5);
    cam.write_row(r, v);
  }
  BitVec key(1024);
  for (std::size_t i = 0; i < 1024; ++i) key.set(i, rng.uniform() < 0.5);
  cam::DynamicCam::SearchResult buf;
  for (auto _ : state) {
    cam.search_into(key, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_CamSearchInto)->Arg(64)->Arg(256);

// Batched SimHash kernel: the blocked patch×column GEMM plus 64-bit sign
// packing. items/s = contexts hashed per second; compare against
// BM_ContextGeneration (the per-patch scalar path) at the same n. Args are
// {input_dim, patch_count}: LeNet conv2 geometry (150, 576-at-conv1-scale)
// and a VGG-ish wide layer.
void BM_SignHashBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t patches = static_cast<std::size_t>(state.range(1));
  hash::RandomProjection proj(n, hash::kMaxHashBits, 21);
  std::vector<float> xs(n * patches);
  Rng rng(22);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian());
  std::vector<std::uint64_t> sigs(patches * proj.words_per_sig());
  std::vector<float> scratch;
  for (auto _ : state) {
    proj.sign_hash_batch(xs.data(), patches, hash::kMaxHashBits, sigs.data(),
                         scratch);
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(patches));
}
BENCHMARK(BM_SignHashBatch)->Args({25, 576})->Args({150, 64})->Args({576, 256});

// Full conv-layer context generation through the SoA ContextBatch arena:
// im2col patch matrix + batched hash + norms, steady-state allocation-free.
// items/s = contexts per second; the per-context time divided by
// BM_ContextGeneration at the same patch_len is the pipeline speedup. Args
// are {in_channels, image_hw, hash_bits} with a 5x5 kernel (LeNet conv1
// geometry); hash_bits=256 is the engine's online operating point under the
// default VHL-able config, 1024 the full-width signature.
void BM_ContextBatchConv(benchmark::State& state) {
  nn::ConvSpec spec;
  spec.in_channels = static_cast<std::size_t>(state.range(0));
  spec.out_channels = 1;
  spec.kernel_h = spec.kernel_w = 5;
  const std::size_t hw = static_cast<std::size_t>(state.range(1));
  const std::size_t hash_bits = static_cast<std::size_t>(state.range(2));
  core::ContextGenerator gen(spec.patch_len(), 23);
  nn::Tensor in({1, spec.in_channels, hw, hw});
  Rng rng(24);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());
  const std::size_t patches = spec.out_h(hw) * spec.out_w(hw);
  core::ContextBatch batch;
  for (auto _ : state) {
    gen.activation_contexts_into(in, spec, batch, 0, hash_bits);
    benchmark::DoNotOptimize(batch.sig(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(patches));
}
BENCHMARK(BM_ContextBatchConv)
    ->Args({1, 28, 256})
    ->Args({1, 28, 1024})
    ->Args({6, 12, 256})
    ->Args({6, 12, 1024});

// Engine throughput: items/s == samples/s on the LeNet pipeline, at 1
// thread vs the machine's hardware concurrency. The ratio of the two
// items_per_second numbers is the threading speedup.
void BM_EngineRunBatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  static auto model = nn::make_lenet5(13);
  core::DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.default_hash_bits = 256;
  auto compiled = std::make_shared<const core::CompiledModel>(*model, cfg);
  core::InferenceEngine engine(compiled, threads);
  std::vector<nn::Tensor> batch;
  for (std::size_t i = 0; i < 8; ++i) {
    Rng rng(14 + i);
    nn::Tensor t({1, 1, 28, 28});
    for (std::size_t j = 0; j < t.numel(); ++j)
      t[j] = static_cast<float>(rng.gaussian());
    batch.push_back(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_EngineRunBatch)
    ->Arg(1)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- per-ISA codelet benchmarks -----------------------------------------
// Registered at runtime (benchmark::RegisterBenchmark) once per ISA table
// that is both compiled in and executable on this host, so one binary
// reports scalar-vs-AVX2-vs-AVX-512 side by side:
//   BM_HammingPrefix<isa>/k, BM_SearchFlat<isa>/k, BM_PackSigns<isa>/k
// at k in {63, 256, 1024} (sub-word tail, the engine's online operating
// point, and the full-width signature).

void BM_HammingPrefixIsa(benchmark::State& state,
                         const codelet::Kernels* kr) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  BitVec a(1024), b(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    a.set(i, rng.uniform() < 0.5);
    b.set(i, rng.uniform() < 0.5);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(kr->hamming_prefix(a.data(), b.data(), k));
}

void BM_SearchFlatIsa(benchmark::State& state, const codelet::Kernels* kr) {
  // The CAM search_flat hot loop: dense HDs for a 64-row arena with the
  // DynamicCam row stride (1024-bit rows -> 16 words).
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kStride = 16;
  Rng rng(17);
  std::vector<std::uint64_t> arena(kRows * kStride);
  for (auto& w : arena) w = rng.next();
  std::vector<std::uint64_t> query(kStride);
  for (auto& w : query) w = rng.next();
  std::vector<std::uint16_t> hd(kRows);
  for (auto _ : state) {
    kr->hamming_many(query.data(), arena.data(), kStride, kRows, k,
                     hd.data());
    benchmark::DoNotOptimize(hd.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows));
}

void BM_PackSignsIsa(benchmark::State& state, const codelet::Kernels* kr) {
  const std::size_t nbits = static_cast<std::size_t>(state.range(0));
  const auto proj = random_vec(nbits, 19);
  std::vector<std::uint64_t> words((nbits + 63) / 64);
  for (auto _ : state) {
    kr->pack_signs(proj.data(), nbits, words.data());
    benchmark::DoNotOptimize(words.data());
  }
}

void register_isa_benchmarks() {
  using codelet::Isa;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    const codelet::Kernels* kr = codelet::kernels_for(isa);
    if (kr == nullptr || !codelet::isa_supported(isa)) continue;
    // Capitalized ISA suffix so names group next to the dispatched bench.
    std::string tag = codelet::isa_name(isa);
    tag[0] = static_cast<char>(tag[0] - 'a' + 'A');
    using BenchFn = void (*)(benchmark::State&, const codelet::Kernels*);
    const std::pair<BenchFn, const char*> benches[] = {
        {BM_HammingPrefixIsa, "BM_HammingPrefix"},
        {BM_SearchFlatIsa, "BM_SearchFlat"},
        {BM_PackSignsIsa, "BM_PackSigns"}};
    for (const auto& [fn, name] : benches) {
      auto* b =
          benchmark::RegisterBenchmark((std::string(name) + tag).c_str(), fn,
                                       kr);
      b->Arg(63)->Arg(256)->Arg(1024);
    }
  }
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the system google-benchmark is a
// prebuilt library, so its "library_build_type" context line describes that
// library, not this binary (BENCH_pr3.json was emitted from a Release build
// yet says "debug"). Report our own build type and the dispatched codelet
// ISA as custom context so every emitted JSON is self-describing.
namespace {

/// Console reporter that also captures the adjusted real time of the
/// engine gate benchmark (BM_EngineRunBatch/1/real_time) for the
/// --deepcam_baseline regression check.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.benchmark_name() == kGateBench)
        gate_real_time_ = run.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
  double gate_real_time() const { return gate_real_time_; }

  static constexpr const char* kGateBench = "BM_EngineRunBatch/1/real_time";

 private:
  double gate_real_time_ = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --deepcam_baseline=PATH before google-benchmark sees argv (it
  // rejects flags it does not own). The gate compares this run's
  // BM_EngineRunBatch/1 real time against the committed baseline (the
  // "pr6" section of BENCH_pr6.json): > 1% slower fails — the tracing
  // probe points must stay free when disabled.
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--deepcam_baseline=";
    if (arg.rfind(prefix, 0) == 0) {
      baseline_path = arg.substr(prefix.size());
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef NDEBUG
  benchmark::AddCustomContext("deepcam_build_type", "release");
#else
  benchmark::AddCustomContext("deepcam_build_type", "debug");
#endif
  benchmark::AddCustomContext("deepcam_codelet_isa",
                              codelet::isa_name(codelet::active_isa()));
  register_isa_benchmarks();
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!baseline_path.empty()) {
    if (reporter.gate_real_time() <= 0.0) {
      std::fprintf(stderr,
                   "deepcam_baseline: %s did not run (filter it in?)\n",
                   CapturingReporter::kGateBench);
      return 1;
    }
    const JsonValue baseline = parse_json_file(baseline_path);
    const double base_ms = baseline.at("pr6")
                               .at("benchmarks")
                               .at(CapturingReporter::kGateBench)
                               .at("real_time")
                               .as_number();
    const double ratio = reporter.gate_real_time() / base_ms;
    std::printf("%s vs %s: %.3f / %.3f ms = %.3fx (gate <= 1.01x)\n",
                CapturingReporter::kGateBench, baseline_path.c_str(),
                reporter.gate_real_time(), base_ms, ratio);
    if (ratio > 1.01) {
      std::fprintf(stderr, "FAIL: engine batch regressed vs baseline\n");
      return 1;
    }
  }
  return 0;
}
