// Plan-search bench: model-guided planning vs the empirical VHL tune sweep.
//
// Three timed phases on LeNet-5 (the topology specs/fig5_tune.json tunes):
//
//  1. empirical — core::tune_hash_lengths, the pre-planner `tune` path:
//     every candidate hash length evaluated on every patch of every probe.
//  2. cold plan — plan::Planner::plan from scratch: the guided accuracy
//     pass (subsampled patches, one 1024-bit hash pass, 1/sqrt(k)
//     extrapolation) plus the analytical cost search over
//     (rows x dataflow x micro-batch x threads).
//  3. warm plan — the same spec answered by the PlanCache (the production
//     `deepcam plan` steady state).
//
// Quality gates (--check, CI exits nonzero on violation):
//   * warm plan >= 10x faster than one empirical tune sweep;
//   * cold plan strictly faster than the empirical sweep;
//   * every planner-chosen hash length meets the accuracy budget on its
//     measured relative error (or is maxed at 1024 bits);
//   * the planned configuration's makespan <= the fixed 1024-bit default
//     configuration under the same batch (planner quality >= baseline);
//   * the cost model validates against the sim backend within 15%.
//
// --json PATH writes the artifact (BENCH_pr10.json in CI); --quick shrinks
// the repeat counts for smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "codelet/codelet.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/hash_tuner.hpp"
#include "nn/topologies.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "plan/report_io.hpp"
#include "sim/backend.hpp"
#include "sim/estimator_check.hpp"

using namespace deepcam;

namespace {

const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Best-of-N wall time of `fn` in microseconds (min beats mean for
/// rejecting scheduler noise on CI runners).
template <typename Fn>
double best_of_us(std::size_t repeats, Fn&& fn) {
  double best = 1e300;
  for (std::size_t i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, check = false;
  std::string json_path;
  cli::Flags flags("plan_search",
                   "model-guided planning vs the empirical VHL tune sweep");
  flags.flag("quick", &quick, "shrink repeat counts for CI smoke runs")
      .flag("check", &check, "gate speedup + quality; nonzero exit on fail")
      .option("json", &json_path, "write the JSON artifact here");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "plan_search: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }

  const std::size_t repeats = quick ? 3 : 10;
  const double kBudget = 0.5;  // fig5_tune.json's accuracy budget
  const auto model = nn::make_model("lenet5", 1);
  const nn::Shape input = nn::input_spec_for("lenet5").shape();

  // Phase 1: the empirical sweep exactly as the pre-planner tune mode ran
  // it (4 probes, every patch, every candidate hash length).
  core::TunerConfig tuner;
  tuner.max_rel_error = kBudget;
  const auto probes = sim::make_probe_batch(input, 4, sim::kProbeSeed);
  core::TuneResult empirical;
  const double empirical_us = best_of_us(repeats, [&] {
    empirical = core::tune_hash_lengths(*model, probes, tuner);
  });

  // Phase 2: cold model-guided planning (construction + accuracy pass +
  // cost search), the `deepcam plan` cold path.
  plan::PlannerConfig cfg;
  cfg.batch = 8;
  cfg.max_rel_error = kBudget;
  plan::Plan cold_plan;
  const double cold_us = best_of_us(repeats, [&] {
    cold_plan = plan::Planner(*model, input).plan(cfg);
  });

  // Phase 3: warm cache lookups on a primed cache.
  const plan::Planner planner(*model, input);
  const std::string key =
      plan::plan_cache_key(planner.cost_model().geometry().digest(), cfg);
  plan::PlanCache cache;
  cache.get_or_plan(key, [&] { return planner.plan(cfg); });
  bool warm_hit = false;
  plan::Plan warm_plan;
  const double warm_us = best_of_us(repeats, [&] {
    warm_plan = cache.get_or_plan(key, [&] { return planner.plan(cfg); },
                                  &warm_hit);
  });

  const double cold_speedup = empirical_us / cold_us;
  const double warm_speedup = empirical_us / warm_us;

  // Quality: accuracy budget, baseline comparison, sim validation.
  bool within_budget = !cold_plan.floors.empty();
  for (const plan::LayerFloor& f : cold_plan.floors)
    within_budget = within_budget &&
                    (f.measured_rel_error <= kBudget || f.hash_bits == 1024);

  const core::DeepCamConfig fixed1024;  // default: homogeneous 1024 bits
  const plan::CostEstimate baseline =
      planner.cost_model().estimate(fixed1024, cfg.batch);
  const bool beats_baseline =
      cold_plan.cost.makespan_cycles() <= baseline.makespan_cycles();

  const sim::EstimatorCheck validation = sim::check_estimator(
      *model, input, cold_plan.config(fixed1024), cfg.batch);
  const bool validated = validation.cycle_rel_error <= 0.15 &&
                         validation.energy_rel_error <= 0.15;

  std::printf("plan_search (lenet5, budget %.2f, batch %zu, best of %zu)\n",
              kBudget, cfg.batch, repeats);
  std::printf("  empirical tune sweep : %10.1f us  (mean k %.0f)\n",
              empirical_us, empirical.mean_hash_bits());
  std::printf("  cold plan            : %10.1f us  (%.1fx, %zu configs)\n",
              cold_us, cold_speedup, cold_plan.configs_evaluated);
  std::printf("  warm plan (cache)    : %10.1f us  (%.1fx, hit=%d)\n",
              warm_us, warm_speedup, warm_hit ? 1 : 0);
  std::printf("  planned makespan %zu cycles vs fixed-1024 %zu -> %s\n",
              cold_plan.cost.makespan_cycles(), baseline.makespan_cycles(),
              beats_baseline ? "OK" : "WORSE");
  std::printf("  accuracy within budget: %s; sim validation rel err %.4f\n",
              within_budget ? "yes" : "NO", validation.cycle_rel_error);
  std::printf("%s", plan::plan_summary(cold_plan).c_str());

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.kv("bench", "plan_search");
    json.kv("deepcam_build_type", build_type());
    json.kv("deepcam_codelet_isa", codelet::isa_name(codelet::active_isa()));
    json.kv("model", "lenet5");
    json.kv("accuracy_budget", kBudget);
    json.kv("batch", cfg.batch);
    json.kv("repeats", repeats);
    json.kv("quick", quick);
    json.kv("empirical_tune_us", empirical_us);
    json.kv("cold_plan_us", cold_us);
    json.kv("warm_plan_us", warm_us);
    json.kv("cold_speedup", cold_speedup);
    json.kv("warm_speedup", warm_speedup);
    json.kv("warm_cache_hit", warm_hit);
    json.kv("within_budget", within_budget);
    json.kv("beats_fixed_1024", beats_baseline);
    json.kv("baseline_makespan_cycles", baseline.makespan_cycles());
    json.key("validation").begin_object();
    json.kv("measured_cycles", validation.measured_cycles);
    json.kv("estimated_cycles", validation.estimated_cycles);
    json.kv("cycle_rel_error", validation.cycle_rel_error);
    json.kv("energy_rel_error", validation.energy_rel_error);
    json.end_object();
    json.key("plan");
    plan::plan_json(json, cold_plan);
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    out << json.str() << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "plan_search: failed to write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check) {
    bool ok = true;
    if (warm_speedup < 10.0) {
      std::fprintf(stderr, "FAIL: warm plan only %.1fx faster than the "
                   "empirical sweep (need >= 10x)\n", warm_speedup);
      ok = false;
    }
    if (cold_us >= empirical_us) {
      std::fprintf(stderr, "FAIL: cold plan (%.1f us) not faster than the "
                   "empirical sweep (%.1f us)\n", cold_us, empirical_us);
      ok = false;
    }
    if (!warm_hit) {
      std::fprintf(stderr, "FAIL: warm run missed the plan cache\n");
      ok = false;
    }
    if (!within_budget) {
      std::fprintf(stderr, "FAIL: a planned hash length violates the "
                   "accuracy budget\n");
      ok = false;
    }
    if (!beats_baseline) {
      std::fprintf(stderr, "FAIL: planned config slower than fixed-1024\n");
      ok = false;
    }
    if (!validated) {
      std::fprintf(stderr, "FAIL: cost model off by %.3f (cycles) / %.3f "
                   "(energy) vs the sim backend\n",
                   validation.cycle_rel_error, validation.energy_rel_error);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("plan_search --check: all gates passed\n");
  }
  return 0;
}
