// Fig. 2 reproduction: approximate (geometric) vs conventional (algebraic)
// dot-product as a function of hash length.
//
// Uses the paper's own 4-element example vectors (algebraic result 2.0765)
// plus a batch of random vectors, sweeping k = 16..1024. Columns report the
// approximate value (mean over independent projection matrices) and the
// mean absolute error — the figure's visual: longer hashes converge to the
// algebraic value.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hash/simhash.hpp"

using namespace deepcam;

namespace {

double exact_dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += double(a[i]) * b[i];
  return s;
}

}  // namespace

int main() {
  std::printf("== Fig. 2: approximate vs algebraic dot-product ==\n");
  std::printf("(seeds fixed; %d independent projection matrices per k)\n\n",
              32);

  const std::vector<float> x = {0.6012f, 0.8383f, 0.6859f, 0.5712f};
  const std::vector<float> y = {0.9044f, 0.5352f, 0.8110f, 0.9243f};
  const double exact = exact_dot(x, y);
  std::printf("paper example vectors: algebraic dot-product = %.4f "
              "(paper: 2.0765)\n\n", exact);

  Table t({"hash k", "approx dot (mean)", "abs err (mean)", "rel err"});
  const int trials = 32;
  for (std::size_t k : {16u, 32u, 64u, 128u, 256u, 512u, 768u, 1024u}) {
    double sum = 0.0, err = 0.0;
    for (int tr = 0; tr < trials; ++tr) {
      hash::SimHasher h(4, 42 + static_cast<std::uint64_t>(tr));
      const auto sa = h.hash(x);
      const auto sb = h.hash(y);
      const double approx = h.approx_dot(sa, sb, k, /*use_pwl=*/false);
      sum += approx;
      err += std::abs(approx - exact);
    }
    t.add_row({std::to_string(k), Table::num(sum / trials, 4),
               Table::num(err / trials, 4),
               Table::num(err / trials / exact, 4)});
  }
  t.print();

  // Random-vector panel: mean relative error vs k, 64-dim vectors.
  std::printf("\nrandom 64-dim vectors (mean |approx-exact| / |x||y|, "
              "%d pairs):\n", 24);
  Table t2({"hash k", "norm. error", "PWL-cosine norm. error"});
  Rng rng(7);
  for (std::size_t k : {64u, 128u, 256u, 512u, 768u, 1024u}) {
    double err = 0.0, err_pwl = 0.0;
    int n = 0;
    for (int tr = 0; tr < 24; ++tr) {
      std::vector<float> a(64), b(64);
      for (auto& v : a) v = static_cast<float>(rng.gaussian());
      for (auto& v : b) v = static_cast<float>(rng.gaussian());
      hash::SimHasher h(64, 1000 + static_cast<std::uint64_t>(tr));
      const auto sa = h.hash(a);
      const auto sb = h.hash(b);
      const double norm_prod = sa.norm * sb.norm;
      const double exact_ab = exact_dot(a, b);
      err += std::abs(h.approx_dot(sa, sb, k, false) - exact_ab) / norm_prod;
      err_pwl +=
          std::abs(h.approx_dot(sa, sb, k, true) - exact_ab) / norm_prod;
      ++n;
    }
    t2.add_row({std::to_string(k), Table::num(err / n, 4),
                Table::num(err_pwl / n, 4)});
  }
  t2.print();
  std::printf("\nShape check: error decreases ~1/sqrt(k); PWL cosine adds a "
              "small constant floor (paper eq. 5).\n");
  return 0;
}
