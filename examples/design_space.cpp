// Design-space exploration example: sweep CAM rows, hash length, and cell
// technology for one topology, reporting the cycles/energy/area trade-off
// surface — the kind of study an architect would run before committing to a
// DeepCAM configuration.
#include <cstdio>

#include "cam/energy_model.hpp"
#include "common/table.hpp"
#include "common/tech.hpp"
#include "core/mapping.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"

using namespace deepcam;

namespace {

struct Point {
  std::size_t cycles = 0;
  double energy = 0.0;
  double area = 0.0;
};

Point evaluate(const nn::Model& model, nn::Shape input, std::size_t rows,
               std::size_t hash_bits, cam::CellTech tech,
               core::Dataflow df) {
  Point pt;
  const cam::CamConfig cam_cfg{rows, 256, 4, tech};
  pt.area = cam::CamCostModel::area_um2(cam_cfg);
  const std::size_t chunks = (hash_bits + 255) / 256;
  const std::size_t t_search =
      std::size_t(tech::kCamSearchBaseCycles) +
      std::size_t(tech::kCamSearchCyclesPerChunk) * chunks;
  for (const auto& g : nn::extract_gemm_workload(model, input)) {
    const auto plan = core::plan_mapping({g.m, g.n}, rows, df);
    pt.cycles += plan.searches * t_search +
                 plan.rows_written * std::size_t(tech::kCamWriteCyclesPerRow);
    pt.energy += double(plan.searches) *
                     cam::CamCostModel::search_energy(cam_cfg, hash_bits) +
                 double(plan.rows_written) *
                     cam::CamCostModel::write_energy(cam_cfg, hash_bits);
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const char* model_name = argc > 1 ? argv[1] : "vgg11";
  std::printf("== DeepCAM design-space exploration: %s ==\n", model_name);
  std::printf("(usage: design_space [lenet5|vgg11|vgg16|resnet18])\n\n");

  auto model = nn::make_model(model_name, 1);
  const nn::InputSpec spec = nn::input_spec_for(model_name);
  const nn::Shape in{1, spec.channels, spec.height, spec.width};

  for (const auto df : {core::Dataflow::kActivationStationary,
                        core::Dataflow::kWeightStationary}) {
    std::printf("dataflow: %s\n", core::dataflow_name(df));
    Table t({"rows", "hash k", "tech", "cycles", "CAM energy (uJ)",
             "area (um^2)", "energy*delay (uJ*Mcyc)"});
    for (std::size_t rows : {64u, 128u, 256u, 512u}) {
      for (std::size_t k : {256u, 1024u}) {
        for (const auto tech :
             {cam::CellTech::kFeFET, cam::CellTech::kCmos}) {
          const Point pt = evaluate(*model, in, rows, k, tech, df);
          t.add_row({std::to_string(rows), std::to_string(k),
                     tech == cam::CellTech::kFeFET ? "FeFET" : "CMOS",
                     Table::num(double(pt.cycles), 0),
                     Table::num(pt.energy * 1e6, 3),
                     Table::num(pt.area, 0),
                     Table::num(pt.energy * 1e6 * pt.cycles / 1e6, 3)});
        }
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf("Reading guide: more rows trade area for cycles; FeFET wins\n"
              "on both energy and area (paper II-A); energy*delay exposes\n"
              "the sweet spot the paper's 64-row configuration sits near.\n");
  return 0;
}
