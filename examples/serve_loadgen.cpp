// Online serving demo: multi-model sessions under trace-driven load.
//
// Hosts several DeepCAM sessions behind one Server (by default LeNet-5 at
// two quality/latency tiers: the full k=1024 hash and a 4x-cheaper k=256
// tier), generates a seeded arrival trace (Poisson, bursty or closed-loop)
// with the LoadGenerator, replays it, and prints the per-session server
// summary plus the end-to-end latency distribution (p50/p95/p99).
//
// Flags:
//   --models lenet5,...      comma-separated nn/topologies names; every
//                            model is hosted at k=1024 and k=256
//   --mode poisson|bursty|closed
//   --requests N             trace length                (default 96)
//   --rate R                 open-loop offered load, req/s (default 400)
//   --workers N              server batcher threads       (default 4)
//   --engine-threads N       simulated CAM pipelines per session (default 2)
//   --batch N                micro-batch size bound       (default 8)
//   --delay-us D             micro-batch delay bound      (default 2000)
//   --clients N              closed-loop concurrency      (default 8)
//   --seed S                 trace seed                   (default 1)
//   --json                   additionally print the summary as JSON
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/topologies.hpp"
#include "serve/loadgen.hpp"
#include "serve/report_io.hpp"
#include "serve/server.hpp"

using namespace deepcam;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> model_names = {"lenet5"};
  std::string mode = "poisson";
  std::size_t requests = 96, workers = 4, engine_threads = 2, batch = 8;
  std::size_t clients = 8;
  long delay_us = 2000;
  double rate = 400.0;
  std::uint64_t seed = 1;
  bool emit_json = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--models") == 0) model_names = split_csv(next());
    else if (std::strcmp(argv[i], "--mode") == 0) mode = next();
    else if (std::strcmp(argv[i], "--requests") == 0) requests = std::strtoul(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--rate") == 0) rate = std::strtod(next(), nullptr);
    else if (std::strcmp(argv[i], "--workers") == 0) workers = std::strtoul(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--engine-threads") == 0) engine_threads = std::strtoul(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--batch") == 0) batch = std::strtoul(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--delay-us") == 0) delay_us = std::strtol(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--clients") == 0) clients = std::strtoul(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--seed") == 0) seed = std::strtoull(next(), nullptr, 10);
    else if (std::strcmp(argv[i], "--json") == 0) emit_json = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // --- sessions: every model at two hash-length tiers --------------------
  serve::ServerConfig cfg;
  cfg.num_workers = workers;
  cfg.queue_capacity = 512;
  cfg.batch.max_batch_size = batch;
  cfg.batch.max_queue_delay = std::chrono::microseconds(delay_us);
  serve::Server server(cfg);

  std::vector<std::unique_ptr<nn::Model>> models;  // outlive the server
  std::vector<std::string> session_names;
  std::vector<nn::Shape> session_shapes;
  for (const std::string& name : model_names) {
    const nn::InputSpec spec = nn::input_spec_for(name);
    models.push_back(nn::make_model(name, /*seed=*/7));
    for (const std::size_t k : {std::size_t{1024}, std::size_t{256}}) {
      core::DeepCamConfig dc;
      dc.default_hash_bits = k;
      auto compiled =
          std::make_shared<const core::CompiledModel>(*models.back(), dc);
      const std::string session = name + "-k" + std::to_string(k);
      server.sessions().add_session(session, std::move(compiled),
                                    engine_threads);
      session_names.push_back(session);
      session_shapes.push_back(spec.shape());
    }
  }
  server.start();

  // --- trace -------------------------------------------------------------
  serve::TraceConfig tc;
  tc.requests = requests;
  tc.rate_rps = rate;
  tc.sessions = session_names;
  tc.seed = seed;
  serve::ReplayOptions opts;
  if (mode == "bursty") {
    tc.arrivals = serve::ArrivalProcess::kBursty;
    tc.burst_rate_rps = 4.0 * rate;
    tc.rate_rps = 0.25 * rate;
  } else if (mode == "closed") {
    opts.mode = serve::ReplayOptions::Mode::kClosedLoop;
    opts.closed_loop_clients = clients;
  } else if (mode != "poisson") {
    std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
    return 2;
  }
  const serve::Trace trace = serve::make_trace(tc);

  std::printf("== serve_loadgen: %zu sessions, %zu requests, %s mode ==\n",
              session_names.size(), trace.events.size(), mode.c_str());
  for (const auto& s : session_names) std::printf("  session %s\n", s.c_str());

  serve::LoadGenerator loadgen(server, session_shapes);
  const serve::LoadReport load = loadgen.replay(trace, opts);
  server.drain();
  server.stop();

  std::printf("\noffered %.1f req/s -> achieved %.1f req/s  "
              "(%zu ok, %zu rejected, %zu errors)\n",
              load.offered_rps, load.achieved_rps,
              load.sent - load.errors, load.rejected, load.errors);
  std::printf("latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n\n",
              load.percentile_ms(50), load.percentile_ms(95),
              load.percentile_ms(99), load.latency.max() * 1e3);

  const serve::ServerSummary summary = server.summary();
  std::printf("%s", serve::server_summary_text(summary).c_str());
  if (emit_json)
    std::printf("\n%s\n", serve::server_summary_to_json(summary).c_str());

  // Smoke invariant for CI: every admitted request was answered.
  const std::size_t answered = load.sent + load.rejected;
  if (answered != trace.events.size()) {
    std::fprintf(stderr, "BUG: %zu of %zu requests unaccounted\n",
                 trace.events.size() - answered, trace.events.size());
    return 1;
  }
  return 0;
}
