// Online serving demo: multi-model sessions under trace-driven load, on
// the declarative facade.
//
// Translates its flags into the same Spec shape as specs/serve_demo.json
// (every requested model hosted at the k=1024 and 4x-cheaper k=256 hash
// tiers behind one Server, a seeded Poisson/bursty/closed-loop trace
// replayed by the LoadGenerator) and runs it through Runner::run. The
// printed summary — offered vs achieved rate, p50/p95/p99 end-to-end
// latency, per-session server stats — is the facade's uniform Outcome
// rendering.
//
// Flags:
//   --models lenet5,...      comma-separated nn/topologies names; every
//                            model is hosted at k=1024 and k=256
//   --mode poisson|bursty|diurnal|flash|closed
//   --requests N             trace length                (default 96)
//   --rate R                 open-loop offered load, req/s (default 400)
//   --workers N              server batcher threads       (default 4)
//   --engine-threads N       simulated CAM pipelines per session (default 2)
//   --batch N                micro-batch size bound       (default 8)
//   --delay-us D             micro-batch delay bound      (default 2000)
//   --clients N              closed-loop concurrency      (default 8)
//   --seed S                 trace seed                   (default 1)
//   --json                   additionally print the Outcome as JSON
#include <cstdio>
#include <string>
#include <vector>

#include "deepcam/deepcam.hpp"

using namespace deepcam;

int main(int argc, char** argv) {
  std::string models = "lenet5", mode = "poisson";
  std::uint64_t requests = 96, workers = 4, engine_threads = 2, batch = 8;
  std::uint64_t clients = 8, seed = 1;
  long delay_us = 2000;
  double rate = 400.0;
  bool emit_json = false;

  cli::Flags flags("serve_loadgen",
                   "replay a seeded load trace against multi-model sessions");
  flags.option("models", &models, "comma-separated topology names")
      .option("mode", &mode, "poisson|bursty|diurnal|flash|closed")
      .option("requests", &requests, "trace length")
      .option("rate", &rate, "open-loop offered load, req/s")
      .option("workers", &workers, "server batcher threads")
      .option("engine-threads", &engine_threads, "CAM pipelines per session")
      .option("batch", &batch, "micro-batch size bound")
      .option("delay-us", &delay_us, "micro-batch delay bound (us)")
      .option("clients", &clients, "closed-loop concurrency")
      .option("seed", &seed, "trace seed")
      .flag("json", &emit_json, "print the Outcome as JSON");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }

  try {
    SpecBuilder builder("serve-loadgen");
    builder.mode(Mode::kServe);
    for (const std::string& name : cli::split_csv(models))
      builder.workload(name, /*seed=*/7);
    builder.engine_threads(engine_threads)
        .serve_tiers({1024, 256})
        .serve_workers(workers)
        .serve_queue(512)
        .serve_batch(batch, delay_us)
        .serve_trace(mode, requests, rate, seed)
        .serve_clients(clients);
    const Spec spec = builder.build();

    const Outcome outcome = Runner().run(spec);
    const ServeOutcome& serve = outcome.serve();

    std::printf("== serve_loadgen: %zu sessions, %zu requests, %s mode ==\n",
                serve.sessions.size(), serve.trace_events, mode.c_str());
    for (const auto& s : serve.sessions)
      std::printf("  session %s\n", s.c_str());
    std::printf("\n%s", outcome_text(outcome).c_str());
    if (emit_json)
      std::printf("\n%s\n", outcome_to_json(outcome).c_str());

    // Smoke invariant for CI: every accepted request was answered.
    const std::size_t answered = serve.load.sent + serve.load.rejected;
    if (answered != serve.trace_events) {
      std::fprintf(stderr, "BUG: %zu of %zu requests unaccounted\n",
                   serve.trace_events - answered, serve.trace_events);
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "serve_loadgen: %s\n", e.what());
    return 2;
  }
}
