// Dataflow explorer: reproduces the paper's §IV-B worked example (32x32
// input, six 5x5 kernels, 64-row CAM -> 9.4% WS vs 100% AS utilization) and
// then prints the per-layer WS/AS comparison for any topology, showing
// where each dataflow wins and why.
#include <cstdio>

#include "common/table.hpp"
#include "core/mapping.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"

using namespace deepcam;

int main(int argc, char** argv) {
  std::printf("== Dataflow explorer ==\n\n");

  // The paper's worked example.
  {
    std::printf("paper's example: 32x32 single-channel input, six 5x5 "
                "kernels, stride 1, 64 CAM rows\n");
    const core::LayerWork work{28 * 28, 6};
    const auto ws =
        core::plan_mapping(work, 64, core::Dataflow::kWeightStationary);
    const auto as =
        core::plan_mapping(work, 64, core::Dataflow::kActivationStationary);
    std::printf("  WS: utilization %.1f%% (paper: 9.4%%), %zu searches\n",
                100.0 * ws.utilization, ws.searches);
    std::printf("  AS: utilization %.1f%% (paper: ~100%%), %zu searches\n\n",
                100.0 * as.utilization, as.searches);
  }

  const char* model_name = argc > 1 ? argv[1] : "vgg11";
  std::printf("per-layer comparison for %s (64 CAM rows):\n", model_name);
  auto model = nn::make_model(model_name, 1);
  const nn::InputSpec spec = nn::input_spec_for(model_name);
  const nn::Shape in{1, spec.channels, spec.height, spec.width};

  Table t({"layer", "P", "K", "WS searches", "AS searches", "WS util",
           "AS util", "winner"});
  std::size_t ws_total = 0, as_total = 0;
  for (const auto& g : nn::extract_gemm_workload(*model, in)) {
    const auto ws =
        core::plan_mapping({g.m, g.n}, 64, core::Dataflow::kWeightStationary);
    const auto as = core::plan_mapping({g.m, g.n}, 64,
                                       core::Dataflow::kActivationStationary);
    ws_total += ws.searches;
    as_total += as.searches;
    t.add_row({g.layer_name, std::to_string(g.m), std::to_string(g.n),
               std::to_string(ws.searches), std::to_string(as.searches),
               Table::num(100.0 * ws.utilization, 1) + "%",
               Table::num(100.0 * as.utilization, 1) + "%",
               ws.searches < as.searches
                   ? "WS"
                   : (as.searches < ws.searches ? "AS" : "tie")});
  }
  t.print();
  std::printf("\ntotals: WS %zu searches, AS %zu searches -> %s wins "
              "overall (%.2fx)\n", ws_total, as_total,
              as_total < ws_total ? "activation-stationary"
                                  : "weight-stationary",
              double(std::max(ws_total, as_total)) /
                  double(std::min(ws_total, as_total)));
  std::printf("\nPattern: conv layers (P >> K) favor AS — the paper's\n"
              "finding; FC layers (P = 1) favor WS. Early conv layers\n"
              "dominate total searches, so AS wins the aggregate.\n");
  return 0;
}
