// Cross-platform comparison driver (paper Tables I/II style).
//
// Sweeps every backend in the default registry — DeepCAM, Eyeriss-class
// systolic array, Skylake AVX-512 CPU, NeuroSim RRAM and Valavi SRAM PIM
// macros — plus a VHL-tuned DeepCAM variant over LeNet5 at several batch
// sizes, and prints the ranked cycles/energy table. Then cross-checks that
// the "deepcam" row is bitwise identical to driving the single-backend
// InferenceEngine path directly on the same config and probe batch (exit
// code 1 on any mismatch).
//
// Flags: --csv additionally dumps the comparison CSV and the per-layer
// drill-down CSV to stdout.
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/engine.hpp"
#include "nn/topologies.hpp"
#include "sim/backends.hpp"
#include "sim/comparison.hpp"
#include "sim/report_io.hpp"

using namespace deepcam;

int main(int argc, char** argv) {
  bool dump_csv = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--csv") == 0) dump_csv = true;

  const sim::BackendRegistry registry = sim::default_registry();
  sim::ComparisonOptions opts;
  opts.include_vhl_deepcam = true;
  // The deterministically-seeded (untrained) LeNet sees large layer-local
  // relative errors on random probes; 0.5 admits shorter hashes on the
  // robust layers so the VHL row demonstrates real per-layer variety
  // (trained nets tune against the default 0.25 — see lenet_pipeline).
  opts.tuner.max_rel_error = 0.5;
  const sim::ComparisonRunner runner(registry, opts);

  const sim::WorkloadSpec lenet{"lenet5", /*seed=*/1, /*batch_sizes=*/{1, 8}};

  std::printf("== Cross-platform comparison: %zu backends + deepcam-vhl on "
              "%s ==\n\n",
              registry.size(), lenet.model_name.c_str());
  const sim::ComparisonReport report = runner.run({lenet});

  const core::TuneResult& tuned = report.vhl_tuning.front();
  std::printf("VHL tuner (layer-local): mean hash length %.0f bits\n",
              tuned.mean_hash_bits());
  for (const auto& l : tuned.layers)
    std::printf("  %-8s n=%-5zu -> k=%zu\n", l.layer_name.c_str(),
                l.context_len, l.chosen_bits);
  std::printf("\n%s", sim::comparison_summary(report).c_str());

  if (dump_csv) {
    std::printf("-- comparison.csv --\n%s",
                sim::comparison_to_csv(report).c_str());
    std::printf("-- comparison_layers.csv --\n%s",
                sim::comparison_layers_to_csv(report).c_str());
  }

  // Bitwise cross-check: the "deepcam" rows must equal the single-backend
  // InferenceEngine path on the same config and the same probe batch.
  const auto model = nn::make_model(lenet.model_name, lenet.seed);
  const nn::Shape shape = nn::input_spec_for(lenet.model_name).shape();
  const sim::DeepCamBackend::Options dc;  // defaults == registry's "deepcam"
  const auto compiled =
      std::make_shared<const core::CompiledModel>(*model, dc.config);
  core::InferenceEngine engine(compiled, dc.threads);
  bool ok = true;
  for (const std::size_t batch : lenet.batch_sizes) {
    core::BatchReport br;
    engine.run_batch(sim::make_probe_batch(shape, batch, dc.probe_seed), &br);
    const sim::PlatformResult* row = nullptr;
    for (const auto& r : report.rows)
      if (r.backend == "deepcam" && r.model == model->name() &&
          r.batch == batch)
        row = &r;
    const bool match =
        row != nullptr &&
        row->total_cycles ==
            static_cast<double>(br.aggregate.total_cycles()) &&
        row->total_energy_j == br.aggregate.total_energy();
    std::printf("bitwise check (batch %zu): backend %.0f cycles vs engine "
                "%zu cycles -> %s\n",
                batch, row != nullptr ? row->total_cycles : -1.0,
                br.aggregate.total_cycles(), match ? "OK" : "MISMATCH");
    ok = ok && match;
  }
  return ok ? 0 : 1;
}
