// Cross-platform comparison driver (paper Tables I/II style), on the
// declarative facade.
//
// Builds the same Spec as specs/table1.json with the SpecBuilder — every
// default-registry backend (DeepCAM, Eyeriss-class systolic array, Skylake
// AVX-512 CPU, NeuroSim RRAM and Valavi SRAM PIM macros) plus the
// VHL-tuned DeepCAM variant over LeNet5 at batch 1 and 8 — runs it through
// Runner::run, and prints the ranked cycles/energy tables. Then
// cross-checks that the facade's "deepcam" rows are bitwise identical to
// driving the single-backend InferenceEngine path directly on the same
// config and probe batch (exit code 1 on any mismatch) — the same gate CI
// runs via `deepcam compare specs/table1.json --check`.
//
// Flags: --csv additionally dumps the comparison CSV and the per-layer
// drill-down CSV to stdout.
#include <cstdio>
#include <memory>

#include "deepcam/deepcam.hpp"

using namespace deepcam;

int main(int argc, char** argv) {
  bool dump_csv = false;
  cli::Flags flags("compare_platforms",
                   "sweep all sim backends over LeNet5 (paper Table I)");
  flags.flag("csv", &dump_csv, "dump comparison + per-layer CSV to stdout");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }

  // The deterministically-seeded (untrained) LeNet sees large layer-local
  // relative errors on random probes; 0.5 admits shorter hashes on the
  // robust layers so the VHL row demonstrates real per-layer variety
  // (trained nets tune against the default 0.25 — see lenet_pipeline).
  const Spec spec = SpecBuilder("table1-compare")
                        .mode(Mode::kCompare)
                        .workload("lenet5", /*seed=*/1)
                        .batch_sizes({1, 8})
                        .vhl(/*max_rel_error=*/0.5, /*probes=*/4)
                        .include_vhl()
                        .build();

  std::printf("== Cross-platform comparison: 5 backends + deepcam-vhl on "
              "lenet5 ==\n\n");
  const Outcome outcome = Runner().run(spec);
  std::printf("%s", outcome_text(outcome).c_str());
  if (dump_csv) std::printf("%s", outcome_csv(outcome).c_str());

  // Bitwise cross-check: the facade's "deepcam" rows must equal the
  // single-backend InferenceEngine path on the same config and the same
  // probe batch (shared with `deepcam compare --check`).
  return verify_deepcam_rows(spec, outcome.compare()) ? 0 : 1;
}
