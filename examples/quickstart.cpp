// Quickstart: the DeepCAM public API in ~60 lines.
//
//  1. Hash two vectors into contexts (SimHash + minifloat L2 norm).
//  2. Compute their approximate geometric dot-product via a DynamicCam
//     search, exactly as the accelerator does internally.
//  3. Run a small CNN end-to-end on the DeepCamAccelerator and print the
//     cycle/energy report.
#include <cstdio>

#include "core/accelerator.hpp"
#include "core/context.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"

using namespace deepcam;

int main() {
  // --- 1. Contexts: the paper's example vectors (Fig. 2). ---------------
  core::ContextGenerator gen(/*input_dim=*/4, /*seed=*/42);
  const std::vector<float> x = {0.6012f, 0.8383f, 0.6859f, 0.5712f};
  const std::vector<float> y = {0.9044f, 0.5352f, 0.8110f, 0.9243f};
  const core::Context cx = gen.make_context(x);
  const core::Context cy = gen.make_context(y);

  // --- 2. One CAM search -> Hamming distance -> approximate dot. --------
  cam::DynamicCam cam(cam::CamConfig{/*rows=*/64, 256, 4});
  cam.set_hash_length(1024);
  cam.write_row(0, cx.bits);
  const auto result = cam.search(cy.bits);
  const std::size_t hd = *result.row_hd[0];
  const double approx =
      hash::approx_dot(cx.norm(), cy.norm(), hd, 1024, /*use_pwl=*/true);
  std::printf("algebraic dot-product : 2.0765 (paper value)\n");
  std::printf("DeepCAM approx (k=1024): %.4f  (HD=%zu)\n", approx, hd);

  // --- 3. A small CNN on the accelerator. --------------------------------
  nn::Model model("demo_cnn");
  model.add(std::make_unique<nn::Conv2D>("conv1",
                                         nn::ConvSpec{1, 8, 3, 3, 1, 1}, 1));
  model.add(std::make_unique<nn::ReLU>("relu1"));
  model.add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  model.add(std::make_unique<nn::Flatten>("flat"));
  model.add(std::make_unique<nn::Linear>("fc", 8 * 8 * 8, 10, 2));

  core::DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.dataflow = core::Dataflow::kActivationStationary;
  core::DeepCamAccelerator acc(model, cfg);

  nn::Tensor image({1, 1, 16, 16});
  for (std::size_t i = 0; i < image.numel(); ++i)
    image[i] = static_cast<float>((i % 7) - 3) * 0.1f;

  core::RunReport report;
  const nn::Tensor logits = acc.run(image, &report);

  std::printf("\nDeepCAM inference on %s:\n", model.name().c_str());
  std::printf("  predicted class : %zu\n", nn::argmax_class(logits));
  std::printf("  CAM searches    : %zu\n", report.total_searches());
  std::printf("  total cycles    : %zu (%.2f us @300 MHz)\n",
              report.total_cycles(), report.time_seconds() * 1e6);
  std::printf("  total energy    : %.3f nJ\n", report.total_energy() * 1e9);
  std::printf("  mean utilization: %.1f%%\n",
              100.0 * report.mean_utilization());
  std::printf("  CAM area        : %.0f um^2\n", report.cam_area_um2);
  return 0;
}
