// Quickstart: the DeepCAM public API in ~60 lines.
//
//  1. Hash two vectors into contexts (SimHash + minifloat L2 norm).
//  2. Compute their approximate geometric dot-product via a DynamicCam
//     search, exactly as the accelerator does internally.
//  3. Run a small CNN batch through the declarative facade — one Spec in,
//     one Outcome out (the same description as specs/quickstart.json) —
//     then cross-check the facade against the direct InferenceEngine path:
//     the reports must be bitwise identical (exit 1 otherwise).
#include <cstdio>

#include "deepcam/deepcam.hpp"

using namespace deepcam;

int main() {
  // --- 1. Contexts: the paper's example vectors (Fig. 2). ---------------
  core::ContextGenerator gen(/*input_dim=*/4, /*seed=*/42);
  const std::vector<float> x = {0.6012f, 0.8383f, 0.6859f, 0.5712f};
  const std::vector<float> y = {0.9044f, 0.5352f, 0.8110f, 0.9243f};
  const core::Context cx = gen.make_context(x);
  const core::Context cy = gen.make_context(y);

  // --- 2. One CAM search -> Hamming distance -> approximate dot. --------
  cam::DynamicCam cam(cam::CamConfig{/*rows=*/64, 256, 4});
  cam.set_hash_length(1024);
  cam.write_row(0, cx.bits);
  const auto result = cam.search(cy.bits);
  const std::size_t hd = *result.row_hd[0];
  const double approx =
      hash::approx_dot(cx.norm(), cy.norm(), hd, 1024, /*use_pwl=*/true);
  std::printf("algebraic dot-product : 2.0765 (paper value)\n");
  std::printf("DeepCAM approx (k=1024): %.4f  (HD=%zu)\n\n", approx, hd);

  // --- 3. A small CNN through the facade (== specs/quickstart.json). ----
  const Spec spec = SpecBuilder("quickstart")
                        .mode(Mode::kOffline)
                        .custom_workload("demo_cnn", 1, 16, 16, /*seed=*/1)
                        .conv2d("conv1", 1, 8, 3, /*stride=*/1, /*pad=*/1)
                        .relu("relu1")
                        .maxpool(2, 2)
                        .flatten("flat")
                        .linear("fc", 8 * 8 * 8, 10)
                        .offline_batch(8)
                        .build();
  const Outcome outcome = Runner().run(spec);
  std::printf("%s", outcome_text(outcome).c_str());

  // --- 4. Facade == direct engine path, bitwise. -------------------------
  const Workload& w = spec.workloads.front();
  const auto model = build_model(w);
  const auto compiled = std::make_shared<const core::CompiledModel>(
      *model, spec.accelerator.config());
  core::InferenceEngine engine(compiled, spec.accelerator.engine_threads);
  core::BatchReport direct;
  engine.run_batch(sim::make_probe_batch(w.input_shape(), spec.offline.batch,
                                         spec.offline.input_seed),
                   &direct);

  const core::RunReport& a = outcome.offline().report.aggregate;
  const bool match = a.total_cycles() == direct.aggregate.total_cycles() &&
                     a.total_energy() == direct.aggregate.total_energy() &&
                     a.total_searches() == direct.aggregate.total_searches();
  std::printf("\nfacade vs direct engine: %zu vs %zu cycles -> %s\n",
              a.total_cycles(), direct.aggregate.total_cycles(),
              match ? "OK (bitwise)" : "MISMATCH");
  return match ? 0 : 1;
}
