// Full pipeline example: train LeNet5 on the synthetic MNIST stand-in,
// tune per-layer hash lengths, and compare software accuracy with DeepCAM
// hardware-functional accuracy plus cycle/energy costs against Eyeriss.
//
// This is the end-to-end workflow the paper describes: pretrained CNN ->
// context generator -> variable-hash-length CAM inference.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "core/engine.hpp"
#include "core/hash_tuner.hpp"
#include "nn/dataset.hpp"
#include "nn/topologies.hpp"
#include "nn/trainer.hpp"
#include "systolic/eyeriss.hpp"

using namespace deepcam;

int main() {
  std::printf("[1/5] training LeNet5 on synthetic digits "
              "(+ hash-noise-aware fine-tune)...\n");
  auto model = nn::make_lenet5(7);
  nn::SyntheticDigits train(4000, 100, 0.2);
  nn::SyntheticDigits test(200, 101, 0.2);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 0.05f;
  tc.verbose = true;
  nn::train_sgd(*model, train, tc);
  nn::TrainConfig ft = tc;
  ft.epochs = 6;
  ft.lr = 0.01f;
  ft.noise_scale = 0.05f;  // first-order hash-noise error model
  nn::train_sgd(*model, train, ft);
  nn::set_training_noise(*model, 0.0f, 0);
  const double sw_acc = nn::evaluate_accuracy(*model, test);
  std::printf("      software (BL) accuracy: %.1f%%\n\n", 100.0 * sw_acc);

  std::printf("[2/5] tuning per-layer hash lengths (end-to-end mode)...\n");
  std::vector<nn::Tensor> probes;
  for (std::size_t i = 0; i < 12; ++i) probes.push_back(test.sample(i).image);
  core::TunerConfig tcfg;
  tcfg.mode = core::TunerMode::kEndToEnd;
  tcfg.min_agreement = 0.95;
  tcfg.joint_refine = true;
  const auto tuned = core::tune_hash_lengths(*model, probes, tcfg);
  for (const auto& l : tuned.layers) {
    std::printf("      %-6s (n=%4zu): chosen k=%4zu | agreement@256/512/768/"
                "1024 = %.2f/%.2f/%.2f/%.2f\n",
                l.layer_name.c_str(), l.context_len, l.chosen_bits,
                l.metric[0], l.metric[1], l.metric[2], l.metric[3]);
  }

  std::printf("\n[3/5] DeepCAM inference with the tuned VHL config...\n");
  core::DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.dataflow = core::Dataflow::kActivationStationary;
  cfg.layer_hash_bits = tuned.hash_bits;
  core::DeepCamAccelerator acc(*model, cfg);
  std::size_t correct = 0;
  const std::size_t eval_n = 60;
  core::RunReport rep;
  std::vector<nn::Tensor> eval_images;
  std::vector<std::size_t> eval_labels;
  for (std::size_t i = 0; i < eval_n; ++i) {
    const auto& s = test.sample(i);
    eval_images.push_back(s.image);
    eval_labels.push_back(s.label);
    if (nn::argmax_class(acc.run(s.image, i == 0 ? &rep : nullptr)) ==
        s.label)
      ++correct;
  }
  const double hw_acc = double(correct) / double(eval_n);
  std::printf("      DeepCAM (DC) accuracy : %.1f%% (BL %.1f%%)\n",
              100.0 * hw_acc, 100.0 * sw_acc);
  std::printf("      per-inference: %zu cycles, %.3f uJ, util %.1f%%\n",
              rep.total_cycles(), rep.total_energy() * 1e6,
              100.0 * rep.mean_utilization());

  std::printf("\n[4/5] Eyeriss baseline comparison...\n");
  const auto eyeriss = systolic::simulate_eyeriss(*model, {1, 1, 28, 28});
  std::printf("      Eyeriss: %zu cycles, %.3f uJ\n", eyeriss.total_cycles(),
              eyeriss.total_energy() * 1e6);
  std::printf("      DeepCAM advantage: %.1fx cycles, %.1fx energy\n",
              double(eyeriss.total_cycles()) / double(rep.total_cycles()),
              eyeriss.total_energy() / rep.total_energy());
  std::printf("\nper-layer DeepCAM breakdown:\n");
  for (const auto& l : rep.layers) {
    std::printf("  %-6s P=%4zu K=%4zu n=%4zu k=%4zu | passes %3zu "
                "searches %5zu util %5.1f%% | cycles %6zu energy %8.2f nJ\n",
                l.name.c_str(), l.patches, l.kernels, l.context_len,
                l.hash_bits, l.plan.passes, l.plan.searches,
                100.0 * l.plan.utilization, l.cycles,
                l.total_energy() * 1e9);
  }

  std::printf("\n[5/5] batched multi-threaded engine (same CompiledModel, "
              "1 vs N threads)...\n");
  const std::size_t hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  double samples_per_s_1 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, hw_threads}) {
    core::InferenceEngine engine(acc.compiled(), threads);
    core::BatchReport br;
    const auto logits = engine.run_batch(eval_images, &br);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < logits.size(); ++i)
      if (nn::argmax_class(logits[i]) == eval_labels[i]) ++agree;
    if (threads == 1) samples_per_s_1 = br.throughput();
    std::printf("      %2zu thread%s: %6.1f samples/s host "
                "(%.2fx vs 1 thread) | %.0f samples/s simulated HW | "
                "accuracy %.1f%% (matches facade: %s)\n",
                threads, threads == 1 ? " " : "s", br.throughput(),
                samples_per_s_1 > 0.0 ? br.throughput() / samples_per_s_1
                                      : 1.0,
                br.simulated_throughput(),
                100.0 * double(agree) / double(logits.size()),
                agree == correct ? "yes" : "NO");
  }
  return 0;
}
