#include "pim/comparators.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "nn/topologies.hpp"

namespace deepcam::pim {
namespace {

TEST(Crossbar, TileCountFromGeometry) {
  CrossbarConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  const CrossbarLayerResult r = simulate_layer({"l", 10, 300, 200}, cfg);
  // ceil(200/128)=2 row tiles x ceil(300/128)=3 col tiles.
  EXPECT_EQ(r.tiles, 6u);
}

TEST(Crossbar, CyclesScaleWithInputsAndWaves) {
  CrossbarConfig cfg;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.parallel_tiles = 2;
  cfg.input_serial_cycles = 8;
  cfg.adcs_per_tile = 16;
  cfg.adc_cycles = 10;
  const CrossbarLayerResult r = simulate_layer({"l", 10, 128, 256}, cfg);
  // 2 row tiles, 1 col tile -> 2 tiles -> 1 wave of 2.
  // latency = 8 + ceil(128/16)*10 = 88; cycles = 10 * 1 * 88.
  EXPECT_EQ(r.cycles, 880u);
}

TEST(Crossbar, EnergyIsPerMac) {
  CrossbarConfig cfg;
  cfg.energy_per_mac = 1e-12;
  const CrossbarLayerResult r = simulate_layer({"l", 10, 10, 10}, cfg);
  EXPECT_NEAR(r.energy, 1000.0 * 1e-12, 1e-18);
}

TEST(Comparators, NeuroSimVgg11MatchesPublishedMagnitudes) {
  // Table II: NeuroSim RRAM on VGG11/CIFAR10 = 34.98 uJ, 5.74e5 cycles.
  auto m = nn::make_vgg11(1, 10);
  const auto r = simulate_crossbar(*m, {1, 3, 32, 32},
                                   neurosim_rram_config());
  const double uj = to_uJ(r.total_energy());
  EXPECT_GT(uj, 20.0);
  EXPECT_LT(uj, 50.0);
  EXPECT_GT(r.total_cycles(), 2.0e5);
  EXPECT_LT(r.total_cycles(), 1.2e6);
}

TEST(Comparators, ValaviVgg11MatchesPublishedMagnitudes) {
  // Table II: Valavi SRAM on VGG11/CIFAR10 = 3.55 uJ, 2.56e5 cycles.
  auto m = nn::make_vgg11(2, 10);
  const auto r =
      simulate_crossbar(*m, {1, 3, 32, 32}, valavi_sram_config());
  const double uj = to_uJ(r.total_energy());
  EXPECT_GT(uj, 1.5);
  EXPECT_LT(uj, 6.0);
  EXPECT_GT(r.total_cycles(), 0.5e5);
  EXPECT_LT(r.total_cycles(), 6.0e5);
}

TEST(Comparators, SramChargeDomainCheaperThanRram) {
  auto m = nn::make_vgg11(3, 10);
  const auto rram =
      simulate_crossbar(*m, {1, 3, 32, 32}, neurosim_rram_config());
  const auto sram =
      simulate_crossbar(*m, {1, 3, 32, 32}, valavi_sram_config());
  // Table II shows ~10x energy gap between the two analog designs.
  EXPECT_GT(rram.total_energy() / sram.total_energy(), 5.0);
}

TEST(Crossbar, ModelAggregation) {
  auto m = nn::make_lenet5(4);
  const auto r =
      simulate_crossbar(*m, {1, 1, 28, 28}, neurosim_rram_config());
  EXPECT_EQ(r.layers.size(), 5u);
  std::size_t cyc = 0;
  double e = 0.0;
  for (const auto& l : r.layers) {
    cyc += l.cycles;
    e += l.energy;
  }
  EXPECT_EQ(r.total_cycles(), cyc);
  EXPECT_DOUBLE_EQ(r.total_energy(), e);
}

TEST(Crossbar, InvalidConfigThrows) {
  CrossbarConfig cfg;
  cfg.tile_rows = 0;
  EXPECT_THROW(simulate_layer({"l", 1, 1, 1}, cfg), deepcam::Error);
}

}  // namespace
}  // namespace deepcam::pim
