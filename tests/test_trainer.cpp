#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/topologies.hpp"

namespace deepcam::nn {
namespace {

TEST(Trainer, MlpLearnsDigits) {
  // A small MLP reaches high accuracy on the synthetic digits quickly —
  // validates the full backprop path end to end.
  Model m("mlp");
  m.add(std::make_unique<Flatten>("flat"));
  m.add(std::make_unique<Linear>("fc1", 784, 32, 1));
  m.add(std::make_unique<ReLU>("r1"));
  m.add(std::make_unique<Linear>("fc2", 32, 10, 2));

  SyntheticDigits train(600, 21);
  SyntheticDigits test(200, 22);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  const TrainResult r = train_sgd(m, train, cfg);
  EXPECT_GT(r.train_accuracy, 0.85);
  EXPECT_GT(evaluate_accuracy(m, test), 0.85);
}

TEST(Trainer, LossDecreases) {
  Model m("mlp");
  m.add(std::make_unique<Flatten>("flat"));
  m.add(std::make_unique<Linear>("fc", 784, 10, 3));
  SyntheticDigits train(300, 23);
  TrainConfig one;
  one.epochs = 1;
  one.lr = 0.02f;
  const TrainResult r1 = train_sgd(m, train, one);
  const TrainResult r2 = train_sgd(m, train, one);
  EXPECT_LT(r2.final_loss, r1.final_loss);
}

TEST(Trainer, RequiresSequentialModel) {
  Model m("res");
  const int a = m.add(std::make_unique<Linear>("fc", 4, 4, 4));
  m.add(std::make_unique<Add>("add"), a, a);
  SyntheticDigits train(20, 24);
  EXPECT_THROW(train_sgd(m, train, {}), Error);
}

TEST(Trainer, DeterministicGivenSeeds) {
  auto run = [] {
    Model m("mlp");
    m.add(std::make_unique<Flatten>("flat"));
    m.add(std::make_unique<Linear>("fc", 784, 10, 5));
    SyntheticDigits train(200, 25);
    TrainConfig cfg;
    cfg.epochs = 1;
    return train_sgd(m, train, cfg).final_loss;
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, EvaluateAccuracyLimit) {
  Model m("mlp");
  m.add(std::make_unique<Flatten>("flat"));
  m.add(std::make_unique<Linear>("fc", 784, 10, 6));
  SyntheticDigits data(100, 26);
  // Limit restricts evaluation to a prefix; result stays within [0, 1].
  const double acc = evaluate_accuracy(m, data, 10);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Trainer, LeNet5TrainsAboveNinetyPercent) {
  // The headline training path used by the Fig. 5 reproduction. Kept to a
  // modest dataset so the test stays fast.
  auto m = make_lenet5(7);
  SyntheticDigits train(800, 27);
  SyntheticDigits test(200, 28);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  train_sgd(*m, train, cfg);
  EXPECT_GT(evaluate_accuracy(*m, test), 0.90);
}

}  // namespace
}  // namespace deepcam::nn
