#include "cam/dynamic_cam.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace deepcam::cam {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  deepcam::Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.uniform() < 0.5);
  return v;
}

TEST(DynamicCam, StartsEmptyAllChunksActive) {
  DynamicCam cam(CamConfig{64, 256, 4});
  EXPECT_EQ(cam.occupied_rows(), 0u);
  EXPECT_EQ(cam.active_chunks(), 4u);
  EXPECT_EQ(cam.active_bits(), 1024u);
}

TEST(DynamicCam, SearchMatchesSoftwareHammingEveryConfig) {
  // CAM search must equal software Hamming distance for every row/word
  // configuration the paper sweeps (Fig. 8 grid).
  for (std::size_t rows : {64u, 128u, 256u, 512u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 4u}) {
      DynamicCam cam(CamConfig{rows, 256, 4});
      cam.set_active_chunks(chunks);
      const std::size_t k = chunks * 256;
      std::vector<BitVec> stored;
      const std::size_t n_rows = std::min<std::size_t>(rows, 8);
      for (std::size_t r = 0; r < n_rows; ++r) {
        stored.push_back(random_bits(1024, 100 + r));
        cam.write_row(r, stored.back());
      }
      const BitVec key = random_bits(1024, 999);
      const auto res = cam.search(key);
      for (std::size_t r = 0; r < n_rows; ++r) {
        ASSERT_TRUE(res.row_hd[r].has_value());
        EXPECT_EQ(*res.row_hd[r], key.hamming_prefix(stored[r], k))
            << "rows=" << rows << " chunks=" << chunks << " r=" << r;
      }
    }
  }
}

TEST(DynamicCam, UnoccupiedRowsReportNothing) {
  DynamicCam cam(CamConfig{16, 256, 4});
  cam.write_row(3, random_bits(1024, 1));
  const auto res = cam.search(random_bits(1024, 2));
  for (std::size_t r = 0; r < 16; ++r)
    EXPECT_EQ(res.row_hd[r].has_value(), r == 3);
}

TEST(DynamicCam, ReconfigurationChangesWordLength) {
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.set_hash_length(256);
  EXPECT_EQ(cam.active_chunks(), 1u);
  cam.set_hash_length(257);
  EXPECT_EQ(cam.active_chunks(), 2u);
  cam.set_hash_length(768);
  EXPECT_EQ(cam.active_chunks(), 3u);
  cam.set_hash_length(1024);
  EXPECT_EQ(cam.active_chunks(), 4u);
  EXPECT_THROW(cam.set_hash_length(1025), deepcam::Error);
  EXPECT_THROW(cam.set_active_chunks(5), deepcam::Error);
  EXPECT_THROW(cam.set_active_chunks(0), deepcam::Error);
}

TEST(DynamicCam, ShorterWordIgnoresTailBits) {
  DynamicCam cam(CamConfig{4, 256, 4});
  BitVec a = random_bits(1024, 5);
  cam.set_active_chunks(4);
  cam.write_row(0, a);
  // Key differs from a only in bits >= 256.
  BitVec key = a;
  for (std::size_t i = 256; i < 1024; ++i) key.flip(i);
  cam.set_active_chunks(1);
  const auto res = cam.search(key);
  EXPECT_EQ(*res.row_hd[0], 0u);  // 256-bit window sees a perfect match
  cam.set_active_chunks(4);
  const auto res4 = cam.search(key);
  EXPECT_EQ(*res4.row_hd[0], 768u);
}

TEST(DynamicCam, StatsAccumulate) {
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.set_active_chunks(2);
  cam.write_row(0, random_bits(1024, 7));
  cam.write_row(1, random_bits(1024, 8));
  cam.search(random_bits(1024, 9));
  cam.search(random_bits(1024, 10));
  cam.search(random_bits(1024, 11));
  const CamStats& s = cam.stats();
  EXPECT_EQ(s.row_writes, 2u);
  EXPECT_EQ(s.searches, 3u);
  EXPECT_EQ(s.reconfigs, 1u);
  EXPECT_GT(s.search_energy, 0.0);
  EXPECT_GT(s.write_energy, 0.0);
  EXPECT_GT(s.cycles, 0u);
  cam.reset_stats();
  EXPECT_EQ(cam.stats().searches, 0u);
}

TEST(DynamicCam, SearchEnergyScalesWithWordLength) {
  auto energy_for_chunks = [](std::size_t chunks) {
    DynamicCam cam(CamConfig{64, 256, 4});
    cam.set_active_chunks(chunks);
    cam.write_row(0, random_bits(1024, 1));
    cam.search(random_bits(1024, 2));
    return cam.stats().search_energy;
  };
  const double e1 = energy_for_chunks(1);
  const double e4 = energy_for_chunks(4);
  EXPECT_GT(e4, 2.5 * e1);  // ~4x cell energy plus fixed SA term
  EXPECT_LT(e4, 4.5 * e1);
}

TEST(DynamicCam, SearchLatencyGrowsWithChunks) {
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.set_active_chunks(1);
  const std::size_t c1 = cam.search_cycles();
  cam.set_active_chunks(4);
  const std::size_t c4 = cam.search_cycles();
  EXPECT_GT(c4, c1);
}

TEST(DynamicCam, ClearDropsOccupancyKeepsStats) {
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.write_row(0, random_bits(1024, 1));
  cam.clear();
  EXPECT_EQ(cam.occupied_rows(), 0u);
  EXPECT_EQ(cam.stats().row_writes, 1u);
}

TEST(DynamicCam, FaultInjectionPerturbsDistanceByOne) {
  DynamicCam cam(CamConfig{4, 256, 4});
  const BitVec data = random_bits(1024, 20);
  cam.write_row(0, data);
  const BitVec key = random_bits(1024, 21);
  const std::size_t before = *cam.search(key).row_hd[0];
  cam.inject_bit_fault(0, 100);
  const std::size_t after = *cam.search(key).row_hd[0];
  EXPECT_EQ(std::max(before, after) - std::min(before, after), 1u);
}

TEST(DynamicCam, RowRangeChecks) {
  DynamicCam cam(CamConfig{4, 256, 4});
  EXPECT_THROW(cam.write_row(4, random_bits(1024, 1)), deepcam::Error);
  EXPECT_THROW(cam.inject_bit_fault(4, 0), deepcam::Error);
  EXPECT_THROW(cam.inject_bit_fault(0, 1024), deepcam::Error);
  BitVec small(128);
  EXPECT_THROW(cam.write_row(0, small), deepcam::Error);
}

TEST(DynamicCam, OccupiedRowsCounterMatchesOccupancy) {
  // occupied_rows() is a counter now, not a scan; it must stay exact under
  // rewrites (same row written twice counts once) and clears.
  DynamicCam cam(CamConfig{8, 256, 4});
  EXPECT_EQ(cam.occupied_rows(), 0u);
  cam.write_row(2, random_bits(1024, 1));
  cam.write_row(5, random_bits(1024, 2));
  cam.write_row(2, random_bits(1024, 3));  // rewrite, not a new occupancy
  EXPECT_EQ(cam.occupied_rows(), 2u);
  EXPECT_TRUE(cam.row_occupied(2));
  EXPECT_TRUE(cam.row_occupied(5));
  cam.clear();
  EXPECT_EQ(cam.occupied_rows(), 0u);
  cam.write_row(0, random_bits(1024, 4));
  EXPECT_EQ(cam.occupied_rows(), 1u);
}

TEST(DynamicCam, SearchIntoMatchesSearchAndReusesBuffer) {
  DynamicCam cam(CamConfig{16, 256, 4});
  for (std::size_t r = 0; r < 5; ++r) cam.write_row(r, random_bits(1024, r));
  DynamicCam::SearchResult buf;
  for (std::size_t q = 0; q < 3; ++q) {
    const BitVec key = random_bits(1024, 100 + q);
    cam.search_into(key, buf);  // same buffer across queries
    const auto fresh = cam.search(key);
    ASSERT_EQ(buf.row_hd.size(), fresh.row_hd.size());
    for (std::size_t r = 0; r < buf.row_hd.size(); ++r)
      EXPECT_EQ(buf.row_hd[r], fresh.row_hd[r]);
  }
}

TEST(DynamicCam, WordCopyWriteZeroesTailLikeBitWrite) {
  // write_row copies 64-bit words; at a 257-bit word length the partial-word
  // mask and tail-zeroing must reproduce the old per-bit semantics exactly.
  DynamicCam cam(CamConfig{4, 257, 4});
  cam.set_active_chunks(1);  // 257 active bits: 4 full words + 1 bit
  BitVec data(1028);
  for (std::size_t i = 0; i < 1028; ++i) data.set(i, true);
  cam.write_row(0, data);
  cam.set_active_chunks(4);
  BitVec key(1028);  // all zeros
  // 257 stored ones mismatch the zero key; the zeroed tail matches.
  EXPECT_EQ(*cam.search(key).row_hd[0], 257u);
}

TEST(DynamicCam, WriteEnergyScalesWithActiveBits) {
  DynamicCam a(CamConfig{4, 256, 4});
  a.set_active_chunks(1);
  a.write_row(0, random_bits(1024, 1));
  DynamicCam b(CamConfig{4, 256, 4});
  b.set_active_chunks(4);
  b.write_row(0, random_bits(1024, 1));
  EXPECT_NEAR(b.stats().write_energy / a.stats().write_energy, 4.0, 1e-9);
}

// write_row copies 64-bit words with a masked tail; chunk_bits straddling a
// word boundary (63/64/65) at every chunk count exercises each mask shape.
// Property: the stored row, observed through an exact-sense search at the
// same word length, Hamming-matches the written prefix for every key.
class CamWriteRowBoundaryTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CamWriteRowBoundaryTest, SearchSeesExactlyTheWrittenPrefix) {
  const std::size_t chunk_bits = GetParam();
  DynamicCam cam(CamConfig{2, chunk_bits, 4});
  for (std::size_t chunks = 1; chunks <= 4; ++chunks) {
    cam.set_active_chunks(chunks);
    const std::size_t k = chunks * chunk_bits;
    const BitVec data = random_bits(4 * chunk_bits, 77 + k);
    cam.write_row(0, data);
    const BitVec key = random_bits(4 * chunk_bits, 900 + k);
    std::size_t expect = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (data.get(i) != key.get(i)) ++expect;
    ASSERT_EQ(*cam.search(key).row_hd[0], expect)
        << "chunk_bits=" << chunk_bits << " chunks=" << chunks;
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, CamWriteRowBoundaryTest,
                         ::testing::Values(63, 64, 65, 128, 256));

TEST(DynamicCam, WriteRowSourceShorterThanStoredWordIsAccepted) {
  // The source only needs active_bits() bits; rows physically store the
  // full max word. A 63-bit source programming a 63-bit active word must
  // work even though the row itself is 252 bits wide.
  DynamicCam cam(CamConfig{2, 63, 4});
  cam.set_active_chunks(1);
  const BitVec data = random_bits(63, 3);
  cam.write_row(0, data);
  BitVec key(63);
  EXPECT_EQ(*cam.search(key).row_hd[0], data.popcount());
  // One bit short of the active word still throws.
  cam.set_active_chunks(2);
  EXPECT_THROW(cam.write_row(0, random_bits(125, 4)), deepcam::Error);
}

TEST(DynamicCam, RewriteAtShorterWordClearsStaleTail) {
  // Program a full 1024-bit word, reconfigure to 256 bits and rewrite the
  // row: widening back to 1024 must observe zeros beyond bit 256, not the
  // stale bits of the first write (assign_prefix zeroes the tail).
  DynamicCam cam(CamConfig{2, 256, 4});
  cam.set_active_chunks(4);
  cam.write_row(0, random_bits(1024, 11));
  cam.set_active_chunks(1);
  const BitVec short_data = random_bits(1024, 12);
  cam.write_row(0, short_data);
  cam.set_active_chunks(4);
  BitVec key(1024);  // all-zero key: distance == stored popcount
  std::size_t prefix_pop = 0;
  for (std::size_t i = 0; i < 256; ++i)
    if (short_data.get(i)) ++prefix_pop;
  EXPECT_EQ(*cam.search(key).row_hd[0], prefix_pop);
}

// ---- flat word-arena API: write_row(span) + search_flat ----------------

TEST(DynamicCam, WriteRowWordSpanMatchesBitVecOverload) {
  // Two CAMs programmed through the two overloads must be indistinguishable
  // under search, across hash lengths (including after a length shrink that
  // exercises the stale-tail clearing).
  DynamicCam a(CamConfig{8, 256, 4}), b(CamConfig{8, 256, 4});
  for (std::size_t k : {1024u, 256u}) {
    a.set_hash_length(k);
    b.set_hash_length(k);
    a.clear();
    b.clear();
    for (std::size_t r = 0; r < 8; ++r) {
      const BitVec bits = random_bits(1024, 50 * k + r);
      a.write_row(r, bits);
      b.write_row(r, std::span<const std::uint64_t>(bits.data(),
                                                    bits.word_count()));
    }
    // Compare at full width too: the cleared tails must agree.
    a.set_hash_length(1024);
    b.set_hash_length(1024);
    const BitVec key = random_bits(1024, 777);
    const auto ra = a.search(key), rb = b.search(key);
    for (std::size_t r = 0; r < 8; ++r)
      EXPECT_EQ(*ra.row_hd[r], *rb.row_hd[r]) << "k=" << k << " r=" << r;
  }
}

TEST(DynamicCam, SearchFlatMatchesSearchIntoAndStats) {
  DynamicCam cam(CamConfig{64, 256, 4});
  cam.set_hash_length(512);
  const std::size_t occupied = 23;  // partial occupancy, rows 0..22
  for (std::size_t r = 0; r < occupied; ++r)
    cam.write_row(r, random_bits(1024, 300 + r));
  const BitVec key = random_bits(1024, 888);

  const CamStats s0 = cam.stats();
  DynamicCam::SearchResult ref;
  cam.search_into(key, ref);
  const CamStats s1 = cam.stats();

  DynamicCam::FlatSearchResult flat;
  cam.search_flat(std::span<const std::uint64_t>(key.data(),
                                                 key.word_count()),
                  flat);
  const CamStats s2 = cam.stats();

  EXPECT_EQ(flat.occupied, occupied);
  ASSERT_GE(flat.row_hd.size(), occupied);
  for (std::size_t r = 0; r < occupied; ++r)
    EXPECT_EQ(flat.row_hd[r], *ref.row_hd[r]) << r;

  // search_flat must charge exactly what search_into charges.
  EXPECT_EQ(s2.searches - s1.searches, s1.searches - s0.searches);
  EXPECT_EQ(s2.cycles - s1.cycles, s1.cycles - s0.cycles);
  EXPECT_DOUBLE_EQ(s2.search_energy - s1.search_energy,
                   s1.search_energy - s0.search_energy);
}

TEST(DynamicCam, SearchFlatQuantizedSenseAmpMatchesSearch) {
  SenseAmpConfig sa;
  sa.mode = SenseMode::kQuantized;
  DynamicCam cam(CamConfig{16, 256, 4}, sa);
  for (std::size_t r = 0; r < 16; ++r)
    cam.write_row(r, random_bits(1024, 40 + r));
  const BitVec key = random_bits(1024, 41);
  const auto ref = cam.search(key);
  DynamicCam::FlatSearchResult flat;
  cam.search_flat(std::span<const std::uint64_t>(key.data(),
                                                 key.word_count()),
                  flat);
  for (std::size_t r = 0; r < 16; ++r)
    EXPECT_EQ(flat.row_hd[r], *ref.row_hd[r]) << r;
}

TEST(DynamicCam, SearchFlatRequiresContiguousOccupancy) {
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.write_row(3, random_bits(1024, 1));  // hole at rows 0..2
  const BitVec key = random_bits(1024, 2);
  DynamicCam::FlatSearchResult flat;
  EXPECT_THROW(cam.search_flat(std::span<const std::uint64_t>(
                                   key.data(), key.word_count()),
                               flat),
               deepcam::Error);
  // clear() restores the precondition.
  cam.clear();
  cam.write_row(0, random_bits(1024, 3));
  cam.search_flat(std::span<const std::uint64_t>(key.data(),
                                                 key.word_count()),
                  flat);
  EXPECT_EQ(flat.occupied, 1u);
}

TEST(DynamicCam, SearchFlatAcceptsOutOfOrderPrefixWrites) {
  // The precondition is on the occupancy *set*, not the write order:
  // writing rows {1, 0} leaves the valid prefix {0, 1}.
  DynamicCam cam(CamConfig{8, 256, 4});
  cam.write_row(1, random_bits(1024, 61));
  cam.write_row(0, random_bits(1024, 62));
  const BitVec key = random_bits(1024, 63);
  DynamicCam::FlatSearchResult flat;
  cam.search_flat(std::span<const std::uint64_t>(key.data(),
                                                 key.word_count()),
                  flat);
  EXPECT_EQ(flat.occupied, 2u);
  const auto ref = cam.search(key);
  EXPECT_EQ(flat.row_hd[0], *ref.row_hd[0]);
  EXPECT_EQ(flat.row_hd[1], *ref.row_hd[1]);
}

TEST(DynamicCam, SearchFlatEmptyCamReportsZeroOccupied) {
  DynamicCam cam(CamConfig{8, 256, 4});
  const BitVec key = random_bits(1024, 5);
  DynamicCam::FlatSearchResult flat;
  cam.search_flat(std::span<const std::uint64_t>(key.data(),
                                                 key.word_count()),
                  flat);
  EXPECT_EQ(flat.occupied, 0u);
}

TEST(DynamicCam, RewriteKeepsOccupancyAndRowIndependence) {
  // Rewriting one row at a word boundary must not disturb neighbors.
  DynamicCam cam(CamConfig{3, 64, 4});
  cam.set_active_chunks(2);
  const BitVec a = random_bits(256, 1), b = random_bits(256, 2);
  cam.write_row(0, a);
  cam.write_row(2, b);
  cam.write_row(0, random_bits(256, 3));
  EXPECT_EQ(cam.occupied_rows(), 2u);
  const auto res = cam.search(b);
  EXPECT_EQ(*res.row_hd[2], 0u);
  EXPECT_FALSE(res.row_hd[1].has_value());
}

}  // namespace
}  // namespace deepcam::cam
