// End-to-end pairing of the HashTuner (kLayerLocal) with the batched
// InferenceEngine on LeNet5: per-layer hash lengths chosen from layer-local
// sensitivity must cost no more than the configured agreement budget in
// Top-1 fidelity versus the fixed 1024-bit configuration when the whole
// tuned network runs through the engine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/hash_tuner.hpp"
#include "nn/topologies.hpp"
#include "sim/backend.hpp"

namespace deepcam::core {
namespace {

/// Fraction of probes where the engine's Top-1 equals the FP32 model's.
double engine_agreement(const nn::Model& model, const DeepCamConfig& cfg,
                        const std::vector<nn::Tensor>& probes) {
  const auto compiled = std::make_shared<const CompiledModel>(model, cfg);
  InferenceEngine engine(compiled, 2);
  const auto logits = engine.run_batch(probes);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < probes.size(); ++i)
    if (nn::argmax_class(logits[i]) == nn::argmax_class(model.infer(probes[i])))
      ++agree;
  return static_cast<double>(agree) / static_cast<double>(probes.size());
}

TEST(VhlEndToEnd, TunedConfigStaysWithinAgreementBudgetOfFixed1024) {
  // The budget the tuned configuration may lose vs fixed 1024-bit hashes.
  constexpr double kAgreementBudget = 0.25;
  constexpr std::size_t kProbes = 12;

  auto model = nn::make_lenet5(/*seed=*/7);
  const nn::Shape shape = nn::input_spec_for("lenet5").shape();
  const auto probes = sim::make_probe_batch(shape, kProbes);

  TunerConfig tcfg;
  tcfg.mode = TunerMode::kLayerLocal;
  const TuneResult tuned = tune_hash_lengths(*model, probes, tcfg);

  // One choice per CAM layer, each a legal hash length.
  const std::size_t cam_layers =
      CompiledModel(*model, DeepCamConfig{}).cam_layer_count();
  ASSERT_EQ(tuned.hash_bits.size(), cam_layers);
  ASSERT_EQ(tuned.layers.size(), cam_layers);
  for (const std::size_t bits : tuned.hash_bits) {
    EXPECT_GE(bits, 256u);
    EXPECT_LE(bits, 1024u);
    EXPECT_EQ(bits % 256, 0u);
  }
  EXPECT_LE(tuned.mean_hash_bits(), 1024.0);

  DeepCamConfig fixed;  // homogeneous default (1024-bit) hashes
  DeepCamConfig vhl = fixed;
  vhl.layer_hash_bits = tuned.hash_bits;

  const double fixed_agreement = engine_agreement(*model, fixed, probes);
  const double vhl_agreement = engine_agreement(*model, vhl, probes);
  EXPECT_GE(vhl_agreement, fixed_agreement - kAgreementBudget)
      << "tuned=" << vhl_agreement << " fixed=" << fixed_agreement;
}

TEST(VhlEndToEnd, TunedNeverCostsMoreCyclesThanFixed1024) {
  // Shorter hashes may trade fidelity, never cycles: the tuned engine run
  // must be at most as expensive as the fixed-1024 run on the same batch.
  auto model = nn::make_lenet5(/*seed=*/7);
  const nn::Shape shape = nn::input_spec_for("lenet5").shape();
  const auto probes = sim::make_probe_batch(shape, 2);

  TunerConfig tcfg;
  tcfg.mode = TunerMode::kLayerLocal;
  const TuneResult tuned = tune_hash_lengths(*model, probes, tcfg);

  DeepCamConfig fixed;
  DeepCamConfig vhl = fixed;
  vhl.layer_hash_bits = tuned.hash_bits;

  auto cycles_of = [&](const DeepCamConfig& cfg) {
    const auto compiled =
        std::make_shared<const CompiledModel>(*model, cfg);
    InferenceEngine engine(compiled, 1);
    BatchReport br;
    engine.run_batch(probes, &br);
    return br.aggregate.total_cycles();
  };
  EXPECT_LE(cycles_of(vhl), cycles_of(fixed));
}

}  // namespace
}  // namespace deepcam::core
