#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace deepcam::nn {
namespace {

TEST(Quantize, ScaleCoversMax) {
  std::vector<float> x = {-2.0f, 1.0f, 0.5f};
  const QuantParams qp = choose_scale(x);
  EXPECT_FLOAT_EQ(qp.scale, 2.0f / 127.0f);
}

TEST(Quantize, ZeroVectorSafe) {
  std::vector<float> x(4, 0.0f);
  const QuantParams qp = choose_scale(x);
  EXPECT_EQ(qp.scale, 1.0f);
  const auto q = quantize_int8(x, qp);
  for (auto v : q) EXPECT_EQ(v, 0);
}

TEST(Quantize, RoundTripErrorBounded) {
  Rng rng(31);
  std::vector<float> x(256);
  for (auto& v : x) v = static_cast<float>(rng.gaussian(0.0, 2.0));
  const QuantParams qp = choose_scale(x);
  const auto q = quantize_int8(x, qp);
  const auto back = dequantize_int8(q, qp);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], qp.scale * 0.5f + 1e-6f);
}

TEST(Quantize, SaturatesAtPlusMinus127) {
  std::vector<float> x = {1.0f};
  QuantParams qp{0.001f};
  const auto q = quantize_int8(x, qp);
  EXPECT_EQ(q[0], 127);
  std::vector<float> y = {-1.0f};
  EXPECT_EQ(quantize_int8(y, qp)[0], -127);
}

TEST(Quantize, FakeQuantizeIdempotent) {
  Rng rng(32);
  Tensor t({1, 2, 4, 4});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  Tensor q1 = fake_quantize(t);
  Tensor q2 = fake_quantize(q1);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_NEAR(q1[i], q2[i], 1e-6f);
}

TEST(Quantize, SymmetricInSign) {
  std::vector<float> x = {0.7f, -0.7f};
  const QuantParams qp = choose_scale(x);
  const auto q = quantize_int8(x, qp);
  EXPECT_EQ(q[0], -q[1]);
}

}  // namespace
}  // namespace deepcam::nn
