// Unit tests for the shared command-line flag parser (common/cli.hpp),
// extracted from the ad-hoc argv loops that bench/serve_throughput and
// examples/serve_loadgen used to carry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hpp"

namespace deepcam {
namespace {

/// argv adapter: gtest-friendly parse of a brace-list of arguments
/// (argv[0] is the program name, as in main()).
bool parse(cli::Flags& flags, std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string program = "prog";
  argv.push_back(program.data());
  for (auto& a : args) argv.push_back(a.data());
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, ParsesEveryTargetType) {
  bool on = false;
  std::string s = "default";
  std::uint64_t u = 0;
  long l = 0;
  double d = 0.0;
  cli::Flags flags("t");
  flags.flag("on", &on, "")
      .option("s", &s, "")
      .option("u", &u, "")
      .option("l", &l, "")
      .option("d", &d, "");
  ASSERT_TRUE(parse(flags, {"--on", "--s", "hello", "--u", "42", "--l",
                            "-7", "--d", "2.5"}))
      << flags.error();
  EXPECT_TRUE(on);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(u, 42u);
  EXPECT_EQ(l, -7);
  EXPECT_DOUBLE_EQ(d, 2.5);
}

TEST(CliFlags, EqualsSyntax) {
  std::uint64_t u = 0;
  std::string s;
  cli::Flags flags("t");
  flags.option("u", &u, "").option("s", &s, "");
  ASSERT_TRUE(parse(flags, {"--u=128", "--s=a=b"})) << flags.error();
  EXPECT_EQ(u, 128u);
  EXPECT_EQ(s, "a=b");  // only the first '=' splits
}

TEST(CliFlags, DefaultsSurviveWhenFlagAbsent) {
  std::uint64_t u = 96;
  double d = 400.0;
  cli::Flags flags("t");
  flags.option("u", &u, "").option("d", &d, "");
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_EQ(u, 96u);
  EXPECT_DOUBLE_EQ(d, 400.0);
}

TEST(CliFlags, ErrorsAreReportedNotThrown) {
  bool on = false;
  std::uint64_t u = 0;
  cli::Flags flags("t");
  flags.flag("on", &on, "").option("u", &u, "");

  EXPECT_FALSE(parse(flags, {"--bogus"}));
  EXPECT_NE(flags.error().find("unknown flag: --bogus"), std::string::npos);

  EXPECT_FALSE(parse(flags, {"--u"}));
  EXPECT_NE(flags.error().find("missing value for --u"), std::string::npos);

  EXPECT_FALSE(parse(flags, {"--u", "12x"}));
  EXPECT_NE(flags.error().find("invalid value for --u"), std::string::npos);

  EXPECT_FALSE(parse(flags, {"--u", "-3"}));  // unsigned rejects negatives
  EXPECT_FALSE(parse(flags, {"--on=true"}));  // presence flags take no value
  EXPECT_NE(flags.error().find("takes no value"), std::string::npos);
}

TEST(CliFlags, PositionalBounds) {
  cli::Flags none("t");
  EXPECT_FALSE(parse(none, {"stray"}));
  EXPECT_NE(none.error().find("unexpected extra argument"),
            std::string::npos);

  cli::Flags two("t");
  two.positional(2, 2, "<mode> <spec>");
  EXPECT_FALSE(parse(two, {"run"}));
  EXPECT_NE(two.error().find("missing argument"), std::string::npos);
  ASSERT_TRUE(parse(two, {"run", "spec.json"}));
  EXPECT_EQ(two.args(), (std::vector<std::string>{"run", "spec.json"}));
  EXPECT_FALSE(parse(two, {"run", "spec.json", "extra"}));
}

TEST(CliFlags, PositionalsMixWithFlags) {
  bool check = false;
  cli::Flags flags("t");
  flags.flag("check", &check, "").positional(1, 2, "<spec>");
  ASSERT_TRUE(parse(flags, {"a.json", "--check", "b.json"}))
      << flags.error();
  EXPECT_TRUE(check);
  EXPECT_EQ(flags.args(), (std::vector<std::string>{"a.json", "b.json"}));
}

TEST(CliFlags, UsageListsEverything) {
  bool q = false;
  std::string path;
  cli::Flags flags("demo", "does demo things");
  flags.flag("quick", &q, "shrink phases")
      .option("json", &path, "artifact path")
      .positional(1, 1, "<spec.json>");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("usage: demo"), std::string::npos);
  EXPECT_NE(usage.find("does demo things"), std::string::npos);
  EXPECT_NE(usage.find("--quick"), std::string::npos);
  EXPECT_NE(usage.find("--json <string>"), std::string::npos);
  EXPECT_NE(usage.find("<spec.json>"), std::string::npos);
  EXPECT_NE(usage.find("artifact path"), std::string::npos);
}

TEST(CliSplitCsv, Cases) {
  EXPECT_EQ(cli::split_csv(""), (std::vector<std::string>{}));
  EXPECT_EQ(cli::split_csv("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(cli::split_csv("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(cli::split_csv(",a,,b,"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace deepcam
