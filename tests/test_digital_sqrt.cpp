#include "common/digital_sqrt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace deepcam {
namespace {

TEST(DigitalSqrt, SmallValuesExact) {
  EXPECT_EQ(isqrt_nonrestoring(0), 0);
  EXPECT_EQ(isqrt_nonrestoring(1), 1);
  EXPECT_EQ(isqrt_nonrestoring(2), 1);
  EXPECT_EQ(isqrt_nonrestoring(3), 1);
  EXPECT_EQ(isqrt_nonrestoring(4), 2);
  EXPECT_EQ(isqrt_nonrestoring(8), 2);
  EXPECT_EQ(isqrt_nonrestoring(9), 3);
  EXPECT_EQ(isqrt_nonrestoring(15), 3);
  EXPECT_EQ(isqrt_nonrestoring(16), 4);
}

TEST(DigitalSqrt, PerfectSquares) {
  for (std::uint32_t r = 0; r <= 65535; r += 257)
    EXPECT_EQ(isqrt_nonrestoring(r * r), r);
  EXPECT_EQ(isqrt_nonrestoring(65535u * 65535u), 65535u);
}

TEST(DigitalSqrt, MaxInput) {
  EXPECT_EQ(isqrt_nonrestoring(0xFFFFFFFFu), 65535u);
}

TEST(DigitalSqrt, FloorPropertyRandom) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t r = isqrt_nonrestoring(x);
    EXPECT_LE(r * r, static_cast<std::uint64_t>(x));
    EXPECT_GT((r + 1) * (r + 1), static_cast<std::uint64_t>(x));
  }
}

TEST(DigitalSqrt, MatchesLibmFloor) {
  Rng rng(43);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.next());
    const auto expected =
        static_cast<std::uint32_t>(std::floor(std::sqrt(double(x))));
    EXPECT_EQ(isqrt_nonrestoring(x), expected) << x;
  }
}

TEST(FxSqrtQ16, KnownValues) {
  // sqrt over 64-bit integer domain (used at Q32.32 internally).
  EXPECT_EQ(fxsqrt_q16(0), 0u);
  EXPECT_EQ(fxsqrt_q16(1), 1u);
  EXPECT_EQ(fxsqrt_q16(4), 2u);
  EXPECT_EQ(fxsqrt_q16(1ull << 32), 1u << 16);
}

TEST(FxSqrtQ16, FloorProperty) {
  Rng rng(44);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = rng.next() >> 1;  // keep headroom
    const std::uint64_t r = fxsqrt_q16(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(DigitalSqrt, LatencyConstantIsSixteen) {
  // Hardware contract: serial non-restoring sqrt is one cycle per output
  // bit for 32-bit radicands.
  EXPECT_EQ(kCyclesPerSqrt32, 16);
}

}  // namespace
}  // namespace deepcam
