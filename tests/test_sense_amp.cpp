#include "cam/sense_amp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deepcam::cam {
namespace {

TEST(SenseAmp, IdealModeIsExact) {
  SenseAmp sa(SenseAmpConfig{SenseMode::kIdeal, 256, 8});
  for (std::size_t hd : {0u, 1u, 7u, 128u, 512u, 1024u})
    EXPECT_EQ(sa.measure(hd), hd);
}

TEST(SenseAmp, QuantizedModeExactForZeroAndOne) {
  SenseAmp sa(SenseAmpConfig{SenseMode::kQuantized, 256, 8});
  EXPECT_EQ(sa.measure(0), 0u);  // never discharges
  EXPECT_EQ(sa.measure(1), 1u);  // slowest discharge, full window
}

TEST(SenseAmp, QuantizedSmallDistancesExact) {
  // With tau = 256 bins, discharge times for HD <= ~sqrt(tau) fall in
  // distinct, unambiguous bins, so small distances read back exactly.
  SenseAmp sa(SenseAmpConfig{SenseMode::kQuantized, 256, 8});
  for (std::size_t hd = 1; hd <= 15; ++hd)
    EXPECT_EQ(sa.measure(hd), hd) << hd;
}

TEST(SenseAmp, QuantizedErrorGrowsWithDistance) {
  SenseAmp sa(SenseAmpConfig{SenseMode::kQuantized, 256, 8});
  // Large HDs hit the 1-bin floor: everything >= tau reads as tau.
  EXPECT_EQ(sa.measure(256), 256u);
  EXPECT_EQ(sa.measure(1000), 256u);
  // Mid-range error bounded by the hyperbolic bin width.
  for (std::size_t hd = 17; hd <= 255; hd += 7) {
    const double rel_err =
        std::abs(double(sa.measure(hd)) - double(hd)) / double(hd);
    EXPECT_LE(rel_err, 0.5) << hd;
  }
}

TEST(SenseAmp, QuantizedMonotoneNondecreasing) {
  SenseAmp sa(SenseAmpConfig{SenseMode::kQuantized, 256, 8});
  std::size_t prev = 0;
  for (std::size_t hd = 0; hd <= 300; ++hd) {
    const std::size_t m = sa.measure(hd);
    EXPECT_GE(m, prev) << hd;
    prev = m;
  }
}

TEST(SenseAmp, WindowCyclesFromResolution) {
  SenseAmp sa(SenseAmpConfig{SenseMode::kIdeal, 256, 8});
  EXPECT_EQ(sa.window_cycles(), 32u);
  SenseAmp sa2(SenseAmpConfig{SenseMode::kIdeal, 100, 8});
  EXPECT_EQ(sa2.window_cycles(), 13u);  // ceil(100/8)
}

TEST(SenseAmp, HigherResolutionReducesError) {
  SenseAmp coarse(SenseAmpConfig{SenseMode::kQuantized, 64, 8});
  SenseAmp fine(SenseAmpConfig{SenseMode::kQuantized, 1024, 8});
  double err_coarse = 0.0, err_fine = 0.0;
  for (std::size_t hd = 1; hd <= 64; ++hd) {
    err_coarse += std::abs(double(coarse.measure(hd)) - double(hd));
    err_fine += std::abs(double(fine.measure(hd)) - double(hd));
  }
  EXPECT_LE(err_fine, err_coarse);
}

}  // namespace
}  // namespace deepcam::cam
