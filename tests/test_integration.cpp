// Cross-module integration tests: trained LeNet5 through the full DeepCAM
// pipeline, baseline comparisons, and end-to-end report consistency.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/hash_tuner.hpp"
#include "cpu/cpu_model.hpp"
#include "nn/dataset.hpp"
#include "nn/topologies.hpp"
#include "nn/trainer.hpp"
#include "systolic/eyeriss.hpp"

namespace deepcam {
namespace {

/// Shared trained LeNet5 (train once for the whole test binary). Uses the
/// full Fig. 5 recipe: standard training followed by hash-noise-aware
/// fine-tuning, which makes the network robust to DeepCAM's approximate
/// dot-products (see DESIGN.md §5 and EXPERIMENTS.md).
class TrainedLeNet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = nn::make_lenet5(7).release();
    nn::SyntheticDigits train(4000, 100, 0.2);
    nn::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.lr = 0.05f;
    nn::train_sgd(*model_, train, cfg);
    nn::TrainConfig ft = cfg;
    ft.epochs = 6;
    ft.lr = 0.01f;
    ft.noise_scale = 0.05f;
    nn::train_sgd(*model_, train, ft);
    nn::set_training_noise(*model_, 0.0f, 0);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static nn::Model* model_;
};

nn::Model* TrainedLeNet::model_ = nullptr;

TEST_F(TrainedLeNet, SoftwareAccuracyHigh) {
  nn::SyntheticDigits test(150, 101, 0.2);
  EXPECT_GT(nn::evaluate_accuracy(*model_, test), 0.9);
}

TEST_F(TrainedLeNet, DeepCamPreservesAccuracyAtFullHash) {
  // The paper's central claim (Fig. 5): DeepCAM inference accuracy is close
  // to the software baseline when hash lengths are sufficient.
  nn::SyntheticDigits test(60, 102, 0.2);
  core::DeepCamConfig cfg;
  cfg.default_hash_bits = 1024;
  core::DeepCamAccelerator acc(*model_, cfg);
  std::size_t sw = 0, hw = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& s = test.sample(i);
    if (nn::argmax_class(model_->forward(s.image, false)) == s.label) ++sw;
    if (nn::argmax_class(acc.run(s.image)) == s.label) ++hw;
  }
  const double sw_acc = double(sw) / double(test.size());
  const double hw_acc = double(hw) / double(test.size());
  EXPECT_GT(sw_acc, 0.9);
  EXPECT_GT(hw_acc, sw_acc - 0.1);  // within 10 points of baseline
}

TEST_F(TrainedLeNet, VhlTunerKeepsAccuracy) {
  nn::SyntheticDigits probe_set(12, 103, 0.2);
  std::vector<nn::Tensor> probe_inputs;
  for (std::size_t i = 0; i < probe_set.size(); ++i)
    probe_inputs.push_back(probe_set.sample(i).image);

  core::TunerConfig tcfg;
  tcfg.mode = core::TunerMode::kEndToEnd;
  tcfg.min_agreement = 1.0;  // all probes must agree per layer
  tcfg.joint_refine = true;  // repair compound error end-to-end
  const core::TuneResult tuned =
      core::tune_hash_lengths(*model_, probe_inputs, tcfg);

  // VHL must not cost much accuracy versus the max-hash configuration.
  nn::SyntheticDigits test(40, 104, 0.2);
  core::DeepCamConfig vhl;
  vhl.layer_hash_bits = tuned.hash_bits;
  core::DeepCamAccelerator acc(*model_, vhl);
  std::size_t hw = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (nn::argmax_class(acc.run(test.sample(i).image)) ==
        test.sample(i).label)
      ++hw;
  // Compound error across layers costs a few points versus max-hash
  // (the paper's Fig. 5 shows the same DC-slightly-below-BL pattern).
  EXPECT_GT(double(hw) / double(test.size()), 0.75);
  // And VHL should actually choose shorter-than-max hashes somewhere
  // (the paper's whole point — otherwise no energy is saved).
  EXPECT_LT(tuned.mean_hash_bits(), 1024.0);
}

TEST_F(TrainedLeNet, VhlUsesLessEnergyThanMaxHash) {
  nn::SyntheticDigits test(4, 105);
  core::DeepCamConfig max_cfg;
  max_cfg.default_hash_bits = 1024;
  core::DeepCamConfig small_cfg;
  small_cfg.default_hash_bits = 256;
  core::DeepCamAccelerator max_acc(*model_, max_cfg);
  core::DeepCamAccelerator small_acc(*model_, small_cfg);
  core::RunReport rep_max, rep_small;
  max_acc.run(test.sample(0).image, &rep_max);
  small_acc.run(test.sample(0).image, &rep_small);
  EXPECT_LT(rep_small.total_energy(), rep_max.total_energy());
  EXPECT_LT(rep_small.total_cycles(), rep_max.total_cycles());
}

TEST_F(TrainedLeNet, DeepCamBeatsBaselinesInCycles) {
  // Fig. 9's qualitative result on LeNet: DeepCAM (AS) < Eyeriss < CPU.
  nn::SyntheticDigits test(2, 106);
  core::DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.dataflow = core::Dataflow::kActivationStationary;
  cfg.preset = core::CyclePreset::kIdealized;
  core::DeepCamAccelerator acc(*model_, cfg);
  core::RunReport rep;
  acc.run(test.sample(0).image, &rep);

  const auto eyeriss = systolic::simulate_eyeriss(*model_, {1, 1, 28, 28});
  const auto cpu = cpu::simulate_cpu(*model_, {1, 1, 28, 28});

  EXPECT_LT(rep.total_cycles(), eyeriss.total_cycles());
  EXPECT_LT(static_cast<double>(eyeriss.total_cycles()),
            cpu.total_cycles());
}

TEST_F(TrainedLeNet, DeepCamBeatsEyerissInEnergy) {
  nn::SyntheticDigits test(1, 107);
  core::DeepCamConfig cfg;
  cfg.cam_rows = 64;
  core::DeepCamAccelerator acc(*model_, cfg);
  core::RunReport rep;
  acc.run(test.sample(0).image, &rep);
  const auto eyeriss = systolic::simulate_eyeriss(*model_, {1, 1, 28, 28});
  EXPECT_LT(rep.total_energy(), eyeriss.total_energy());
}

TEST(Integration, AgreementImprovesWithHashLength) {
  // Fig. 5 trend on an untrained VGG-style net: agreement with the FP32
  // model increases with homogeneous hash length.
  auto m = nn::make_vgg11(31, 10);
  nn::GaussianTextures data(6, 10, 32);
  std::vector<nn::Tensor> probes;
  for (std::size_t i = 0; i < data.size(); ++i)
    probes.push_back(data.sample(i).image);
  core::DeepCamConfig small;
  small.default_hash_bits = 256;
  core::DeepCamConfig large;
  large.default_hash_bits = 1024;
  const double a_small = core::deepcam_agreement(*m, probes, small);
  const double a_large = core::deepcam_agreement(*m, probes, large);
  EXPECT_GE(a_large, a_small);
  // Untrained nets have no margins, so absolute agreement is modest; it
  // must still clearly beat 10-class chance. (Trained, noise-aware nets
  // reach near-perfect agreement — see TrainedLeNet tests and fig5.)
  EXPECT_GT(a_large, 0.15);
}

TEST(Integration, WorkloadConsistencyAcrossSimulators) {
  // All simulators must agree on the fundamental work (MACs / dot products).
  auto m = nn::make_lenet5(33);
  const auto work = nn::extract_gemm_workload(*m, {1, 1, 28, 28});
  core::DeepCamAccelerator acc(*m, {});
  core::RunReport rep;
  nn::Tensor in({1, 1, 28, 28});
  acc.run(in, &rep);
  ASSERT_EQ(rep.layers.size(), work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    EXPECT_EQ(rep.layers[i].patches, work[i].m);
    EXPECT_EQ(rep.layers[i].kernels, work[i].n);
    EXPECT_EQ(rep.layers[i].context_len, work[i].k);
    EXPECT_EQ(rep.layers[i].plan.dot_products, work[i].m * work[i].n);
  }
}

}  // namespace
}  // namespace deepcam
