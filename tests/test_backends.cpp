// Backend-contract suite: every backend in the default registry must honor
// the PlatformResult contract — nonzero cycles, cost monotonic in batch
// size, per-layer results that sum to the reported totals, sane efficiency
// and throughput — checked generically so a newly registered backend is
// covered without writing a test. Plus adapter-equivalence checks pinning
// the adapters to the native simulators they wrap.
#include "sim/backends.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "cpu/cpu_model.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"
#include "nn/workload.hpp"
#include "sim/comparison.hpp"
#include "sim/registry.hpp"
#include "sim/report_io.hpp"
#include "systolic/eyeriss.hpp"

namespace deepcam::sim {
namespace {

/// Small CNN with conv + pool + two linear layers: enough structure to
/// exercise every adapter without LeNet-scale runtime.
std::unique_ptr<nn::Model> make_tiny_model() {
  auto m = std::make_unique<nn::Model>("tiny");
  m->add(std::make_unique<nn::Conv2D>("conv1",
                                      nn::ConvSpec{1, 4, 3, 3, 1, 0}, 1));
  m->add(std::make_unique<nn::ReLU>("relu1"));
  m->add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  m->add(std::make_unique<nn::Linear>("fc1", 4 * 9, 8, 2));
  m->add(std::make_unique<nn::Linear>("fc2", 8, 3, 3));
  return m;
}

constexpr nn::Shape kTinyShape{1, 1, 8, 8};

class BackendContractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { registry_ = new BackendRegistry(default_registry(/*deepcam_threads=*/2)); }
  static void TearDownTestSuite() {
    delete registry_;
    registry_ = nullptr;
  }
  static BackendRegistry* registry_;
};

BackendRegistry* BackendContractTest::registry_ = nullptr;

TEST_F(BackendContractTest, RegistryNamesUniqueAndComplete) {
  const auto names = registry_->names();
  ASSERT_GE(names.size(), 5u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  }
  for (const char* expected :
       {"deepcam", "eyeriss", "cpu-avx512", "pim-neurosim", "pim-valavi"})
    EXPECT_NE(registry_->find(expected), nullptr) << expected;
  EXPECT_EQ(registry_->find("no-such-backend"), nullptr);
}

TEST_F(BackendContractTest, DuplicateRegistrationRejected) {
  BackendRegistry reg;
  reg.add(std::make_unique<CpuBackend>());
  EXPECT_THROW(reg.add(std::make_unique<CpuBackend>()), Error);
}

TEST_F(BackendContractTest, EveryBackendHonorsTheResultContract) {
  const auto model = make_tiny_model();
  const std::size_t gemm_layers =
      nn::extract_gemm_workload(*model, kTinyShape).size();
  for (const auto& backend : *registry_) {
    SCOPED_TRACE(backend->name());
    const PlatformResult r = backend->simulate(*model, kTinyShape, 1);

    EXPECT_EQ(r.backend, backend->name());
    EXPECT_EQ(r.model, "tiny");
    EXPECT_EQ(r.batch, 1u);
    EXPECT_EQ(r.layers.size(), gemm_layers);

    // Nonzero cycles, everywhere.
    EXPECT_GT(r.total_cycles, 0.0);
    for (const auto& l : r.layers) EXPECT_GT(l.cycles, 0.0) << l.layer_name;

    // Per-layer results sum to the totals the native simulator reported.
    EXPECT_NEAR(r.layer_cycle_sum(), r.total_cycles,
                1e-9 * r.total_cycles);
    if (r.energy_modeled) {
      EXPECT_GT(r.total_energy_j, 0.0);
      EXPECT_NEAR(r.layer_energy_sum(), r.total_energy_j,
                  1e-9 * r.total_energy_j);
    } else {
      EXPECT_EQ(r.total_energy_j, 0.0);
      EXPECT_EQ(r.layer_energy_sum(), 0.0);
    }

    EXPECT_GT(r.total_macs(), 0u);
    EXPECT_GT(r.clock_hz, 0.0);
    EXPECT_GT(r.throughput(), 0.0);
    EXPECT_GE(r.peak_efficiency, 0.0);
    EXPECT_LE(r.peak_efficiency, 1.0);
  }
}

TEST_F(BackendContractTest, CostIsMonotonicInBatchSize) {
  const auto model = make_tiny_model();
  for (const auto& backend : *registry_) {
    SCOPED_TRACE(backend->name());
    double prev_cycles = 0.0;
    double prev_energy = -1.0;
    for (const std::size_t batch : {1, 2, 4}) {
      const PlatformResult r = backend->simulate(*model, kTinyShape, batch);
      EXPECT_GT(r.total_cycles, prev_cycles) << "batch " << batch;
      if (r.energy_modeled)
        EXPECT_GT(r.total_energy_j, prev_energy) << "batch " << batch;
      EXPECT_EQ(r.total_macs(),
                batch * nn::total_macs(*model, kTinyShape));
      prev_cycles = r.total_cycles;
      prev_energy = r.total_energy_j;
    }
  }
}

TEST_F(BackendContractTest, DeepCamAdapterBitwiseEqualsEngine) {
  const auto model = make_tiny_model();
  const DeepCamBackend backend;  // default options
  const PlatformResult r = backend.simulate(*model, kTinyShape, 3);

  const auto compiled = std::make_shared<const core::CompiledModel>(
      *model, backend.options().config);
  core::InferenceEngine engine(compiled, 1);
  core::BatchReport br;
  engine.run_batch(
      make_probe_batch(kTinyShape, 3, backend.options().probe_seed), &br);

  EXPECT_EQ(r.total_cycles,
            static_cast<double>(br.aggregate.total_cycles()));
  EXPECT_EQ(r.total_energy_j, br.aggregate.total_energy());
  EXPECT_EQ(r.extra_cycles,
            static_cast<double>(br.aggregate.peripheral_cycles));
  ASSERT_EQ(r.layers.size(), br.aggregate.layers.size());
  for (std::size_t i = 0; i < r.layers.size(); ++i) {
    EXPECT_EQ(r.layers[i].cycles,
              static_cast<double>(br.aggregate.layers[i].cycles));
    EXPECT_EQ(r.layers[i].energy_j, br.aggregate.layers[i].total_energy());
  }
}

TEST_F(BackendContractTest, CpuAdapterMatchesNativeSimulatorAndClock) {
  const auto model = make_tiny_model();
  const auto native = cpu::simulate_cpu(*model, kTinyShape);
  const CpuBackend backend;
  const PlatformResult r = backend.simulate(*model, kTinyShape, 1);
  EXPECT_DOUBLE_EQ(r.total_cycles, native.total_cycles());
  EXPECT_DOUBLE_EQ(r.peak_efficiency, native.mean_efficiency());
  // The adapter's seconds (cycles at clock_hz) must agree with the native
  // model's own Skylake-clock conversion — the CPU must not be costed at
  // the 300 MHz ASIC clock.
  EXPECT_DOUBLE_EQ(r.seconds(), native.total_seconds());
  EXPECT_FALSE(r.energy_modeled);
}

TEST_F(BackendContractTest, EyerissAdapterMatchesNativeSimulator) {
  const auto model = make_tiny_model();
  const auto native = systolic::simulate_eyeriss(*model, kTinyShape);
  const EyerissBackend backend;
  const PlatformResult r = backend.simulate(*model, kTinyShape, 2);
  EXPECT_EQ(r.total_cycles, 2.0 * static_cast<double>(native.total_cycles()));
  EXPECT_DOUBLE_EQ(r.total_energy_j, 2.0 * native.total_energy());
  EXPECT_DOUBLE_EQ(r.peak_efficiency, native.mean_utilization());
}

TEST_F(BackendContractTest, ComparisonRunnerCoversEveryCell) {
  ComparisonOptions opts;
  opts.include_vhl_deepcam = true;
  opts.vhl_probes = 2;
  opts.deepcam_threads = 2;
  const ComparisonRunner runner(*registry_, opts);
  const ComparisonReport report =
      runner.run({{"lenet5", /*seed=*/1, /*batch_sizes=*/{1, 2}}});

  // Every backend plus the vhl variant, at both batch sizes.
  ASSERT_EQ(report.rows.size(), (registry_->size() + 1) * 2);
  for (const std::size_t batch : {1, 2}) {
    const auto ranked = report.ranked_by_cycles("lenet5", batch);
    ASSERT_EQ(ranked.size(), registry_->size() + 1);
    for (std::size_t i = 1; i < ranked.size(); ++i)
      EXPECT_LE(ranked[i - 1]->total_cycles, ranked[i]->total_cycles);
    const auto by_energy = report.ranked_by_energy("lenet5", batch);
    EXPECT_EQ(by_energy.back()->backend, "cpu-avx512");  // unmodeled last
  }
  EXPECT_EQ(report.cells().size(), 2u);

  // Serializers cover every row.
  const std::string csv = comparison_to_csv(report);
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1 + report.rows.size());
  const std::string summary = comparison_summary(report);
  for (const auto& name : registry_->names())
    EXPECT_NE(summary.find(name), std::string::npos) << name;
}

}  // namespace
}  // namespace deepcam::sim
