#include "core/report_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"

namespace deepcam::core {
namespace {

RunReport make_report() {
  nn::Model m("tiny");
  m.add(std::make_unique<nn::Conv2D>("conv1", nn::ConvSpec{1, 4, 3, 3, 1, 0},
                                     1));
  m.add(std::make_unique<nn::ReLU>("r"));
  m.add(std::make_unique<nn::Flatten>("f"));
  m.add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 2));
  DeepCamAccelerator acc(m, {});
  RunReport rep;
  nn::Tensor in({1, 1, 8, 8});
  in.fill(0.5f);
  acc.run(in, &rep);
  return rep;
}

TEST(ReportIo, CsvHasHeaderAndOneRowPerLayer) {
  const RunReport rep = make_report();
  const std::string csv = report_to_csv(rep);
  std::istringstream is(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 1 + rep.layers.size());
  EXPECT_NE(csv.find("layer,patches,kernels"), std::string::npos);
  EXPECT_NE(csv.find("conv1,36,4,9,1024"), std::string::npos);
  EXPECT_NE(csv.find("fc,1,5,144,1024"), std::string::npos);
}

TEST(ReportIo, CsvFieldCountConsistent) {
  const std::string csv = report_to_csv(make_report());
  std::istringstream is(csv);
  std::string line;
  std::size_t expected = 0;
  while (std::getline(is, line)) {
    const std::size_t commas =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
    if (expected == 0)
      expected = commas;
    else
      EXPECT_EQ(commas, expected) << line;
  }
  EXPECT_EQ(expected, 13u);
}

TEST(ReportIo, SummaryMentionsTotalsAndLayers) {
  const RunReport rep = make_report();
  const std::string s = report_summary(rep);
  EXPECT_NE(s.find("DeepCAM run: 2 CAM layers"), std::string::npos);
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("fc"), std::string::npos);
  EXPECT_NE(s.find("uJ"), std::string::npos);
}

TEST(ReportIo, EmptyReportSafe) {
  RunReport rep;
  EXPECT_NO_THROW(report_to_csv(rep));
  EXPECT_NO_THROW(report_summary(rep));
}

}  // namespace
}  // namespace deepcam::core
