#include "core/accelerator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam::core {
namespace {

/// Small conv+fc model used across the accelerator tests.
std::unique_ptr<nn::Model> tiny_cnn(std::uint64_t seed) {
  auto m = std::make_unique<nn::Model>("tiny_cnn");
  m->add(std::make_unique<nn::Conv2D>("conv1",
                                      nn::ConvSpec{1, 4, 3, 3, 1, 0}, seed));
  m->add(std::make_unique<nn::ReLU>("relu1"));
  m->add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 3 * 3, 5, seed + 1));
  return m;
}

nn::Tensor random_image(nn::Shape s, std::uint64_t seed) {
  deepcam::Rng rng(seed);
  nn::Tensor t(s);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  return t;
}

TEST(Accelerator, IdentifiesCamLayers) {
  auto m = tiny_cnn(1);
  DeepCamAccelerator acc(*m, {});
  EXPECT_EQ(acc.cam_layer_count(), 2u);
  const auto names = acc.cam_layer_names();
  EXPECT_EQ(names[0], "conv1");
  EXPECT_EQ(names[1], "fc");
  EXPECT_EQ(acc.context_len(0), 9u);
  EXPECT_EQ(acc.context_len(1), 36u);
}

TEST(Accelerator, OutputShapeMatchesModel) {
  auto m = tiny_cnn(2);
  DeepCamAccelerator acc(*m, {});
  const auto in = random_image({1, 1, 8, 8}, 3);
  const nn::Tensor ref = m->forward(in, false);
  const nn::Tensor out = acc.run(in);
  EXPECT_TRUE(out.shape() == ref.shape());
}

TEST(Accelerator, ApproximatesExactForwardAtFullHash) {
  auto m = tiny_cnn(4);
  DeepCamConfig cfg;
  cfg.default_hash_bits = 1024;
  DeepCamAccelerator acc(*m, cfg);
  const auto in = random_image({1, 1, 8, 8}, 5);
  const nn::Tensor ref = m->forward(in, false);
  const nn::Tensor out = acc.run(in);
  // Outputs should correlate strongly with the exact forward (the whole
  // point of the approximate dot-product).
  double num = 0.0, dref = 0.0, dout = 0.0;
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    num += double(ref[i]) * out[i];
    dref += double(ref[i]) * ref[i];
    dout += double(out[i]) * out[i];
  }
  const double corr = num / (std::sqrt(dref * dout) + 1e-30);
  EXPECT_GT(corr, 0.9);
}

TEST(Accelerator, DataflowsAreFunctionallyIdentical) {
  // WS and AS visit the same (kernel, patch) pairs; outputs must be equal.
  auto m = tiny_cnn(6);
  const auto in = random_image({1, 1, 8, 8}, 7);
  DeepCamConfig ws;
  ws.dataflow = Dataflow::kWeightStationary;
  DeepCamConfig as;
  as.dataflow = Dataflow::kActivationStationary;
  DeepCamAccelerator acc_ws(*m, ws);
  DeepCamAccelerator acc_as(*m, as);
  const nn::Tensor o1 = acc_ws.run(in);
  const nn::Tensor o2 = acc_as.run(in);
  ASSERT_TRUE(o1.shape() == o2.shape());
  for (std::size_t i = 0; i < o1.numel(); ++i) EXPECT_FLOAT_EQ(o1[i], o2[i]);
}

TEST(Accelerator, ReportCountsConsistent) {
  auto m = tiny_cnn(8);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  DeepCamAccelerator acc(*m, cfg);
  RunReport rep;
  acc.run(random_image({1, 1, 8, 8}, 9), &rep);
  ASSERT_EQ(rep.layers.size(), 2u);
  // conv1 on 8x8 input: 36 patches, 4 kernels.
  EXPECT_EQ(rep.layers[0].patches, 36u);
  EXPECT_EQ(rep.layers[0].kernels, 4u);
  EXPECT_EQ(rep.layers[0].plan.dot_products, 144u);
  // fc: one patch, 5 kernels.
  EXPECT_EQ(rep.layers[1].patches, 1u);
  EXPECT_EQ(rep.layers[1].kernels, 5u);
  EXPECT_GT(rep.total_cycles(), 0u);
  EXPECT_GT(rep.total_energy(), 0.0);
  EXPECT_GT(rep.cam_area_um2, 0.0);
  EXPECT_EQ(rep.total_dot_products(), 144u + 5u);
  EXPECT_GT(rep.time_seconds(), 0.0);
}

TEST(Accelerator, IdealizedPresetFasterThanConservative) {
  auto m = tiny_cnn(10);
  DeepCamConfig cons;
  cons.preset = CyclePreset::kConservative;
  DeepCamConfig ideal;
  ideal.preset = CyclePreset::kIdealized;
  DeepCamAccelerator a(*m, cons), b(*m, ideal);
  RunReport ra, rb;
  const auto in = random_image({1, 1, 8, 8}, 11);
  a.run(in, &ra);
  b.run(in, &rb);
  EXPECT_GT(ra.total_cycles(), rb.total_cycles());
  // Searches identical: the preset changes time, not work.
  EXPECT_EQ(ra.total_searches(), rb.total_searches());
}

TEST(Accelerator, PerLayerHashLengthsHonored) {
  auto m = tiny_cnn(12);
  DeepCamConfig cfg;
  cfg.layer_hash_bits = {256, 768};
  DeepCamAccelerator acc(*m, cfg);
  RunReport rep;
  acc.run(random_image({1, 1, 8, 8}, 13), &rep);
  EXPECT_EQ(rep.layers[0].hash_bits, 256u);
  EXPECT_EQ(rep.layers[1].hash_bits, 768u);
}

TEST(Accelerator, HashLengthArityChecked) {
  auto m = tiny_cnn(14);
  DeepCamConfig cfg;
  cfg.layer_hash_bits = {256};  // model has 2 CAM layers
  EXPECT_THROW(DeepCamAccelerator(*m, cfg), deepcam::Error);
}

TEST(Accelerator, LongerHashReducesOutputError) {
  auto m = tiny_cnn(16);
  const auto in = random_image({1, 1, 8, 8}, 17);
  const nn::Tensor ref = m->forward(in, false);
  auto mse_at = [&](std::size_t k) {
    DeepCamConfig cfg;
    cfg.default_hash_bits = k;
    // Disable the two other error sources to isolate hash length.
    cfg.postproc.use_pwl_cosine = false;
    cfg.postproc.minifloat_norms = false;
    DeepCamAccelerator acc(*m, cfg);
    const nn::Tensor out = acc.run(in);
    double s = 0.0;
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      const double d = out[i] - ref[i];
      s += d * d;
    }
    return s;
  };
  // Average over nothing (deterministic hashes) but compare extremes; 1024
  // bits should beat 256 bits on this well-conditioned workload.
  EXPECT_LT(mse_at(1024), mse_at(256));
}

TEST(Accelerator, MoreRowsFewerCycles) {
  auto m = nn::make_lenet5(18);
  const auto in = random_image({1, 1, 28, 28}, 19);
  std::size_t prev = SIZE_MAX;
  for (std::size_t rows : {64u, 256u}) {
    DeepCamConfig cfg;
    cfg.cam_rows = rows;
    cfg.dataflow = Dataflow::kActivationStationary;
    DeepCamAccelerator acc(*m, cfg);
    RunReport rep;
    acc.run(in, &rep);
    EXPECT_LT(rep.total_cycles(), prev);
    prev = rep.total_cycles();
  }
}

TEST(Accelerator, BatchInputRejected) {
  auto m = tiny_cnn(20);
  DeepCamAccelerator acc(*m, {});
  nn::Tensor batch({2, 1, 8, 8});
  EXPECT_THROW(acc.run(batch), deepcam::Error);
}

TEST(Accelerator, ResNetGraphRuns) {
  auto m = nn::make_resnet18(22, 100);
  DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.default_hash_bits = 256;  // keep the test quick
  DeepCamAccelerator acc(*m, cfg);
  RunReport rep;
  const nn::Tensor out = acc.run(random_image({1, 3, 32, 32}, 23), &rep);
  EXPECT_EQ(out.shape().c, 100u);
  EXPECT_EQ(rep.layers.size(), 21u);  // every conv + fc went through the CAM
}

TEST(Accelerator, UtilizationMatchesPlanForLenet) {
  auto m = nn::make_lenet5(24);
  DeepCamConfig ws;
  ws.dataflow = Dataflow::kWeightStationary;
  ws.cam_rows = 64;
  DeepCamAccelerator acc(*m, ws);
  RunReport rep;
  acc.run(random_image({1, 1, 28, 28}, 25), &rep);
  // conv1 has 6 kernels on 64 rows: utilization 9.4% (paper's example).
  EXPECT_NEAR(rep.layers[0].plan.utilization, 6.0 / 64.0, 1e-9);
}

}  // namespace
}  // namespace deepcam::core
