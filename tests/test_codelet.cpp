// Property tests for the SIMD codelet layer (src/codelet/).
//
// The scalar codelet is the bitwise oracle: every ISA table that is both
// compiled into this binary and executable on the host CPU must reproduce it
// bit for bit — Hamming counts exactly, projection floats byte-identical
// (unfused mul+add, ascending-i order), sign packing identical including
// NaN / ±0 / denormal edge cases. Word-boundary hash lengths (63/64/65) and
// unaligned row/column/patch counts are swept explicitly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "codelet/codelet.hpp"

namespace {

using deepcam::codelet::Isa;
using deepcam::codelet::Kernels;

/// All ISA tables reachable on this host (compiled in + CPU-supported).
/// Always contains at least kScalar.
std::vector<Isa> reachable_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512})
    if (deepcam::codelet::kernels_for(isa) != nullptr &&
        deepcam::codelet::isa_supported(isa))
      out.push_back(isa);
  return out;
}

const Kernels& scalar() {
  return *deepcam::codelet::kernels_for(Isa::kScalar);
}

/// Floats that stress rounding / compare edge cases: ±0, denormals, values
/// near the float mantissa boundary, huge magnitudes, and plain randoms.
std::vector<float> edge_floats(std::size_t n, std::mt19937& rng) {
  static const float specials[] = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),
      -std::numeric_limits<float>::min(),
      1.0f + std::numeric_limits<float>::epsilon(),
      16777215.0f,  // 2^24 - 1: last exactly-representable odd integer
      -16777216.0f,
      3.4e38f,
      -3.4e38f,
  };
  std::uniform_real_distribution<float> uni(-4.0f, 4.0f);
  std::uniform_int_distribution<int> pick(0, 7);
  std::vector<float> v(n);
  for (auto& x : v)
    x = pick(rng) == 0 ? specials[rng() % std::size(specials)] : uni(rng);
  return v;
}

TEST(Codelet, ScalarAlwaysReachable) {
  const auto isas = reachable_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  EXPECT_TRUE(deepcam::codelet::isa_supported(Isa::kScalar));
}

TEST(Codelet, IsaNames) {
  EXPECT_STREQ(deepcam::codelet::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(deepcam::codelet::isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(deepcam::codelet::isa_name(Isa::kAvx512), "avx512");
}

TEST(Codelet, ForcedIsaIsActive) {
  // CI runs the whole suite under DEEPCAM_FORCE_ISA=scalar; this assertion
  // is what makes that run meaningful (the forced table really is active).
  const char* forced = std::getenv("DEEPCAM_FORCE_ISA");
  const Isa active = deepcam::codelet::active_isa();
  if (forced == nullptr || forced[0] == '\0' ||
      std::strcmp(forced, "native") == 0) {
    EXPECT_EQ(active, deepcam::codelet::best_supported_isa());
  } else {
    EXPECT_STREQ(deepcam::codelet::isa_name(active), forced);
  }
  EXPECT_EQ(&deepcam::codelet::kernels(),
            deepcam::codelet::kernels_for(active));
}

TEST(Codelet, HammingPrefixEveryLengthMatchesScalar) {
  std::mt19937_64 rng(7);
  constexpr std::size_t kWords = 17;  // covers k up to 1025 with headroom
  std::uint64_t a[kWords], b[kWords];
  for (std::size_t i = 0; i < kWords; ++i) {
    a[i] = rng();
    b[i] = rng();
  }
  for (Isa isa : reachable_isas()) {
    const Kernels& k = *deepcam::codelet::kernels_for(isa);
    for (std::size_t bits = 0; bits <= 1025; ++bits)
      ASSERT_EQ(k.hamming_prefix(a, b, bits),
                scalar().hamming_prefix(a, b, bits))
          << deepcam::codelet::isa_name(isa) << " k=" << bits;
  }
}

TEST(Codelet, HammingPrefixExtremes) {
  std::uint64_t zero[17] = {};
  std::uint64_t ones[17];
  std::memset(ones, 0xff, sizeof(ones));
  for (Isa isa : reachable_isas()) {
    const Kernels& k = *deepcam::codelet::kernels_for(isa);
    for (std::size_t bits : {0u, 1u, 63u, 64u, 65u, 511u, 512u, 1024u}) {
      EXPECT_EQ(k.hamming_prefix(zero, ones, bits), bits);
      EXPECT_EQ(k.hamming_prefix(ones, ones, bits), 0u);
      EXPECT_EQ(k.hamming_prefix(zero, zero, bits), 0u);
    }
  }
}

TEST(Codelet, HammingManyStridedArenaMatchesScalar) {
  std::mt19937_64 rng(11);
  constexpr std::size_t kStride = 19;  // words; > 16 so k=1024 rows fit
  for (std::size_t rows : {0u, 1u, 2u, 7u, 33u}) {
    std::vector<std::uint64_t> arena(rows * kStride + 1);
    for (auto& w : arena) w = rng();
    std::uint64_t query[kStride];
    for (auto& w : query) w = rng();
    for (std::size_t k : {63u, 64u, 65u, 256u, 1023u, 1024u}) {
      std::vector<std::uint16_t> want(rows, 0xbeef), got(rows, 0xbeef);
      scalar().hamming_many(query, arena.data(), kStride, rows, k,
                            want.data());
      for (Isa isa : reachable_isas()) {
        std::fill(got.begin(), got.end(), 0xbeef);
        deepcam::codelet::kernels_for(isa)->hamming_many(
            query, arena.data(), kStride, rows, k, got.data());
        ASSERT_EQ(got, want)
            << deepcam::codelet::isa_name(isa) << " rows=" << rows
            << " k=" << k;
      }
    }
  }
}

TEST(Codelet, ProjectColsBitwiseMatchesScalar) {
  std::mt19937 rng(23);
  // Sweep counts (register-tile vs blocked path, partial patch blocks),
  // column counts (vector body vs scalar tails), and input dims.
  const std::size_t counts[] = {1, 2, 7, 8, 9, 33};
  const std::size_t ncols_list[] = {1, 7, 8, 63, 64, 65, 256};
  const std::size_t dims[] = {1, 5, 37};
  for (std::size_t count : counts) {
    for (std::size_t ncols : ncols_list) {
      for (std::size_t dim : dims) {
        const std::size_t c_stride = ncols + 3;  // strided C, like prefixes
        const auto xs = edge_floats(count * dim, rng);
        const auto c = edge_floats(dim * c_stride, rng);
        std::vector<float> want(count * ncols, -1.0f);
        std::vector<float> got(count * ncols, -1.0f);
        scalar().project_cols(xs.data(), c.data(), count, dim, c_stride,
                              ncols, want.data());
        for (Isa isa : reachable_isas()) {
          std::fill(got.begin(), got.end(), -1.0f);
          deepcam::codelet::kernels_for(isa)->project_cols(
              xs.data(), c.data(), count, dim, c_stride, ncols, got.data());
          ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                got.size() * sizeof(float)),
                    0)
              << deepcam::codelet::isa_name(isa) << " count=" << count
              << " ncols=" << ncols << " dim=" << dim;
        }
      }
    }
  }
}

TEST(Codelet, PackSignsEdgeValuesMatchScalar) {
  std::mt19937 rng(31);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {0.0f,
                            -0.0f,
                            nan,
                            -nan,
                            inf,
                            -inf,
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min()};
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 130; ++n) sizes.push_back(n);
  sizes.push_back(1024);
  for (std::size_t nbits : sizes) {
    std::vector<float> proj(nbits);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    std::uniform_int_distribution<int> pick(0, 3);
    for (auto& x : proj)
      x = pick(rng) == 0 ? specials[rng() % std::size(specials)] : uni(rng);
    const std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> want(nwords + 1, 0xabababababababab);
    scalar().pack_signs(proj.data(), nbits, want.data());
    // Scalar semantics check: bit j set iff proj[j] >= 0 (so +0/-0 -> 1,
    // NaN -> 0).
    for (std::size_t j = 0; j < nbits; ++j)
      ASSERT_EQ((want[j / 64] >> (j % 64)) & 1, proj[j] >= 0.0f ? 1u : 0u);
    for (Isa isa : reachable_isas()) {
      std::vector<std::uint64_t> got(nwords + 1, 0xabababababababab);
      deepcam::codelet::kernels_for(isa)->pack_signs(proj.data(), nbits,
                                                     got.data());
      ASSERT_EQ(got, want)
          << deepcam::codelet::isa_name(isa) << " nbits=" << nbits;
    }
  }
}

}  // namespace
