#include "nn/imprint.hpp"

#include <gtest/gtest.h>

#include "nn/conv2d.hpp"
#include "nn/dataset.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam::nn {
namespace {

TEST(Imprint, NearestPrototypeClassifierIsAccurate) {
  // A random conv feature extractor plus imprinted head classifies the
  // Gaussian textures far above chance.
  auto m = std::make_unique<Model>("tiny");
  m->add(std::make_unique<Conv2D>("c", ConvSpec{3, 8, 3, 3, 1, 1}, 1));
  m->add(std::make_unique<ReLU>("r"));
  m->add(std::make_unique<MaxPool>("p", 4, 4));
  m->add(std::make_unique<Flatten>("f"));
  m->add(std::make_unique<Linear>("fc", 8 * 8 * 8, 10, 2));

  GaussianTextures data(60, 10, 3, /*noise=*/0.4);
  std::vector<Tensor> protos;
  for (std::size_t c = 0; c < 10; ++c) protos.push_back(data.prototype(c));
  imprint_classifier(*m, protos);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (argmax_class(m->forward(data.sample(i).image, false)) ==
        data.sample(i).label)
      ++correct;
  EXPECT_GT(double(correct) / double(data.size()), 0.7);  // chance = 0.1
}

TEST(Imprint, PrototypeScoresItselfHighest) {
  auto m = std::make_unique<Model>("mlp");
  m->add(std::make_unique<Flatten>("f"));
  m->add(std::make_unique<Linear>("fc", 3 * 32 * 32, 5, 4));
  GaussianTextures data(5, 5, 5, 0.4);
  std::vector<Tensor> protos;
  for (std::size_t c = 0; c < 5; ++c) protos.push_back(data.prototype(c));
  imprint_classifier(*m, protos);
  for (std::size_t c = 0; c < 5; ++c)
    EXPECT_EQ(argmax_class(m->forward(protos[c], false)), c) << c;
}

TEST(Imprint, WeightRowsAreUnitNorm) {
  auto m = std::make_unique<Model>("mlp");
  m->add(std::make_unique<Flatten>("f"));
  m->add(std::make_unique<Linear>("fc", 3 * 32 * 32, 4, 6));
  GaussianTextures data(4, 4, 7, 0.4);
  std::vector<Tensor> protos;
  for (std::size_t c = 0; c < 4; ++c) protos.push_back(data.prototype(c));
  imprint_classifier(*m, protos);
  auto& fc = static_cast<Linear&>(m->layer(1));
  for (std::size_t c = 0; c < 4; ++c) {
    double ss = 0.0;
    for (std::size_t i = 0; i < fc.in_features(); ++i) {
      const double w = fc.weights()[c * fc.in_features() + i];
      ss += w * w;
    }
    EXPECT_NEAR(ss, 1.0, 1e-4);
    EXPECT_EQ(fc.bias()[c], 0.0f);
  }
}

TEST(Imprint, ArityChecks) {
  auto m = std::make_unique<Model>("mlp");
  m->add(std::make_unique<Flatten>("f"));
  m->add(std::make_unique<Linear>("fc", 12, 3, 8));
  std::vector<Tensor> wrong_count(2, Tensor({1, 3, 2, 2}));
  EXPECT_THROW(imprint_classifier(*m, wrong_count), Error);
  Model no_fc("conv_only");
  no_fc.add(std::make_unique<Conv2D>("c", ConvSpec{1, 1, 1, 1, 1, 0}, 9));
  std::vector<Tensor> one(1, Tensor({1, 1, 2, 2}));
  EXPECT_THROW(imprint_classifier(no_fc, one), Error);
}

TEST(Imprint, ResNet18HeadImprintsAndClassifies) {
  auto m = make_resnet18(10, 20);  // 20 classes to keep it quick
  GaussianTextures data(10, 20, 11, 0.3);
  std::vector<Tensor> protos;
  for (std::size_t c = 0; c < 20; ++c) protos.push_back(data.prototype(c));
  imprint_classifier(*m, protos);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (argmax_class(m->forward(data.sample(i).image, false)) ==
        data.sample(i).label)
      ++correct;
  EXPECT_GT(double(correct) / double(data.size()), 0.5);  // chance = 0.05
}

}  // namespace
}  // namespace deepcam::nn
