#include "common/minifloat.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deepcam {
namespace {

TEST(MiniFloat, ZeroRoundTrips) {
  EXPECT_EQ(MiniFloat::decode(MiniFloat::encode(0.0f)), 0.0f);
  EXPECT_EQ(MiniFloat::decode(MiniFloat::encode(-0.0f)), -0.0f);
}

TEST(MiniFloat, ExactValuesRoundTrip) {
  // Powers of two and values with <=3 mantissa bits are exactly
  // representable within the normal range.
  for (float v : {1.0f, 2.0f, 0.5f, 0.25f, 1.5f, 1.25f, 1.125f, 3.0f, 96.0f,
                  448.0f, 0.015625f}) {
    EXPECT_EQ(MiniFloat::quantize(v), v) << v;
    EXPECT_EQ(MiniFloat::quantize(-v), -v) << -v;
  }
}

TEST(MiniFloat, MaxValue) {
  EXPECT_EQ(MiniFloat::quantize(MiniFloat::kMax), MiniFloat::kMax);
  // Values above max saturate to max.
  EXPECT_EQ(MiniFloat::quantize(1e6f), MiniFloat::kMax);
  EXPECT_EQ(MiniFloat::quantize(-1e6f), -MiniFloat::kMax);
}

TEST(MiniFloat, SubnormalsRepresentable) {
  EXPECT_EQ(MiniFloat::quantize(MiniFloat::kMinSubnormal),
            MiniFloat::kMinSubnormal);
  // Half the min subnormal underflows to zero (round to nearest even).
  EXPECT_EQ(MiniFloat::quantize(MiniFloat::kMinSubnormal * 0.49f), 0.0f);
}

TEST(MiniFloat, RelativeErrorBoundedForNormals) {
  // E4M3 has 3 mantissa bits: relative error <= 2^-4 = 6.25% for normals.
  for (float v = 0.02f; v < 400.0f; v *= 1.17f) {
    const float q = MiniFloat::quantize(v);
    EXPECT_NEAR(q, v, v * 0.0625f) << v;
  }
}

TEST(MiniFloat, MonotoneNondecreasing) {
  float prev = MiniFloat::quantize(0.0f);
  for (float v = 0.0f; v < 500.0f; v += 0.37f) {
    const float q = MiniFloat::quantize(v);
    EXPECT_GE(q, prev) << "at " << v;
    prev = q;
  }
}

TEST(MiniFloat, AllCodesDecodeEncodeStable) {
  // decode(encode(decode(c))) == decode(c): every representable value is a
  // fixed point of quantization.
  for (int c = 0; c < 256; ++c) {
    const float v = MiniFloat::decode(static_cast<std::uint8_t>(c));
    EXPECT_EQ(MiniFloat::quantize(v), v) << "code=" << c;
  }
}

TEST(MiniFloat, SignHandling) {
  EXPECT_LT(MiniFloat::decode(MiniFloat::encode(-2.0f)), 0.0f);
  EXPECT_GT(MiniFloat::decode(MiniFloat::encode(2.0f)), 0.0f);
}

TEST(MiniFloat, NanMapsToZeroMagnitude) {
  EXPECT_EQ(MiniFloat::decode(MiniFloat::encode(std::nanf(""))), 0.0f);
}

TEST(MiniFloat, RoundToNearest) {
  // Between 1.0 and 1.125 the midpoint 1.0625 rounds to even (1.0).
  EXPECT_EQ(MiniFloat::quantize(1.0624f), 1.0f);
  EXPECT_EQ(MiniFloat::quantize(1.0626f), 1.125f);
}

class MiniFloatSweep : public ::testing::TestWithParam<float> {};

TEST_P(MiniFloatSweep, QuantizeIsIdempotent) {
  const float v = GetParam();
  const float q1 = MiniFloat::quantize(v);
  const float q2 = MiniFloat::quantize(q1);
  EXPECT_EQ(q1, q2);
}

INSTANTIATE_TEST_SUITE_P(Values, MiniFloatSweep,
                         ::testing::Values(0.001f, 0.013f, 0.17f, 0.9f, 1.1f,
                                           7.3f, 42.0f, 100.5f, 479.0f,
                                           481.0f, -3.7f, -0.002f));

}  // namespace
}  // namespace deepcam
