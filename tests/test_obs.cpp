// Observability layer tests: TraceRecorder arming/levels/overflow, span
// RAII + identity fields, injectable clock determinism, canonical export
// (Chrome JSON parses; byte-stable across shuffles), stage aggregation,
// and the Prometheus exposition format of MetricsRegistry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace deepcam::obs {
namespace {

/// Deterministic injectable clock: every now() call returns the next
/// multiple of the step, so span begin/end stamps are predictable.
struct FakeClock {
  std::uint64_t next = 0;
  std::uint64_t step = 100;
};

std::uint64_t fake_now(const void* ctx) {
  auto* clock = const_cast<FakeClock*>(static_cast<const FakeClock*>(ctx));
  clock->next += clock->step;
  return clock->next;
}

/// Every test runs against the process-global recorder, so each one starts
/// and ends disabled, cleared, and on the default clock.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    auto& rec = TraceRecorder::instance();
    rec.set_level(TraceLevel::kOff);
    rec.set_clock(nullptr, nullptr);
    rec.clear();
  }
};

TEST_F(TraceTest, DisabledRecorderCapturesNothing) {
  {
    Span sp(TraceLevel::kServe, SpanCat::kQueue, "queue_wait");
    sp.rid(1).session(2);
    EXPECT_FALSE(sp.active());
  }
  instant(TraceLevel::kServe, SpanCat::kAdmission, "admit");
  EXPECT_TRUE(TraceRecorder::instance().collect().empty());
  EXPECT_EQ(TraceRecorder::instance().dropped(), 0u);
}

TEST_F(TraceTest, LevelGatesKernelSpans) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  { Span sp(TraceLevel::kServe, SpanCat::kDispatch, "dispatch"); }
  { Span sp(TraceLevel::kFull, SpanCat::kKernel, "hash"); }  // too fine
  auto spans = rec.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "dispatch");

  rec.set_level(TraceLevel::kFull);
  { Span sp(TraceLevel::kFull, SpanCat::kKernel, "hash"); }
  EXPECT_EQ(rec.collect().size(), 2u);
}

TEST_F(TraceTest, SpanCarriesIdentityAndClockStamps) {
  auto& rec = TraceRecorder::instance();
  FakeClock clock;
  rec.set_clock(&fake_now, &clock);
  rec.set_level(TraceLevel::kServe);
  {
    Span sp(TraceLevel::kServe, SpanCat::kRoute, "pick");
    sp.rid(7).session(1).slo(2).replica(3).batch(4).value(5);
  }
  auto spans = rec.collect();
  ASSERT_EQ(spans.size(), 1u);
  const SpanRecord& r = spans[0];
  EXPECT_EQ(r.t_begin_ns, 100u);
  EXPECT_EQ(r.t_end_ns, 200u);
  EXPECT_EQ(r.rid, 7u);
  EXPECT_EQ(r.session, 1u);
  EXPECT_EQ(r.slo, 2u);
  EXPECT_EQ(r.replica, 3u);
  EXPECT_EQ(r.batch, 4u);
  EXPECT_EQ(r.value, 5u);
  EXPECT_EQ(r.cat, SpanCat::kRoute);
}

TEST_F(TraceTest, MovedFromSpanDoesNotDoubleCommit) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  {
    Span a(TraceLevel::kServe, SpanCat::kBatch, "form");
    Span b(std::move(a));
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
  }  // only b commits
  EXPECT_EQ(rec.collect().size(), 1u);
}

TEST_F(TraceTest, FinishIsIdempotent) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  {
    Span sp(TraceLevel::kServe, SpanCat::kComplete, "done");
    sp.finish();
    sp.finish();
  }  // destructor after finish(): still one record
  EXPECT_EQ(rec.collect().size(), 1u);
}

TEST_F(TraceTest, ClearDiscardsAndRecordingResumes) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  instant(TraceLevel::kServe, SpanCat::kChaos, "crash");
  EXPECT_EQ(rec.collect().size(), 1u);
  rec.clear();
  EXPECT_TRUE(rec.collect().empty());
  instant(TraceLevel::kServe, SpanCat::kChaos, "heal");
  auto spans = rec.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "heal");
}

TEST_F(TraceTest, OverflowDropsAndCounts) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  SpanRecord r;
  r.t_begin_ns = 1;
  r.t_end_ns = 2;
  r.name = "spam";
  const std::size_t total = TraceRecorder::kRingCapacity + 64;
  for (std::size_t i = 0; i < total; ++i)
    emit(TraceLevel::kServe, r);
  EXPECT_EQ(rec.collect().size(), TraceRecorder::kRingCapacity);
  EXPECT_EQ(rec.dropped(), 64u);
  rec.clear();  // drop counter resets with the spans
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST_F(TraceTest, ScopedTraceTagNestsAndRestores) {
  EXPECT_EQ(current_trace_tag().tag, kNoId);
  {
    ScopedTraceTag outer({42, 0});
    EXPECT_EQ(current_trace_tag().tag, 42u);
    {
      ScopedTraceTag inner({43, 7});
      EXPECT_EQ(current_trace_tag().tag, 43u);
      EXPECT_EQ(current_trace_tag().sample, 7u);
    }
    EXPECT_EQ(current_trace_tag().tag, 42u);
  }
  EXPECT_EQ(current_trace_tag().tag, kNoId);
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothingUnderCapacity) {
  auto& rec = TraceRecorder::instance();
  rec.set_level(TraceLevel::kServe);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span sp(TraceLevel::kServe, SpanCat::kEngine, "sample");
        sp.rid(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  for (auto& w : workers) w.join();
  auto spans = rec.collect();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.dropped(), 0u);
  // Every rid appears exactly once.
  std::vector<std::uint64_t> rids;
  rids.reserve(spans.size());
  for (const auto& s : spans) rids.push_back(s.rid);
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(std::adjacent_find(rids.begin(), rids.end()), rids.end());
}

// ---- export -------------------------------------------------------------

std::vector<SpanRecord> sample_spans() {
  std::vector<SpanRecord> spans;
  auto add = [&spans](std::uint64_t b, std::uint64_t e, SpanCat cat,
                      const char* name, std::uint64_t rid) {
    SpanRecord r;
    r.t_begin_ns = b;
    r.t_end_ns = e;
    r.cat = cat;
    r.name = name;
    r.rid = rid;
    spans.push_back(r);
  };
  add(3000, 3400, SpanCat::kQueue, "queue_wait", 2);
  add(1000, 1100, SpanCat::kAdmission, "admit", 1);
  add(1000, 1100, SpanCat::kAdmission, "admit", 0);
  add(2000, 9000, SpanCat::kDispatch, "dispatch", 0);
  add(2500, 2600, SpanCat::kKernel, "hash", 0);
  return spans;
}

TEST(TraceExport, CanonicalOrderIsShuffleInvariant) {
  std::vector<SpanRecord> a = sample_spans();
  std::vector<SpanRecord> b = sample_spans();
  std::reverse(b.begin(), b.end());
  canonicalize(a);
  canonicalize(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_begin_ns, b[i].t_begin_ns) << i;
    EXPECT_EQ(a[i].rid, b[i].rid) << i;
    EXPECT_STREQ(a[i].name, b[i].name) << i;
  }
  // Identical span multisets serialize to identical bytes.
  EXPECT_EQ(chrome_trace_json(sample_spans()),
            chrome_trace_json([] {
              auto s = sample_spans();
              std::reverse(s.begin(), s.end());
              return s;
            }()));
  // Ordered by begin time, ties broken deterministically.
  EXPECT_EQ(a.front().t_begin_ns, 1000u);
  EXPECT_EQ(a.back().t_begin_ns, 3000u);
}

TEST(TraceExport, ChromeJsonParsesAndDescribesSpans) {
  const std::string doc = chrome_trace_json(sample_spans());
  const JsonValue root = parse_json(doc);
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const auto& events = root.at("traceEvents").items();
  std::size_t complete = 0, metadata = 0;
  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(ev.find("ts") != nullptr);
      EXPECT_TRUE(ev.find("dur") != nullptr);
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
    } else {
      EXPECT_EQ(ph, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(complete, sample_spans().size());
  EXPECT_GE(metadata, 1u);  // at least the process_name record
  // Identity fields ride in args; the kNoId sentinel is omitted.
  EXPECT_NE(doc.find("\"rid\""), std::string::npos);
  EXPECT_EQ(doc.find("18446744073709551615"), std::string::npos);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerSpan) {
  const std::string csv = trace_csv(sample_spans());
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, sample_spans().size() + 1);  // header + spans
  EXPECT_EQ(csv.rfind("t_begin_ns,", 0), 0u);
}

TEST(TraceExport, AggregateStagesOrdersByTotalTime) {
  const auto rows = aggregate_stages(sample_spans());
  ASSERT_EQ(rows.size(), 4u);  // admit x2 merged, three singletons
  EXPECT_EQ(rows[0].stage, "dispatch/dispatch");  // 7000 ns dominates
  EXPECT_EQ(rows[0].count, 1u);
  double share = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    share += rows[i].share;
    if (i > 0) EXPECT_LE(rows[i].total_ms, rows[i - 1].total_ms);
  }
  EXPECT_NEAR(share, 1.0, 1e-12);
  const auto admit = std::find_if(
      rows.begin(), rows.end(),
      [](const StageStat& s) { return s.stage == "admission/admit"; });
  ASSERT_NE(admit, rows.end());
  EXPECT_EQ(admit->count, 2u);
  EXPECT_NEAR(admit->mean_us, 0.1, 1e-12);
}

TEST(TraceExport, EmptySpanSetStillValid) {
  EXPECT_TRUE(aggregate_stages({}).empty());
  const JsonValue root = parse_json(chrome_trace_json({}));
  EXPECT_TRUE(root.at("traceEvents").is_array());
}

// ---- metrics ------------------------------------------------------------

TEST(MetricsRegistry, ExposesPrometheusTextFormat) {
  MetricsRegistry reg;
  reg.add_collector([](MetricsRegistry& r) {
    r.set_counter("deepcam_b_total", "Second family alphabetically", {},
                  3.0);
    r.set_gauge("deepcam_a_depth", "First family alphabetically",
                {{"queue", "main"}}, 7.5);
  });
  const std::string text = reg.expose();
  const auto a = text.find("deepcam_a_depth");
  const auto b = text.find("deepcam_b_total");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // families name-sorted
  EXPECT_NE(text.find("# HELP deepcam_a_depth First family alphabetically"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE deepcam_a_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE deepcam_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("deepcam_a_depth{queue=\"main\"} 7.5"),
            std::string::npos);
  EXPECT_NE(text.find("deepcam_b_total 3"), std::string::npos);
}

TEST(MetricsRegistry, HistogramExpandsToCumulativeBuckets) {
  MetricsRegistry reg;
  reg.add_collector([](MetricsRegistry& r) {
    Histogram h(0.001, 10.0, 4, /*exact_cap=*/16);
    h.add(0.002);
    h.add(0.002);
    h.add(5.0);
    r.set_histogram("deepcam_latency_seconds", "Latency", {}, h);
  });
  const std::string text = reg.expose();
  EXPECT_NE(text.find("# TYPE deepcam_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("deepcam_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("deepcam_latency_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("deepcam_latency_seconds_sum 5.004"),
            std::string::npos);
  // Cumulative counts never decrease across le= edges.
  std::uint64_t prev = 0;
  std::size_t pos = 0, buckets = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const std::size_t sp = text.find(' ', pos);
    const std::uint64_t n = std::stoull(text.substr(sp + 1));
    EXPECT_GE(n, prev);
    prev = n;
    ++buckets;
    ++pos;
  }
  EXPECT_EQ(buckets, 5u);  // 4 finite edges + +Inf
}

TEST(MetricsRegistry, CollectorsRunFreshEachScrape) {
  MetricsRegistry reg;
  int scrapes = 0;
  reg.add_collector([&scrapes](MetricsRegistry& r) {
    ++scrapes;
    r.set_gauge("deepcam_scrapes", "Scrape count", {}, scrapes);
  });
  EXPECT_NE(reg.expose().find("deepcam_scrapes 1"), std::string::npos);
  const std::string second = reg.expose();
  EXPECT_NE(second.find("deepcam_scrapes 2"), std::string::npos);
  EXPECT_EQ(second.find("deepcam_scrapes 1"), std::string::npos);
  EXPECT_EQ(scrapes, 2);
}

TEST(MetricsRegistry, LabelSetsSortDeterministically) {
  MetricsRegistry reg;
  reg.add_collector([](MetricsRegistry& r) {
    r.set_counter("deepcam_req_total", "Requests",
                  {{"session", "zz"}}, 1.0);
    r.set_counter("deepcam_req_total", "Requests",
                  {{"session", "aa"}}, 2.0);
  });
  const std::string text = reg.expose();
  EXPECT_LT(text.find("session=\"aa\""), text.find("session=\"zz\""));
  // Re-publishing identical labels overwrites, not duplicates.
  MetricsRegistry reg2;
  reg2.add_collector([](MetricsRegistry& r) {
    r.set_gauge("deepcam_x", "X", {{"k", "v"}}, 1.0);
    r.set_gauge("deepcam_x", "X", {{"k", "v"}}, 9.0);
  });
  const std::string text2 = reg2.expose();
  EXPECT_NE(text2.find("deepcam_x{k=\"v\"} 9"), std::string::npos);
  EXPECT_EQ(text2.find("deepcam_x{k=\"v\"} 1"), std::string::npos);
}

}  // namespace
}  // namespace deepcam::obs
